"""Continual learning under concept drift: detect, adapt, recover.

A deployed TP-GNN silently decays when the event stream shifts.  This
example runs the full :mod:`repro.online` loop against a seeded drift
scenario:

1. generates the ``transition-shift`` stream — a workflow automaton
   whose transition probabilities change mid-stream, so post-drift
   healthy sessions suddenly route through warn stages the pre-drift
   model learned to read as "faulty",
2. pretrains offline on the stream head, then streams the rest
   prequentially (test-then-train) through an :class:`OnlineLearner`
   wrapped in a :class:`DriftMonitor` (Page-Hinkley on the prequential
   loss, fine-tune adaptation policy),
3. prints the rolling prequential AUC before, at, and after the drift
   point, with the alarm position marked,
4. demonstrates query-time evaluation — scoring one session at
   timestamps between its events — and a learner snapshot/restore.

    python examples/online_adaptation.py
"""

import numpy as np

from repro.core import TPGNN
from repro.graph import GraphDataset
from repro.online import (
    SCENARIOS,
    DriftMonitor,
    OnlineLearner,
    PageHinkley,
    make_policy,
    score_curve,
)
from repro.training import TrainConfig, train_model

PRETRAIN = 50
WINDOW = 25


def main() -> None:
    scenario = SCENARIOS["transition-shift"]
    stream = scenario.generate(seed=0)
    drift_at = scenario.drift_index()
    print(f"== scenario: {scenario.name} — {scenario.description} ==")
    print(f"{len(stream)} sessions, regime change at session {drift_at}\n")

    model = TPGNN(in_features=3, hidden_size=8, gru_hidden_size=8, time_dim=4, seed=0)
    config = TrainConfig(
        epochs=4, learning_rate=0.01, batch_size=8, seed=0,
        replay_buffer=96, online_update_every=2,
    )
    print(f"== pretraining offline on the first {PRETRAIN} sessions ==")
    train_model(model, GraphDataset(stream[:PRETRAIN], name=scenario.name), config)
    model.eval()

    learner = OnlineLearner(model, config, metrics_window=WINDOW)
    monitor = DriftMonitor(
        learner, detector=PageHinkley(), policy=make_policy("fine-tune")
    )

    print(f"\n== streaming {len(stream) - PRETRAIN} sessions prequentially ==")
    for index, graph in enumerate(stream[PRETRAIN:]):
        monitor.observe(graph)
        if index >= WINDOW and (index + 1) % WINDOW == 0:
            marker = ""
            for alarm in monitor.alarms:
                if index + 1 - WINDOW <= alarm.index <= index:
                    marker = f"  <- ALARM at {alarm.index} ({alarm.action})"
            print(
                f"  sessions {index + 1 - WINDOW:3d}-{index:3d}: "
                f"prequential AUC {learner.metrics.windowed_auc(WINDOW):.3f}, "
                f"rolling loss {learner.metrics.rolling_loss(WINDOW):.3f}{marker}"
            )

    streamed_drift = drift_at - PRETRAIN
    metrics = learner.metrics
    print(
        f"\npre-drift AUC   {metrics.auc(streamed_drift - WINDOW, streamed_drift):.3f}\n"
        f"post-drift AUC  {metrics.auc(streamed_drift, streamed_drift + WINDOW):.3f}  "
        f"(the frozen-model damage)\n"
        f"recovered AUC   {metrics.windowed_auc(WINDOW):.3f}  "
        f"(after {learner.updates_applied} online updates)"
    )

    # Query-time evaluation: how the score for one post-drift session
    # firms up as its events arrive.
    graph = stream[-1]
    times = np.linspace(0.0, float(graph.store.t.max()), 6)
    curve = score_curve(model, graph, times)
    print(f"\n== query-time scores for session {graph.graph_id!r} "
          f"(label={graph.label}) ==")
    for tau, probability in zip(times, curve):
        print(f"  t={tau:7.3f}  P(healthy)={probability:.3f}")

    # The learner snapshots to flat arrays (weights, Adam moments,
    # replay buffer, RNG) — the same payload serve checkpoints and
    # cluster live migration carry.
    snapshot = learner.snapshot()
    replica_model = TPGNN(in_features=3, hidden_size=8, gru_hidden_size=8,
                          time_dim=4, seed=99)
    replica = OnlineLearner(replica_model, config, metrics_window=WINDOW)
    replica.restore(snapshot)
    drift_score = float(replica_model.predict_proba(graph))
    print(f"\n== snapshot/restore: replica P(healthy)={drift_score:.3f} "
          f"(original {float(model.predict_proba(graph)):.3f}) ==")


if __name__ == "__main__":
    main()
