"""Profile a training run with the telemetry subsystem.

Where does a TP-GNN epoch actually spend its time?  This example turns
on :mod:`repro.telemetry` around one short training run and reads the
answer off three artifacts:

1. the **span flame report** — the trainer's nested
   ``train/epoch/batch/forward|backward|optimizer_step`` wall-time
   tree,
2. the **top-ops table** — per-op-kind forward/backward seconds and
   output bytes, attributed by patching the autograd dispatch layer,
3. the **metric registry** — streaming histograms of batch loss and
   gradient norm the trainer records while telemetry is enabled.

Outside the ``capture`` block all of this instrumentation is off and
costs (almost) nothing — a guard test in ``tests/telemetry`` holds the
disabled overhead under 5% of an epoch.

    python examples/profile_training.py
"""

from repro import telemetry
from repro.core import TPGNN
from repro.data import make_dataset
from repro.training import TrainConfig, train_model


def main() -> None:
    data = make_dataset("HDFS", num_graphs=40, seed=0, scale=0.3)
    train_data, _ = data.split(0.5)
    model = TPGNN(data.feature_dim, updater="sum", hidden_size=16,
                  time_dim=4, seed=0)

    print(f"== profiling 2 epochs over {len(train_data)} sessions ==")
    with telemetry.capture(profile=True) as cap:
        result = train_model(
            model, train_data, TrainConfig(epochs=2, learning_rate=0.01, seed=0)
        )
    print(f"loss {result.losses[0]:.3f} -> {result.losses[-1]:.3f}\n")

    # 1. Where did the wall time go, structurally?
    print(cap.flame())
    print()

    # 2. Which tensor ops dominate, and how much of it is backward?
    print(cap.top_ops(k=8))
    print()

    # 3. What did the loss/grad-norm distributions look like?
    for name, labels, kind, instrument in cap.registry:
        if kind == "histogram":
            summary = instrument.summary()
            print(f"{name}: n={summary['count']} mean={summary['mean']:.4f} "
                  f"p50={summary['p50']:.4f} p99={summary['p99']:.4f}")

    # The attributed op time nests inside the traced training wall time.
    print(f"\nop time {cap.profiler.total_seconds:.3f}s "
          f"of {cap.tracer.total_seconds:.3f}s traced")

    # Everything above also exports as JSONL for offline analysis:
    #     with open("telemetry.jsonl", "w") as stream:
    #         cap.write_jsonl(stream)


if __name__ == "__main__":
    main()
