"""Streaming online inference: score sessions while they are happening.

Batch TP-GNN replays a session's full edge list for every score.  This
example replays HDFS-style block sessions as one interleaved, live
timestamped feed through :mod:`repro.serve` instead:

1. trains a small TP-GNN-SUM on a warm-up split,
2. streams the held-out sessions event by event through a
   :class:`StreamingEngine` (LRU session table, buffered out-of-order
   admission), printing a rolling anomaly score as each session grows,
3. compares the final O(1) online scores against full batch replay and
   the ``exact`` read mode,
4. checkpoints the live serving state and restores it into a second
   engine mid-stream.

    python examples/streaming_inference.py
"""

import numpy as np

from repro.core import TPGNN
from repro.data import make_dataset
from repro.serve import StreamingEngine, dataset_to_feed
from repro.training import TrainConfig, train_model


def main() -> None:
    data = make_dataset("HDFS", num_graphs=60, seed=3, scale=0.3)
    train_data, live_data = data.split(0.5)

    model = TPGNN(data.feature_dim, updater="sum", hidden_size=16,
                  gru_hidden_size=16, time_dim=4, seed=0)
    print(f"== warm-up: training on {len(train_data)} historical sessions ==")
    train_model(model, train_data, TrainConfig(epochs=8, learning_rate=0.01, seed=0))
    model.eval()

    # Interleave the live sessions into one feed, as a log collector
    # would deliver them: events from many sessions, globally ordered
    # by timestamp.
    rng = np.random.default_rng(0)
    feed = dataset_to_feed(live_data, rng=rng, spread=50.0)
    print(f"\n== streaming {len(feed)} events from {len(live_data)} live sessions ==")

    engine = StreamingEngine(model, max_sessions=128,
                             out_of_order="buffer", watermark_delay=5.0)
    watch = feed[0].session_id  # narrate one session as it grows
    narrated = -1
    for event in feed:
        engine.ingest(event)
        state = engine.session(watch)
        if (event.session_id == watch and state.num_events > narrated
                and state.num_events % 10 == 0):
            narrated = state.num_events
            p = engine.predict(watch)  # O(1): no replay of earlier events
            print(f"  {watch}: {state.num_events:3d} events seen, "
                  f"P(normal)={p:.3f}")
    engine.flush()  # end of stream: drain the out-of-order buffer

    print("\n== final scores: O(1) online vs full batch replay ==")
    probabilities = engine.predict_many()  # micro-batched: one matmul
    by_id = {g.graph_id: g for g in live_data}
    shown = 0
    for session_id, online_p in sorted(probabilities.items()):
        graph = by_id[session_id]
        batch_p = model.predict_proba(graph)
        exact_p = engine.predict(session_id, mode="exact")
        flag = "ANOMALY" if online_p < 0.5 else "normal "
        if shown < 6:
            print(f"  {session_id}: online={online_p:.3f}  "
                  f"exact={exact_p:.3f}  batch={batch_p:.3f}  -> {flag} "
                  f"(label={'normal' if graph.label == 1 else 'anomaly'})")
            shown += 1
        assert abs(exact_p - batch_p) < 1e-8, "exact mode must match batch"
    print("  ... exact == batch for every session (asserted).")

    print("\n== checkpoint / restore mid-stream ==")
    path = engine.checkpoint("/tmp/streaming_example_state.npz")
    twin = TPGNN(data.feature_dim, updater="sum", hidden_size=16,
                 gru_hidden_size=16, time_dim=4, seed=1)  # different init
    restored = StreamingEngine.restore(path, twin)
    drift = max(abs(restored.predict(s) - probabilities[s]) for s in probabilities)
    print(f"  restored {len(restored.live_sessions())} sessions from {path}")
    print(f"  max |restored - live| prediction drift: {drift:.2e}")

    print("\n== serving metrics ==")
    print(engine.metrics.render())


if __name__ == "__main__":
    main()
