"""Bring your own data: build CTDNs directly and use any registry model.

Shows the low-level public API: constructing continuous-time dynamic
networks from raw ``(src, dst, time)`` events, assembling a
GraphDataset, and comparing several models from the registry on it.

    python examples/custom_dataset.py
"""

import numpy as np

from repro.baselines import make_model
from repro.graph import CTDN, GraphDataset, TemporalEdge, influence_sets
from repro.training import TrainConfig, evaluate, train_model


def build_workflow_graph(rng, broken: bool) -> CTDN:
    """A toy 'order pipeline' workflow: order -> pay -> pack -> ship.

    Broken instances execute pack before pay — same topology, different
    order, the exact failure mode TP-GNN is designed to catch.
    """
    stages = 4
    features = np.eye(stages)
    gaps = rng.exponential(1.0, size=3) + 0.1
    times = np.cumsum(gaps)
    edges = [
        TemporalEdge(0, 1, float(times[0])),  # order -> pay
        TemporalEdge(1, 2, float(times[1])),  # pay   -> pack
        TemporalEdge(2, 3, float(times[2])),  # pack  -> ship
    ]
    if broken:
        # pack happens before pay: swap the two timestamps.
        edges[0] = edges[0].at(float(times[1]))
        edges[1] = edges[1].at(float(times[0]))
    return CTDN(stages, features, edges, label=0 if broken else 1)


def main() -> None:
    rng = np.random.default_rng(0)
    graphs = [build_workflow_graph(rng, broken=bool(i % 3 == 0)) for i in range(90)]
    data = GraphDataset(graphs, name="order-pipeline")
    train_data, test_data = data.split(0.4)
    print(f"custom dataset: {len(data)} workflows, "
          f"{100 * (data.labels == 0).mean():.0f}% broken")

    config = TrainConfig(epochs=15, learning_rate=0.02, seed=0)
    for name in ("GCN", "TGN", "TP-GNN-GRU"):
        model = make_model(name, in_features=data.feature_dim, seed=0,
                           hidden_size=12, time_dim=4, snapshot_size=1)
        train_model(model, train_data, config)
        metrics = evaluate(model, test_data)
        print(f"  {name:10s} F1={100 * metrics.f1:6.2f} "
              f"accuracy={100 * metrics.accuracy:6.2f}")

    # Inspect the information flow of one broken workflow.
    broken = next(g for g in test_data if g.label == 0)
    sets = influence_sets(broken)
    print("\ninformation flow in a broken workflow "
          "(influential nodes per stage):")
    for stage, names in enumerate(["order", "pay", "pack", "ship"]):
        print(f"  {names:5s} <- {sorted(sets[stage])}")
    print("note: 'pack' no longer receives 'pay' — the valid path is broken.")


if __name__ == "__main__":
    main()
