"""Quickstart: train TP-GNN on a small Forum-java dataset.

Runs in under a minute on one CPU core:

    python examples/quickstart.py
"""

from repro.core import TPGNN
from repro.data import make_dataset
from repro.training import TrainConfig, evaluate, train_model


def main() -> None:
    # 1. Generate a small Forum-java-profile dataset (120 log-session
    #    networks, ~30% anomalous, deterministic under the seed).
    data = make_dataset("Forum-java", num_graphs=120, seed=0, scale=0.2)
    stats = data.statistics()
    print(f"dataset: {stats.graph_count} graphs, "
          f"avg {stats.avg_nodes:.1f} nodes / {stats.avg_edges:.1f} edges, "
          f"{100 * stats.negative_ratio:.1f}% negative")

    # 2. Chronological 30/70 split, exactly as in the paper.
    train_data, test_data = data.split(0.3)

    # 3. TP-GNN with the SUM updater (paper defaults: d=32, d_t=6 —
    #    shrunk here for speed).
    model = TPGNN(
        in_features=data.feature_dim,
        updater="sum",
        hidden_size=16,
        gru_hidden_size=16,
        time_dim=4,
        seed=0,
    )
    print(f"model: TP-GNN-SUM with {model.num_parameters()} parameters")

    # 4. Train with Adam + binary cross-entropy.
    result = train_model(
        model, train_data, TrainConfig(epochs=10, learning_rate=0.01, seed=0)
    )
    print(f"trained {result.epochs_run} epochs in {result.train_seconds:.1f}s; "
          f"loss {result.losses[0]:.3f} -> {result.losses[-1]:.3f}")

    # 5. Evaluate on the held-out 70%.
    metrics = evaluate(model, test_data)
    print(f"test F1={100 * metrics.f1:.2f}  "
          f"precision={100 * metrics.precision:.2f}  "
          f"recall={100 * metrics.recall:.2f}")

    # 6. Classify a single session.
    graph = test_data[0]
    probability = model.predict_proba(graph)
    print(f"session {graph.graph_id}: P(normal)={probability:.3f} "
          f"(true label: {'normal' if graph.label == 1 else 'anomalous'})")


if __name__ == "__main__":
    main()
