"""Sharded serving: scale one StreamingEngine out to N shards, live.

One engine folds events single-threaded.  This example fronts four
shared-nothing shards with a :class:`repro.cluster.ShardedCluster` and
walks the whole operational story:

1. trains a small TP-GNN-SUM on a warm-up split,
2. streams the held-out sessions through the cluster — events are
   routed by consistent hashing on the session id, queued per shard
   with bounded backpressure, and folded by the raw-array fast lane,
3. resizes the cluster mid-feed: ``add_shard()`` + ``rebalance()``
   migrates live sessions over snapshot/restore while events are
   still arriving,
4. proves the sharding is invisible: every session's prediction is
   bit-for-bit what a lone engine produces for the same feed,
5. prints the per-shard stats and latency percentiles a ``repro
   loadtest`` run records to ``BENCH_serve.json``.

    python examples/sharded_serving.py
"""

import numpy as np

from repro.cluster import ShardedCluster
from repro.data import make_dataset
from repro.core import TPGNN
from repro.serve import StreamingEngine, dataset_to_feed
from repro.training import TrainConfig, train_model


def main() -> None:
    data = make_dataset("HDFS", num_graphs=60, seed=3, scale=0.3)
    train_data, live_data = data.split(0.5)

    model = TPGNN(data.feature_dim, updater="sum", hidden_size=16,
                  gru_hidden_size=16, time_dim=4, seed=0)
    print(f"== warm-up: training on {len(train_data)} historical sessions ==")
    train_model(model, train_data, TrainConfig(epochs=8, learning_rate=0.01, seed=0))
    model.eval()

    feed = dataset_to_feed(live_data, rng=np.random.default_rng(0), spread=50.0)
    print(f"\n== streaming {len(feed)} events from {len(live_data)} sessions "
          f"through 3 shards ==")

    with ShardedCluster(model, n_shards=3, backend="thread",
                        queue_capacity=1024, backpressure="block",
                        batch_size=32) as cluster:
        half = len(feed) // 2
        for event in feed[:half]:
            cluster.submit(event)

        # Live resize with events still in flight behind it: drain,
        # snapshot each moving session, validate, adopt on the new owner.
        new_shard = cluster.add_shard()
        report = cluster.rebalance()
        print(f"\n== mid-feed resize: 3 -> 4 shards ==")
        print(f"  shard {new_shard} joined; {report.moved} sessions migrated, "
              f"{report.quarantined} quarantined")

        for event in feed[half:]:
            cluster.submit(event)
        cluster.flush()  # barrier + drain out-of-order buffers

        print("\n== session placement after rebalance ==")
        for shard_id, session_ids in sorted(cluster.sessions().items()):
            print(f"  shard {shard_id}: {len(session_ids)} sessions")

        # The tentpole property: sharding, queues, fast lane and the
        # migration are all invisible to the model.
        print("\n== cluster == single engine, exactly ==")
        engine = StreamingEngine(model)
        engine.ingest_many(feed)
        engine.flush()
        mismatches = 0
        for session_id in cluster.live_sessions():
            if cluster.predict(session_id) != engine.predict(session_id):
                mismatches += 1
        print(f"  {len(cluster.live_sessions())} sessions compared, "
              f"{mismatches} mismatches (== on floats, no tolerance)")
        assert mismatches == 0

        print("\n== per-shard stats ==")
        stats = cluster.stats()
        for shard_id, shard in sorted(stats["shards"].items()):
            print(f"  shard {shard_id}: applied={shard['applied']:5d}  "
                  f"sessions={shard['live_sessions']:3d}  "
                  f"breaker={shard['breaker_state']}")
        summary = cluster.metrics.latency_summary()
        print(f"  ingest p50/p99  {summary['ingest_p50_ms']:.3f} / "
              f"{summary['ingest_p99_ms']:.3f} ms")
        print(f"  apply  p50/p99  {summary['apply_p50_ms']:.3f} / "
              f"{summary['apply_p99_ms']:.3f} ms")

    print("\nFor the full SLO harness (seeded load, percentiles, "
          "single-engine baseline,\nBENCH_serve.json):  "
          "python -m repro.cli loadtest --shards 4")


if __name__ == "__main__":
    main()
