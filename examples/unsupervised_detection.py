"""Label-free anomaly detection (the paper's future-work direction).

Trains the self-supervised next-edge predictor on normal sessions only
and flags anomalies by prediction error — no labels are used anywhere
in training.

    python examples/unsupervised_detection.py
"""

import numpy as np

from repro.core import UnsupervisedTPGNN
from repro.data import make_dataset
from repro.training import compute_metrics


def main() -> None:
    data = make_dataset("Forum-java", num_graphs=120, seed=5, scale=0.2)
    train_data, test_data = data.split(0.3)

    # Unsupervised protocol: the detector only ever sees graphs
    # *believed* to be normal (the positive training sessions).
    train_normals = [g for g in train_data if g.label == 1]
    print(f"fitting on {len(train_normals)} unlabelled-normal sessions ...")

    detector = UnsupervisedTPGNN(
        in_features=data.feature_dim,
        updater="gru",
        hidden_size=16,
        time_dim=4,
        quantile=0.9,
        seed=0,
    )
    losses = detector.fit(train_normals, epochs=8, learning_rate=0.01, seed=0)
    print(f"pretext loss {losses[0]:.4f} -> {losses[-1]:.4f}; "
          f"threshold={detector.threshold:.4f}")

    # Score the held-out sessions.
    scores_normal = [detector.score(g) for g in test_data if g.label == 1]
    scores_anomal = [detector.score(g) for g in test_data if g.label == 0]
    print(f"mean next-edge error: normal={np.mean(scores_normal):.4f}  "
          f"anomalous={np.mean(scores_anomal):.4f}")

    predictions = [detector.predict(g) for g in test_data]
    metrics = compute_metrics(test_data.labels, predictions)
    print(f"label-free detection: F1={100 * metrics.f1:.2f} "
          f"precision={100 * metrics.precision:.2f} "
          f"recall={100 * metrics.recall:.2f} "
          f"accuracy={100 * metrics.accuracy:.2f}")


if __name__ == "__main__":
    main()
