"""User-trajectory anomaly detection (Brightkite profile).

The paper's second motivating scenario: a user's check-in sequence
forms a dynamic user-trajectory network; anomalous behaviour (rewired
movements, shuffled visit order) is detected by classifying the whole
dynamic graph.  This example shows the paper's two negative samplers in
action and reproduces the Fig. 7 perturbation probes on a trained
model.

    python examples/trajectory_anomaly.py
"""

import numpy as np

from repro.core import TPGNN
from repro.data import make_dataset, structural_negative, temporal_negative
from repro.training import TrainConfig, evaluate, train_model


def main() -> None:
    data = make_dataset("Brightkite", num_graphs=120, seed=3, scale=0.2)
    train_data, test_data = data.split(0.3)

    model = TPGNN(data.feature_dim, updater="gru", hidden_size=16,
                  gru_hidden_size=16, time_dim=4, seed=0)
    train_model(model, train_data, TrainConfig(epochs=10, learning_rate=0.01, seed=0))
    metrics = evaluate(model, test_data)
    print(f"TP-GNN-GRU on Brightkite: F1={100 * metrics.f1:.2f} "
          f"P={100 * metrics.precision:.2f} R={100 * metrics.recall:.2f}")

    # Probe the test positives with the paper's two samplers and compare
    # the model's average confidence on originals vs probed versions.
    rng = np.random.default_rng(7)
    positives = [g for g in test_data if g.label == 1 and g.num_edges >= 8][:20]
    original, rewired, shuffled = [], [], []
    for trajectory in positives:
        try:
            rewired.append(model.predict_proba(structural_negative(trajectory, rng)))
            shuffled.append(model.predict_proba(temporal_negative(trajectory, rng)))
        except (ValueError, RuntimeError):
            continue  # degenerate trajectory (too small / constant time)
        original.append(model.predict_proba(trajectory))

    print(f"\nprobing {len(original)} held-out normal trajectories:")
    print(f"  mean P(normal | original)             = {np.mean(original):.3f}")
    print(f"  mean P(normal | rewired movements)    = {np.mean(rewired):.3f}")
    print(f"  mean P(normal | shuffled visit order) = {np.mean(shuffled):.3f}")
    print("\nthe shuffled probes keep the exact same POIs and movements — only")
    print("their order changes; a time-blind model cannot see any difference.")


if __name__ == "__main__":
    main()
