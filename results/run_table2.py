"""Reference run of Table II for EXPERIMENTS.md."""
import time
from repro.experiments import ExperimentConfig, run_table2, format_table2, category_means

config = ExperimentConfig(num_graphs=240, graph_scale=0.25, epochs=12,
                          learning_rate=0.01, batch_size=4, runs=1,
                          hidden_size=32, time_dim=6, seed=0)
start = time.perf_counter()

def progress(dataset, model, summary):
    print(f"[{time.perf_counter()-start:7.1f}s] {dataset:12s} {model:20s} F1={summary.format_cell('f1')}", flush=True)

results = run_table2(config, progress=progress)
print()
print(format_table2(results))
print()
print("category means:", {k: round(100*v, 2) for k, v in category_means(results).items()})
