"""Trimmed reference runs of Figs. 3-7 for EXPERIMENTS.md."""
import time
from repro.experiments import (ExperimentConfig, run_ablation, format_ablation,
                               run_sensitivity, format_sensitivity,
                               run_runtime, format_runtime,
                               run_case_study, format_case_study)

config = ExperimentConfig(num_graphs=160, graph_scale=0.25, epochs=10,
                          learning_rate=0.01, batch_size=4, runs=1,
                          hidden_size=32, time_dim=6, seed=0)
start = time.perf_counter()
def stamp(msg):
    print(f"\n[{time.perf_counter()-start:7.1f}s] ==== {msg} ====", flush=True)

for updater, fig in (("sum", "Fig3"), ("gru", "Fig4")):
    stamp(f"{fig} ablation {updater}")
    ab = run_ablation(config, updater=updater, datasets=("Forum-java", "Gowalla"),
                      progress=lambda d, v, s: print(f"  {d:12s} {v:10s} F1={s.format_cell('f1')}", flush=True))
    print(format_ablation(ab, updater=updater))

stamp("Fig5 sensitivity")
sens = run_sensitivity(config, datasets=("Forum-java",),
                       hidden_sizes=(8, 16, 32, 64, 128), time_dims=(2, 4, 6, 8),
                       progress=lambda ds, d, dt, s: print(f"  {ds} d={d} dt={dt} F1={s.format_cell('f1')}", flush=True))
print(format_sensitivity(sens))

stamp("Fig6 runtime")
fast = config.with_overrides(epochs=4)
points = run_runtime(fast, datasets=("Forum-java", "Gowalla"),
                     progress=lambda p: print(f"  {p.dataset:12s} {p.model:12s} {p.microseconds_per_graph:10.0f}us F1={100*p.f1:.2f}", flush=True))
print(format_runtime(points))

stamp("Fig7 case study")
cs = run_case_study(config)
print(format_case_study(cs))
stamp("done")
