"""Metric primitives and the labeled metric registry.

Three instrument kinds cover everything the repo measures:

* :class:`Counter` — a monotonically increasing integer (events
  ingested, sessions evicted, optimizer steps skipped).
* :class:`Gauge` — a point-in-time value (live sessions, current
  learning rate).
* :class:`Histogram` — a streaming distribution: a fixed-capacity ring
  buffer of the most recent samples (quantiles describe *recent*
  behaviour, which is what an operator watches) plus exact running
  aggregates (count / sum / min / max) over *every* sample ever
  recorded.

:class:`MetricRegistry` stores labeled series of these instruments
under ``(name, labels)`` keys and hands out the same instance on
repeated registration, so independent call sites accumulate into one
series.  All instruments and the registry are thread-safe: the
parallel experiment runner's in-process reporters and the streaming
engine's callers may record concurrently.
"""

from __future__ import annotations

import json
import threading
from typing import IO, Iterator

import numpy as np

#: Default ring-buffer capacity for histograms (matches the previous
#: serving latency reservoir).
DEFAULT_HISTOGRAM_CAPACITY = 4096


class Counter:
    """A thread-safe monotonic counter."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0
        self._lock = threading.Lock()

    @property
    def value(self) -> int:
        """Current count."""
        return self._value

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counters only increase; got increment {amount}")
        with self._lock:
            self._value += int(amount)

    def set(self, value: int) -> None:
        """Overwrite the count (checkpoint restore only)."""
        with self._lock:
            self._value = int(value)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Counter(value={self._value})"


class Gauge:
    """A thread-safe point-in-time value."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    @property
    def value(self) -> float:
        """Last value set."""
        return self._value

    def set(self, value: float) -> None:
        """Record the current value."""
        with self._lock:
            self._value = float(value)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Gauge(value={self._value})"


class Histogram:
    """Streaming distribution: recent-sample ring buffer + exact totals.

    Quantiles are computed over the retained window (the most recent
    ``capacity`` samples); ``count``/``sum``/``min``/``max`` are exact
    over the full stream, so memory stays bounded no matter how long a
    process records.
    """

    __slots__ = (
        "capacity", "_samples", "_next", "_filled", "count",
        "_sum", "_min", "_max", "_lock",
    )

    def __init__(self, capacity: int = DEFAULT_HISTOGRAM_CAPACITY):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._samples = np.zeros(capacity)
        self._next = 0
        self._filled = 0
        self.count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(self, value: float) -> None:
        """Add one sample."""
        value = float(value)
        with self._lock:
            self._samples[self._next] = value
            self._next = (self._next + 1) % self.capacity
            if self._filled < self.capacity:
                self._filled += 1
            self.count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def values(self) -> np.ndarray:
        """The retained samples (at most ``capacity``), unordered."""
        return self._samples[: self._filled].copy()

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0-100) of retained samples (0 when empty)."""
        values = self.values()
        return float(np.percentile(values, q)) if values.size else 0.0

    def quantile(self, q: float) -> float:
        """The ``q``-th quantile (0-1) of retained samples (0 when empty)."""
        return self.percentile(100.0 * q)

    @property
    def sum(self) -> float:
        """Exact sum of every sample ever recorded."""
        return self._sum

    @property
    def mean(self) -> float:
        """Exact mean over the full stream (0 when empty)."""
        return self._sum / self.count if self.count else 0.0

    @property
    def min(self) -> float:
        """Exact minimum over the full stream (0 when empty)."""
        return self._min if self.count else 0.0

    @property
    def max(self) -> float:
        """Exact maximum over the full stream (0 when empty)."""
        return self._max if self.count else 0.0

    def summary(self) -> dict[str, float]:
        """Count, exact aggregates and p50/p90/p99 of the retained window."""
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }

    # ------------------------------------------------------------------
    # Merging
    # ------------------------------------------------------------------
    def merge(self, other: "Histogram") -> "Histogram":
        """Combine two histograms into a new one.

        Exact aggregates add; the retained window keeps the newest
        samples of each operand (``self``'s first when truncating), so
        the merged window is a sub-multiset of the operands' windows.
        Capacity is the larger of the two.
        """
        merged = Histogram(capacity=max(self.capacity, other.capacity))
        retained = np.concatenate([self.values(), other.values()])
        keep = retained[-merged.capacity:] if retained.size > merged.capacity else retained
        merged._samples[: keep.size] = keep
        merged._next = keep.size % merged.capacity
        merged._filled = keep.size
        merged.count = self.count + other.count
        merged._sum = self._sum + other._sum
        merged._min = min(self._min, other._min)
        merged._max = max(self._max, other._max)
        return merged

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Histogram(count={self.count}, capacity={self.capacity})"


#: Instrument constructors by type tag (used by snapshot/registration).
_INSTRUMENTS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}

#: A registry key: (name, sorted label items).
_Key = tuple[str, tuple[tuple[str, str], ...]]


class MetricRegistry:
    """Thread-safe store of labeled metric series.

    ``counter``/``gauge``/``histogram`` are get-or-create: the first
    call registers the series, later calls (from any thread or module)
    return the same instrument, so distant call sites share series by
    name.  Registering the same ``(name, labels)`` under a different
    instrument type raises.
    """

    def __init__(self) -> None:
        self._series: dict[_Key, tuple[str, object]] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    @staticmethod
    def _key(name: str, labels: dict[str, str]) -> _Key:
        return (name, tuple(sorted((k, str(v)) for k, v in labels.items())))

    def _get_or_create(self, kind: str, name: str, labels: dict[str, str], **kwargs):
        key = self._key(name, labels)
        with self._lock:
            entry = self._series.get(key)
            if entry is not None:
                existing_kind, instrument = entry
                if existing_kind != kind:
                    raise ValueError(
                        f"metric {name!r} with labels {dict(key[1])} is already "
                        f"registered as a {existing_kind}, not a {kind}"
                    )
                return instrument
            instrument = _INSTRUMENTS[kind](**kwargs)
            self._series[key] = (kind, instrument)
            return instrument

    def counter(self, name: str, **labels: str) -> Counter:
        """Get or create the counter ``name`` with ``labels``."""
        return self._get_or_create("counter", name, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        """Get or create the gauge ``name`` with ``labels``."""
        return self._get_or_create("gauge", name, labels)

    def histogram(
        self, name: str, capacity: int = DEFAULT_HISTOGRAM_CAPACITY, **labels: str
    ) -> Histogram:
        """Get or create the histogram ``name`` with ``labels``."""
        return self._get_or_create("histogram", name, labels, capacity=capacity)

    # ------------------------------------------------------------------
    # Reading / export
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._series)

    def __iter__(self) -> Iterator[tuple[str, dict[str, str], str, object]]:
        """Yield ``(name, labels, kind, instrument)`` per series."""
        with self._lock:
            items = list(self._series.items())
        for (name, labels), (kind, instrument) in items:
            yield name, dict(labels), kind, instrument

    def snapshot(self) -> list[dict]:
        """One JSON-serialisable row per series.

        Counters/gauges report ``value``; histograms report their
        :meth:`Histogram.summary` fields inline.
        """
        rows = []
        for name, labels, kind, instrument in self:
            row: dict = {"metric": name, "type": kind}
            if labels:
                row["labels"] = labels
            if kind == "histogram":
                row.update(instrument.summary())
            else:
                row["value"] = instrument.value
            rows.append(row)
        return rows

    def to_jsonl(self, stream: IO[str]) -> int:
        """Write :meth:`snapshot` as JSON lines; returns rows written."""
        rows = self.snapshot()
        for row in rows:
            stream.write(json.dumps(row, sort_keys=True) + "\n")
        return len(rows)

    def reset(self) -> None:
        """Drop every registered series."""
        with self._lock:
            self._series.clear()
