"""Op-level autograd profiler for :mod:`repro.tensor`.

Every differentiable operation in the engine is a module-level function
in :mod:`repro.tensor.ops`, looked up through the module object at call
time (``ops.matmul(...)``).  That late binding makes the dispatch layer
patchable: while a profiler is active, each op function is replaced by
a wrapper that

* times the **forward** numpy computation,
* counts the op's **output bytes** (the array-allocation pressure the
  op adds), and
* rewraps the returned tensor's backward closure so the **backward**
  pass attributes its time to the op kind that created the node.

Deactivating restores the original functions, so code that is not
inside a :func:`profile_ops` region runs exactly the pre-profiler
bytecode — zero overhead when disabled (the overhead guard test in
``tests/telemetry`` enforces this end to end).

Backward closures created inside the region keep their attribution even
if ``backward()`` runs after the region exits; profile the whole
forward+backward extent (as ``repro profile`` does) for totals that
nest under one enclosing span.
"""

from __future__ import annotations

import inspect
import json
import time
from dataclasses import dataclass, field
from typing import IO

from repro.tensor import ops as _ops_module
from repro.tensor.tensor import Tensor

#: Only one profiler may patch the op table at a time.
_ACTIVE: "OpProfiler | None" = None


@dataclass
class OpStat:
    """Accumulated cost of one op kind."""

    op: str
    calls: int = 0
    forward_seconds: float = 0.0
    backward_calls: int = 0
    backward_seconds: float = 0.0
    output_bytes: int = 0

    @property
    def total_seconds(self) -> float:
        """Forward plus backward time."""
        return self.forward_seconds + self.backward_seconds


@dataclass
class OpProfiler:
    """Context manager collecting per-op-kind timings and bytes.

    Usage::

        with profile_ops() as prof:
            loss = model(graph)
            loss.backward()
        print(prof.render(k=10))
    """

    stats: dict[str, OpStat] = field(default_factory=dict)
    _saved: dict[str, object] = field(default_factory=dict, repr=False)

    # ------------------------------------------------------------------
    # Patching
    # ------------------------------------------------------------------
    @staticmethod
    def _op_functions() -> dict[str, object]:
        """The patchable public op functions of ``repro.tensor.ops``."""
        return {
            name: obj
            for name, obj in vars(_ops_module).items()
            if inspect.isfunction(obj)
            and obj.__module__ == _ops_module.__name__
            and not name.startswith("_")
        }

    def _wrap(self, name: str, fn):
        stat = self.stats.setdefault(name, OpStat(op=name))
        perf_counter = time.perf_counter

        def profiled(*args, **kwargs):
            start = perf_counter()
            out = fn(*args, **kwargs)
            stat.forward_seconds += perf_counter() - start
            stat.calls += 1
            # Identity returns (e.g. dropout with rate 0) belong to the
            # op that actually built the tensor; rewrapping them would
            # double-count backward time.
            if isinstance(out, Tensor) and not any(out is arg for arg in args):
                stat.output_bytes += out.data.nbytes
                inner = out._backward
                if inner is not None:

                    def timed_backward():
                        begin = perf_counter()
                        inner()
                        stat.backward_seconds += perf_counter() - begin
                        stat.backward_calls += 1

                    out._backward = timed_backward
            return out

        profiled.__name__ = f"profiled_{name}"
        profiled.__wrapped__ = fn
        return profiled

    def __enter__(self) -> "OpProfiler":
        global _ACTIVE
        if _ACTIVE is not None:
            raise RuntimeError("an OpProfiler is already active in this process")
        _ACTIVE = self
        for name, fn in self._op_functions().items():
            self._saved[name] = fn
            setattr(_ops_module, name, self._wrap(name, fn))
        return self

    def __exit__(self, *exc_info) -> None:
        global _ACTIVE
        for name, fn in self._saved.items():
            setattr(_ops_module, name, fn)
        self._saved.clear()
        _ACTIVE = None

    # ------------------------------------------------------------------
    # Reading / export
    # ------------------------------------------------------------------
    @property
    def total_seconds(self) -> float:
        """Total attributed op time (forward + backward, all kinds)."""
        return sum(stat.total_seconds for stat in self.stats.values())

    def top(self, k: int = 10) -> list[OpStat]:
        """The ``k`` most expensive op kinds by total time."""
        ranked = sorted(self.stats.values(), key=lambda s: s.total_seconds, reverse=True)
        return [stat for stat in ranked[:k] if stat.calls]

    def to_rows(self) -> list[dict]:
        """JSON-serialisable rows, one per op kind that was called."""
        return [
            {
                "op": stat.op,
                "calls": stat.calls,
                "forward_seconds": stat.forward_seconds,
                "backward_calls": stat.backward_calls,
                "backward_seconds": stat.backward_seconds,
                "total_seconds": stat.total_seconds,
                "output_bytes": stat.output_bytes,
            }
            for stat in sorted(
                self.stats.values(), key=lambda s: s.total_seconds, reverse=True
            )
            if stat.calls
        ]

    def to_jsonl(self, stream: IO[str]) -> int:
        """Write :meth:`to_rows` as JSON lines; returns rows written."""
        rows = self.to_rows()
        for row in rows:
            stream.write(json.dumps(row, sort_keys=True) + "\n")
        return len(rows)

    def render(self, k: int = 10) -> str:
        """Text table of the top-``k`` op kinds."""
        lines = [
            f"top ops — {self.total_seconds:.3f}s attributed",
            f"  {'op':<18} {'calls':>8} {'fwd s':>9} {'bwd s':>9} "
            f"{'total s':>9} {'share':>6} {'out MiB':>9}",
        ]
        total = self.total_seconds
        for stat in self.top(k):
            share = stat.total_seconds / total if total > 0 else 0.0
            lines.append(
                f"  {stat.op:<18} {stat.calls:>8d} {stat.forward_seconds:>9.3f} "
                f"{stat.backward_seconds:>9.3f} {stat.total_seconds:>9.3f} "
                f"{100 * share:>5.1f}% {stat.output_bytes / 2**20:>9.2f}"
            )
        if len(lines) == 2:
            lines.append("  (no ops recorded)")
        return "\n".join(lines)


def profile_ops() -> OpProfiler:
    """A fresh :class:`OpProfiler` (activate it with ``with``)."""
    return OpProfiler()


def is_profiling() -> bool:
    """Whether an op profiler currently patches the dispatch table."""
    return _ACTIVE is not None


def aggregate_op_rows(row_groups: list[list[dict]]) -> list[dict]:
    """Merge per-trial op rows (summing fields per op kind).

    Used by ``repro bench --profile`` to fold many workers' op tables
    into one; rows follow :meth:`OpProfiler.to_rows`.
    """
    merged: dict[str, dict] = {}
    for rows in row_groups:
        for row in rows:
            slot = merged.setdefault(
                row["op"],
                {
                    "op": row["op"],
                    "calls": 0,
                    "forward_seconds": 0.0,
                    "backward_calls": 0,
                    "backward_seconds": 0.0,
                    "total_seconds": 0.0,
                    "output_bytes": 0,
                },
            )
            for key in (
                "calls",
                "forward_seconds",
                "backward_calls",
                "backward_seconds",
                "total_seconds",
                "output_bytes",
            ):
                slot[key] += row.get(key, 0)
    return sorted(merged.values(), key=lambda r: r["total_seconds"], reverse=True)


def render_op_rows(rows: list[dict], k: int = 10) -> str:
    """Text table for aggregated op rows (same layout as ``render``)."""
    profiler = OpProfiler()
    for row in rows:
        profiler.stats[row["op"]] = OpStat(
            op=row["op"],
            calls=int(row.get("calls", 0)),
            forward_seconds=float(row.get("forward_seconds", 0.0)),
            backward_calls=int(row.get("backward_calls", 0)),
            backward_seconds=float(row.get("backward_seconds", 0.0)),
            output_bytes=int(row.get("output_bytes", 0)),
        )
    return profiler.render(k)
