"""Hierarchical span tracing with a text flame report and JSONL export.

A *span* is a named, nested wall-clock region::

    with trace.span("epoch"):
        with trace.span("batch"):
            with trace.span("forward"):
                ...

Spans aggregate by position in the tree, not by call: the hundredth
``forward`` under ``epoch/batch`` accumulates into the same node, so a
whole training run folds into a small tree of (path, call count, total
seconds) entries rather than an unbounded event log.  The tracer is
exception-safe (a span closed by an unwinding exception still records
its elapsed time) and safe to use from several threads (each thread
gets its own span stack; node accounting is locked).

When a tracer is disabled — the default for the process-global tracer —
``span`` returns a shared no-op context manager, so instrumented hot
paths pay only an attribute check and two empty method calls per span.
The guard test in ``tests/telemetry`` holds this overhead to a small
fraction of a training epoch.
"""

from __future__ import annotations

import json
import threading
import time
from typing import IO, Iterator


class SpanNode:
    """One aggregated node of the span tree."""

    __slots__ = ("name", "count", "total_seconds", "children")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total_seconds = 0.0
        self.children: dict[str, SpanNode] = {}

    def child(self, name: str) -> "SpanNode":
        """Get or create the child span named ``name``."""
        node = self.children.get(name)
        if node is None:
            node = SpanNode(name)
            self.children[name] = node
        return node

    @property
    def self_seconds(self) -> float:
        """Time spent in this span but not in any child span."""
        return max(0.0, self.total_seconds - sum(c.total_seconds for c in self.children.values()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SpanNode({self.name!r}, count={self.count}, "
            f"total={self.total_seconds:.4f}s, children={len(self.children)})"
        )


class _NullSpan:
    """Shared no-op context manager returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _Span:
    """A live span: pushes onto the thread's stack, pops on exit."""

    __slots__ = ("_tracer", "_name", "_node", "_start")

    def __init__(self, tracer: "Tracer", name: str):
        self._tracer = tracer
        self._name = name

    def __enter__(self) -> "_Span":
        stack = self._tracer._stack()
        with self._tracer._lock:
            self._node = stack[-1].child(self._name)
        stack.append(self._node)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        elapsed = time.perf_counter() - self._start
        stack = self._tracer._stack()
        # Pop back to this span's node even if an inner span leaked
        # (e.g. a generator abandoned mid-iteration).
        while stack and stack[-1] is not self._node:
            stack.pop()
        if stack:
            stack.pop()
        with self._tracer._lock:
            self._node.count += 1
            self._node.total_seconds += elapsed


class Tracer:
    """Aggregating hierarchical span tracer.

    Parameters
    ----------
    enabled:
        When False (the process-global default), :meth:`span` is a
        near-free no-op; flip with :meth:`enable`/:meth:`disable` or
        construct an enabled tracer inside
        :func:`repro.telemetry.capture`.
    """

    def __init__(self, enabled: bool = False):
        self.enabled = bool(enabled)
        self.root = SpanNode("<root>")
        self._lock = threading.Lock()
        self._local = threading.local()

    def _stack(self) -> list[SpanNode]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = [self.root]
            self._local.stack = stack
        return stack

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def span(self, name: str):
        """Context manager timing one nested region named ``name``."""
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name)

    def enable(self) -> None:
        """Start recording spans."""
        self.enabled = True

    def disable(self) -> None:
        """Stop recording spans (already-recorded nodes are kept)."""
        self.enabled = False

    def reset(self) -> None:
        """Drop the recorded tree (open spans keep recording into it)."""
        with self._lock:
            self.root = SpanNode("<root>")
        self._local = threading.local()

    # ------------------------------------------------------------------
    # Reading / export
    # ------------------------------------------------------------------
    @property
    def total_seconds(self) -> float:
        """Wall time covered by the top-level spans."""
        return sum(child.total_seconds for child in self.root.children.values())

    def walk(self) -> Iterator[tuple[str, SpanNode]]:
        """Depth-first ``(path, node)`` pairs, paths ``/``-joined."""

        def visit(node: SpanNode, prefix: str) -> Iterator[tuple[str, SpanNode]]:
            for child in node.children.values():
                path = f"{prefix}/{child.name}" if prefix else child.name
                yield path, child
                yield from visit(child, path)

        yield from visit(self.root, "")

    def to_rows(self) -> list[dict]:
        """JSON-serialisable rows, one per span-tree node."""
        return [
            {
                "span": path,
                "count": node.count,
                "total_seconds": node.total_seconds,
                "self_seconds": node.self_seconds,
            }
            for path, node in self.walk()
        ]

    def to_jsonl(self, stream: IO[str]) -> int:
        """Write :meth:`to_rows` as JSON lines; returns rows written."""
        rows = self.to_rows()
        for row in rows:
            stream.write(json.dumps(row, sort_keys=True) + "\n")
        return len(rows)

    def flame(self, min_fraction: float = 0.0) -> str:
        """Render the span tree as an indented text flame report.

        Each line shows a span's total wall time, its share of the
        traced total, call count and self time (time not covered by
        child spans).  Subtrees below ``min_fraction`` of the total are
        elided.
        """
        total = self.total_seconds
        lines = [f"flame report — {total:.3f}s traced"]
        if not self.root.children:
            lines.append("  (no spans recorded)")
            return "\n".join(lines)

        def render(node: SpanNode, depth: int) -> None:
            share = node.total_seconds / total if total > 0 else 0.0
            if share < min_fraction:
                return
            indent = "  " * (depth + 1)
            lines.append(
                f"{indent}{node.name:<{max(1, 28 - 2 * depth)}} "
                f"{node.total_seconds:9.3f}s {100 * share:5.1f}%  "
                f"x{node.count:<7d} self {node.self_seconds:.3f}s"
            )
            for child in sorted(
                node.children.values(), key=lambda c: c.total_seconds, reverse=True
            ):
                render(child, depth + 1)

        for child in sorted(
            self.root.children.values(), key=lambda c: c.total_seconds, reverse=True
        ):
            render(child, 0)
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "enabled" if self.enabled else "disabled"
        return f"Tracer({state}, spans={len(self.to_rows())})"
