"""Unified observability: metrics, span tracing, op-level profiling.

One subsystem answers "where does the time go?" across the whole stack:

* :mod:`repro.telemetry.registry` — counters, gauges and streaming
  histograms in a thread-safe, labeled :class:`MetricRegistry` (the
  serving layer's :class:`~repro.serve.metrics.ServeMetrics` is a thin
  facade over it).
* :mod:`repro.telemetry.tracing` — a hierarchical span
  :class:`Tracer` (``with telemetry.span("epoch")``) producing a tree
  of wall-time/call-count nodes, a text flame report and JSONL export.
  The trainer emits ``train/epoch/batch/forward|backward`` spans.
* :mod:`repro.telemetry.profiler` — an :class:`OpProfiler` that
  patches :mod:`repro.tensor.ops` dispatch to attribute forward and
  backward time (and output bytes) per op kind.

The process-global tracer and registry start **disabled**/empty and the
instrumented hot paths are written so the disabled cost is negligible
(a guard test enforces it).  Turn everything on for one region with
:func:`capture`::

    from repro import telemetry

    with telemetry.capture(profile=True) as cap:
        train_model(model, data, config)
    print(cap.flame())        # span tree
    print(cap.top_ops())      # per-op table
    cap.write_jsonl(stream)   # spans + ops + metrics as JSON lines

``repro profile`` and ``repro bench --profile`` drive this from the
CLI; the parallel experiment runner persists each trial's capture as a
``telemetry.jsonl`` next to its cache entry.  See OBSERVABILITY.md.
"""

from __future__ import annotations

import contextlib
import json
from typing import IO

from repro.telemetry.profiler import (
    OpProfiler,
    OpStat,
    aggregate_op_rows,
    is_profiling,
    profile_ops,
    render_op_rows,
)
from repro.telemetry.registry import (
    DEFAULT_HISTOGRAM_CAPACITY,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
)
from repro.telemetry.tracing import SpanNode, Tracer

#: Process-global tracer (disabled by default) and metric registry.
#: Instrumented modules fetch these through :func:`get_tracer` /
#: :func:`get_registry` so :func:`capture` can swap in fresh ones.
_tracer = Tracer(enabled=False)
_registry = MetricRegistry()


def get_tracer() -> Tracer:
    """The currently active tracer."""
    return _tracer


def get_registry() -> MetricRegistry:
    """The currently active metric registry."""
    return _registry


def span(name: str):
    """Open a span on the active tracer (no-op while tracing is off)."""
    return _tracer.span(name)


def enabled() -> bool:
    """Whether the active tracer records spans.

    Hot paths gate optional metric recording on this, so a disabled
    process pays neither the span bookkeeping nor the histogram writes.
    """
    return _tracer.enabled


class Capture:
    """The artifacts of one :func:`capture` region."""

    def __init__(
        self,
        tracer: Tracer,
        registry: MetricRegistry,
        profiler: OpProfiler | None,
    ):
        self.tracer = tracer
        self.registry = registry
        self.profiler = profiler

    # Convenience renderers --------------------------------------------
    def flame(self, min_fraction: float = 0.0) -> str:
        """Text flame report of the captured span tree."""
        return self.tracer.flame(min_fraction=min_fraction)

    def top_ops(self, k: int = 10) -> str:
        """Text table of the most expensive op kinds (empty if not profiled)."""
        return self.profiler.render(k) if self.profiler is not None else ""

    def to_rows(self) -> list[dict]:
        """Every captured record as tagged JSON-serialisable rows."""
        rows = [{"kind": "span", **row} for row in self.tracer.to_rows()]
        if self.profiler is not None:
            rows += [{"kind": "op", **row} for row in self.profiler.to_rows()]
        rows += [{"kind": "metric", **row} for row in self.registry.snapshot()]
        return rows

    def write_jsonl(self, stream: IO[str]) -> int:
        """Write :meth:`to_rows` as JSON lines; returns rows written."""
        rows = self.to_rows()
        for row in rows:
            stream.write(json.dumps(row, sort_keys=True) + "\n")
        return len(rows)


@contextlib.contextmanager
def capture(profile: bool = False):
    """Enable telemetry for one region; yields a :class:`Capture`.

    Swaps a fresh, enabled tracer and a fresh registry into the
    process-global slots (restored on exit, so nesting and surrounding
    state are preserved) and, with ``profile=True``, activates the
    op-level autograd profiler for the region.
    """
    global _tracer, _registry
    previous = (_tracer, _registry)
    tracer = Tracer(enabled=True)
    registry = MetricRegistry()
    _tracer, _registry = tracer, registry
    profiler = profile_ops() if profile else None
    try:
        if profiler is not None:
            with profiler:
                yield Capture(tracer, registry, profiler)
        else:
            yield Capture(tracer, registry, profiler)
    finally:
        _tracer, _registry = previous


__all__ = [
    "Capture",
    "Counter",
    "DEFAULT_HISTOGRAM_CAPACITY",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "OpProfiler",
    "OpStat",
    "SpanNode",
    "Tracer",
    "aggregate_op_rows",
    "capture",
    "enabled",
    "get_registry",
    "get_tracer",
    "is_profiling",
    "profile_ops",
    "render_op_rows",
    "span",
]
