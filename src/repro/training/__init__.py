"""Training loops, metrics, and the paper's evaluation protocol."""

from repro.training.metrics import Metrics, MetricSummary, compute_metrics, roc_auc
from repro.training.trainer import (
    TrainConfig,
    TrainResult,
    evaluate,
    inference_time_per_graph,
    load_train_state,
    run_trials,
    save_train_state,
    train_model,
    trial_seed,
)

__all__ = [
    "Metrics",
    "MetricSummary",
    "compute_metrics",
    "roc_auc",
    "TrainConfig",
    "TrainResult",
    "train_model",
    "evaluate",
    "inference_time_per_graph",
    "run_trials",
    "trial_seed",
    "save_train_state",
    "load_train_state",
]
