"""Training loop for dynamic graph classifiers (paper Sec. IV-D / V-D).

Every model in the reproduction — TP-GNN, its ablation variants and all
twelve baselines — implements
:class:`~repro.core.base.GraphClassifierBase`; this module trains any of
them end to end with Adam + binary cross-entropy, exactly the recipe of
the paper's experimental setup (Adam, lr 1e-3, chronological 30/70
split, tie-shuffling per epoch, metrics averaged over several seeded
runs).

Training is resumable: ``train_model`` can write an epoch-boundary
checkpoint (model weights, Adam moments, RNG state, loss history) and
pick up from it bit-for-bit, which the parallel experiment runner in
:mod:`repro.experiments.parallel` relies on for fault tolerance.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path
from typing import Callable

import numpy as np

from repro import telemetry
from repro.core.base import GraphClassifierBase
from repro.graph.dataset import GraphDataset
from repro.nn import bce_with_logits
from repro.nn.serialization import (
    pack_namespaced,
    read_archive,
    unpack_namespaced,
    write_archive,
)
from repro.optim import Adam, clip_grad_norm
from repro.resilience.faults import inject
from repro.tensor import no_grad
from repro.training.metrics import Metrics, MetricSummary, compute_metrics

#: Metadata tag distinguishing training-state archives from plain
#: model checkpoints (bumped if the resume format changes).
_TRAIN_STATE_FORMAT = 1


@dataclass(frozen=True)
class TrainConfig:
    """Hyperparameters of one training run.

    Defaults follow the paper: Adam with learning rate 1e-3, 10 epochs,
    edge-tie shuffling each epoch.  ``batch_size`` controls gradient
    accumulation (the paper does not specify; 8 balances stability and
    wall-clock on CPU).

    The ``replay_buffer`` / ``online_update_every`` fields configure the
    continual-learning path (:class:`repro.online.OnlineLearner`): the
    bounded replay-buffer capacity and how many prequential examples
    arrive between micro-batch update rounds (0 disables updates — the
    online path then equals offline inference exactly).  They are unused
    by offline :func:`train_model` but participate in the trial-cache
    key like every other hyperparameter.

    ``megabatch`` selects the mega-batched training path for models
    that support it (``SUPPORTS_MEGABATCH``): each minibatch is packed
    into one block-diagonal plan (:mod:`repro.graph.megaplan`) and
    trained as a single batched forward/backward instead of
    ``batch_size`` accumulated per-graph passes.  The two paths match
    to 1e-9 in final weights (property-tested); set ``False`` to force
    the per-graph reference loop.
    """

    epochs: int = 10
    learning_rate: float = 1e-3
    batch_size: int = 8
    grad_clip: float = 5.0
    shuffle_ties: bool = True
    shuffle_graphs: bool = True
    seed: int = 0
    replay_buffer: int = 256
    online_update_every: int = 0
    megabatch: bool = True


@dataclass
class TrainResult:
    """Artifacts of one training run."""

    losses: list[float] = field(default_factory=list)
    train_seconds: float = 0.0
    epochs_run: int = 0
    #: Batches whose gradient norm came out NaN/inf; their updates were
    #: skipped (gradients zeroed) rather than poisoning the optimiser.
    nonfinite_batches: int = 0
    #: Epochs restored from a checkpoint rather than run in-process.
    resumed_from_epoch: int = 0


def save_train_state(
    path: str | Path,
    model: GraphClassifierBase,
    optimizer: Adam,
    config: TrainConfig,
    result: TrainResult,
    rng: np.random.Generator,
) -> Path:
    """Write a resumable mid-training checkpoint to ``path``.

    One archive holds the model weights and optimiser moments (packed
    under ``model/`` and ``optim/`` namespaces) plus everything else a
    bit-exact resume needs: RNG state, loss history, epoch counter and
    the config the run was started with.
    """
    meta = {
        "train_state_format": _TRAIN_STATE_FORMAT,
        "config": asdict(config),
        "epochs_run": result.epochs_run,
        "losses": result.losses,
        "nonfinite_batches": result.nonfinite_batches,
        "train_seconds": result.train_seconds,
        "rng_state": rng.bit_generator.state,
    }
    arrays = pack_namespaced(
        {"model": model.state_dict(), "optim": optimizer.state_dict()}
    )
    return write_archive(path, arrays, meta)


def load_train_state(
    path: str | Path,
    model: GraphClassifierBase,
    optimizer: Adam,
    config: TrainConfig,
    rng: np.random.Generator,
) -> TrainResult:
    """Restore a checkpoint written by :func:`save_train_state`.

    The stored config must match ``config`` exactly — resuming a run
    under different hyperparameters would silently produce a hybrid
    trajectory, so it raises instead.
    """
    arrays, meta = read_archive(path)
    if meta.get("train_state_format") != _TRAIN_STATE_FORMAT:
        raise ValueError(
            f"unsupported training-state format {meta.get('train_state_format')!r}"
        )
    if meta["config"] != asdict(config):
        raise ValueError(
            f"checkpoint at {path} was written under a different TrainConfig "
            f"({meta['config']} vs {asdict(config)}); refusing to resume"
        )
    groups = unpack_namespaced(arrays)
    model.load_state_dict(groups.get("model", {}))
    optimizer.load_state_dict(groups.get("optim", {}))
    rng.bit_generator.state = meta["rng_state"]
    return TrainResult(
        losses=[float(loss) for loss in meta["losses"]],
        train_seconds=float(meta["train_seconds"]),
        epochs_run=int(meta["epochs_run"]),
        nonfinite_batches=int(meta["nonfinite_batches"]),
        resumed_from_epoch=int(meta["epochs_run"]),
    )


def train_model(
    model: GraphClassifierBase,
    train_data: GraphDataset,
    config: TrainConfig,
    *,
    checkpoint_path: str | Path | None = None,
    checkpoint_every: int = 1,
) -> TrainResult:
    """Train ``model`` in place on ``train_data``.

    Gradients from up to ``batch_size`` graphs are accumulated and then
    *averaged* over the actual batch (so the trailing partial batch
    takes a step at the same effective scale as full batches) before the
    global gradient norm is clipped.  A batch whose gradient norm is
    NaN/inf is skipped entirely — its gradients are zeroed instead of
    being stepped into the Adam moments — and counted in
    ``TrainResult.nonfinite_batches``.

    When ``checkpoint_path`` is given, a resumable training-state
    archive is written every ``checkpoint_every`` epochs; if the file
    already exists the run restores it and continues from the recorded
    epoch, reproducing the uninterrupted trajectory bit-for-bit.

    When telemetry is enabled (see :func:`repro.telemetry.capture`),
    the loop emits ``train/epoch/batch/forward|backward`` spans (or
    ``train/epoch/megabatch/...`` on the mega-batched path) and records
    per-batch loss and per-step gradient-norm histograms; when disabled
    (the default) the instrumentation is a near-free no-op.

    Mega-batching: when ``config.megabatch`` is set and the model
    declares ``SUPPORTS_MEGABATCH``, each minibatch trains as ONE
    block-diagonal forward/backward (see :mod:`repro.graph.megaplan`)
    — ``bce_with_logits`` over the ``(B,)`` logits already averages
    over the batch, which is exactly the accumulate-then-divide scale
    of the per-graph loop, and the rng stream (graph shuffle + per-member
    tie shuffles) is consumed identically, so checkpoints and final
    weights stay compatible between the two paths.
    """
    if checkpoint_every < 1:
        raise ValueError(f"checkpoint_every must be >= 1, got {checkpoint_every}")
    optimizer = Adam(model.parameters(), lr=config.learning_rate)
    rng = np.random.default_rng(config.seed)
    result = TrainResult()
    if checkpoint_path is not None and Path(checkpoint_path).exists():
        result = load_train_state(checkpoint_path, model, optimizer, config, rng)
    model.train()
    use_mega = config.megabatch and getattr(model, "SUPPORTS_MEGABATCH", False)
    instrumented = telemetry.enabled()
    loss_hist = grad_hist = None
    if instrumented:
        registry = telemetry.get_registry()
        loss_hist = registry.histogram("train/batch_loss")
        grad_hist = registry.histogram("train/grad_norm")
        epoch_hist = registry.histogram("train/epoch_loss")
    start = time.perf_counter()
    with telemetry.span("train"):
        for epoch in range(result.epochs_run, config.epochs):
            # Chaos hook: the call index equals the epoch number, so a
            # fault plan can kill a run deterministically after epoch N
            # (the resume test exercises exactly this).
            inject("train.epoch", context=epoch)
            with telemetry.span("epoch"):
                indices = (
                    rng.permutation(len(train_data))
                    if config.shuffle_graphs
                    else np.arange(len(train_data))
                )
                tie_rng = rng if config.shuffle_ties else None
                epoch_fn = _megabatch_epoch if use_mega else _pergraph_epoch
                epoch_loss = epoch_fn(
                    model,
                    train_data,
                    config,
                    indices,
                    tie_rng,
                    optimizer,
                    result,
                    loss_hist,
                    grad_hist,
                )
                result.losses.append(epoch_loss / max(1, len(indices)))
                result.epochs_run += 1
                if instrumented:
                    epoch_hist.record(result.losses[-1])
            if (
                checkpoint_path is not None
                and (result.epochs_run % checkpoint_every == 0
                     or result.epochs_run == config.epochs)
            ):
                result.train_seconds += time.perf_counter() - start
                start = time.perf_counter()
                with telemetry.span("checkpoint"):
                    save_train_state(
                        checkpoint_path, model, optimizer, config, result, rng
                    )
    result.train_seconds += time.perf_counter() - start
    return result


def _pergraph_epoch(
    model: GraphClassifierBase,
    train_data: GraphDataset,
    config: TrainConfig,
    indices: np.ndarray,
    tie_rng: np.random.Generator | None,
    optimizer: Adam,
    result: TrainResult,
    loss_hist,
    grad_hist,
) -> float:
    """One epoch of the reference loop: accumulate-then-average minibatches.

    Every model supports this path; it is also the semantics the
    mega-batched path must reproduce (to 1e-9) and the fallback for
    models without ``SUPPORTS_MEGABATCH``.
    """
    epoch_loss = 0.0
    pending = 0
    optimizer.zero_grad()
    for position, index in enumerate(indices):
        with telemetry.span("batch"):
            graph = train_data[int(index)]
            with telemetry.span("forward"):
                logit = model(graph, rng=tie_rng)
                loss = bce_with_logits(
                    logit, np.array([float(graph.label)])
                )
            with telemetry.span("backward"):
                loss.backward()
            # Chaos hook: "nan"/"inf" plans poison gradients
            # here; the non-finite-norm guard below must then
            # skip the batch instead of stepping the poison
            # into the Adam moments.
            inject(
                "train.gradients",
                context=lambda: [
                    param.grad
                    for param in model.parameters()
                    if param.grad is not None
                ],
            )
            batch_loss = loss.item()
            epoch_loss += batch_loss
            if loss_hist is not None:
                loss_hist.record(batch_loss)
            pending += 1
            last = position == len(indices) - 1
            if pending >= config.batch_size or last:
                with telemetry.span("optimizer_step"):
                    if pending > 1:
                        for param in model.parameters():
                            if param.grad is not None:
                                param.grad /= pending
                    norm = clip_grad_norm(
                        model.parameters(), config.grad_clip
                    )
                    if np.isfinite(norm):
                        optimizer.step()
                    else:
                        result.nonfinite_batches += 1
                    optimizer.zero_grad()
                if grad_hist is not None and np.isfinite(norm):
                    grad_hist.record(float(norm))
                pending = 0
    return epoch_loss


def _megabatch_epoch(
    model: GraphClassifierBase,
    train_data: GraphDataset,
    config: TrainConfig,
    indices: np.ndarray,
    tie_rng: np.random.Generator | None,
    optimizer: Adam,
    result: TrainResult,
    loss_hist,
    grad_hist,
) -> float:
    """One epoch of mega-batched training: one forward/backward per minibatch.

    Each chunk of ``batch_size`` graphs (the same chunks the per-graph
    loop's accumulation boundaries produce) is packed into a
    block-diagonal mega-plan and trained as a single batched kernel
    sequence.  ``bce_with_logits`` over the ``(B,)`` logits is the mean
    over the batch — exactly the explicit ``grad /= pending`` scale of
    the accumulation path — and tie shuffling consumes ``tie_rng``
    member by member in batch order, keeping the rng stream
    bit-identical to the per-graph loop.
    """
    epoch_loss = 0.0
    optimizer.zero_grad()
    for chunk_start in range(0, len(indices), config.batch_size):
        chunk = indices[chunk_start : chunk_start + config.batch_size]
        batch = [train_data[int(index)] for index in chunk]
        with telemetry.span("megabatch"):
            with telemetry.span("forward"):
                logits = model.forward_batch(batch, rng=tie_rng)
                targets = np.array([float(graph.label) for graph in batch])
                loss = bce_with_logits(logits, targets)
            with telemetry.span("backward"):
                loss.backward()
            # Chaos hook: same injection point (and per-batch call
            # cadence) as the per-graph loop, so existing fault plans
            # poison mega-batched gradients identically.
            inject(
                "train.gradients",
                context=lambda: [
                    param.grad
                    for param in model.parameters()
                    if param.grad is not None
                ],
            )
            graph_losses = _per_example_bce(np.asarray(logits.data), targets)
            epoch_loss += float(graph_losses.sum())
            if loss_hist is not None:
                for value in graph_losses:
                    loss_hist.record(float(value))
            with telemetry.span("optimizer_step"):
                norm = clip_grad_norm(model.parameters(), config.grad_clip)
                if np.isfinite(norm):
                    optimizer.step()
                else:
                    result.nonfinite_batches += 1
                optimizer.zero_grad()
            if grad_hist is not None and np.isfinite(norm):
                grad_hist.record(float(norm))
    return epoch_loss


def _per_example_bce(logits: np.ndarray, targets: np.ndarray) -> np.ndarray:
    """Per-graph BCE values — raw-array mirror of :func:`bce_with_logits`.

    The mega-batched loss is the batch mean; epoch-loss accounting and
    the per-batch loss histogram still need the per-graph terms, so
    they are recomputed off-tape with the same stable formula.
    """
    return (
        np.maximum(logits, 0.0)
        - logits * targets
        + np.log(1.0 + np.exp(-np.abs(logits)))
    )


def evaluate(model: GraphClassifierBase, data: GraphDataset, threshold: float = 0.5) -> Metrics:
    """Evaluate ``model`` on ``data``; returns precision/recall/F1.

    The model's train/eval mode is restored on exit, so evaluating a
    model that is already serving in eval mode does not flip it back to
    training.
    """
    was_training = model.training
    model.eval()
    predictions = []
    try:
        with no_grad():
            for graph in data:
                logit = model(graph).item()
                probability = 1.0 / (1.0 + np.exp(-logit))
                predictions.append(int(probability >= threshold))
    finally:
        if was_training:
            model.train()
    return compute_metrics(data.labels, predictions)


def inference_time_per_graph(model: GraphClassifierBase, data: GraphDataset) -> float:
    """Average wall-clock seconds to embed and classify one graph.

    Used by the Fig. 6 running-time comparison (the paper reports
    microseconds per graph).  Restores the model's prior train/eval
    mode on exit.
    """
    was_training = model.training
    model.eval()
    start = time.perf_counter()
    try:
        with no_grad():
            for graph in data:
                model(graph)
    finally:
        if was_training:
            model.train()
    return (time.perf_counter() - start) / len(data)


def run_trials(
    model_factory: Callable[[int], GraphClassifierBase],
    dataset: GraphDataset,
    config: TrainConfig,
    runs: int = 3,
    train_fraction: float = 0.3,
) -> MetricSummary:
    """The paper's evaluation protocol for one (model, dataset) pair.

    Splits chronologically (first ``train_fraction`` of graphs train),
    then trains ``runs`` independently seeded model instances and
    averages their test metrics.

    Parameters
    ----------
    model_factory:
        Callable mapping a seed to a fresh model instance.
    dataset:
        The full labelled dataset (ordered; the split is positional).
    config:
        Training hyperparameters (the run seed is derived per trial).
    runs:
        Number of independent repetitions (paper: 5).
    """
    train_data, test_data = dataset.split(train_fraction)
    results = []
    for run in range(runs):
        run_seed = trial_seed(config.seed, run)
        model = model_factory(run_seed)
        run_config = replace(config, seed=run_seed)
        train_model(model, train_data, run_config)
        results.append(evaluate(model, test_data))
    return MetricSummary.from_runs(results)


def trial_seed(base_seed: int, run: int) -> int:
    """The derived seed of repetition ``run`` (paper protocol: 1000 apart)."""
    return base_seed + 1000 * run
