"""Training loop for dynamic graph classifiers (paper Sec. IV-D / V-D).

Every model in the reproduction — TP-GNN, its ablation variants and all
twelve baselines — implements
:class:`~repro.core.base.GraphClassifierBase`; this module trains any of
them end to end with Adam + binary cross-entropy, exactly the recipe of
the paper's experimental setup (Adam, lr 1e-3, chronological 30/70
split, tie-shuffling per epoch, metrics averaged over several seeded
runs).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.base import GraphClassifierBase
from repro.graph.dataset import GraphDataset
from repro.nn import bce_with_logits
from repro.optim import Adam, clip_grad_norm
from repro.tensor import no_grad
from repro.training.metrics import Metrics, MetricSummary, compute_metrics


@dataclass(frozen=True)
class TrainConfig:
    """Hyperparameters of one training run.

    Defaults follow the paper: Adam with learning rate 1e-3, 10 epochs,
    edge-tie shuffling each epoch.  ``batch_size`` controls gradient
    accumulation (the paper does not specify; 8 balances stability and
    wall-clock on CPU).
    """

    epochs: int = 10
    learning_rate: float = 1e-3
    batch_size: int = 8
    grad_clip: float = 5.0
    shuffle_ties: bool = True
    shuffle_graphs: bool = True
    seed: int = 0


@dataclass
class TrainResult:
    """Artifacts of one training run."""

    losses: list[float] = field(default_factory=list)
    train_seconds: float = 0.0
    epochs_run: int = 0


def train_model(
    model: GraphClassifierBase, train_data: GraphDataset, config: TrainConfig
) -> TrainResult:
    """Train ``model`` in place on ``train_data``.

    Gradients from ``batch_size`` graphs are accumulated before each
    Adam step; the global gradient norm is clipped to stabilise BPTT
    through long edge sequences.
    """
    optimizer = Adam(model.parameters(), lr=config.learning_rate)
    rng = np.random.default_rng(config.seed)
    result = TrainResult()
    model.train()
    start = time.perf_counter()
    for _ in range(config.epochs):
        indices = (
            rng.permutation(len(train_data))
            if config.shuffle_graphs
            else np.arange(len(train_data))
        )
        epoch_loss = 0.0
        pending = 0
        optimizer.zero_grad()
        for position, index in enumerate(indices):
            graph = train_data[int(index)]
            tie_rng = rng if config.shuffle_ties else None
            logit = model(graph, rng=tie_rng)
            loss = bce_with_logits(logit, np.array([float(graph.label)]))
            loss.backward()
            epoch_loss += loss.item()
            pending += 1
            last = position == len(indices) - 1
            if pending >= config.batch_size or last:
                clip_grad_norm(model.parameters(), config.grad_clip)
                optimizer.step()
                optimizer.zero_grad()
                pending = 0
        result.losses.append(epoch_loss / max(1, len(indices)))
        result.epochs_run += 1
    result.train_seconds = time.perf_counter() - start
    return result


def evaluate(model: GraphClassifierBase, data: GraphDataset, threshold: float = 0.5) -> Metrics:
    """Evaluate ``model`` on ``data``; returns precision/recall/F1."""
    model.eval()
    predictions = []
    with no_grad():
        for graph in data:
            logit = model(graph).item()
            probability = 1.0 / (1.0 + np.exp(-logit))
            predictions.append(int(probability >= threshold))
    model.train()
    return compute_metrics(data.labels, predictions)


def inference_time_per_graph(model: GraphClassifierBase, data: GraphDataset) -> float:
    """Average wall-clock seconds to embed and classify one graph.

    Used by the Fig. 6 running-time comparison (the paper reports
    microseconds per graph).
    """
    model.eval()
    start = time.perf_counter()
    with no_grad():
        for graph in data:
            model(graph)
    model.train()
    return (time.perf_counter() - start) / len(data)


def run_trials(
    model_factory: Callable[[int], GraphClassifierBase],
    dataset: GraphDataset,
    config: TrainConfig,
    runs: int = 3,
    train_fraction: float = 0.3,
) -> MetricSummary:
    """The paper's evaluation protocol for one (model, dataset) pair.

    Splits chronologically (first ``train_fraction`` of graphs train),
    then trains ``runs`` independently seeded model instances and
    averages their test metrics.

    Parameters
    ----------
    model_factory:
        Callable mapping a seed to a fresh model instance.
    dataset:
        The full labelled dataset (ordered; the split is positional).
    config:
        Training hyperparameters (the run seed is derived per trial).
    runs:
        Number of independent repetitions (paper: 5).
    """
    train_data, test_data = dataset.split(train_fraction)
    results = []
    for run in range(runs):
        model = model_factory(config.seed + 1000 * run)
        run_config = TrainConfig(
            epochs=config.epochs,
            learning_rate=config.learning_rate,
            batch_size=config.batch_size,
            grad_clip=config.grad_clip,
            shuffle_ties=config.shuffle_ties,
            shuffle_graphs=config.shuffle_graphs,
            seed=config.seed + 1000 * run,
        )
        train_model(model, train_data, run_config)
        results.append(evaluate(model, test_data))
    return MetricSummary.from_runs(results)
