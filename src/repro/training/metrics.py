"""Classification metrics (paper Sec. V-C) and multi-run aggregation.

The paper reports Precision, Recall and F1 averaged over five runs with
standard deviations; :class:`MetricSummary` reproduces that reporting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class Metrics:
    """Precision / recall / F1 of one evaluation pass."""

    precision: float
    recall: float
    f1: float
    true_positives: int = 0
    false_positives: int = 0
    false_negatives: int = 0
    true_negatives: int = 0

    @property
    def accuracy(self) -> float:
        """Fraction of correct predictions."""
        total = (
            self.true_positives
            + self.false_positives
            + self.false_negatives
            + self.true_negatives
        )
        if total == 0:
            return 0.0
        return (self.true_positives + self.true_negatives) / total


def compute_metrics(y_true: Sequence[int], y_pred: Sequence[int]) -> Metrics:
    """Binary precision/recall/F1 with the paper's conventions.

    Positive class is label 1.  Degenerate inputs are defined rather
    than raising: zero denominators yield 0, and a single-class label
    array (all positives or all negatives — common when evaluating a
    short live-serving window) simply produces the corresponding
    degenerate counts.
    """
    truth = np.asarray(y_true, dtype=np.int64)
    pred = np.asarray(y_pred, dtype=np.int64)
    if truth.shape != pred.shape:
        raise ValueError(f"shape mismatch: {truth.shape} vs {pred.shape}")
    if truth.size == 0:
        raise ValueError("cannot compute metrics on an empty prediction set")
    tp = int(((truth == 1) & (pred == 1)).sum())
    fp = int(((truth == 0) & (pred == 1)).sum())
    fn = int(((truth == 1) & (pred == 0)).sum())
    tn = int(((truth == 0) & (pred == 0)).sum())
    precision = tp / (tp + fp) if tp + fp else 0.0
    recall = tp / (tp + fn) if tp + fn else 0.0
    f1 = 2 * precision * recall / (precision + recall) if precision + recall else 0.0
    return Metrics(precision, recall, f1, tp, fp, fn, tn)


def roc_auc(y_true: Sequence[int], scores: Sequence[float]) -> float:
    """Area under the ROC curve from raw scores (rank statistic).

    Computed as the Mann-Whitney U statistic with midrank tie handling,
    so thresholded probabilities and raw logits give the same value.

    Degenerate guard: when the label array contains a single class the
    ROC curve is undefined; the defined fallback is **0.5** (the
    no-information value), so rolling AUC over a live serving window —
    where all sessions seen so far may share one label — never raises
    or returns a misleading 0/1.
    """
    truth = np.asarray(y_true, dtype=np.int64)
    values = np.asarray(scores, dtype=np.float64)
    if truth.shape != values.shape:
        raise ValueError(f"shape mismatch: {truth.shape} vs {values.shape}")
    if truth.size == 0:
        raise ValueError("cannot compute AUC on an empty score set")
    positives = int((truth == 1).sum())
    negatives = truth.size - positives
    if positives == 0 or negatives == 0:
        return 0.5
    order = np.argsort(values, kind="mergesort")
    ranks = np.empty(truth.size, dtype=np.float64)
    ranks[order] = np.arange(1, truth.size + 1)
    # Midranks for ties, so equal scores contribute half a win each.
    sorted_values = values[order]
    start = 0
    for end in range(1, truth.size + 1):
        if end == truth.size or sorted_values[end] != sorted_values[start]:
            if end - start > 1:
                ranks[order[start:end]] = 0.5 * (start + 1 + end)
            start = end
    rank_sum = float(ranks[truth == 1].sum())
    u_statistic = rank_sum - positives * (positives + 1) / 2.0
    return u_statistic / (positives * negatives)


@dataclass(frozen=True)
class MetricSummary:
    """Mean ± std over repeated runs, reported in percent like Table II."""

    f1_mean: float
    f1_std: float
    precision_mean: float
    precision_std: float
    recall_mean: float
    recall_std: float
    runs: int

    @staticmethod
    def from_runs(results: Sequence[Metrics]) -> "MetricSummary":
        """Aggregate per-run metrics into a mean ± std summary."""
        if not results:
            raise ValueError("need at least one run to summarise")
        f1 = np.array([m.f1 for m in results])
        precision = np.array([m.precision for m in results])
        recall = np.array([m.recall for m in results])
        return MetricSummary(
            f1_mean=float(f1.mean()),
            f1_std=float(f1.std()),
            precision_mean=float(precision.mean()),
            precision_std=float(precision.std()),
            recall_mean=float(recall.mean()),
            recall_std=float(recall.std()),
            runs=len(results),
        )

    def format_cell(self, metric: str) -> str:
        """Render one Table II cell, e.g. ``99.21±0.15``."""
        mean = getattr(self, f"{metric}_mean") * 100.0
        std = getattr(self, f"{metric}_std") * 100.0
        return f"{mean:.2f}±{std:.2f}"
