"""The ``repro loadtest`` SLO harness: seeded load + latency report.

A loadtest answers the serving-scale question operationally: *how many
events/sec does the cluster sustain, and at what ingest/predict
latency?*  The harness generates a seeded synthetic feed (configurable
session count, interleaving and event volume), drives it through a
:class:`~repro.cluster.ShardedCluster` with periodic predict
round-trips, then replays the identical feed and predict cadence
through a lone :class:`~repro.serve.StreamingEngine` — the single-engine
baseline of ``benchmarks/test_serve_throughput.py`` — so the reported
speedup compares equal per-event work.

Results (p50/p95/p99 ingest, predict and apply latency, sustained
events/sec, per-shard stats) are recorded to ``BENCH_serve.json``.

All timings use ``perf_counter``; wall-clock ``time.time`` is banned
from cluster measurement paths by lint rule (see pyproject.toml).
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from time import perf_counter
from typing import Callable

import numpy as np

from repro.cluster.cluster import ShardedCluster
from repro.core.model import TPGNN
from repro.serve.engine import StreamingEngine
from repro.serve.events import StreamEvent

DEFAULT_BENCH_PATH = "BENCH_serve.json"


@dataclass(frozen=True)
class LoadtestConfig:
    """Everything one loadtest run depends on (seeded, replayable)."""

    sessions: int = 1000
    events: int = 20000
    shards: int = 4
    backend: str = "thread"
    rate: float = 0.0  # target events/sec; 0 = as fast as possible
    predict_every: int = 500  # predict round-trip cadence (0 = never)
    rebalance_at: float = 0.0  # feed fraction at which to add a shard + rebalance
    seed: int = 0
    nodes_per_session: int = 12
    feature_dim: int = 4
    hidden_size: int = 16
    gru_hidden_size: int = 16
    time_dim: int = 4
    updater: str = "sum"
    queue_capacity: int = 4096
    backpressure: str = "block"
    batch_size: int = 64
    fast_apply: bool = True
    baseline: bool = True  # also run the single-engine comparison
    journal_dir: str | None = None  # per-shard write-ahead journals live here
    journal_fsync: str = "interval"  # fsync policy when journaling

    def __post_init__(self):
        if self.sessions < 1 or self.events < 1:
            raise ValueError("sessions and events must be >= 1")
        if not 0.0 <= self.rebalance_at < 1.0:
            raise ValueError(
                f"rebalance_at must be in [0, 1), got {self.rebalance_at}"
            )


@dataclass
class LoadtestReport:
    """The outcome of one :func:`run_loadtest`."""

    config: dict
    cluster: dict
    baseline: dict | None = None
    speedup: float | None = None
    shards: dict = field(default_factory=dict)

    def to_json(self) -> dict:
        return {
            "benchmark": "repro loadtest",
            "config": self.config,
            "cluster": self.cluster,
            "baseline": self.baseline,
            "speedup_vs_single_engine": self.speedup,
            "shards": self.shards,
        }

    def render(self) -> str:
        """Human-readable block (printed by the CLI)."""
        c = self.cluster
        lines = [
            "loadtest report",
            f"  shards                   {self.config['shards']}"
            + (" (+1 mid-feed)" if self.config["rebalance_at"] else ""),
            f"  backend                  {self.config['backend']}",
            f"  events                   {self.config['events']}"
            f" over {self.config['sessions']} sessions",
            f"  accepted / shed          {c['events_accepted']} / {c['events_shed']}",
            f"  applied                  {c['events_applied']}",
            f"  duration                 {c['duration_s']:.3f}s",
            f"  events/sec               {c['events_per_sec']:.0f}",
            f"  ingest p50/p95/p99       {c['ingest_p50_ms']:.3f} / "
            f"{c['ingest_p95_ms']:.3f} / {c['ingest_p99_ms']:.3f} ms",
            f"  predict p50/p95/p99      {c['predict_p50_ms']:.3f} / "
            f"{c['predict_p95_ms']:.3f} / {c['predict_p99_ms']:.3f} ms",
            f"  apply p50/p95/p99        {c['apply_p50_ms']:.3f} / "
            f"{c['apply_p95_ms']:.3f} / {c['apply_p99_ms']:.3f} ms",
        ]
        if c.get("rebalance"):
            r = c["rebalance"]
            lines.append(
                f"  rebalance                moved={r['moved']} "
                f"quarantined={r['quarantined']}"
            )
        if self.baseline is not None:
            lines.append(
                f"  single-engine baseline   {self.baseline['events_per_sec']:.0f} "
                f"events/sec ({self.baseline['duration_s']:.3f}s)"
            )
            lines.append(f"  speedup                  {self.speedup:.2f}x")
        return "\n".join(lines)


def build_model(config: LoadtestConfig) -> TPGNN:
    """The served model for a loadtest run (eval mode, seeded)."""
    model = TPGNN(
        in_features=config.feature_dim,
        updater=config.updater,
        hidden_size=config.hidden_size,
        gru_hidden_size=config.gru_hidden_size,
        time_dim=config.time_dim,
        seed=config.seed,
    )
    model.eval()
    return model


def generate_feed(config: LoadtestConfig) -> list[StreamEvent]:
    """A seeded interleaved feed: per-session monotone timestamps,
    features attached the first time each node appears in a session."""
    rng = np.random.default_rng(config.seed)
    n = config.nodes_per_session
    features = rng.normal(size=(config.sessions, n, config.feature_dim))
    session_index = rng.integers(0, config.sessions, size=config.events)
    src = rng.integers(0, n, size=config.events)
    dst = (src + rng.integers(1, n, size=config.events)) % n
    # A globally increasing clock keeps every session's own stream
    # chronological no matter how arrivals interleave.
    times = np.cumsum(rng.exponential(1.0, size=config.events))
    session_ids = [f"s{index:06d}" for index in range(config.sessions)]
    seen: list[set[int]] = [set() for _ in range(config.sessions)]
    feed: list[StreamEvent] = []
    for i in range(config.events):
        s = int(session_index[i])
        u, v = int(src[i]), int(dst[i])
        fresh = {}
        for node in (u, v):
            if node not in seen[s]:
                fresh[node] = features[s, node]
                seen[s].add(node)
        feed.append(
            StreamEvent(
                session_id=session_ids[s],
                src=u,
                dst=v,
                time=float(times[i]),
                node_features=fresh or None,
            )
        )
    return feed


def _drive(
    feed: list[StreamEvent],
    submit: Callable[[StreamEvent], None],
    predict: Callable[[str], float],
    settle: Callable[[], None],
    config: LoadtestConfig,
    on_index: Callable[[int], None] | None = None,
) -> tuple[float, int]:
    """Push the feed through one backend; returns (duration_s, predicts)."""
    predictions = 0
    start = perf_counter()
    for index, event in enumerate(feed):
        if config.rate > 0:
            lag = start + index / config.rate - perf_counter()
            if lag > 0:
                time.sleep(lag)
        submit(event)
        if on_index is not None:
            on_index(index)
        if config.predict_every and (index + 1) % config.predict_every == 0:
            predict(event.session_id)
            predictions += 1
    settle()
    return perf_counter() - start, predictions


def run_loadtest(
    config: LoadtestConfig,
    model: TPGNN | None = None,
    log: Callable[[str], None] | None = None,
) -> LoadtestReport:
    """Run the full harness: cluster phase, then the baseline replay."""
    say = log if log is not None else (lambda message: None)
    model = model if model is not None else build_model(config)
    feed = generate_feed(config)
    say(f"generated {len(feed)} events over {config.sessions} sessions")

    cluster = ShardedCluster(
        model,
        n_shards=config.shards,
        backend=config.backend,
        queue_capacity=config.queue_capacity,
        backpressure=config.backpressure,
        batch_size=config.batch_size,
        max_sessions=config.sessions,
        fast_apply=config.fast_apply,
        journal_dir=config.journal_dir,
        journal_fsync=config.journal_fsync,
    )
    rebalance_index = (
        int(len(feed) * config.rebalance_at) if config.rebalance_at > 0 else None
    )
    rebalance_info = None

    def topology_change(index: int) -> None:
        nonlocal rebalance_info
        if index == rebalance_index:
            shard_id = cluster.add_shard()
            report = cluster.rebalance()
            rebalance_info = {
                "at_event": index,
                "added_shard": shard_id,
                "moved": report.moved,
                "quarantined": report.quarantined,
            }

    say(f"cluster phase: {config.shards} shards, backend={config.backend}")
    duration, predictions = _drive(
        feed,
        submit=cluster.submit,
        predict=cluster.predict,
        settle=cluster.flush,
        config=config,
        on_index=topology_change if rebalance_index is not None else None,
    )
    shard_stats = {
        str(shard_id): worker.stats()
        for shard_id, worker in cluster._shards.items()
    }
    applied = sum(worker.applied_total for worker in cluster._shards.values())
    metrics = cluster.metrics
    cluster_report = {
        "events_accepted": metrics.events_routed.value - metrics.events_shed.value,
        "events_shed": metrics.events_shed.value,
        "events_applied": applied,
        "predictions": predictions,
        "duration_s": duration,
        "events_per_sec": applied / duration if duration > 0 else 0.0,
        "rebalance": rebalance_info,
        **metrics.latency_summary(),
    }
    cluster.close()
    say(
        f"cluster: {cluster_report['events_per_sec']:.0f} events/sec, "
        f"p99 ingest {cluster_report['ingest_p99_ms']:.3f} ms"
    )

    baseline_report = None
    speedup = None
    if config.baseline:
        say("baseline phase: lone StreamingEngine, same feed and cadence")
        engine = StreamingEngine(model, max_sessions=config.sessions)
        base_duration, _ = _drive(
            feed,
            submit=engine.ingest,
            predict=engine.predict,
            settle=engine.flush,
            config=config,
        )
        baseline_report = {
            "events_applied": engine.metrics.events_applied,
            "duration_s": base_duration,
            "events_per_sec": (
                engine.metrics.events_applied / base_duration
                if base_duration > 0
                else 0.0
            ),
        }
        if baseline_report["events_per_sec"] > 0:
            speedup = cluster_report["events_per_sec"] / baseline_report["events_per_sec"]
        say(
            f"baseline: {baseline_report['events_per_sec']:.0f} events/sec "
            f"-> speedup {speedup:.2f}x"
        )

    return LoadtestReport(
        config=asdict(config),
        cluster=cluster_report,
        baseline=baseline_report,
        speedup=speedup,
        shards=shard_stats,
    )


def write_bench(report: LoadtestReport, path: str | Path = DEFAULT_BENCH_PATH) -> Path:
    """Record the report as JSON (the ``BENCH_serve.json`` artifact)."""
    path = Path(path)
    path.write_text(json.dumps(report.to_json(), indent=2, sort_keys=True) + "\n")
    return path
