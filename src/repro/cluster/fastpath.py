"""Raw-numpy fast apply: the shard drain loop's per-event kernel.

A shard drains micro-batches of events whose outcome is fully
determined: the session is live, the event is in order, no validator or
deadline is configured.  For that path the full engine machinery —
Tensor allocation, autograd-node bookkeeping, router delta accounting —
is pure overhead: profiling puts ``IncrementalClassifier.observe`` at
~180µs/event of which >75% is Tensor-op dispatch, not arithmetic.

:class:`FastObserver` mirrors the *exact* op sequence of
``observe`` (materialize → propagation step → edge embedding →
extractor GRU step) on raw ndarrays, keeping every intermediate at the
same shape so the same BLAS kernels run — the results are **bitwise
identical**, which the cluster==single-engine equivalence suite pins
(`tests/cluster/test_equivalence.py`), at ~5x the throughput.

Only the configurations the kernel provably mirrors are eligible
(:meth:`FastObserver.supports`): SUM/GRU updaters, the ``"average"``
edge aggregator, a plain :class:`GlobalTemporalExtractor`.  Anything
else — ablation updaters, the transformer extractor — falls back to
``IncrementalClassifier.observe``, trading speed for generality, never
correctness.
"""

from __future__ import annotations

import numpy as np

from repro.core.extractor import GlobalTemporalExtractor
from repro.core.propagation import TemporalPropagationGRU, TemporalPropagationSum
from repro.graph.edge import TemporalEdge
from repro.serve.incremental import IncrementalClassifier
from repro.serve.state import SessionState
from repro.tensor import Tensor
from repro.tensor.ops import _stable_sigmoid


def _gru_cell(cell, x: np.ndarray, h: np.ndarray) -> np.ndarray:
    """Raw mirror of :meth:`repro.nn.GRUCell.forward` (same op order).

    The z and r gates go through one fused sigmoid over the ``2H``
    slice — the op is elementwise, so each element's bits match the
    two separate calls the Tensor path makes.
    """
    H = cell.hidden_size
    gates_x = np.matmul(x, cell.weight_ih.data) + cell.bias.data
    gates_h = np.matmul(h, cell.weight_hh.data)
    zr = _stable_sigmoid(gates_x[:, : 2 * H] + gates_h[:, : 2 * H])
    z = zr[:, :H]
    r = zr[:, H:]
    n = np.tanh(gates_x[:, 2 * H :] + r * gates_h[:, 2 * H :])
    return z * h + (1.0 - z) * n


def _time2vec(encoder, delta: float) -> np.ndarray:
    """Raw mirror of :meth:`repro.nn.Time2Vec.forward` for one scalar."""
    t = np.array([[delta]], dtype=np.float64)
    trend = t * encoder.linear_weight.data + encoder.linear_bias.data
    periodic = np.sin(t * encoder.periodic_weight.data + encoder.periodic_bias.data)
    return np.concatenate([trend, periodic], axis=1)


class FastObserver:
    """Bitwise-exact raw-array replacement for ``classifier.observe``.

    Build one per shard engine with :meth:`build` (returns ``None``
    when the model configuration is outside the mirrored envelope) and
    call :meth:`observe` with the event's endpoints and timestamp.
    """

    def __init__(self, classifier: IncrementalClassifier):
        if not self.supports(classifier):
            raise ValueError(
                "model configuration outside the fast-apply envelope; "
                "use IncrementalClassifier.observe"
            )
        self.classifier = classifier
        self.propagation = classifier.propagation
        self.extractor = classifier.extractor
        self._is_sum = isinstance(self.propagation, TemporalPropagationSum)

    # ------------------------------------------------------------------
    # Eligibility
    # ------------------------------------------------------------------
    @staticmethod
    def supports(classifier: IncrementalClassifier) -> bool:
        """Whether the kernel provably mirrors this model's ``observe``."""
        propagation = classifier.propagation
        extractor = classifier.extractor
        if type(propagation) is TemporalPropagationSum:
            if propagation.stabilizer not in ("bounded", "average", "none"):
                return False
        elif type(propagation) is not TemporalPropagationGRU:
            return False
        return (
            type(extractor) is GlobalTemporalExtractor
            and extractor.aggregator_name == "average"
        )

    @classmethod
    def build(cls, classifier: IncrementalClassifier) -> "FastObserver | None":
        """A kernel for ``classifier``, or ``None`` if unsupported."""
        return cls(classifier) if cls.supports(classifier) else None

    # ------------------------------------------------------------------
    # The kernel
    # ------------------------------------------------------------------
    def _encode(self, features: np.ndarray) -> np.ndarray:
        """Raw mirror of ``TemporalPropagationBase._encode_features``."""
        features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        projection = self.propagation.encoder.projection
        return np.matmul(features, projection.weight.data) + projection.bias.data

    def _materialize(self, state: SessionState, node: int, node_features) -> None:
        """Raw mirror of ``IncrementalClassifier._materialize``."""
        if node in state.feature_seen:
            return
        classifier = self.classifier
        features = None if node_features is None else node_features.get(node)
        if features is None:
            if classifier.missing_features == "raise":
                # The rare raising configuration: the slow materializer
                # owns the error contract.
                classifier._materialize(state, node, node_features)
                return
            features = np.zeros(self.propagation.in_features)
        prop = self.propagation
        prop_state = state.prop_state
        missing = node + 1 - prop_state.num_nodes
        if missing > 0:
            padded = self._encode(np.zeros((missing, prop.in_features)))
            prop_state.node_state = Tensor(
                np.concatenate([prop_state.node_state.data, padded], axis=0)
            )
            if self._is_sum:
                if prop_state.time_state is not None:
                    prop_state.time_state = Tensor(
                        np.concatenate(
                            [
                                prop_state.time_state.data,
                                np.zeros((missing, prop.time_dim)),
                            ],
                            axis=0,
                        )
                    )
                prop_state.time_touched = np.concatenate(
                    [prop_state.time_touched, np.zeros(missing, dtype=bool)]
                )
        encoded = self._encode(np.asarray(features, dtype=np.float64))
        prop_state.node_state.data[node] = encoded[0]
        if self._is_sum and prop_state.time_state is not None:
            prop_state.time_state.data[node] = 0.0
            prop_state.time_touched[node] = False
        state.feature_seen.add(node)

    def observe(
        self,
        state: SessionState,
        src: int,
        dst: int,
        time: float,
        node_features=None,
    ) -> None:
        """Apply one in-order edge to ``state`` — same math as
        ``classifier.observe``, same results, ~5x faster."""
        src, dst, time = int(src), int(dst), float(time)
        if src not in state.feature_seen or dst not in state.feature_seen:
            self._materialize(state, src, node_features)
            self._materialize(state, dst, node_features)
        prop = self.propagation
        prop_state = state.prop_state
        if prop_state.origin is None:
            prop_state.origin = time
        node_state = prop_state.node_state.data
        encoder = prop.time_encoder
        f_t = None if encoder is None else _time2vec(encoder, time - prop_state.origin)
        if self._is_sum:
            merged = node_state[src] + node_state[dst]
            if prop.stabilizer == "bounded":
                merged = np.tanh(merged)
            elif prop.stabilizer == "average":
                merged = merged * 0.5
            node_state[dst] = merged
            if f_t is not None:
                time_state = prop_state.time_state.data
                time_state[dst] = f_t.reshape(prop.time_dim) + time_state[dst]
                prop_state.time_touched[dst] = True
            src_embedding = (
                np.tanh(node_state[src])
                if f_t is None
                else np.tanh(np.concatenate([node_state[src], time_state[src]], axis=0))
            )
            dst_embedding = (
                np.tanh(node_state[dst])
                if f_t is None
                else np.tanh(np.concatenate([node_state[dst], time_state[dst]], axis=0))
            )
        else:
            source = node_state[src].reshape(1, prop.hidden_size)
            message = source if f_t is None else np.concatenate([source, f_t], axis=1)
            target = node_state[dst].reshape(1, prop.hidden_size)
            node_state[dst] = _gru_cell(prop.cell, message, target)
            src_embedding = np.tanh(node_state[src])
            dst_embedding = np.tanh(node_state[dst])
        prop_state.updates += 1
        row = ((src_embedding + dst_embedding) * 0.5).reshape(
            1, src_embedding.shape[-1]
        )
        ext_state = state.ext_state
        hidden = ext_state.hidden.data
        # In-place: init_state/restore give every session a private
        # hidden Tensor, and snapshots copy — nothing aliases it.
        hidden[:] = _gru_cell(self.extractor.gru.cell, row, hidden)
        ext_state.steps += 1
        state.edges.append(TemporalEdge(src, dst, time))
