"""Bounded per-shard ingest queues with explicit backpressure.

Each shard owns one :class:`BoundedQueue` between the cluster front-end
(the routing thread) and the shard's drain loop.  The queue is the
cluster's pressure-relief valve: when a shard falls behind, the
``policy`` decides what happens to new events instead of letting memory
grow without limit:

* ``"block"`` (default) — the producer waits until the drain frees a
  slot.  Lossless; ingest latency absorbs the pressure.
* ``"shed"`` — the event is discarded and counted.  Lossy; latency
  stays flat, accuracy of the overloaded shard's sessions degrades.
* ``"raise"`` — :class:`ShardQueueFullError` propagates to the caller
  (strict pipelines that must fail loudly instead of lagging).

The queue also carries the ``join`` barrier the cluster needs before
reads and migrations: ``task_done``/``join`` mirror the stdlib queue
contract, so "every event submitted so far has been *applied*" (not
merely dequeued) is a waitable condition.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any

BACKPRESSURE_POLICIES = ("block", "shed", "raise")


class ShardQueueFullError(RuntimeError):
    """An ingest queue is full under the ``"raise"`` backpressure policy."""


class BoundedQueue:
    """A thread-safe bounded FIFO with pluggable overflow policy.

    Parameters
    ----------
    capacity:
        Maximum queued (not yet dequeued) items.
    policy:
        One of :data:`BACKPRESSURE_POLICIES`; applied by :meth:`put`
        when the queue is full.
    """

    def __init__(self, capacity: int = 1024, policy: str = "block"):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if policy not in BACKPRESSURE_POLICIES:
            raise ValueError(
                f"unknown backpressure policy {policy!r}; "
                f"choose from {BACKPRESSURE_POLICIES}"
            )
        self.capacity = capacity
        self.policy = policy
        self.shed = 0
        self._items: deque[Any] = deque()
        self._unfinished = 0
        self._closed = False
        self._lock = threading.Lock()
        self._not_full = threading.Condition(self._lock)
        self._not_empty = threading.Condition(self._lock)
        self._all_done = threading.Condition(self._lock)

    def __len__(self) -> int:
        return len(self._items)

    @property
    def closed(self) -> bool:
        return self._closed

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------
    def put(self, item: Any) -> bool:
        """Enqueue ``item``; returns False when it was shed.

        A full queue blocks, sheds or raises per ``policy``.  Putting
        into a closed queue raises — the shard is gone, losing the
        event silently would mask a routing bug.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("queue is closed")
            if len(self._items) >= self.capacity:
                if self.policy == "shed":
                    self.shed += 1
                    return False
                if self.policy == "raise":
                    raise ShardQueueFullError(
                        f"ingest queue full ({self.capacity} events pending)"
                    )
                while len(self._items) >= self.capacity and not self._closed:
                    self._not_full.wait()
                if self._closed:
                    raise RuntimeError("queue closed while blocked on put")
            self._items.append(item)
            self._unfinished += 1
            self._not_empty.notify()
        return True

    # ------------------------------------------------------------------
    # Consumer side
    # ------------------------------------------------------------------
    def get_batch(self, max_items: int, timeout: float | None = None) -> list[Any]:
        """Dequeue up to ``max_items`` (at least 1 unless empty/closed).

        Waits up to ``timeout`` seconds for the first item (``None``
        waits forever, ``0`` never); the rest of the batch is whatever
        is already queued.  Each returned item must be accounted with
        :meth:`task_done` once processed.
        """
        with self._lock:
            if not self._items and timeout != 0:
                self._not_empty.wait_for(
                    lambda: self._items or self._closed, timeout=timeout
                )
            count = min(max_items, len(self._items))
            batch = [self._items.popleft() for _ in range(count)]
            if count:
                self._not_full.notify_all()
            return batch

    def task_done(self, count: int = 1) -> None:
        """Mark ``count`` dequeued items fully processed."""
        with self._lock:
            if count > self._unfinished:
                raise ValueError("task_done called more times than items queued")
            self._unfinished -= count
            if self._unfinished == 0:
                self._all_done.notify_all()

    def join(self, timeout: float | None = None) -> bool:
        """Wait until every item ever enqueued has been processed."""
        with self._lock:
            return self._all_done.wait_for(
                lambda: self._unfinished == 0, timeout=timeout
            )

    def close(self) -> None:
        """Refuse further puts and wake every waiter."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
            self._not_full.notify_all()
            self._all_done.notify_all()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BoundedQueue(size={len(self._items)}, capacity={self.capacity}, "
            f"policy={self.policy!r})"
        )
