"""Cluster-level telemetry: per-shard series in one shared registry.

Every instrument lives in a :class:`~repro.telemetry.MetricRegistry`
(pass the process-global one from :func:`repro.telemetry.get_registry`
to fold cluster series into a capture, or share one registry across
engines and cluster for a single export).  Series names:

==============================  =========  ==============================
``cluster/events_routed``       counter    events accepted by the front-end
``cluster/events_shed``         counter    backpressure-shed events
``cluster/shard_errors``        counter    apply-path exceptions (labeled ``shard``)
``cluster/breaker_rejections``  counter    writes shed by an open breaker (labeled ``shard``)
``cluster/sessions_migrated``   counter    sessions moved by ``rebalance()``
``cluster/sessions_quarantined`` counter   migrations rejected (corrupt snapshot)
``cluster/rebalances``          counter    ``rebalance()`` invocations
``cluster/shard_restarts``      counter    dead shards respawned by the supervisor
``cluster/heartbeat_failures``  counter    liveness probes that found a dead shard
``cluster/queue_depth``         gauge      per-shard ingest queue depth (labeled ``shard``)
``cluster/ingest_latency_seconds``  histogram  front-end submit → queued
``cluster/predict_latency_seconds`` histogram  predict round-trip (barrier included)
``cluster/apply_latency_seconds``   histogram  per-event apply inside the drain loop
==============================  =========  ==============================

With journaling enabled (``journal_dir=``), each shard's write-ahead
log also reports into the same registry under ``journal/*`` (appends,
bytes_written, fsyncs, rotations, segments_removed — see
:mod:`repro.resilience.journal`), and the supervisor's recovery path
adds ``journal/records_replayed`` / ``journal/gaps_detected``.

All timings use ``time.perf_counter`` — a monotonic clock; wall-clock
(``time.time``) is banned from measurement paths by a lint rule.
"""

from __future__ import annotations

from repro.telemetry import Gauge, Histogram, MetricRegistry


class ClusterMetrics:
    """Instrument block for one :class:`~repro.cluster.ShardedCluster`.

    Parameters
    ----------
    registry:
        Optional shared :class:`~repro.telemetry.MetricRegistry`; a
        private one is created otherwise.
    latency_capacity:
        Ring-buffer size of the latency histograms.
    """

    def __init__(
        self,
        registry: MetricRegistry | None = None,
        latency_capacity: int = 4096,
    ):
        self.registry = registry if registry is not None else MetricRegistry()
        self.events_routed = self.registry.counter("cluster/events_routed")
        self.events_shed = self.registry.counter("cluster/events_shed")
        self.sessions_migrated = self.registry.counter("cluster/sessions_migrated")
        self.sessions_quarantined = self.registry.counter(
            "cluster/sessions_quarantined"
        )
        self.rebalances = self.registry.counter("cluster/rebalances")
        self.shard_restarts = self.registry.counter("cluster/shard_restarts")
        self.heartbeat_failures = self.registry.counter("cluster/heartbeat_failures")
        self.ingest_latency: Histogram = self.registry.histogram(
            "cluster/ingest_latency_seconds", capacity=latency_capacity
        )
        self.predict_latency: Histogram = self.registry.histogram(
            "cluster/predict_latency_seconds", capacity=latency_capacity
        )
        self.apply_latency: Histogram = self.registry.histogram(
            "cluster/apply_latency_seconds", capacity=latency_capacity
        )

    # ------------------------------------------------------------------
    # Per-shard series (labeled)
    # ------------------------------------------------------------------
    def queue_depth(self, shard_id) -> Gauge:
        """The queue-depth gauge of one shard."""
        return self.registry.gauge("cluster/queue_depth", shard=str(shard_id))

    def shard_errors(self, shard_id):
        """The apply-error counter of one shard."""
        return self.registry.counter("cluster/shard_errors", shard=str(shard_id))

    def breaker_rejections(self, shard_id):
        """The breaker-shed counter of one shard."""
        return self.registry.counter(
            "cluster/breaker_rejections", shard=str(shard_id)
        )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def latency_summary(self) -> dict[str, float]:
        """p50/p95/p99 (milliseconds) of the three latency histograms."""
        summary: dict[str, float] = {}
        for name, histogram in (
            ("ingest", self.ingest_latency),
            ("predict", self.predict_latency),
            ("apply", self.apply_latency),
        ):
            for q in (50, 95, 99):
                summary[f"{name}_p{q}_ms"] = histogram.percentile(q) * 1e3
        return summary
