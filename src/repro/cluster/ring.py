"""Consistent-hash session placement for the sharded serving cluster.

Sessions must map to shards such that (a) the mapping is stable — the
same session id always lands on the same shard, across processes and
runs (``PYTHONHASHSEED`` must not matter, so the ring hashes with md5,
never the builtin ``hash``); and (b) adding or removing one shard moves
only ~``1/n`` of the sessions, not all of them — otherwise every
topology change would trigger a full-cluster migration.

:class:`HashRing` is the classic consistent-hash construction: each
shard owns ``replicas`` pseudo-random points on a 64-bit circle, and a
key is placed on the first shard point clockwise from the key's own
hash.  Virtual nodes (the replicas) smooth the per-shard load to within
a few percent of uniform at the default 64 points per shard.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Hashable, Iterable, Sequence


def stable_hash(key: str) -> int:
    """A 64-bit process-independent hash of ``key`` (md5 prefix)."""
    digest = hashlib.md5(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Consistent-hash ring mapping string keys to shard ids.

    Parameters
    ----------
    shards:
        Initial shard ids (any hashable, typically small ints).
    replicas:
        Virtual nodes per shard.  More replicas → smoother load split,
        slightly larger ring; 64 keeps per-shard imbalance within a few
        percent for the shard counts a single host runs.
    """

    def __init__(self, shards: Iterable[Hashable] = (), replicas: int = 64):
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.replicas = replicas
        self._points: list[int] = []
        self._owners: dict[int, Hashable] = {}
        self._shards: set[Hashable] = set()
        for shard in shards:
            self.add(shard)

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def _shard_points(self, shard: Hashable) -> list[int]:
        return [stable_hash(f"shard:{shard}:{i}") for i in range(self.replicas)]

    def add(self, shard: Hashable) -> None:
        """Join ``shard``; existing keys move only onto the new shard."""
        if shard in self._shards:
            raise ValueError(f"shard {shard!r} is already on the ring")
        self._shards.add(shard)
        for point in self._shard_points(shard):
            # md5 collisions between distinct replica labels are not a
            # practical concern; last writer wins keeps this total.
            if point not in self._owners:
                bisect.insort(self._points, point)
            self._owners[point] = shard

    def remove(self, shard: Hashable) -> None:
        """Leave ``shard``; its keys redistribute over the survivors."""
        if shard not in self._shards:
            raise KeyError(f"shard {shard!r} is not on the ring")
        self._shards.discard(shard)
        for point in self._shard_points(shard):
            if self._owners.get(point) == shard:
                del self._owners[point]
                index = bisect.bisect_left(self._points, point)
                if index < len(self._points) and self._points[index] == point:
                    del self._points[index]

    def __contains__(self, shard: Hashable) -> bool:
        return shard in self._shards

    def __len__(self) -> int:
        return len(self._shards)

    @property
    def shards(self) -> list[Hashable]:
        """The shard ids currently on the ring, sorted."""
        return sorted(self._shards, key=repr)

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def place(self, key: str) -> Hashable:
        """The shard owning ``key`` (first ring point clockwise)."""
        if not self._points:
            raise RuntimeError("cannot place a key on an empty ring")
        point = stable_hash(f"key:{key}")
        index = bisect.bisect_right(self._points, point)
        if index == len(self._points):
            index = 0
        return self._owners[self._points[index]]

    def placement(self, keys: Sequence[str]) -> dict[str, Hashable]:
        """Map every key to its shard in one pass."""
        return {key: self.place(key) for key in keys}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"HashRing(shards={self.shards}, replicas={self.replicas})"
