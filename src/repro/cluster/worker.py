"""One shard of the serving cluster: engine + queue + drain loop.

A :class:`ShardWorker` is a shared-nothing serving unit: it owns a
private :class:`~repro.serve.StreamingEngine` (sessions, router, LRU,
metrics), a :class:`~repro.cluster.queues.BoundedQueue` of pending
events, and — in the threaded backend — a daemon drain thread that
applies micro-batches.  The serial backend drains inline on the
submitting thread (deterministic; the property/chaos suites use it).

Two apply lanes share the engine:

* the **fast lane** — when the engine runs the default serving
  configuration (``drop`` admission, no validator, no deadline) and the
  model is inside :class:`~repro.cluster.fastpath.FastObserver`'s
  envelope, an in-order event for a live session is applied by the
  raw-array kernel (bitwise-identical results, ~5x throughput);
* the **slow lane** — everything else (new sessions, buffered
  admission, validators, exotic models) goes through
  ``engine.ingest``, byte-for-byte the single-engine code path.

Failure isolation reuses the engine's circuit breaker: apply-path
exceptions (including faults injected at ``cluster.shard<id>.apply``)
feed the shard's breaker; once it trips, that shard sheds writes and
rejects reads while the rest of the cluster keeps serving.
"""

from __future__ import annotations

import threading
from time import perf_counter

from repro.cluster.fastpath import FastObserver
from repro.cluster.metrics import ClusterMetrics
from repro.cluster.queues import BoundedQueue
from repro.resilience.faults import inject
from repro.serve.engine import StreamingEngine
from repro.serve.events import StreamEvent

BACKENDS = ("serial", "thread")

#: How long a barrier waits for the drain thread before giving up.
_BARRIER_TIMEOUT = 120.0


class ShardWorker:
    """One shard: a private engine behind a bounded ingest queue.

    Parameters
    ----------
    shard_id:
        Stable identifier (the ring placement target).
    engine:
        The shard's private :class:`StreamingEngine`.  Its breaker (if
        configured) is the shard's failure isolator.
    metrics:
        The cluster-wide :class:`ClusterMetrics` (per-shard series are
        labeled with ``shard_id``).
    queue_capacity / backpressure:
        Ingest queue bound and overflow policy (see
        :mod:`repro.cluster.queues`).
    batch_size:
        Micro-batch size of the drain loop.
    threaded:
        ``True`` runs a daemon drain thread; ``False`` drains inline on
        :meth:`submit` / :meth:`barrier` (deterministic).
    fast_apply:
        Allow the raw-array fast lane when eligible.
    """

    def __init__(
        self,
        shard_id,
        engine: StreamingEngine,
        metrics: ClusterMetrics,
        queue_capacity: int = 2048,
        backpressure: str = "block",
        batch_size: int = 32,
        threaded: bool = False,
        fast_apply: bool = True,
    ):
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.shard_id = shard_id
        self.engine = engine
        self.metrics = metrics
        self.batch_size = batch_size
        self.queue = BoundedQueue(capacity=queue_capacity, policy=backpressure)
        self.applied_total = 0
        self._fault_point = f"cluster.shard{shard_id}.apply"
        self._gauge = metrics.queue_depth(shard_id)
        self._errors = metrics.shard_errors(shard_id)
        self._rejections = metrics.breaker_rejections(shard_id)
        self._apply_latency = metrics.apply_latency
        self._lock = threading.Lock()
        self._closed = False
        self._fast = self._build_fast_lane() if fast_apply else None
        # Cached counter handles: the fast lane updates the same engine
        # counters the slow lane does, without property round-trips.
        serve_counters = engine.metrics._counters
        self._c_ingested = serve_counters["events_ingested"]
        self._c_applied = serve_counters["events_applied"]
        self._c_dropped = serve_counters["events_dropped"]
        self._thread: threading.Thread | None = None
        if threaded:
            self._thread = threading.Thread(
                target=self._drain_loop, name=f"shard-{shard_id}", daemon=True
            )
            self._thread.start()

    def _build_fast_lane(self) -> FastObserver | None:
        engine = self.engine
        if (
            engine.validator is not None
            or engine.deadline_seconds is not None
            or engine.router.out_of_order != "drop"
        ):
            return None
        return FastObserver.build(engine.classifier)

    @property
    def fast_lane(self) -> bool:
        """Whether the raw-array kernel serves this shard's hot path."""
        return self._fast is not None

    @property
    def threaded(self) -> bool:
        return self._thread is not None

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def submit(self, event: StreamEvent) -> bool:
        """Enqueue one event; returns False when backpressure shed it."""
        queue = self.queue
        if self._thread is None and len(queue) >= queue.capacity:
            # A serial shard is its own consumer: drain inline rather
            # than deadlocking on a full queue under the block policy.
            self._drain_pending()
        accepted = queue.put(event)
        if accepted and self._thread is None and len(queue) >= self.batch_size:
            self._drain_pending()
        self._gauge.set(len(queue))
        return accepted

    def _drain_pending(self) -> int:
        """Apply everything queued right now (serial backend)."""
        applied = 0
        while True:
            batch = self.queue.get_batch(self.batch_size, timeout=0)
            if not batch:
                return applied
            with self._lock:
                for event in batch:
                    applied += self._apply_one(event)
            self.queue.task_done(len(batch))

    def _drain_loop(self) -> None:
        """Threaded backend: block on the queue, apply micro-batches."""
        while True:
            batch = self.queue.get_batch(self.batch_size, timeout=0.05)
            if not batch:
                if self.queue.closed:
                    return
                continue
            with self._lock:
                for event in batch:
                    self._apply_one(event)
            self.queue.task_done(len(batch))
            self._gauge.set(len(self.queue))

    def _apply_one(self, event: StreamEvent) -> int:
        """Apply one dequeued event through the fast or slow lane."""
        engine = self.engine
        try:
            inject(self._fault_point)
        except Exception:
            # A worker-level fault is an apply failure: feed the shard
            # breaker so repeated faults trip it open.
            if engine.breaker is not None:
                engine.breaker.record_failure()
            self._errors.inc()
            return 0
        start = perf_counter()
        try:
            if self._fast is not None:
                applied = self._fast_apply(event)
            else:
                applied = engine.ingest(event)
        except Exception:
            # engine.ingest already recorded the breaker failure on the
            # apply path; the shard stays up, the event is lost.
            self._errors.inc()
            return 0
        self._apply_latency.record(perf_counter() - start)
        self.applied_total += applied
        return applied

    def _fast_apply(self, event: StreamEvent) -> int:
        """The raw-array lane — mirrors ``engine.ingest`` exactly for
        an in-order event of a live session, falls back otherwise."""
        engine = self.engine
        router = engine.router
        entry = router._sessions.get(event.session_id)
        if entry is None:
            # New session: the slow lane creates it (LRU eviction,
            # sessions_started accounting); later events go fast.
            return engine.ingest(event)
        if engine.journal is not None:
            # Write-ahead on the fast lane too; the slow-lane branch
            # above journals inside engine.ingest, so no double append.
            engine.journal.append_event(event)
        self._c_ingested.inc()
        router._sessions.move_to_end(event.session_id)
        if event.time < entry.last_applied:
            router.stats.dropped += 1
            self._c_dropped.inc()
            return 0
        entry.last_applied = event.time
        router.stats.routed += 1
        breaker = engine.breaker
        if breaker is not None and not breaker.allow():
            engine.metrics.breaker_rejections += 1
            self._rejections.inc()
            return 0
        state = entry.payload
        if state.label is None and event.label is not None:
            state.label = event.label
        try:
            self._fast.observe(
                state, event.src, event.dst, event.time, event.node_features
            )
        except Exception:
            if breaker is not None:
                breaker.record_failure()
            raise
        if breaker is not None:
            breaker.record_success()
        self._c_applied.inc()
        return 1

    # ------------------------------------------------------------------
    # Liveness
    # ------------------------------------------------------------------
    def ping(self) -> bool:
        """Liveness probe: raises when this shard can no longer serve.

        Checks the states a wedged or dead shard exhibits — worker
        closed, ingest queue closed, drain thread dead — and fires the
        ``cluster.heartbeat`` injection point first so chaos plans can
        simulate a shard death the supervisor must detect.  Cheap
        enough to run on every supervisor sweep; never drains.
        """
        inject("cluster.heartbeat", context=self.shard_id)
        if self._closed:
            raise RuntimeError(f"shard {self.shard_id}: worker is closed")
        if self.queue.closed:
            raise RuntimeError(f"shard {self.shard_id}: ingest queue is closed")
        if self._thread is not None and not self._thread.is_alive():
            raise RuntimeError(f"shard {self.shard_id}: drain thread died")
        return True

    # ------------------------------------------------------------------
    # Barrier + read path
    # ------------------------------------------------------------------
    def barrier(self) -> None:
        """Return once every event submitted so far has been applied."""
        if self._thread is None:
            self._drain_pending()
        elif not self.queue.join(timeout=_BARRIER_TIMEOUT):
            raise TimeoutError(
                f"shard {self.shard_id}: drain did not settle within "
                f"{_BARRIER_TIMEOUT:.0f}s ({len(self.queue)} events pending)"
            )
        self._gauge.set(len(self.queue))

    def predict(self, session_id: str, mode: str = "online") -> float:
        self.barrier()
        with self._lock:
            return self.engine.predict(session_id, mode=mode)

    def predict_many(self, session_ids=None) -> dict[str, float]:
        self.barrier()
        with self._lock:
            return self.engine.predict_many(session_ids)

    def sessions(self) -> list[str]:
        """Live session ids (after a barrier), LRU order."""
        self.barrier()
        with self._lock:
            return self.engine.live_sessions()

    def flush(self) -> int:
        """Barrier + drain the engine's out-of-order buffers."""
        self.barrier()
        with self._lock:
            return self.engine.flush()

    # ------------------------------------------------------------------
    # Migration hooks (cluster-internal)
    # ------------------------------------------------------------------
    def snapshot_session(self, session_id: str) -> dict:
        """Drain in-flight events, then snapshot one session's arrays."""
        self.barrier()
        with self._lock:
            self.engine.flush(session_id)
            return self.engine.snapshot_session(session_id)

    def adopt_snapshot(self, session_id: str, arrays) -> list[str]:
        """Restore a migrated session under LRU discipline."""
        with self._lock:
            state = self.engine.classifier.restore(session_id, arrays)
            return self.engine.adopt_session(session_id, state)

    def drop_session(self, session_id: str):
        """Remove a session (migration source side; no evict hook)."""
        with self._lock:
            return self.engine.remove_session(session_id)

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Engine counters + shard-local queue/breaker/lane state."""
        engine = self.engine
        info: dict = dict(engine.metrics.counters())
        info.update(
            queue_depth=len(self.queue),
            queue_shed=self.queue.shed,
            errors=self._errors.value,
            applied=self.applied_total,
            live_sessions=len(engine.router),
            fast_lane=self.fast_lane,
            breaker_state=None if engine.breaker is None else engine.breaker.state,
        )
        return info

    def close(self) -> None:
        """Stop the drain thread; pending events are applied first."""
        if self._closed:
            return
        self._closed = True
        if self._thread is not None:
            self.queue.join(timeout=_BARRIER_TIMEOUT)
            self.queue.close()
            self._thread.join(timeout=5.0)
        else:
            self._drain_pending()
            self.queue.close()
        if self.engine.journal is not None:
            self.engine.journal.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardWorker(shard={self.shard_id!r}, queued={len(self.queue)}, "
            f"applied={self.applied_total}, fast={self.fast_lane})"
        )
