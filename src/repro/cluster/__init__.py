"""Sharded multi-worker serving: routing, migration, loadtest harness.

The :mod:`repro.cluster` package scales the single-process
:class:`~repro.serve.StreamingEngine` to N shared-nothing shards behind
a consistent-hash front-end:

* :mod:`repro.cluster.ring` — session→shard placement (md5-stable
  consistent hashing with virtual nodes);
* :mod:`repro.cluster.queues` — bounded per-shard ingest queues with
  block/shed/raise backpressure;
* :mod:`repro.cluster.fastpath` — the bitwise-exact raw-array apply
  kernel behind the shard drain loops;
* :mod:`repro.cluster.worker` — one shard: engine + queue + drain loop;
* :mod:`repro.cluster.cluster` — the front-end, live session migration
  (:meth:`~repro.cluster.cluster.ShardedCluster.rebalance`) and
  per-session quarantine;
* :mod:`repro.cluster.supervisor` — heartbeat liveness sweeps and
  automatic respawn of dead shards from snapshot + write-ahead journal;
* :mod:`repro.cluster.metrics` — cluster telemetry in the shared
  :class:`~repro.telemetry.MetricRegistry`;
* :mod:`repro.cluster.loadgen` — the ``repro loadtest`` SLO harness
  (seeded load, p50/p95/p99 latency, ``BENCH_serve.json``).
"""

from repro.cluster.cluster import RebalanceReport, ShardedCluster
from repro.cluster.fastpath import FastObserver
from repro.cluster.loadgen import (
    DEFAULT_BENCH_PATH,
    LoadtestConfig,
    LoadtestReport,
    build_model,
    generate_feed,
    run_loadtest,
    write_bench,
)
from repro.cluster.metrics import ClusterMetrics
from repro.cluster.queues import (
    BACKPRESSURE_POLICIES,
    BoundedQueue,
    ShardQueueFullError,
)
from repro.cluster.ring import HashRing, stable_hash
from repro.cluster.supervisor import RespawnReport, ShardSupervisor, SweepReport
from repro.cluster.worker import BACKENDS, ShardWorker

__all__ = [
    "BACKENDS",
    "BACKPRESSURE_POLICIES",
    "BoundedQueue",
    "ClusterMetrics",
    "DEFAULT_BENCH_PATH",
    "FastObserver",
    "HashRing",
    "LoadtestConfig",
    "LoadtestReport",
    "RebalanceReport",
    "RespawnReport",
    "ShardQueueFullError",
    "ShardSupervisor",
    "ShardWorker",
    "ShardedCluster",
    "SweepReport",
    "build_model",
    "generate_feed",
    "run_loadtest",
    "stable_hash",
    "write_bench",
]
