"""The sharded serving front-end: consistent routing + live migration.

:class:`ShardedCluster` scales :class:`~repro.serve.StreamingEngine`
horizontally: N shared-nothing :class:`~repro.cluster.worker.ShardWorker`
shards each own a private engine, and the front-end routes every event
to the shard owning its session on a consistent-hash ring
(:class:`~repro.cluster.ring.HashRing`).  Because a session's whole
event stream lands on one shard, per-session ordering — and therefore
the streaming==batch equivalence guarantee — is preserved; the
property suite pins cluster predictions bitwise-equal to a lone
engine's, including across a mid-feed :meth:`rebalance`.

Topology is dynamic: :meth:`add_shard` / :meth:`remove_shard` change
the ring (consistent hashing moves only ~1/n of the keys) and
:meth:`rebalance` performs the **live session migration**: a global
barrier drains in-flight events, then each misplaced session is
snapshotted (``classifier.snapshot``), integrity-validated, and adopted
by its new shard (``classifier.restore`` + LRU-disciplined adoption).
A snapshot that fails validation — e.g. corrupted by a fault injected
at ``cluster.migrate.snapshot`` — quarantines that *session* only; the
shard and the rest of the migration proceed.

Failure isolation is per shard: each engine carries its own circuit
breaker, so a faulting shard sheds writes and rejects reads without
taking down the cluster (chaos-tested by the ``shard-kill`` scenario).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter
from typing import Iterable, Sequence

import numpy as np

from repro.cluster.metrics import ClusterMetrics
from repro.cluster.queues import BACKPRESSURE_POLICIES
from repro.cluster.ring import HashRing
from repro.cluster.worker import ShardWorker
from repro.core.model import TPGNN
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.faults import inject
from repro.resilience.journal import FSYNC_POLICIES, Journal
from repro.resilience.retry import RetryPolicy
from repro.serve.engine import StreamingEngine
from repro.serve.events import StreamEvent
from repro.telemetry import MetricRegistry

BACKENDS = ("serial", "thread")


@dataclass
class RebalanceReport:
    """What one :meth:`ShardedCluster.rebalance` did."""

    examined: int = 0
    moved: int = 0
    quarantined: int = 0
    moves: list[tuple[str, object, object]] = field(default_factory=list)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RebalanceReport(examined={self.examined}, moved={self.moved}, "
            f"quarantined={self.quarantined})"
        )


class ShardedCluster:
    """Consistent-hash sharded serving over N private engines.

    Parameters
    ----------
    model:
        The served TP-GNN.  Parameters are shared (read-only on the
        serving path) across all shard engines — shards are
        shared-nothing in *state*, not in weights.
    n_shards:
        Initial shard count.
    backend:
        ``"serial"`` applies events inline on the submitting thread
        (deterministic — tests, chaos); ``"thread"`` runs one daemon
        drain thread per shard behind the ingest queues.
    registry:
        Optional shared :class:`~repro.telemetry.MetricRegistry` for
        the cluster series.
    queue_capacity / backpressure / batch_size:
        Per-shard ingest queue bound, overflow policy
        (:data:`~repro.cluster.queues.BACKPRESSURE_POLICIES`) and
        drain micro-batch size.
    max_sessions / out_of_order / watermark_delay / max_buffered /
    missing_features:
        Per-shard engine configuration (see :class:`StreamingEngine`).
    breaker_threshold / breaker_cooldown:
        Per-shard circuit breaker; ``breaker_threshold=None`` disables
        breakers entirely.
    fast_apply:
        Allow the raw-array fast lane on eligible shards.
    replicas:
        Virtual nodes per shard on the hash ring.
    migration_retry:
        :class:`RetryPolicy` for the adopt step of a migration;
        failures that survive the retries quarantine the session.
    journal_dir:
        Root directory for per-shard write-ahead journals.  Each shard
        appends its accepted events to ``<journal_dir>/shard-<id>``
        before applying them, and learner observations go to
        ``<journal_dir>/learner`` — the durable stream a
        :class:`~repro.cluster.supervisor.ShardSupervisor` replays to
        respawn a dead shard.  ``None`` (default) disables journaling.
    journal_fsync:
        Fsync policy of every journal
        (:data:`~repro.resilience.journal.FSYNC_POLICIES`).
    """

    def __init__(
        self,
        model: TPGNN,
        n_shards: int = 2,
        backend: str = "serial",
        registry: MetricRegistry | None = None,
        queue_capacity: int = 2048,
        backpressure: str = "block",
        batch_size: int = 32,
        max_sessions: int = 1024,
        out_of_order: str = "drop",
        watermark_delay: float = 0.0,
        max_buffered: int | None = 4096,
        missing_features: str = "zeros",
        breaker_threshold: int | None = 5,
        breaker_cooldown: float = 30.0,
        fast_apply: bool = True,
        replicas: int = 64,
        migration_retry: RetryPolicy | None = RetryPolicy(attempts=2),
        journal_dir: str | Path | None = None,
        journal_fsync: str = "interval",
    ):
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if journal_fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"journal_fsync must be one of {FSYNC_POLICIES}, got {journal_fsync!r}"
            )
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; choose from {BACKENDS}"
            )
        if backpressure not in BACKPRESSURE_POLICIES:
            raise ValueError(
                f"unknown backpressure policy {backpressure!r}; "
                f"choose from {BACKPRESSURE_POLICIES}"
            )
        self.model = model
        self.backend = backend
        self.learner = None
        self.journal_dir = None if journal_dir is None else Path(journal_dir)
        self.journal_fsync = journal_fsync
        self.learner_journal: Journal | None = None
        self.metrics = ClusterMetrics(registry)
        self.ring = HashRing(replicas=replicas)
        self.quarantined: dict[str, str] = {}
        self._engine_config = dict(
            max_sessions=max_sessions,
            out_of_order=out_of_order,
            watermark_delay=watermark_delay,
            max_buffered=max_buffered,
            missing_features=missing_features,
        )
        self._breaker_config = (
            None
            if breaker_threshold is None
            else dict(failure_threshold=breaker_threshold, cooldown=breaker_cooldown)
        )
        self._worker_config = dict(
            queue_capacity=queue_capacity,
            backpressure=backpressure,
            batch_size=batch_size,
            threaded=(backend == "thread"),
            fast_apply=fast_apply,
        )
        self._migration_retry = migration_retry
        self._shards: dict[int, ShardWorker] = {}
        # Ring placements are pure in the topology, so they are cached
        # per session (md5 once, dict lookups after); any add/remove
        # invalidates the whole cache.
        self._placement: dict[str, int] = {}
        self._next_shard_id = 0
        self._closed = False
        for _ in range(n_shards):
            self.add_shard()

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def shard_journal_dir(self, shard_id: int) -> Path:
        """Journal directory of one shard (requires ``journal_dir``)."""
        if self.journal_dir is None:
            raise ValueError("cluster was built without journal_dir")
        return self.journal_dir / f"shard-{shard_id}"

    def _build_worker(self, shard_id: int) -> ShardWorker:
        breaker = (
            None
            if self._breaker_config is None
            else CircuitBreaker(**self._breaker_config)
        )
        journal = None
        if self.journal_dir is not None:
            journal = Journal(
                self.shard_journal_dir(shard_id),
                fsync=self.journal_fsync,
                registry=self.metrics.registry,
            )
        engine = StreamingEngine(
            self.model, breaker=breaker, journal=journal, **self._engine_config
        )
        return ShardWorker(shard_id, engine, self.metrics, **self._worker_config)

    def add_shard(self) -> int:
        """Join a fresh, empty shard; returns its id.

        Existing sessions stay put until :meth:`rebalance` moves the
        ~1/n of them the ring now places on the new shard.
        """
        shard_id = self._next_shard_id
        self._next_shard_id += 1
        self._shards[shard_id] = self._build_worker(shard_id)
        self.ring.add(shard_id)
        self._placement.clear()
        return shard_id

    def remove_shard(self, shard_id: int) -> RebalanceReport:
        """Retire a shard, migrating every one of its sessions away."""
        worker = self._shards.get(shard_id)
        if worker is None:
            raise KeyError(f"unknown shard {shard_id!r}")
        if len(self._shards) == 1:
            raise ValueError("cannot remove the last shard")
        self.ring.remove(shard_id)
        self._placement.clear()
        report = RebalanceReport()
        for session_id in worker.sessions():
            target = self._shards[self.ring.place(session_id)]
            self._migrate(session_id, shard_id, worker, target, report)
        worker.close()
        del self._shards[shard_id]
        return report

    @property
    def shard_ids(self) -> list[int]:
        return sorted(self._shards)

    @property
    def n_shards(self) -> int:
        return len(self._shards)

    def shard_for(self, session_id: str) -> int:
        """The shard id currently owning ``session_id``."""
        shard_id = self._placement.get(session_id)
        if shard_id is None:
            shard_id = self.ring.place(session_id)
            self._placement[session_id] = shard_id
        return shard_id

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def submit(self, event: StreamEvent) -> bool:
        """Route one event to its shard; returns False when shed."""
        start = perf_counter()
        worker = self._shards[self.shard_for(event.session_id)]
        accepted = worker.submit(event)
        self.metrics.events_routed.inc()
        if not accepted:
            self.metrics.events_shed.inc()
        self.metrics.ingest_latency.record(perf_counter() - start)
        return accepted

    def ingest_many(self, feed: Iterable[StreamEvent]) -> int:
        """Route a whole feed; returns how many events were accepted."""
        return sum(1 for event in feed if self.submit(event))

    def barrier(self) -> None:
        """Wait until every submitted event has been applied."""
        for worker in self._shards.values():
            worker.barrier()

    def flush(self) -> int:
        """Barrier + drain every shard's out-of-order buffers."""
        return sum(worker.flush() for worker in self._shards.values())

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def predict(self, session_id: str, mode: str = "online") -> float:
        """Probability that ``session_id`` is positive (its shard's
        engine answers after a drain barrier)."""
        start = perf_counter()
        worker = self._shards[self.shard_for(session_id)]
        probability = worker.predict(session_id, mode=mode)
        self.metrics.predict_latency.record(perf_counter() - start)
        return probability

    def predict_many(
        self, session_ids: Sequence[str] | None = None
    ) -> dict[str, float]:
        """Micro-batched scoring, grouped per shard."""
        if session_ids is None:
            groups = {
                shard_id: worker.sessions()
                for shard_id, worker in self._shards.items()
            }
        else:
            groups = {}
            for session_id in session_ids:
                groups.setdefault(self.shard_for(session_id), []).append(session_id)
        out: dict[str, float] = {}
        for shard_id, ids in groups.items():
            if ids:
                out.update(self._shards[shard_id].predict_many(ids))
        return out

    def sessions(self) -> dict[int, list[str]]:
        """Live session ids per shard (after a barrier)."""
        return {
            shard_id: worker.sessions()
            for shard_id, worker in self._shards.items()
        }

    def live_sessions(self) -> list[str]:
        """All live session ids across the cluster."""
        return [sid for ids in self.sessions().values() for sid in ids]

    # ------------------------------------------------------------------
    # Continual learning
    # ------------------------------------------------------------------
    def attach_learner(self, learner) -> None:
        """Co-deploy an online learner updating the cluster's model.

        Shards share the model object (weights are shared by identity,
        state is not), so one learner updates every shard's serving
        weights coherently; the learner must therefore wrap exactly
        ``self.model``.  Learner state moves with serve checkpoints
        (see ``StreamingEngine.checkpoint``) and survives
        :meth:`rebalance` — migration moves session state only, the
        updated weights and optimizer moments stay attached.
        """
        if learner.model is not self.model:
            raise ValueError(
                "learner must wrap the same model object the cluster serves"
            )
        self.learner = learner
        if self.journal_dir is not None and self.learner_journal is None:
            self.learner_journal = Journal(
                self.journal_dir / "learner",
                fsync=self.journal_fsync,
                registry=self.metrics.registry,
            )

    def observe_example(self, graph) -> float:
        """Prequential test-then-train on one completed labelled session.

        Runs behind a drain barrier so the score reflects every event
        already submitted (the same discipline reads use).  Returns the
        pre-update probability.
        """
        if self.learner is None:
            raise ValueError("no learner attached (call attach_learner first)")
        self.barrier()
        if self.learner_journal is not None:
            # Write-ahead for the learner too: a crash mid-update
            # replays the observation and reconstructs the exact
            # post-update weights/moments/buffer/RNG.
            self.learner_journal.append_observation(graph)
        return self.learner.observe(graph)

    # ------------------------------------------------------------------
    # Live migration
    # ------------------------------------------------------------------
    def rebalance(self) -> RebalanceReport:
        """Move every session to the shard the ring currently assigns.

        Drains all in-flight events first (so the moved state includes
        everything submitted before the call — the equivalence property
        depends on it), then snapshot→validate→adopt each misplaced
        session.  Corrupt snapshots quarantine the session, never the
        shard.
        """
        self.barrier()
        report = RebalanceReport()
        for shard_id, worker in list(self._shards.items()):
            for session_id in worker.sessions():
                target_id = self.ring.place(session_id)
                report.examined += 1
                if target_id == shard_id:
                    continue
                self._migrate(
                    session_id, shard_id, worker, self._shards[target_id], report
                )
        self.metrics.rebalances.inc()
        return report

    def _migrate(
        self,
        session_id: str,
        source_id: int,
        source: ShardWorker,
        target: ShardWorker,
        report: RebalanceReport,
    ) -> bool:
        """Move one session; on any failure quarantine it (not the shard)."""
        arrays = source.snapshot_session(session_id)
        try:
            inject(
                "cluster.migrate.snapshot",
                # Poisonable context: the snapshot's float payloads
                # (int arrays would reject a nan write with ValueError).
                context=lambda: [
                    a for a in arrays.values() if a.dtype.kind == "f"
                ],
            )
            self._validate_snapshot(session_id, arrays)
            if self._migration_retry is not None:
                self._migration_retry.call(target.adopt_snapshot, session_id, arrays)
            else:
                target.adopt_snapshot(session_id, arrays)
        except Exception as error:
            # The state failed integrity checks (or could not be
            # adopted): it cannot be trusted on either side.  Remove it
            # from serving and keep migrating the rest.
            source.drop_session(session_id)
            target.drop_session(session_id)
            self.quarantined[session_id] = f"{type(error).__name__}: {error}"
            self.metrics.sessions_quarantined.inc()
            report.quarantined += 1
            return False
        source.drop_session(session_id)
        self.metrics.sessions_migrated.inc()
        report.moved += 1
        report.moves.append((session_id, source_id, target.shard_id))
        return True

    @staticmethod
    def _validate_snapshot(session_id: str, arrays: dict) -> None:
        """Reject snapshots carrying non-finite state."""
        for key, array in arrays.items():
            if array.dtype.kind == "f" and not np.isfinite(array).all():
                raise ValueError(
                    f"session {session_id!r}: snapshot array {key!r} "
                    "contains non-finite values"
                )

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Cluster counters, latency percentiles and per-shard stats."""
        return {
            "cluster": {
                "n_shards": self.n_shards,
                "events_routed": self.metrics.events_routed.value,
                "events_shed": self.metrics.events_shed.value,
                "sessions_migrated": self.metrics.sessions_migrated.value,
                "sessions_quarantined": self.metrics.sessions_quarantined.value,
                "rebalances": self.metrics.rebalances.value,
            },
            "latency": self.metrics.latency_summary(),
            "shards": {
                shard_id: worker.stats()
                for shard_id, worker in self._shards.items()
            },
        }

    def close(self) -> None:
        """Stop every shard (pending events are applied first)."""
        if self._closed:
            return
        self._closed = True
        for worker in self._shards.values():
            worker.close()
        if self.learner_journal is not None:
            self.learner_journal.close()

    def __enter__(self) -> "ShardedCluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedCluster(shards={self.shard_ids}, backend={self.backend!r}, "
            f"routed={self.metrics.events_routed.value})"
        )
