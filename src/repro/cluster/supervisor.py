"""Shard supervision: heartbeat liveness checks and journal respawn.

A shard dies in ways the cluster front-end cannot see from the outside
— a drain thread killed by an unhandled error, a queue closed by a
shutdown race, a worker wedged behind a poisoned engine.  The
:class:`ShardSupervisor` closes the loop: it sweeps every shard with
:meth:`~repro.cluster.worker.ShardWorker.ping` (which fires the
``cluster.heartbeat`` injection point, so chaos plans can simulate any
of those deaths), and **respawns** a failed shard from its snapshot +
write-ahead journal:

1. recover the dead shard's state with
   :func:`~repro.serve.recovery.recover_engine` (last snapshot, then
   replay its journal tail) — bit-exact when the served weights were
   static over the journal window, crash-consistent under the live
   weights otherwise;
2. build a fresh worker under the *same* shard id (ring placement and
   every cached session→shard assignment stay valid);
3. re-adopt each recovered session through the existing migration path
   — finiteness-validated, retry-wrapped, per-session quarantine on
   corruption — so a bad journal record can cost one session, never
   the shard.

Each respawn increments ``cluster/shard_restarts`` in the shared
registry; failed probes increment ``cluster/heartbeat_failures``.

Snapshots (:meth:`ShardSupervisor.snapshot`) double as journal anchors:
the shard checkpoint records the journal position, and the segments
behind it are deleted (:meth:`~repro.resilience.journal.Journal.truncate_upto`)
so the journal stays bounded between snapshot sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.cluster.cluster import ShardedCluster
from repro.serve.engine import StreamingEngine
from repro.serve.recovery import RecoveryReport, recover_engine


@dataclass(frozen=True)
class RespawnReport:
    """What one :meth:`ShardSupervisor.respawn` recovered."""

    shard_id: int
    adopted: int
    quarantined: int
    recovery: RecoveryReport | None

    def describe(self) -> str:
        lines = [
            f"shard {self.shard_id} respawned: {self.adopted} sessions "
            f"re-adopted, {self.quarantined} quarantined"
        ]
        if self.recovery is not None:
            lines.append(self.recovery.render())
        return "\n".join(lines)


@dataclass
class SweepReport:
    """One :meth:`ShardSupervisor.check` pass over the cluster."""

    alive: list[int] = field(default_factory=list)
    dead: list[int] = field(default_factory=list)
    respawned: list[RespawnReport] = field(default_factory=list)


class ShardSupervisor:
    """Keeps a :class:`ShardedCluster`'s shards alive.

    Parameters
    ----------
    cluster:
        The supervised cluster.  Journal-backed respawn needs it built
        with ``journal_dir=``; without one, respawn still restores the
        last snapshot (losing whatever followed it) — the supervisor
        never refuses to bring a shard back.
    snapshot_dir:
        Where per-shard checkpoints live (created if missing).
        Defaults to ``<journal_dir>/snapshots`` when the cluster
        journals.
    """

    def __init__(
        self,
        cluster: ShardedCluster,
        snapshot_dir: str | Path | None = None,
    ):
        if snapshot_dir is None:
            if cluster.journal_dir is None:
                raise ValueError(
                    "pass snapshot_dir= (the cluster has no journal_dir to "
                    "default it from)"
                )
            snapshot_dir = cluster.journal_dir / "snapshots"
        self.cluster = cluster
        self.snapshot_dir = Path(snapshot_dir)
        self.snapshot_dir.mkdir(parents=True, exist_ok=True)
        self.restarts: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Snapshots (journal anchors)
    # ------------------------------------------------------------------
    def snapshot_path(self, shard_id: int) -> Path:
        return self.snapshot_dir / f"shard-{shard_id}.npz"

    def snapshot(self, shard_id: int) -> Path:
        """Checkpoint one shard and truncate its journal behind it.

        The checkpoint is written behind the shard's barrier (so it
        reflects every applied event) and carries the journal anchor;
        segments fully covered by it are deleted.
        """
        worker = self._worker(shard_id)
        worker.barrier()
        with worker._lock:
            path = worker.engine.checkpoint(self.snapshot_path(shard_id))
            journal = worker.engine.journal
            if journal is not None:
                journal.truncate_upto(journal.last_seq)
        return path

    def snapshot_all(self) -> dict[int, Path]:
        """Snapshot every live shard (one sweep of journal anchoring)."""
        return {
            shard_id: self.snapshot(shard_id)
            for shard_id in self.cluster.shard_ids
        }

    # ------------------------------------------------------------------
    # Liveness
    # ------------------------------------------------------------------
    def heartbeat(self, shard_id: int) -> bool:
        """Probe one shard; False (and a counted failure) when dead."""
        worker = self._worker(shard_id)
        try:
            worker.ping()
        except Exception:
            self.cluster.metrics.heartbeat_failures.inc()
            return False
        return True

    def check(self, respawn: bool = True) -> SweepReport:
        """Heartbeat every shard; respawn the dead ones (by default)."""
        report = SweepReport()
        for shard_id in self.cluster.shard_ids:
            if self.heartbeat(shard_id):
                report.alive.append(shard_id)
            else:
                report.dead.append(shard_id)
        if respawn:
            for shard_id in report.dead:
                report.respawned.append(self.respawn(shard_id))
        return report

    # ------------------------------------------------------------------
    # Respawn
    # ------------------------------------------------------------------
    def respawn(self, shard_id: int) -> RespawnReport:
        """Replace a dead shard with a fresh worker rebuilt from disk.

        The shard id — and therefore its ring placement and every
        cached session→shard assignment — is preserved; only the
        worker object is new.  Sessions that fail validation or
        adoption are quarantined individually, exactly like a failed
        live migration.
        """
        cluster = self.cluster
        old = self._worker(shard_id)
        try:
            # Best-effort: a dead worker may refuse a clean close.
            old.close()
        except Exception:
            pass
        checkpoint = self.snapshot_path(shard_id)
        recovered: StreamingEngine | None = None
        recovery: RecoveryReport | None = None
        if cluster.journal_dir is not None:
            # Scan + replay BEFORE the new worker reopens the journal
            # for append (reopening truncates the torn tail this scan
            # still wants to report).
            recovered, recovery = recover_engine(
                cluster.shard_journal_dir(shard_id),
                cluster.model,
                checkpoint=checkpoint,
                engine_config=cluster._engine_config,
                load_weights=False,
                registry=cluster.metrics.registry,
            )
        elif checkpoint.exists():
            recovered = StreamingEngine.restore(
                checkpoint, cluster.model, load_weights=False
            )
        worker = cluster._build_worker(shard_id)
        cluster._shards[shard_id] = worker
        adopted = quarantined = 0
        if recovered is not None:
            for session_id in recovered.live_sessions():
                arrays = recovered.snapshot_session(session_id)
                try:
                    cluster._validate_snapshot(session_id, arrays)
                    worker.adopt_snapshot(session_id, arrays)
                    adopted += 1
                except Exception as error:
                    worker.drop_session(session_id)
                    cluster.quarantined[session_id] = (
                        f"{type(error).__name__}: {error}"
                    )
                    cluster.metrics.sessions_quarantined.inc()
                    quarantined += 1
        cluster.metrics.shard_restarts.inc()
        self.restarts[shard_id] = self.restarts.get(shard_id, 0) + 1
        return RespawnReport(
            shard_id=shard_id,
            adopted=adopted,
            quarantined=quarantined,
            recovery=recovery,
        )

    def _worker(self, shard_id: int):
        worker = self.cluster._shards.get(shard_id)
        if worker is None:
            raise KeyError(f"unknown shard {shard_id!r}")
        return worker

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardSupervisor(shards={self.cluster.shard_ids}, "
            f"restarts={sum(self.restarts.values())})"
        )
