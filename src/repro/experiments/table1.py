"""Table I: key statistics of the evaluation datasets.

Generates all five datasets at the configured scale and reports the
same columns as the paper, side by side with the paper's values, so the
generators' fidelity to the published statistics is auditable.
"""

from __future__ import annotations

from repro.data.registry import DATASET_NAMES, PAPER_GRAPH_COUNTS, PAPER_SIZES
from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import render_table
from repro.experiments.runner import build_dataset


def table1_rows(config: ExperimentConfig) -> list[dict[str, object]]:
    """One row per dataset: measured statistics + the paper's values."""
    rows = []
    for name in DATASET_NAMES:
        stats = build_dataset(name, config).statistics()
        paper_nodes, paper_edges = PAPER_SIZES[name]
        rows.append(
            {
                "Datasets": name,
                "Graph Number": stats.graph_count,
                "Negative ratio": f"~{100 * stats.negative_ratio:.1f}%",
                "Avg # Node": f"{stats.avg_nodes:.1f}",
                "Avg # Edge": f"{stats.avg_edges:.1f}",
                "# Node features": stats.feature_dim,
                "paper graphs": PAPER_GRAPH_COUNTS[name],
                "paper nodes/edges": f"{paper_nodes}/{paper_edges}",
            }
        )
    return rows


def format_table1(config: ExperimentConfig) -> str:
    """Render Table I as text."""
    return render_table(
        table1_rows(config),
        title=f"Table I — dataset statistics (scale={config.graph_scale}, n={config.num_graphs} graphs each)",
    )
