"""Figures 3 & 4: ablation studies of TP-GNN-SUM and TP-GNN-GRU.

Five variants per updater — ``rand``, ``w/o tem``, ``temp``,
``time2Vec`` and ``full`` — on the four ablation datasets.  The paper's
shape: ``full`` beats every ablation; ``time2Vec`` beats ``temp``
(time encoding helps); ``temp`` beats ``rand`` (information-flow message
passing helps).
"""

from __future__ import annotations

from repro.core.ablation import ABLATION_VARIANTS, make_ablation_variant
from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import render_bar_chart
from repro.experiments.runner import build_dataset
from repro.training.metrics import MetricSummary
from repro.training.trainer import run_trials

#: The paper runs the ablations on four datasets.
ABLATION_DATASETS = ("Forum-java", "HDFS", "Gowalla", "Brightkite")

AblationResults = dict[str, dict[str, MetricSummary]]


def run_ablation(
    config: ExperimentConfig,
    updater: str = "sum",
    datasets: tuple[str, ...] = ABLATION_DATASETS,
    variants: tuple[str, ...] = ABLATION_VARIANTS,
    progress=None,
) -> AblationResults:
    """Evaluate each ablation variant of one updater on each dataset."""
    results: AblationResults = {}
    for dataset_name in datasets:
        dataset = build_dataset(dataset_name, config)
        results[dataset_name] = {}
        for variant in variants:
            def factory(seed: int, _variant=variant):
                return make_ablation_variant(
                    _variant,
                    dataset.feature_dim,
                    updater=updater,
                    hidden_size=config.hidden_size,
                    gru_hidden_size=config.hidden_size,
                    time_dim=config.time_dim,
                    seed=seed,
                )

            summary = run_trials(
                factory,
                dataset,
                config.train_config(),
                runs=config.runs,
                train_fraction=config.train_fraction,
            )
            results[dataset_name][variant] = summary
            if progress is not None:
                progress(dataset_name, variant, summary)
    return results


def format_ablation(results: AblationResults, updater: str) -> str:
    """Render per-dataset F1 bar charts (the paper's grouped bars)."""
    blocks = []
    for dataset, per_variant in results.items():
        series = {variant: summary.f1_mean for variant, summary in per_variant.items()}
        blocks.append(
            render_bar_chart(series, title=f"Fig. {'3' if updater == 'sum' else '4'} — TP-GNN-{updater.upper()} ablation on {dataset} (F1)")
        )
    return "\n\n".join(blocks)
