"""Parallel, fault-tolerant experiment runner with on-disk trial caching.

The paper's evaluation (Tables II/III, Figs. 3-7) is a grid of
``(model, dataset, run-seed)`` trials.  This module runs that grid as a
first-class parallel subsystem instead of one serial in-process loop:

* **Trial cells.**  The unit of work is one :class:`TrialSpec` — one
  seeded repetition of one (model, dataset) pair.  A Table II smoke run
  is ``5 datasets x 14 models x runs`` independent cells.
* **Content-keyed cache.**  Each cell is keyed by a SHA-256 over the
  model name, the dataset spec, the full
  :class:`~repro.training.trainer.TrainConfig` and a code-version tag
  (:data:`CODE_VERSION`, bumped whenever training semantics change).
  Completed cells are stored as JSON under ``results/cache/`` so
  re-running a table only executes the missing cells and a warm re-run
  reproduces the cold run's metrics exactly.
* **Fault isolation.**  Every cell runs in its own worker process; a
  crash, timeout or non-finite training loss marks that cell failed
  with a captured traceback, is retried up to ``retries`` times, and
  never aborts the rest of the sweep.
* **Checkpointed resume.**  Workers write epoch-boundary training
  checkpoints (model + optimiser + RNG state) next to the cache, so an
  interrupted or killed trial resumes at its last completed epoch with
  a bit-for-bit identical trajectory.
* **Per-trial telemetry.**  Each worker trains inside a
  :func:`repro.telemetry.capture` and ships its span tree, loss and
  gradient-norm histograms (and per-op timings under ``--profile``)
  back with the result; the rows are persisted as
  ``<key>.telemetry.jsonl`` next to the cache entry.

``repro bench`` drives this runner from the CLI with live progress
reporting; the pytest benchmarks opt in through
:func:`repro.experiments.runner.set_default_trial_cache`.
"""

from __future__ import annotations

import hashlib
import json
import math
import multiprocessing
import os
import time
import traceback
from collections import deque
from dataclasses import asdict, dataclass, replace
from multiprocessing.connection import wait as connection_wait
from pathlib import Path
from typing import Callable

import numpy as np

from repro import telemetry
from repro.baselines.registry import make_model
from repro.experiments.config import ExperimentConfig, snapshot_size_for
from repro.experiments.runner import dataset_for
from repro.resilience.retry import RetryPolicy
from repro.training.metrics import Metrics, MetricSummary
from repro.training.trainer import (
    TrainConfig,
    evaluate,
    train_model,
    trial_seed,
)

#: Cache-key version tag.  Bump whenever a code change alters what a
#: trial computes (training loop semantics, model construction,
#: dataset generation), so stale cached cells are never reused.
CODE_VERSION = "trial-v4"

#: Default on-disk cache location, relative to the working directory.
DEFAULT_CACHE_DIR = Path("results") / "cache"


class TrialFailure(RuntimeError):
    """A trial produced an unusable result (e.g. non-finite loss)."""


# ----------------------------------------------------------------------
# Trial cells
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TrialSpec:
    """One (model, dataset, run-seed) cell of an evaluation grid.

    Self-contained and picklable: a worker process can execute it
    without access to the parent's closures, and its field values are
    the content hashed into the cache key.
    """

    model_name: str
    dataset_name: str
    num_graphs: int
    graph_scale: float
    dataset_seed: int
    hidden_size: int
    time_dim: int
    snapshot_size: int
    train_fraction: float
    run_index: int
    train: TrainConfig

    def cell(self) -> str:
        """Human-readable cell label for progress output."""
        return f"{self.dataset_name}/{self.model_name}#run{self.run_index}"


def trial_specs(
    model_name: str, dataset_name: str, config: ExperimentConfig
) -> list[TrialSpec]:
    """The ``config.runs`` trial cells of one (model, dataset) pair.

    Seeds follow the serial protocol of
    :func:`repro.training.trainer.run_trials` exactly, so a parallel
    sweep reproduces the serial runner's numbers.
    """
    base = config.train_config()
    return [
        TrialSpec(
            model_name=model_name,
            dataset_name=dataset_name,
            num_graphs=config.num_graphs,
            graph_scale=config.graph_scale,
            dataset_seed=config.seed,
            hidden_size=config.hidden_size,
            time_dim=config.time_dim,
            snapshot_size=snapshot_size_for(dataset_name),
            train_fraction=config.train_fraction,
            run_index=run,
            train=replace(base, seed=trial_seed(base.seed, run)),
        )
        for run in range(config.runs)
    ]


def trial_cache_key(spec: TrialSpec, version: str = CODE_VERSION) -> str:
    """Content hash identifying one trial cell.

    Hashes the canonical JSON of the full spec (including every
    ``TrainConfig`` field, so newly added hyperparameters invalidate
    old entries conservatively) plus the code-version tag.
    """
    payload = {"version": version, "spec": asdict(spec)}
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class TrialOutcome:
    """What one successfully executed trial produced."""

    metrics: Metrics
    losses: tuple[float, ...]
    train_seconds: float
    epochs_run: int
    nonfinite_batches: int

    def to_json(self) -> dict:
        """JSON-serialisable payload for the on-disk cache."""
        payload = asdict(self)
        payload["losses"] = list(self.losses)
        return payload

    @staticmethod
    def from_json(payload: dict) -> "TrialOutcome":
        """Invert :meth:`to_json`."""
        return TrialOutcome(
            metrics=Metrics(**payload["metrics"]),
            losses=tuple(payload["losses"]),
            train_seconds=float(payload["train_seconds"]),
            epochs_run=int(payload["epochs_run"]),
            nonfinite_batches=int(payload["nonfinite_batches"]),
        )


@dataclass
class TrialResult:
    """Terminal state of one cell after a sweep."""

    spec: TrialSpec
    key: str
    status: str  # "completed" | "cached" | "failed"
    outcome: TrialOutcome | None = None
    error: str | None = None
    attempts: int = 0
    #: Scheduler wall-clock spent on this cell across every attempt
    #: (0 for cache hits); surfaced for failed cells by ``repro bench``.
    seconds: float = 0.0
    #: Per-trial telemetry rows (spans / ops / metrics) captured by the
    #: worker; persisted as ``<key>.telemetry.jsonl`` next to the cache
    #: entry.
    telemetry: list[dict] | None = None


# ----------------------------------------------------------------------
# On-disk cache
# ----------------------------------------------------------------------
def _entry_digest(payload: dict) -> str:
    """SHA-256 of a cache entry's canonical JSON (minus its own digest)."""
    body = {key: value for key, value in payload.items() if key != "sha256"}
    blob = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class TrialCache:
    """Content-keyed trial store under ``root`` (one JSON file per cell).

    Mid-training checkpoints of in-flight cells live under
    ``root/checkpoints/<key>.npz`` and are deleted when the cell's
    result is published, so the directory's steady state is results
    only.  Writes go through a temp file + atomic rename: a killed
    writer can never publish a torn entry.
    """

    def __init__(self, root: str | Path = DEFAULT_CACHE_DIR):
        self.root = Path(root)

    def path(self, key: str) -> Path:
        """Cache-entry file for ``key``."""
        return self.root / f"{key}.json"

    def quarantine_path(self, key: str) -> Path:
        """Where a corrupt entry for ``key`` is moved for post-mortem."""
        return self.root / "quarantine" / f"{key}.json"

    def checkpoint_path(self, key: str) -> Path:
        """Mid-training checkpoint file for an in-flight ``key``."""
        return self.root / "checkpoints" / f"{key}.npz"

    def telemetry_path(self, key: str) -> Path:
        """Telemetry JSONL persisted next to the cache entry for ``key``."""
        return self.root / f"{key}.telemetry.jsonl"

    def get(self, key: str) -> TrialOutcome | None:
        """Verified cached outcome for ``key``, or None.

        A miss and a *stale* entry (older ``CODE_VERSION``) both return
        None silently.  A *damaged* entry — unparseable JSON, a SHA-256
        digest mismatch, or a payload that no longer deserialises — is
        quarantined: moved to ``root/quarantine/`` for post-mortem,
        counted on the ``resilience/cache_quarantined`` telemetry
        counter, and reported as a miss so the scheduler recomputes the
        cell instead of crashing or trusting corrupt metrics.
        """
        path = self.path(key)
        try:
            raw = path.read_bytes()
        except OSError:
            return None
        try:
            # Decoding inside the guard: corruption can break the UTF-8
            # framing itself (UnicodeDecodeError is a ValueError).
            payload = json.loads(raw.decode("utf-8"))
            if not isinstance(payload, dict):
                raise ValueError(f"entry root is {type(payload).__name__}, not object")
            digest = payload.get("sha256")
            if digest is not None and digest != _entry_digest(payload):
                raise ValueError("sha256 digest mismatch")
            if payload.get("key") != key or payload.get("version") != CODE_VERSION:
                return None  # stale or foreign entry, not corruption
            return TrialOutcome.from_json(payload["outcome"])
        except (json.JSONDecodeError, KeyError, TypeError, ValueError) as error:
            self._quarantine(key, path, error)
            return None

    def _quarantine(self, key: str, path: Path, error: Exception) -> None:
        destination = self.quarantine_path(key)
        destination.parent.mkdir(parents=True, exist_ok=True)
        try:
            os.replace(path, destination)
        except OSError:  # pragma: no cover - lost the race with another reader
            pass
        telemetry.get_registry().counter(
            "resilience/cache_quarantined", reason=type(error).__name__
        ).inc()

    def put(
        self,
        key: str,
        spec: TrialSpec,
        outcome: TrialOutcome,
        telemetry_rows: list[dict] | None = None,
    ) -> Path:
        """Publish a completed trial and drop its mid-training checkpoint.

        When the trial carried telemetry (spans / op stats / metric
        snapshots), the rows are persisted as ``<key>.telemetry.jsonl``
        alongside the result so a sweep's timing profile survives the
        processes that produced it.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        payload = {
            "key": key,
            "version": CODE_VERSION,
            "spec": asdict(spec),
            "outcome": outcome.to_json(),
        }
        payload["sha256"] = _entry_digest(payload)
        path = self.path(key)
        temporary = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        temporary.write_text(
            json.dumps(payload, indent=2, sort_keys=True), encoding="utf-8"
        )
        os.replace(temporary, path)
        if telemetry_rows:
            lines = "".join(
                json.dumps(row, sort_keys=True) + "\n" for row in telemetry_rows
            )
            telemetry_file = self.telemetry_path(key)
            temporary = telemetry_file.with_name(
                f".{telemetry_file.name}.{os.getpid()}.tmp"
            )
            temporary.write_text(lines, encoding="utf-8")
            os.replace(temporary, telemetry_file)
        checkpoint = self.checkpoint_path(key)
        if checkpoint.exists():
            checkpoint.unlink()
        return path

    def get_telemetry(self, key: str) -> list[dict] | None:
        """Persisted telemetry rows for ``key`` (None when absent/torn)."""
        try:
            text = self.telemetry_path(key).read_text(encoding="utf-8")
            return [json.loads(line) for line in text.splitlines() if line]
        except (OSError, json.JSONDecodeError):
            return None

    def __len__(self) -> int:
        return len(list(self.root.glob("*.json")))

    def clear(self) -> int:
        """Delete every cache entry, telemetry file, checkpoint and
        quarantined entry; returns result entries removed."""
        removed = 0
        for entry in self.root.glob("*.json"):
            entry.unlink()
            removed += 1
        for telemetry_file in self.root.glob("*.telemetry.jsonl"):
            telemetry_file.unlink()
        for checkpoint in self.root.glob("checkpoints/*.npz"):
            checkpoint.unlink()
        for quarantined in self.root.glob("quarantine/*.json"):
            quarantined.unlink()
        return removed


# ----------------------------------------------------------------------
# Trial execution
# ----------------------------------------------------------------------
def run_trial(
    spec: TrialSpec,
    checkpoint_path: str | Path | None = None,
    checkpoint_every: int = 1,
) -> TrialOutcome:
    """Execute one trial cell in the current process.

    Builds the dataset (per-process memoised), trains one seeded model
    instance — resuming from ``checkpoint_path`` if it exists — and
    evaluates on the chronological test split.  A non-finite training
    loss raises :class:`TrialFailure` so the scheduler records the cell
    as failed instead of caching poisoned metrics.
    """
    outcome, _ = run_trial_instrumented(
        spec, checkpoint_path, checkpoint_every, collect=False
    )
    return outcome


def run_trial_instrumented(
    spec: TrialSpec,
    checkpoint_path: str | Path | None = None,
    checkpoint_every: int = 1,
    collect: bool = True,
    profile: bool = False,
) -> tuple[TrialOutcome, list[dict] | None]:
    """:func:`run_trial` plus a telemetry capture of the run.

    With ``collect``, training executes inside
    :func:`repro.telemetry.capture`, so the returned rows hold the
    trial's span tree and loss/grad-norm histograms (plus per-op
    timings when ``profile`` is set).  The capture swaps the
    process-global tracer/registry for the duration, so in-process
    callers' telemetry state is untouched.
    """
    dataset = dataset_for(
        spec.dataset_name, spec.num_graphs, spec.dataset_seed, spec.graph_scale
    )
    train_data, test_data = dataset.split(spec.train_fraction)
    model = make_model(
        spec.model_name,
        in_features=dataset.feature_dim,
        seed=spec.train.seed,
        hidden_size=spec.hidden_size,
        time_dim=spec.time_dim,
        snapshot_size=spec.snapshot_size,
    )

    def execute() -> "TrainResult":
        return train_model(
            model,
            train_data,
            spec.train,
            checkpoint_path=checkpoint_path,
            checkpoint_every=checkpoint_every,
        )

    rows: list[dict] | None = None
    if collect:
        with telemetry.capture(profile=profile) as cap:
            result = execute()
        rows = [{"kind": "trial", "cell": spec.cell(),
                 "train_seconds": result.train_seconds,
                 "epochs_run": result.epochs_run}]
        rows += cap.to_rows()
    else:
        result = execute()
    if any(not math.isfinite(loss) for loss in result.losses):
        raise TrialFailure(
            f"non-finite training loss in {spec.cell()}: losses={result.losses}"
        )
    metrics = evaluate(model, test_data)
    outcome = TrialOutcome(
        metrics=metrics,
        losses=tuple(result.losses),
        train_seconds=result.train_seconds,
        epochs_run=result.epochs_run,
        nonfinite_batches=result.nonfinite_batches,
    )
    return outcome, rows


def _trial_worker(spec, checkpoint_path, checkpoint_every, conn) -> None:
    """Worker-process entry point: run one trial, ship the result back."""
    try:
        outcome, rows = run_trial_instrumented(spec, checkpoint_path, checkpoint_every)
        conn.send(("ok", outcome.to_json(), rows))
    except BaseException:
        conn.send(("error", traceback.format_exc()))
    finally:
        conn.close()


def _profiled_trial_worker(spec, checkpoint_path, checkpoint_every, conn) -> None:
    """Like :func:`_trial_worker` with op-level profiling enabled."""
    try:
        outcome, rows = run_trial_instrumented(
            spec, checkpoint_path, checkpoint_every, profile=True
        )
        conn.send(("ok", outcome.to_json(), rows))
    except BaseException:
        conn.send(("error", traceback.format_exc()))
    finally:
        conn.close()


# ----------------------------------------------------------------------
# Scheduler
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SweepProgress:
    """One progress event of a sweep (for live CLI reporting)."""

    total: int
    completed: int
    cached: int
    failed: int
    running: int
    eta_seconds: float | None
    message: str

    @property
    def done(self) -> int:
        """Cells in a terminal state."""
        return self.completed + self.cached + self.failed


@dataclass
class _ActiveTrial:
    """Scheduler bookkeeping for one in-flight worker."""

    process: multiprocessing.process.BaseProcess
    conn: object
    spec: TrialSpec
    key: str
    attempt: int
    deadline: float | None
    index: int = 0
    #: When this attempt's worker was launched (monotonic clock).
    launched: float = 0.0
    #: Wall-clock burned by this cell's *previous* attempts.
    prior_seconds: float = 0.0

    def elapsed(self) -> float:
        """Total scheduler wall-clock spent on this cell so far."""
        return self.prior_seconds + (time.monotonic() - self.launched)


class ParallelRunner:
    """Process-pool scheduler over trial cells with retries and caching.

    Parameters
    ----------
    cache:
        Optional :class:`TrialCache`; hits skip execution entirely and
        misses publish their outcome (plus mid-training checkpoints for
        crash/kill resume).
    jobs:
        Maximum concurrent worker processes (default: CPU count).
    retries:
        Extra attempts per cell after the first failure; a cell is
        reported failed only when all ``retries + 1`` attempts are
        exhausted.  Shorthand for ``retry=RetryPolicy(attempts=retries
        + 1)``.
    retry:
        Full :class:`~repro.resilience.RetryPolicy` (attempts, backoff
        + seeded jitter between attempts, per-cell wall-clock
        deadline).  Overrides ``retries`` when given; a retried cell is
        re-queued with a ``ready_at`` timestamp so backoff never blocks
        other cells.
    trial_timeout:
        Per-attempt wall-clock budget in seconds; an expired worker is
        terminated (its checkpoint survives) and the attempt counts as
        a failure.  ``None`` disables the timeout.
    checkpoint_every:
        Epoch interval between worker training checkpoints.
    progress:
        Optional callback receiving :class:`SweepProgress` events.
    start_method:
        ``multiprocessing`` start method override (tests use the
        platform default; ``"spawn"`` works but pays import cost).
    profile:
        Run workers with the op-level autograd profiler enabled, so
        each trial's telemetry includes per-op timings (``repro bench
        --profile``).  Ignored when a custom ``worker`` is supplied.
    """

    def __init__(
        self,
        cache: TrialCache | None = None,
        jobs: int | None = None,
        retries: int = 1,
        retry: RetryPolicy | None = None,
        trial_timeout: float | None = None,
        checkpoint_every: int = 1,
        progress: Callable[[SweepProgress], None] | None = None,
        start_method: str | None = None,
        worker: Callable = _trial_worker,
        profile: bool = False,
    ):
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if trial_timeout is not None and trial_timeout <= 0:
            raise ValueError(f"trial_timeout must be positive, got {trial_timeout}")
        if profile and worker is _trial_worker:
            worker = _profiled_trial_worker
        self.cache = cache
        self.jobs = max(1, jobs if jobs is not None else os.cpu_count() or 1)
        self.retry = retry if retry is not None else RetryPolicy(attempts=retries + 1)
        self.retries = self.retry.retries
        self.trial_timeout = trial_timeout
        self.checkpoint_every = checkpoint_every
        self.progress = progress
        self.worker = worker
        self._ctx = multiprocessing.get_context(start_method)
        self._retry_rng = np.random.default_rng(0)

    # -- public API ----------------------------------------------------
    def run(self, specs: list[TrialSpec]) -> list[TrialResult]:
        """Execute every cell; returns results in spec order.

        Never raises on worker failure: each cell ends ``completed``,
        ``cached`` or ``failed`` (with its captured traceback).
        """
        total = len(specs)
        results: list[TrialResult | None] = [None] * total
        stats = {"completed": 0, "cached": 0, "failed": 0}
        started = time.monotonic()
        # Pending entries are (index, spec, key, attempt, prior_seconds,
        # ready_at): retried cells carry a backoff timestamp and are
        # skipped (rotated past) until it passes.
        pending: deque[tuple[int, TrialSpec, str, int, float, float]] = deque()
        for index, spec in enumerate(specs):
            key = trial_cache_key(spec)
            outcome = self.cache.get(key) if self.cache is not None else None
            if outcome is not None:
                results[index] = TrialResult(
                    spec=spec, key=key, status="cached", outcome=outcome,
                    telemetry=self.cache.get_telemetry(key),
                )
                stats["cached"] += 1
                self._report(stats, total, 0, started, f"{spec.cell()} cached")
            else:
                pending.append((index, spec, key, 1, 0.0, 0.0))
        active: dict[int, _ActiveTrial] = {}
        try:
            while pending or active:
                now = time.monotonic()
                considered = 0
                while pending and len(active) < self.jobs and considered < len(pending):
                    if pending[0][5] > now:
                        pending.rotate(-1)
                        considered += 1
                        continue
                    self._launch(*pending.popleft()[:5], active=active)
                    self._report(
                        stats, total, len(active), started,
                        f"{len(active)} worker(s) running",
                    )
                if not active and pending:
                    # Everything left is backing off; nap until the
                    # earliest becomes ready (bounded to stay responsive).
                    earliest = min(entry[5] for entry in pending)
                    time.sleep(max(0.0, min(earliest - time.monotonic(), 0.05)))
                    continue
                self._poll(active, pending, results, stats, total, started)
        finally:
            for trial in active.values():
                if trial.process.is_alive():
                    trial.process.terminate()
                trial.process.join()
        return [result for result in results if result is not None]

    # -- internals -----------------------------------------------------
    def _launch(
        self, index: int, spec: TrialSpec, key: str, attempt: int,
        prior_seconds: float, active: dict[int, _ActiveTrial],
    ) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=False)
        checkpoint = None
        if self.cache is not None:
            checkpoint = self.cache.checkpoint_path(key)
            checkpoint.parent.mkdir(parents=True, exist_ok=True)
        process = self._ctx.Process(
            target=self.worker,
            args=(spec, checkpoint, self.checkpoint_every, child_conn),
            daemon=True,
        )
        process.start()
        child_conn.close()
        deadline = (
            time.monotonic() + self.trial_timeout
            if self.trial_timeout is not None
            else None
        )
        active[index] = _ActiveTrial(
            process=process, conn=parent_conn, spec=spec, key=key,
            attempt=attempt, deadline=deadline, index=index,
            launched=time.monotonic(), prior_seconds=prior_seconds,
        )

    def _poll(self, active, pending, results, stats, total, started) -> None:
        """Wait briefly for any worker to finish, die, or time out."""
        if not active:
            return
        connection_wait([trial.conn for trial in active.values()], timeout=0.05)
        now = time.monotonic()
        for index, trial in list(active.items()):
            message = None
            received = False
            if trial.conn.poll():
                try:
                    message = trial.conn.recv()
                    received = True
                except EOFError:
                    received = False
            elif trial.process.is_alive():
                if trial.deadline is not None and now > trial.deadline:
                    trial.process.terminate()
                    trial.process.join()
                    trial.conn.close()
                    del active[index]
                    self._attempt_failed(
                        trial, pending, results, stats, total, started,
                        f"trial timed out after {self.trial_timeout:.0f}s "
                        f"(attempt {trial.attempt})",
                    )
                continue
            # Worker exited: either it sent a result or it crashed.
            trial.process.join()
            trial.conn.close()
            del active[index]
            if received and message[0] == "ok":
                outcome = TrialOutcome.from_json(message[1])
                # Custom workers may send bare ("ok", outcome) pairs;
                # the stock workers append their telemetry rows.
                rows = message[2] if len(message) > 2 else None
                if self.cache is not None:
                    self.cache.put(trial.key, trial.spec, outcome,
                                   telemetry_rows=rows)
                results[index] = TrialResult(
                    spec=trial.spec, key=trial.key, status="completed",
                    outcome=outcome, attempts=trial.attempt,
                    seconds=trial.elapsed(), telemetry=rows,
                )
                stats["completed"] += 1
                self._report(
                    stats, total, len(active), started,
                    f"{trial.spec.cell()} completed",
                )
            elif received:
                self._attempt_failed(
                    trial, pending, results, stats, total, started, message[1]
                )
            else:
                self._attempt_failed(
                    trial, pending, results, stats, total, started,
                    f"worker crashed with exit code {trial.process.exitcode} "
                    f"(attempt {trial.attempt})",
                )

    def _attempt_failed(
        self, trial, pending, results, stats, total, started, error: str
    ) -> None:
        elapsed = trial.elapsed()
        delay = self.retry.delay_for(trial.attempt + 1, rng=self._retry_rng)
        budget_left = (
            self.retry.deadline is None or elapsed + delay < self.retry.deadline
        )
        if trial.attempt <= self.retries and budget_left:
            pending.append((trial.index, trial.spec, trial.key,
                            trial.attempt + 1, elapsed,
                            time.monotonic() + delay))
            self._report(
                stats, total, 0, started,
                f"{trial.spec.cell()} failed (attempt {trial.attempt}), retrying",
            )
        else:
            results[trial.index] = TrialResult(
                spec=trial.spec, key=trial.key, status="failed",
                error=error, attempts=trial.attempt, seconds=trial.elapsed(),
            )
            stats["failed"] += 1
            self._report(
                stats, total, 0, started,
                f"{trial.spec.cell()} failed permanently "
                f"after {trial.attempt} attempt(s)",
            )

    def _report(self, stats, total, running, started, message: str) -> None:
        if self.progress is None:
            return
        executed = stats["completed"] + stats["failed"]
        remaining = total - executed - stats["cached"]
        if remaining <= 0:
            eta = 0.0
        elif executed:
            eta = (time.monotonic() - started) / executed * remaining
        else:
            eta = None
        self.progress(
            SweepProgress(
                total=total,
                completed=stats["completed"],
                cached=stats["cached"],
                failed=stats["failed"],
                running=running,
                eta_seconds=eta,
                message=message,
            )
        )


# ----------------------------------------------------------------------
# Grid-level entry points
# ----------------------------------------------------------------------
def run_cell_cached(
    model_name: str,
    dataset_name: str,
    config: ExperimentConfig,
    cache: TrialCache,
) -> MetricSummary:
    """Cache-aware, in-process version of one evaluation-grid cell.

    Used by :func:`repro.experiments.runner.evaluate_model` (and hence
    the pytest benchmarks) so repeated table regenerations only execute
    the runs missing from the cache.  Cold results are identical to the
    serial runner's; warm results are the cold results replayed.
    """
    metrics: list[Metrics] = []
    for spec in trial_specs(model_name, dataset_name, config):
        key = trial_cache_key(spec)
        outcome = cache.get(key)
        if outcome is None:
            outcome, rows = run_trial_instrumented(
                spec, checkpoint_path=cache.checkpoint_path(key)
            )
            cache.put(key, spec, outcome, telemetry_rows=rows)
        metrics.append(outcome.metrics)
    return MetricSummary.from_runs(metrics)


def summarize_trials(
    results: list[TrialResult],
) -> dict[str, dict[str, MetricSummary]]:
    """Fold trial results back into the ``{dataset: {model: summary}}``
    shape the table formatters expect.

    A cell appears only if at least one of its runs succeeded; fully
    failed cells are reported separately via :func:`failed_trials`.
    """
    grouped: dict[tuple[str, str], list[Metrics]] = {}
    order: list[tuple[str, str]] = []
    for result in results:
        cell = (result.spec.dataset_name, result.spec.model_name)
        if cell not in grouped:
            grouped[cell] = []
            order.append(cell)
        if result.outcome is not None:
            grouped[cell].append(result.outcome.metrics)
    table: dict[str, dict[str, MetricSummary]] = {}
    for dataset, model in order:
        runs = grouped[(dataset, model)]
        if runs:
            table.setdefault(dataset, {})[model] = MetricSummary.from_runs(runs)
    return table


def failed_trials(results: list[TrialResult]) -> list[TrialResult]:
    """The cells that exhausted every retry."""
    return [result for result in results if result.status == "failed"]


def run_table_parallel(
    config: ExperimentConfig,
    datasets: tuple[str, ...],
    models: tuple[str, ...],
    cache: TrialCache | None = None,
    jobs: int | None = None,
    retries: int = 1,
    retry: RetryPolicy | None = None,
    trial_timeout: float | None = None,
    progress: Callable[[SweepProgress], None] | None = None,
    profile: bool = False,
) -> tuple[dict[str, dict[str, MetricSummary]], list[TrialResult]]:
    """Evaluate a (datasets x models) grid through the parallel runner.

    Returns ``(table, trial_results)`` where ``table`` feeds
    ``format_table2``/``format_table3`` directly and ``trial_results``
    carries per-cell status (cached / completed / failed + traceback)
    plus each trial's telemetry rows.  With ``profile``, workers also
    attribute time per tensor op (see ``repro bench --profile``).
    """
    specs = [
        spec
        for dataset in datasets
        for model in models
        for spec in trial_specs(model, dataset, config)
    ]
    runner = ParallelRunner(
        cache=cache,
        jobs=jobs,
        retries=retries,
        retry=retry,
        trial_timeout=trial_timeout,
        progress=progress,
        profile=profile,
    )
    results = runner.run(specs)
    return summarize_trials(results), results


def aggregate_telemetry(
    results: list[TrialResult], kind: str = "op"
) -> list[list[dict]]:
    """Collect each trial's telemetry rows of one ``kind``.

    Feed the ``"op"`` groups to
    :func:`repro.telemetry.aggregate_op_rows` for a sweep-wide top-ops
    table.
    """
    groups = []
    for result in results:
        if result.telemetry:
            rows = [row for row in result.telemetry if row.get("kind") == kind]
            if rows:
                groups.append(rows)
    return groups
