"""Plain-text rendering of tables and figures.

The paper's figures are bar charts and heat-maps; without a plotting
stack the harness renders them as aligned ASCII tables / heat-maps so
benchmark output can be compared against the paper side by side.
"""

from __future__ import annotations

from typing import Mapping, Sequence


def render_table(
    rows: Sequence[Mapping[str, object]], title: str | None = None
) -> str:
    """Render a list of dict rows as an aligned ASCII table.

    Column order follows the first row's key order.
    """
    if not rows:
        return "(empty table)"
    columns = list(rows[0].keys())
    cells = [[str(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(row[i]) for row in cells)) for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(col.ljust(width) for col, width in zip(columns, widths))
    lines.append(header)
    lines.append("-+-".join("-" * width for width in widths))
    for row in cells:
        lines.append(" | ".join(value.ljust(width) for value, width in zip(row, widths)))
    return "\n".join(lines)


def format_duration(seconds: float) -> str:
    """Compact human duration for progress lines: ``42s``, ``3m12s``, ``2h05m``."""
    seconds = max(0.0, float(seconds))
    if seconds < 60:
        return f"{seconds:.0f}s"
    minutes, secs = divmod(int(round(seconds)), 60)
    if minutes < 60:
        return f"{minutes}m{secs:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"


def render_heatmap(
    values: Sequence[Sequence[float]],
    row_labels: Sequence[str],
    col_labels: Sequence[str],
    title: str | None = None,
    fmt: str = "{:.1f}",
) -> str:
    """Render a 2-d grid of numbers with row/column labels (Fig. 5 style)."""
    header_width = max(len(label) for label in row_labels)
    col_width = max(
        max(len(label) for label in col_labels),
        max(len(fmt.format(v)) for row in values for v in row),
    )
    lines = []
    if title:
        lines.append(title)
    lines.append(
        " " * header_width
        + " "
        + " ".join(label.rjust(col_width) for label in col_labels)
    )
    for label, row in zip(row_labels, values):
        cells = " ".join(fmt.format(v).rjust(col_width) for v in row)
        lines.append(label.ljust(header_width) + " " + cells)
    return "\n".join(lines)


def render_bar_chart(
    series: Mapping[str, float],
    title: str | None = None,
    width: int = 40,
    fmt: str = "{:.3f}",
) -> str:
    """Render named values as a horizontal ASCII bar chart (Fig. 3/4 style)."""
    if not series:
        return "(empty chart)"
    label_width = max(len(name) for name in series)
    peak = max(series.values()) or 1.0
    lines = []
    if title:
        lines.append(title)
    for name, value in series.items():
        bar = "#" * max(0, int(round(width * value / peak)))
        lines.append(f"{name.ljust(label_width)} | {bar} {fmt.format(value)}")
    return "\n".join(lines)
