"""Experiment harness: one module per table/figure of the paper."""

from repro.experiments.config import (
    PAPER_SHAPE,
    PRESETS,
    SMALL,
    SMOKE,
    ExperimentConfig,
    snapshot_size_for,
)
from repro.experiments.runner import (
    build_dataset,
    dataset_for,
    evaluate_model,
    set_default_trial_cache,
)
from repro.experiments.parallel import (
    CODE_VERSION,
    DEFAULT_CACHE_DIR,
    ParallelRunner,
    SweepProgress,
    TrialCache,
    TrialOutcome,
    TrialResult,
    TrialSpec,
    failed_trials,
    run_table_parallel,
    run_trial,
    summarize_trials,
    trial_cache_key,
    trial_specs,
)
from repro.experiments.reporting import (
    format_duration,
    render_bar_chart,
    render_heatmap,
    render_table,
)
from repro.experiments.table1 import format_table1, table1_rows
from repro.experiments.table2 import (
    PAPER_F1,
    category_means,
    format_table2,
    run_table2,
)
from repro.experiments.table3 import (
    PAPER_TABLE3_F1,
    TABLE3_DATASETS,
    TABLE3_MODELS,
    format_table3,
    run_table3,
)
from repro.experiments.ablation import (
    ABLATION_DATASETS,
    format_ablation,
    run_ablation,
)
from repro.experiments.sensitivity import (
    PAPER_HIDDEN_SIZES,
    PAPER_TIME_DIMS,
    format_sensitivity,
    run_sensitivity,
)
from repro.experiments.runtime import (
    RUNTIME_DATASETS,
    RUNTIME_MODELS,
    RuntimePoint,
    format_runtime,
    run_runtime,
)
from repro.experiments.case_study import (
    CaseStudyResult,
    format_case_study,
    run_case_study,
)

__all__ = [
    "ExperimentConfig",
    "SMOKE",
    "SMALL",
    "PAPER_SHAPE",
    "PRESETS",
    "snapshot_size_for",
    "build_dataset",
    "dataset_for",
    "evaluate_model",
    "set_default_trial_cache",
    "CODE_VERSION",
    "DEFAULT_CACHE_DIR",
    "ParallelRunner",
    "SweepProgress",
    "TrialCache",
    "TrialOutcome",
    "TrialResult",
    "TrialSpec",
    "failed_trials",
    "run_table_parallel",
    "run_trial",
    "summarize_trials",
    "trial_cache_key",
    "trial_specs",
    "render_table",
    "render_heatmap",
    "render_bar_chart",
    "format_duration",
    "table1_rows",
    "format_table1",
    "run_table2",
    "format_table2",
    "category_means",
    "PAPER_F1",
    "run_table3",
    "format_table3",
    "PAPER_TABLE3_F1",
    "TABLE3_DATASETS",
    "TABLE3_MODELS",
    "run_ablation",
    "format_ablation",
    "ABLATION_DATASETS",
    "run_sensitivity",
    "format_sensitivity",
    "PAPER_HIDDEN_SIZES",
    "PAPER_TIME_DIMS",
    "run_runtime",
    "format_runtime",
    "RuntimePoint",
    "RUNTIME_MODELS",
    "RUNTIME_DATASETS",
    "run_case_study",
    "format_case_study",
    "CaseStudyResult",
]
