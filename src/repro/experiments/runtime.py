"""Figure 6: running time vs F1 of the continuous DGNNs.

The paper plots per-graph running time (microseconds) against F1 for
TP-GNN and the four continuous baselines on four datasets; models
closer to the top-left (fast + accurate) are better.  The reproduction
measures inference wall-clock per graph on the test split after
training at the configured scale.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.registry import make_model
from repro.experiments.config import ExperimentConfig, snapshot_size_for
from repro.experiments.reporting import render_table
from repro.experiments.runner import build_dataset
from repro.training.trainer import evaluate, inference_time_per_graph, train_model

#: Models compared in Fig. 6.
RUNTIME_MODELS = ("TGN", "DyGNN", "TGAT", "GraphMixer", "TP-GNN-SUM", "TP-GNN-GRU")
RUNTIME_DATASETS = ("Forum-java", "HDFS", "Gowalla", "Brightkite")


@dataclass(frozen=True)
class RuntimePoint:
    """One scatter point of Fig. 6."""

    dataset: str
    model: str
    microseconds_per_graph: float
    f1: float


def run_runtime(
    config: ExperimentConfig,
    datasets: tuple[str, ...] = RUNTIME_DATASETS,
    models: tuple[str, ...] = RUNTIME_MODELS,
    progress=None,
) -> list[RuntimePoint]:
    """Train each model once per dataset; time inference per graph."""
    points: list[RuntimePoint] = []
    for dataset_name in datasets:
        dataset = build_dataset(dataset_name, config)
        train_data, test_data = dataset.split(config.train_fraction)
        for model_name in models:
            model = make_model(
                model_name,
                in_features=dataset.feature_dim,
                seed=config.seed,
                hidden_size=config.hidden_size,
                time_dim=config.time_dim,
                snapshot_size=snapshot_size_for(dataset_name),
            )
            train_model(model, train_data, config.train_config())
            metrics = evaluate(model, test_data)
            seconds = inference_time_per_graph(model, test_data)
            point = RuntimePoint(
                dataset=dataset_name,
                model=model_name,
                microseconds_per_graph=seconds * 1e6,
                f1=metrics.f1,
            )
            points.append(point)
            if progress is not None:
                progress(point)
    return points


def format_runtime(points: list[RuntimePoint]) -> str:
    """Render the Fig. 6 scatter as a table sorted by dataset, then time."""
    rows = [
        {
            "Dataset": p.dataset,
            "Model": p.model,
            "us/graph": f"{p.microseconds_per_graph:,.0f}",
            "F1": f"{100 * p.f1:.2f}",
        }
        for p in sorted(points, key=lambda p: (p.dataset, p.microseconds_per_graph))
    ]
    return render_table(rows, title="Fig. 6 — running time (per graph) vs F1, continuous DGNNs")
