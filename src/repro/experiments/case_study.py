"""Figure 7 case study: TP-GNN reacts to information-flow edits.

The paper selects a positive Brightkite trajectory and shows that
(1) swapping an early edge with a late one and (2) flipping an edge's
direction both change the information flow enough for a trained TP-GNN
to flag the modified graph as negative, and explains the effect through
the influential-node sets.

The reproduction trains TP-GNN on the Brightkite-profile dataset and
applies the same two edits to the most confidently-positive test
trajectories.  At CPU scale a single one-edge edit on a single graph is
statistically invisible (the paper's model is trained on ~31k graphs),
so the probe (a) scales the number of swapped pairs with the
trajectory length and (b) averages over several probe trajectories;
the influence-set explanation is reported for the first probe.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.model import TPGNN
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import build_dataset
from repro.graph.ctdn import CTDN
from repro.graph.edge import TemporalEdge
from repro.graph.reachability import influence_sets
from repro.training.trainer import train_model


@dataclass(frozen=True)
class CaseStudyResult:
    """Outcome of the Fig. 7 perturbation study (averages over probes)."""

    original_probability: float
    swapped_probability: float
    flipped_probability: float
    influence_size_original: int
    influence_size_swapped: int
    affected_node: int
    num_probes: int

    @property
    def swap_flags_negative(self) -> bool:
        """Did the early/late time swaps reduce the positive probability?"""
        return self.swapped_probability < self.original_probability

    @property
    def flip_flags_negative(self) -> bool:
        """Did the direction flips reduce the positive probability?"""
        return self.flipped_probability < self.original_probability


def _swap_early_late(graph: CTDN, rng: np.random.Generator) -> tuple[CTDN, int]:
    """Swap timestamps of early-quarter and late-quarter edges.

    The number of swapped pairs scales with trajectory length (one pair
    per ~6 edges), keeping the edit proportionally as visible as the
    paper's single swap is at its trajectory sizes.  Returns the edited
    graph and the target node of the last swapped late edge.
    """
    edges = graph.edges_sorted()
    m = len(edges)
    swapped = list(edges)
    affected = edges[-1].dst
    for _ in range(max(1, m // 6)):
        early = int(rng.integers(0, max(1, m // 4)))
        late = int(rng.integers(3 * m // 4, m))
        early_edge, late_edge = swapped[early], swapped[late]
        swapped[early] = early_edge.at(edges[late].time)
        swapped[late] = late_edge.at(edges[early].time)
        affected = late_edge.dst
    return graph.with_edges(swapped), affected


def _flip_late_edges(graph: CTDN, rng: np.random.Generator) -> CTDN:
    """Reverse the direction of late edges (paper's second edit)."""
    edges = graph.edges_sorted()
    m = len(edges)
    flipped = list(edges)
    for _ in range(max(1, m // 6)):
        index = int(rng.integers(3 * m // 4, m))
        flipped[index] = TemporalEdge(
            flipped[index].dst, flipped[index].src, flipped[index].time
        )
    return graph.with_edges(flipped)


def run_case_study(
    config: ExperimentConfig, seed: int = 7, num_probes: int = 8
) -> CaseStudyResult:
    """Train TP-GNN on Brightkite and probe it with the Fig. 7 edits."""
    dataset = build_dataset("Brightkite", config)
    train_data, test_data = dataset.split(config.train_fraction)
    model = TPGNN(
        dataset.feature_dim,
        updater="sum",
        hidden_size=config.hidden_size,
        gru_hidden_size=config.hidden_size,
        time_dim=config.time_dim,
        seed=config.seed,
    )
    train_model(model, train_data, config.train_config())

    positives = [g for g in test_data if g.label == 1 and g.num_edges >= 8]
    if not positives:
        raise RuntimeError("no suitable positive trajectory in the test split")
    probes = sorted(positives, key=model.predict_proba, reverse=True)[:num_probes]

    rng = np.random.default_rng(seed)
    original, swapped_p, flipped_p = [], [], []
    first_swap: CTDN | None = None
    affected_node = 0
    for probe in probes:
        swapped, affected = _swap_early_late(probe, rng)
        flipped = _flip_late_edges(probe, rng)
        if first_swap is None:
            first_swap = swapped
            first_probe = probe
            affected_node = affected
        original.append(model.predict_proba(probe))
        swapped_p.append(model.predict_proba(swapped))
        flipped_p.append(model.predict_proba(flipped))

    original_sets = influence_sets(first_probe)
    swapped_sets = influence_sets(first_swap)
    return CaseStudyResult(
        original_probability=float(np.mean(original)),
        swapped_probability=float(np.mean(swapped_p)),
        flipped_probability=float(np.mean(flipped_p)),
        influence_size_original=len(original_sets[affected_node]),
        influence_size_swapped=len(swapped_sets[affected_node]),
        affected_node=affected_node,
        num_probes=len(probes),
    )


def format_case_study(result: CaseStudyResult) -> str:
    """Render the case study as text."""
    lines = [
        f"Fig. 7 — case study over {result.num_probes} positive Brightkite trajectories",
        f"  mean P(positive | original)         = {result.original_probability:.3f}",
        f"  mean P(positive | early/late swaps) = {result.swapped_probability:.3f}"
        f"  -> {'flagged' if result.swap_flags_negative else 'NOT flagged'}",
        f"  mean P(positive | direction flips)  = {result.flipped_probability:.3f}"
        f"  -> {'flagged' if result.flip_flags_negative else 'NOT flagged'}",
        f"  influential set of node v{result.affected_node}: "
        f"{result.influence_size_original} nodes -> {result.influence_size_swapped} after the swap",
    ]
    return "\n".join(lines)
