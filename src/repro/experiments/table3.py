"""Table III: continuous DGNNs equipped with the global extractor.

Replaces mean pooling with TP-GNN's global temporal embedding extractor
in every continuous baseline (``TGAT+G`` … ``GraphMixer+G``) and
compares against the full TP-GNN.  The paper's shape: ``+G`` improves
every baseline but stays below TP-GNN, isolating the contribution of
temporal propagation.
"""

from __future__ import annotations

from repro.baselines.registry import PLUS_G_MODELS, TPGNN_MODELS
from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import render_table
from repro.experiments.runner import evaluate_model
from repro.training.metrics import MetricSummary

#: Paper Table III F1 means (%).
PAPER_TABLE3_F1 = {
    "Forum-java": {"TGAT+G": 97.87, "DyGNN+G": 97.12, "TGN+G": 97.65, "GraphMixer+G": 98.04,
                   "TP-GNN-SUM": 99.21, "TP-GNN-GRU": 98.27},
    "HDFS": {"TGAT+G": 95.14, "DyGNN+G": 97.87, "TGN+G": 97.17, "GraphMixer+G": 96.62,
             "TP-GNN-SUM": 98.16, "TP-GNN-GRU": 97.52},
    "Gowalla": {"TGAT+G": 94.33, "DyGNN+G": 95.93, "TGN+G": 93.50, "GraphMixer+G": 96.25,
                "TP-GNN-SUM": 98.23, "TP-GNN-GRU": 97.42},
    "Brightkite": {"TGAT+G": 93.65, "DyGNN+G": 94.90, "TGN+G": 92.38, "GraphMixer+G": 94.23,
                   "TP-GNN-SUM": 95.61, "TP-GNN-GRU": 96.66},
}

#: The paper evaluates Table III on four of the five datasets.
TABLE3_DATASETS = ("Forum-java", "HDFS", "Gowalla", "Brightkite")
TABLE3_MODELS = PLUS_G_MODELS + TPGNN_MODELS

Table3Results = dict[str, dict[str, MetricSummary]]


def run_table3(
    config: ExperimentConfig,
    datasets: tuple[str, ...] = TABLE3_DATASETS,
    models: tuple[str, ...] = TABLE3_MODELS,
    progress=None,
) -> Table3Results:
    """Evaluate the ``+G`` wrappers and TP-GNN on each dataset."""
    results: Table3Results = {}
    for dataset in datasets:
        results[dataset] = {}
        for model in models:
            summary = evaluate_model(model, dataset, config)
            results[dataset][model] = summary
            if progress is not None:
                progress(dataset, model, summary)
    return results


def format_table3(results: Table3Results) -> str:
    """Render measured F1 next to the paper's values."""
    models = list(next(iter(results.values())).keys())
    rows = []
    for model in models:
        row: dict[str, object] = {"Model": model}
        for dataset, per_model in results.items():
            paper = PAPER_TABLE3_F1.get(dataset, {}).get(model)
            measured = per_model[model].format_cell("f1")
            row[dataset] = f"{measured} (paper {paper:.2f})" if paper else measured
        rows.append(row)
    return render_table(rows, title="Table III — F1 with the global temporal embedding extractor")
