"""Figure 5: hyperparameter sensitivity of TP-GNN-SUM.

Sweeps the GRU hidden size ``d`` and the time dimension ``d_t`` and
reports the F1 grid per dataset.  The paper's shape: F1 rises with both
parameters and plateaus around d=32, d_t=6.
"""

from __future__ import annotations

from repro.core.model import TPGNN
from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import render_heatmap
from repro.experiments.runner import build_dataset
from repro.training.trainer import run_trials

#: The paper's sweep values.
PAPER_HIDDEN_SIZES = (8, 16, 32, 64, 128)
PAPER_TIME_DIMS = (2, 4, 6, 8)

SensitivityResults = dict[str, dict[tuple[int, int], float]]


def run_sensitivity(
    config: ExperimentConfig,
    datasets: tuple[str, ...] = ("Forum-java", "HDFS"),
    hidden_sizes: tuple[int, ...] = PAPER_HIDDEN_SIZES,
    time_dims: tuple[int, ...] = PAPER_TIME_DIMS,
    updater: str = "sum",
    progress=None,
) -> SensitivityResults:
    """F1 of TP-GNN for every (d, d_t) combination on each dataset."""
    results: SensitivityResults = {}
    for dataset_name in datasets:
        dataset = build_dataset(dataset_name, config)
        grid: dict[tuple[int, int], float] = {}
        for hidden in hidden_sizes:
            for time_dim in time_dims:
                def factory(seed: int, _d=hidden, _dt=time_dim):
                    return TPGNN(
                        dataset.feature_dim,
                        updater=updater,
                        hidden_size=_d,
                        gru_hidden_size=_d,
                        time_dim=_dt,
                        seed=seed,
                    )

                summary = run_trials(
                    factory,
                    dataset,
                    config.train_config(),
                    runs=config.runs,
                    train_fraction=config.train_fraction,
                )
                grid[(hidden, time_dim)] = summary.f1_mean
                if progress is not None:
                    progress(dataset_name, hidden, time_dim, summary)
        results[dataset_name] = grid
    return results


def format_sensitivity(results: SensitivityResults) -> str:
    """Render one F1 heat-map per dataset (rows d, columns d_t)."""
    blocks = []
    for dataset, grid in results.items():
        hidden_sizes = sorted({d for d, _ in grid})
        time_dims = sorted({dt for _, dt in grid})
        values = [
            [100.0 * grid[(d, dt)] for dt in time_dims] for d in hidden_sizes
        ]
        blocks.append(
            render_heatmap(
                values,
                row_labels=[f"d={d}" for d in hidden_sizes],
                col_labels=[f"dt={dt}" for dt in time_dims],
                title=f"Fig. 5 — TP-GNN sensitivity on {dataset} (F1 %)",
            )
        )
    return "\n\n".join(blocks)
