"""Shared machinery for running reproduction experiments."""

from __future__ import annotations

from functools import lru_cache
from typing import TYPE_CHECKING

from repro.baselines.registry import make_model
from repro.data.registry import make_dataset
from repro.experiments.config import ExperimentConfig, snapshot_size_for
from repro.graph.dataset import GraphDataset
from repro.training.metrics import MetricSummary
from repro.training.trainer import run_trials

if TYPE_CHECKING:
    from repro.experiments.parallel import TrialCache

#: Process-wide default trial cache (see :func:`set_default_trial_cache`).
_default_trial_cache: "TrialCache | None" = None


def set_default_trial_cache(cache: "TrialCache | None") -> "TrialCache | None":
    """Install a process-wide trial cache for :func:`evaluate_model`.

    Returns the previously installed cache so callers (e.g. the
    benchmark suite's session fixture) can restore it.  Passing ``None``
    disables caching again.
    """
    global _default_trial_cache
    previous = _default_trial_cache
    _default_trial_cache = cache
    return previous


@lru_cache(maxsize=16)
def dataset_for(name: str, num_graphs: int, seed: int, scale: float) -> GraphDataset:
    """Deterministically build (and memoise) one dataset.

    The memo is per process: parallel trial workers each build the
    datasets they need once, and repeated cells within a process reuse
    them.  Generation is deterministic, so a hit is exactly equivalent
    to regeneration.
    """
    return make_dataset(name, num_graphs, seed=seed, scale=scale)


def build_dataset(name: str, config: ExperimentConfig) -> GraphDataset:
    """Build (and cache) the dataset ``config`` describes.

    Caching matters because one benchmark session evaluates many models
    on the same datasets.
    """
    return dataset_for(name, config.num_graphs, config.seed, config.graph_scale)


def evaluate_model(
    model_name: str,
    dataset_name: str,
    config: ExperimentConfig,
    cache: "TrialCache | None" = None,
) -> MetricSummary:
    """Train + evaluate one model on one dataset per the paper's protocol.

    Chronological ``train_fraction`` split, ``config.runs`` independent
    seeded repetitions, metrics averaged with std — the Table II cell
    for (model, dataset).

    With a ``cache`` (explicit, or installed process-wide via
    :func:`set_default_trial_cache`), each repetition is first looked up
    in the on-disk trial cache and only missing runs execute; cold
    results are identical to the uncached path.
    """
    if cache is None:
        cache = _default_trial_cache
    if cache is not None:
        # Imported lazily: parallel imports this module at load time.
        from repro.experiments.parallel import run_cell_cached

        return run_cell_cached(model_name, dataset_name, config, cache)

    dataset = build_dataset(dataset_name, config)
    snapshot_size = snapshot_size_for(dataset_name)

    def factory(seed: int):
        return make_model(
            model_name,
            in_features=dataset.feature_dim,
            seed=seed,
            hidden_size=config.hidden_size,
            time_dim=config.time_dim,
            snapshot_size=snapshot_size,
        )

    return run_trials(
        factory,
        dataset,
        config.train_config(),
        runs=config.runs,
        train_fraction=config.train_fraction,
    )
