"""Shared machinery for running reproduction experiments."""

from __future__ import annotations

from functools import lru_cache

from repro.baselines.registry import make_model
from repro.data.registry import make_dataset
from repro.experiments.config import ExperimentConfig, snapshot_size_for
from repro.graph.dataset import GraphDataset
from repro.training.metrics import MetricSummary
from repro.training.trainer import run_trials


@lru_cache(maxsize=16)
def _cached_dataset(name: str, num_graphs: int, seed: int, scale: float) -> GraphDataset:
    return make_dataset(name, num_graphs, seed=seed, scale=scale)


def build_dataset(name: str, config: ExperimentConfig) -> GraphDataset:
    """Deterministically build (and cache) a dataset for ``config``.

    Caching matters because one benchmark session evaluates many models
    on the same datasets; generation is deterministic so a cache hit is
    exactly equivalent to regeneration.
    """
    return _cached_dataset(name, config.num_graphs, config.seed, config.graph_scale)


def evaluate_model(
    model_name: str, dataset_name: str, config: ExperimentConfig
) -> MetricSummary:
    """Train + evaluate one model on one dataset per the paper's protocol.

    Chronological ``train_fraction`` split, ``config.runs`` independent
    seeded repetitions, metrics averaged with std — the Table II cell
    for (model, dataset).
    """
    dataset = build_dataset(dataset_name, config)
    snapshot_size = snapshot_size_for(dataset_name)

    def factory(seed: int):
        return make_model(
            model_name,
            in_features=dataset.feature_dim,
            seed=seed,
            hidden_size=config.hidden_size,
            time_dim=config.time_dim,
            snapshot_size=snapshot_size,
        )

    return run_trials(
        factory,
        dataset,
        config.train_config(),
        runs=config.runs,
        train_fraction=config.train_fraction,
    )
