"""Table II: dynamic graph classification across all models and datasets.

The paper's headline result: F1 / Precision / Recall of four static
GNNs, four discrete DGNNs, four continuous DGNNs and the two TP-GNN
variants on five datasets.  The reproduction asserts the qualitative
*shape* rather than absolute numbers (see DESIGN.md §4):

* category ordering on average: static < discrete < continuous;
* TP-GNN (best of SUM/GRU) is the best model overall on average.
"""

from __future__ import annotations

from repro.baselines.registry import (
    ALL_MODELS,
    CONTINUOUS_MODELS,
    DISCRETE_MODELS,
    STATIC_MODELS,
    TPGNN_MODELS,
)
from repro.data.registry import DATASET_NAMES
from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import render_table
from repro.experiments.runner import evaluate_model
from repro.training.metrics import MetricSummary

#: Paper Table II F1 means (%), used for side-by-side reporting.
PAPER_F1 = {
    "Forum-java": {
        "Spectral Clustering": 74.23, "GCN": 83.86, "GraphSage": 84.11, "GAT": 80.12,
        "AddGraph": 84.67, "TADDY": 88.10, "EvolveGCN": 82.17, "GC-LSTM": 87.67,
        "TGN": 93.12, "DyGNN": 94.25, "TGAT": 95.96, "GraphMixer": 96.44,
        "TP-GNN-GRU": 98.53, "TP-GNN-SUM": 99.21,
    },
    "HDFS": {
        "Spectral Clustering": 61.71, "GCN": 84.49, "GraphSage": 86.60, "GAT": 82.91,
        "AddGraph": 87.20, "TADDY": 82.29, "EvolveGCN": 81.46, "GC-LSTM": 89.71,
        "TGN": 89.54, "DyGNN": 94.89, "TGAT": 90.44, "GraphMixer": 93.06,
        "TP-GNN-GRU": 97.53, "TP-GNN-SUM": 98.26,
    },
    "Gowalla": {
        "Spectral Clustering": 58.47, "GCN": 82.90, "GraphSage": 83.21, "GAT": 87.76,
        "AddGraph": 82.82, "TADDY": 88.70, "EvolveGCN": 84.87, "GC-LSTM": 92.36,
        "TGN": 93.25, "DyGNN": 92.13, "TGAT": 91.96, "GraphMixer": 94.62,
        "TP-GNN-GRU": 98.08, "TP-GNN-SUM": 98.23,
    },
    "FourSquare": {
        "Spectral Clustering": 63.41, "GCN": 82.10, "GraphSage": 83.11, "GAT": 81.75,
        "AddGraph": 85.59, "TADDY": 88.81, "EvolveGCN": 86.68, "GC-LSTM": 88.41,
        "TGN": 92.09, "DyGNN": 94.64, "TGAT": 91.89, "GraphMixer": 94.11,
        "TP-GNN-GRU": 99.58, "TP-GNN-SUM": 99.02,
    },
    "Brightkite": {
        "Spectral Clustering": 62.63, "GCN": 76.56, "GraphSage": 80.12, "GAT": 81.42,
        "AddGraph": 81.31, "TADDY": 84.42, "EvolveGCN": 81.83, "GC-LSTM": 81.82,
        "TGN": 85.26, "DyGNN": 83.25, "TGAT": 84.57, "GraphMixer": 86.80,
        "TP-GNN-GRU": 96.66, "TP-GNN-SUM": 95.61,
    },
}

Table2Results = dict[str, dict[str, MetricSummary]]


def run_table2(
    config: ExperimentConfig,
    datasets: tuple[str, ...] = DATASET_NAMES,
    models: tuple[str, ...] = ALL_MODELS,
    progress=None,
) -> Table2Results:
    """Evaluate every (dataset, model) pair.

    ``progress`` is an optional callback ``(dataset, model, summary)``
    invoked after each cell, for streaming output from the benchmarks.
    """
    results: Table2Results = {}
    for dataset in datasets:
        results[dataset] = {}
        for model in models:
            summary = evaluate_model(model, dataset, config)
            results[dataset][model] = summary
            if progress is not None:
                progress(dataset, model, summary)
    return results


def format_table2(results: Table2Results) -> str:
    """Render the measured cells next to the paper's F1 values."""
    blocks = []
    for dataset, per_model in results.items():
        rows = []
        for model, summary in per_model.items():
            rows.append(
                {
                    "Model": model,
                    "F1": summary.format_cell("f1"),
                    "Precision": summary.format_cell("precision"),
                    "Recall": summary.format_cell("recall"),
                    "paper F1": f"{PAPER_F1[dataset].get(model, float('nan')):.2f}",
                }
            )
        blocks.append(render_table(rows, title=f"Table II — {dataset}"))
    return "\n\n".join(blocks)


def category_means(results: Table2Results) -> dict[str, float]:
    """Average F1 per model category across all evaluated datasets."""
    groups = {
        "static": STATIC_MODELS,
        "discrete": DISCRETE_MODELS,
        "continuous": CONTINUOUS_MODELS,
        "ours": TPGNN_MODELS,
    }
    means: dict[str, float] = {}
    for label, members in groups.items():
        cells = [
            summary.f1_mean
            for per_model in results.values()
            for model, summary in per_model.items()
            if model in members
        ]
        if cells:
            means[label] = sum(cells) / len(cells)
    return means
