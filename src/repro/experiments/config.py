"""Experiment configuration presets.

The paper trains on 10^5-10^6 graphs with a V100; the reproduction runs
every experiment at a configurable scale.  Three presets are provided:

* ``SMOKE``  — seconds per (model, dataset) pair; used by the pytest
  benchmarks so the full suite regenerates every table/figure quickly.
* ``SMALL``  — minutes; the scale EXPERIMENTS.md numbers are recorded at.
* ``PAPER_SHAPE`` — the largest CPU-feasible scale, for manual runs.

Graph *sizes* follow Table I scaled by ``graph_scale``; training uses a
higher learning rate and more epochs than the paper because the graph
count is orders of magnitude smaller (documented in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.training.trainer import TrainConfig


@dataclass(frozen=True)
class ExperimentConfig:
    """Scale and hyperparameters of one reproduction experiment."""

    num_graphs: int = 160
    graph_scale: float = 0.25
    epochs: int = 20
    learning_rate: float = 0.01
    batch_size: int = 4
    runs: int = 3
    hidden_size: int = 32
    time_dim: int = 6
    train_fraction: float = 0.3
    seed: int = 0

    def train_config(self, seed_offset: int = 0) -> TrainConfig:
        """Materialise the trainer configuration."""
        return TrainConfig(
            epochs=self.epochs,
            learning_rate=self.learning_rate,
            batch_size=self.batch_size,
            seed=self.seed + seed_offset,
        )

    def with_overrides(self, **overrides) -> "ExperimentConfig":
        """Return a modified copy (keyword fields only)."""
        return replace(self, **overrides)


#: Fast preset used by the pytest benchmarks.
SMOKE = ExperimentConfig(
    num_graphs=120, graph_scale=0.2, epochs=10, runs=1, hidden_size=16, time_dim=4
)

#: Reference preset for EXPERIMENTS.md numbers.
SMALL = ExperimentConfig(
    num_graphs=300, graph_scale=0.25, epochs=20, runs=2, hidden_size=32, time_dim=6
)

#: Largest CPU-feasible preset (manual runs).
PAPER_SHAPE = ExperimentConfig(
    num_graphs=500, graph_scale=0.5, epochs=20, runs=5, hidden_size=32, time_dim=6
)

PRESETS = {"smoke": SMOKE, "small": SMALL, "paper": PAPER_SHAPE}


def snapshot_size_for(dataset_name: str) -> int:
    """The paper's snapshot sizes: 5 for log datasets, 20 for trajectories."""
    return 5 if dataset_name in ("Forum-java", "HDFS") else 20
