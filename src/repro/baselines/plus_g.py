"""``+G`` wrappers: baseline encoders + the global temporal extractor.

Table III of the paper replaces each continuous DGNN's mean pooling
with TP-GNN's global temporal embedding extractor: the baseline's node
embeddings are converted to a chronological edge-embedding sequence and
GRU-encoded into the graph embedding.  The result isolates the
contribution of temporal propagation (the only remaining difference
from the full TP-GNN).
"""

from __future__ import annotations

import numpy as np

from repro.core.base import GraphClassifierBase
from repro.core.extractor import GlobalTemporalExtractor
from repro.graph.ctdn import CTDN
from repro.tensor import Tensor


class PlusGlobalExtractor(GraphClassifierBase):
    """Wrap any node-embedding model with the global temporal extractor.

    Parameters
    ----------
    encoder:
        A model exposing ``node_embeddings(graph) -> Tensor (n, d)``
        (all baselines in this package do).  Its parameters are trained
        jointly with the extractor.
    node_dim:
        Width of the encoder's node embeddings.
    gru_hidden_size:
        Hidden width of the extractor GRU (graph embedding size).
    seed:
        Seed for the extractor and classifier head initialisation.
    """

    def __init__(
        self,
        encoder: GraphClassifierBase,
        node_dim: int | None = None,
        gru_hidden_size: int = 32,
        seed: int = 0,
    ):
        rng = np.random.default_rng(seed)
        super().__init__(embedding_dim=gru_hidden_size, rng=rng)
        if not hasattr(encoder, "node_embeddings"):
            raise TypeError(
                f"{type(encoder).__name__} does not expose node_embeddings(); "
                "cannot attach the global temporal extractor"
            )
        node_dim = node_dim if node_dim is not None else encoder.embedding_dim
        self.encoder = encoder
        self.extractor = GlobalTemporalExtractor(
            node_dim=node_dim, hidden_size=gru_hidden_size, rng=rng
        )

    @property
    def name(self) -> str:
        """Display name, e.g. ``TGAT+G``."""
        return f"{type(self.encoder).__name__}+G"

    def embed(self, graph: CTDN, rng: np.random.Generator | None = None) -> Tensor:
        """Encoder node embeddings -> chronological edge GRU -> g."""
        if graph.num_edges == 0:
            raise ValueError("+G models require at least one temporal edge per graph")
        if rng is not None:
            graph = graph.with_edges(graph.edges_sorted(rng=rng))
        local = self.encoder.node_embeddings(graph)
        return self.extractor(local, graph)
