"""Continuous-DGNN baselines (paper Table II, bottom block).

TGAT, DyGNN, TGN and GraphMixer consume the raw timestamped edge stream
without snapshotting.  Each implementation keeps the defining mechanism
of its paper:

* **TGAT** — K layers of temporal self-attention over the ``b`` most
  recent in-neighbours, with Bochner/Time2Vec functional time encoding
  (paper config: 2 layers, 2 heads).
* **DyGNN** — LSTM-based *update* components refresh both endpoints of
  every interaction and a *propagate* component pushes the interaction
  message to recent neighbours with time decay.
* **TGN** — per-node memory, GRU memory updater fed by interaction
  messages, and an embedding module combining memory with raw features.
* **GraphMixer** — a token/channel-mixing MLP over the most recent
  1-hop links plus a mean-pooling node encoder.

As in the paper, node embeddings are mean-pooled into graph embeddings
for classification.  Every model also exposes ``node_embeddings`` so
the Table III ``+G`` wrappers can substitute the paper's global
temporal embedding extractor for the mean pooling.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import GraphClassifierBase, MeanReadout
from repro.graph.ctdn import CTDN
from repro.graph.reachability import temporal_neighbors
from repro.nn import GRUCell, Linear, LSTMCell, MultiHeadAttention, Time2Vec
from repro.tensor import Tensor, ops


class TGAT(GraphClassifierBase):
    """Temporal Graph Attention network (Xu et al., 2020)."""

    def __init__(
        self,
        in_features: int,
        hidden_size: int = 32,
        time_dim: int = 6,
        num_layers: int = 2,
        num_heads: int = 2,
        num_neighbors: int = 3,
        seed: int = 0,
    ):
        rng = np.random.default_rng(seed)
        super().__init__(embedding_dim=hidden_size, rng=rng)
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        self.num_neighbors = num_neighbors
        self.input_proj = Linear(in_features, hidden_size, rng=rng)
        self.time_encoder = Time2Vec(time_dim, rng=rng)
        self.query_proj = Linear(hidden_size + time_dim, hidden_size, rng=rng)
        self.attention = MultiHeadAttention(
            hidden_size, num_heads, kdim=hidden_size + time_dim, vdim=hidden_size + time_dim, rng=rng
        )
        self.combine = Linear(2 * hidden_size, hidden_size, rng=rng)

    def _node_at(self, graph: CTDN, node: int, at_time: float, layer: int) -> Tensor:
        """Recursive temporal attention embedding of ``node`` at ``at_time``."""
        base = self.input_proj(Tensor(graph.features[node : node + 1]))
        if layer == 0:
            return base
        h_self = self._node_at(graph, node, at_time, layer - 1)
        neighbors = temporal_neighbors(graph, node, before=at_time, limit=self.num_neighbors)
        if not neighbors:
            return ops.relu(self.combine(ops.concat([h_self, h_self], axis=1)))
        keys = []
        for neighbor, event_time in neighbors:
            h_n = self._node_at(graph, neighbor, event_time, layer - 1)
            delta = self.time_encoder(np.array([at_time - event_time]))
            keys.append(ops.concat([h_n, delta], axis=1))
        key_matrix = ops.concat(keys, axis=0)
        query = self.query_proj(
            ops.concat([h_self, self.time_encoder(np.array([0.0]))], axis=1)
        )
        attended = self.attention(query, key_matrix, key_matrix)
        return ops.relu(self.combine(ops.concat([attended, h_self], axis=1)))

    def node_embeddings(self, graph: CTDN, rng: np.random.Generator | None = None) -> Tensor:
        """Embed every node at the end of the observation window."""
        del rng
        end_time = max((e.time for e in graph.edges), default=0.0) + 1.0
        rows = [
            self._node_at(graph, node, end_time, self.num_layers).reshape(self.hidden_size)
            for node in range(graph.num_nodes)
        ]
        return ops.stack(rows, axis=0)

    def embed(self, graph: CTDN, rng: np.random.Generator | None = None) -> Tensor:
        """Mean-pool the temporal attention embeddings."""
        return MeanReadout()(self.node_embeddings(graph, rng=rng))


class DyGNN(GraphClassifierBase):
    """Streaming GNN with update/propagate components (Ma et al., 2020)."""

    def __init__(
        self,
        in_features: int,
        hidden_size: int = 32,
        num_propagate: int = 3,
        decay: float = 0.5,
        seed: int = 0,
    ):
        rng = np.random.default_rng(seed)
        super().__init__(embedding_dim=hidden_size, rng=rng)
        self.hidden_size = hidden_size
        self.num_propagate = num_propagate
        self.decay = decay
        self.input_proj = Linear(in_features, hidden_size, rng=rng)
        self.interact = Linear(2 * hidden_size, hidden_size, rng=rng)
        self.update_source = LSTMCell(hidden_size, hidden_size, rng=rng)
        self.update_target = LSTMCell(hidden_size, hidden_size, rng=rng)
        self.propagate = Linear(hidden_size, hidden_size, rng=rng)

    def node_embeddings(self, graph: CTDN, rng: np.random.Generator | None = None) -> Tensor:
        """Process the interaction stream chronologically."""
        del rng
        encoded = self.input_proj(Tensor(graph.features))
        h = [encoded[i].reshape(1, self.hidden_size) for i in range(graph.num_nodes)]
        c = [Tensor(np.zeros((1, self.hidden_size))) for _ in range(graph.num_nodes)]
        # Recent interaction partners and times, for the propagate step.
        partners: list[list[tuple[int, float]]] = [[] for _ in range(graph.num_nodes)]
        for edge in graph.edges_sorted():
            message = ops.tanh(
                self.interact(ops.concat([h[edge.src], h[edge.dst]], axis=1))
            )
            h[edge.src], c[edge.src] = self.update_source(message, (h[edge.src], c[edge.src]))
            h[edge.dst], c[edge.dst] = self.update_target(message, (h[edge.dst], c[edge.dst]))
            propagated = self.propagate(message)
            for endpoint in (edge.src, edge.dst):
                for neighbor, last_time in partners[endpoint][-self.num_propagate :]:
                    weight = float(np.exp(-self.decay * max(0.0, edge.time - last_time)))
                    h[neighbor] = h[neighbor] + weight * propagated
            partners[edge.src].append((edge.dst, edge.time))
            partners[edge.dst].append((edge.src, edge.time))
        rows = [state.reshape(self.hidden_size) for state in h]
        return ops.tanh(ops.stack(rows, axis=0))

    def embed(self, graph: CTDN, rng: np.random.Generator | None = None) -> Tensor:
        """Mean-pool the streamed node states."""
        return MeanReadout()(self.node_embeddings(graph, rng=rng))


class TGN(GraphClassifierBase):
    """Temporal Graph Network (Rossi et al., 2020).

    Per-node memories are updated by a GRU on interaction messages
    (memory of both endpoints + time-delta encoding); the embedding
    module fuses the final memory with the raw node features.  Note the
    contrast with TP-GNN that the paper highlights: TGN updates *both*
    endpoints symmetrically rather than following information flow.

    Faithful to the real system, events are processed in **batches**
    (``batch_size`` edges): messages within a batch are computed against
    the memory as of the batch start, aggregated per node by keeping the
    most recent message, and the memory is updated once per node per
    batch.  This is the "staleness" trade-off of the original TGN that
    the TIGER follow-up (cited by the paper) addresses — and a key
    reason TGN under-uses fine-grained edge ordering compared to
    TP-GNN's one-edge-at-a-time temporal propagation.
    """

    def __init__(
        self,
        in_features: int,
        hidden_size: int = 32,
        time_dim: int = 6,
        batch_size: int = 20,
        seed: int = 0,
    ):
        rng = np.random.default_rng(seed)
        super().__init__(embedding_dim=hidden_size, rng=rng)
        self.hidden_size = hidden_size
        self.batch_size = batch_size
        self.time_encoder = Time2Vec(time_dim, rng=rng)
        self.memory_updater = GRUCell(2 * hidden_size + time_dim, hidden_size, rng=rng)
        self.feature_proj = Linear(in_features, hidden_size, rng=rng)
        self.embed_proj = Linear(2 * hidden_size, hidden_size, rng=rng)

    def node_embeddings(self, graph: CTDN, rng: np.random.Generator | None = None) -> Tensor:
        """Run the batched memory module over the event stream and embed."""
        del rng
        n = graph.num_nodes
        memory = [Tensor(np.zeros((1, self.hidden_size))) for _ in range(n)]
        last_update = np.zeros(n)
        edges = graph.edges_sorted()
        for start in range(0, len(edges), self.batch_size):
            batch = edges[start : start + self.batch_size]
            # Most-recent-message aggregation: within the batch, messages
            # read the *stale* batch-start memory; only the latest message
            # per node survives.
            latest: dict[int, Tensor] = {}
            latest_time: dict[int, float] = {}
            for edge in batch:
                for node, other in ((edge.src, edge.dst), (edge.dst, edge.src)):
                    delta = self.time_encoder(np.array([edge.time - last_update[node]]))
                    latest[node] = ops.concat([memory[node], memory[other], delta], axis=1)
                    latest_time[node] = edge.time
            for node, message in latest.items():
                memory[node] = self.memory_updater(message, memory[node])
                last_update[node] = latest_time[node]
        memory_matrix = ops.concat(memory, axis=0)
        features = self.feature_proj(Tensor(graph.features))
        return ops.relu(self.embed_proj(ops.concat([memory_matrix, features], axis=1)))

    def embed(self, graph: CTDN, rng: np.random.Generator | None = None) -> Tensor:
        """Mean-pool the memory-based embeddings."""
        return MeanReadout()(self.node_embeddings(graph, rng=rng))


class GraphMixer(GraphClassifierBase):
    """MLP-only temporal model (Cong et al., 2023).

    The link encoder tokenises each node's ``K`` most recent incoming
    interactions as (time-encoding ‖ source features) rows, mixes them
    with a two-layer token/channel MLP, and fuses the result with a
    mean-pooling node encoder.
    """

    def __init__(
        self,
        in_features: int,
        hidden_size: int = 32,
        time_dim: int = 6,
        num_recent: int = 5,
        seed: int = 0,
    ):
        rng = np.random.default_rng(seed)
        super().__init__(embedding_dim=hidden_size, rng=rng)
        self.hidden_size = hidden_size
        self.num_recent = num_recent
        self.time_encoder = Time2Vec(time_dim, rng=rng)
        token_dim = time_dim + in_features
        self.channel_mix1 = Linear(token_dim, hidden_size, rng=rng)
        self.channel_mix2 = Linear(hidden_size, hidden_size, rng=rng)
        self.token_mix1 = Linear(num_recent, num_recent, rng=rng)
        self.token_mix2 = Linear(num_recent, num_recent, rng=rng)
        self.node_proj = Linear(in_features, hidden_size, rng=rng)
        self.fuse = Linear(2 * hidden_size, hidden_size, rng=rng)

    def _link_tokens(self, graph: CTDN, node: int, end_time: float) -> Tensor:
        """(K, time_dim + q) token matrix of the most recent in-links."""
        recent = temporal_neighbors(graph, node, before=end_time, limit=self.num_recent)
        token_dim = self.time_encoder.dim + graph.feature_dim
        rows = []
        for neighbor, event_time in recent:
            encoding = self.time_encoder(np.array([end_time - event_time]))
            source = Tensor(graph.features[neighbor : neighbor + 1])
            rows.append(ops.concat([encoding, source], axis=1))
        while len(rows) < self.num_recent:
            rows.append(Tensor(np.zeros((1, token_dim))))
        return ops.concat(rows, axis=0)

    def node_embeddings(self, graph: CTDN, rng: np.random.Generator | None = None) -> Tensor:
        """Mix recent-link tokens per node; fuse with the node encoder."""
        del rng
        end_time = max((e.time for e in graph.edges), default=0.0) + 1.0
        neighbor_mean = np.zeros_like(graph.features)
        counts = np.zeros(graph.num_nodes)
        for edge in graph.edges:
            neighbor_mean[edge.dst] += graph.features[edge.src]
            counts[edge.dst] += 1
        neighbor_mean /= np.maximum(counts, 1.0)[:, None]
        node_context = self.node_proj(Tensor(graph.features + neighbor_mean))

        rows = []
        for node in range(graph.num_nodes):
            tokens = self._link_tokens(graph, node, end_time)  # (K, token_dim)
            channels = ops.relu(self.channel_mix1(tokens))  # (K, d)
            mixed = self.token_mix2(ops.relu(self.token_mix1(channels.T))).T  # (K, d)
            link_info = self.channel_mix2(mixed).mean(axis=0).reshape(1, self.hidden_size)
            fused = self.fuse(
                ops.concat([link_info, node_context[node].reshape(1, self.hidden_size)], axis=1)
            )
            rows.append(ops.relu(fused).reshape(self.hidden_size))
        return ops.stack(rows, axis=0)

    def embed(self, graph: CTDN, rng: np.random.Generator | None = None) -> Tensor:
        """Mean-pool the mixer embeddings."""
        return MeanReadout()(self.node_embeddings(graph, rng=rng))
