"""Static-graph baselines (paper Table II, top block).

Spectral Clustering, GCN, GraphSAGE and GAT all ignore edge timestamps:
the CTDN is collapsed into a static (undirected, for spectral methods)
graph before node embeddings are computed.  Graph embeddings use Mean
pooling, as the paper prescribes for all node-level baselines.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import GraphClassifierBase, MeanReadout
from repro.graph.ctdn import CTDN
from repro.graph.static import (
    gcn_normalized_adjacency,
    laplacian,
    mean_aggregation_matrix,
)
from repro.nn import Linear, Module
from repro.tensor import Tensor, ops


class SpectralClusteringModel(GraphClassifierBase):
    """Spectral clustering baseline (Ng, Jordan & Weiss, 2001).

    Node embeddings are the leading eigenvectors of the normalised
    Laplacian of the *undirected* collapsed graph — as the paper notes,
    the method must symmetrise the graph and ignores node features,
    which is why it trails every learned baseline.  Only the classifier
    head on the pooled spectral embedding is trained.
    """

    def __init__(self, in_features: int, hidden_size: int = 32, seed: int = 0):
        del in_features  # spectral clustering ignores node features
        rng = np.random.default_rng(seed)
        super().__init__(embedding_dim=hidden_size, rng=rng)
        self.hidden_size = hidden_size
        self.readout = MeanReadout()

    def node_embeddings(self, graph: CTDN, rng: np.random.Generator | None = None) -> Tensor:
        """Spectral node embedding: |leading Laplacian eigenvectors|.

        Absolute values are taken because eigenvector signs are
        arbitrary; columns are ordered by ascending eigenvalue and
        padded with zeros when the graph has fewer nodes than the
        embedding width.
        """
        del rng
        lap = laplacian(graph, normalized=True)
        eigenvalues, eigenvectors = np.linalg.eigh(lap)
        order = np.argsort(eigenvalues)
        width = min(self.hidden_size, graph.num_nodes)
        embedding = np.zeros((graph.num_nodes, self.hidden_size))
        embedding[:, :width] = np.abs(eigenvectors[:, order[:width]])
        # Scale rows by eigenvalues so pooled embeddings carry spectrum info.
        scale = np.zeros(self.hidden_size)
        scale[:width] = 1.0 + eigenvalues[order[:width]]
        return Tensor(embedding * scale)

    def embed(self, graph: CTDN, rng: np.random.Generator | None = None) -> Tensor:
        """Mean-pool the spectral node embeddings."""
        return self.readout(self.node_embeddings(graph, rng=rng))


class GCNLayer(Module):
    """One graph-convolution layer ``act(Â H W)``."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator):
        super().__init__()
        self.linear = Linear(in_features, out_features, rng=rng)

    def forward(self, adjacency: Tensor, h: Tensor) -> Tensor:
        """Propagate ``h`` through the normalised adjacency."""
        return adjacency @ self.linear(h)


class GCN(GraphClassifierBase):
    """Two-layer GCN (Kipf & Welling, 2017) with mean pooling."""

    def __init__(self, in_features: int, hidden_size: int = 32, seed: int = 0):
        rng = np.random.default_rng(seed)
        super().__init__(embedding_dim=hidden_size, rng=rng)
        self.layer1 = GCNLayer(in_features, hidden_size, rng)
        self.layer2 = GCNLayer(hidden_size, hidden_size, rng)
        self.readout = MeanReadout()

    def node_embeddings(self, graph: CTDN, rng: np.random.Generator | None = None) -> Tensor:
        """Two rounds of symmetric-normalised neighbourhood smoothing."""
        del rng
        adjacency = Tensor(gcn_normalized_adjacency(graph))
        h = ops.relu(self.layer1(adjacency, Tensor(graph.features)))
        return self.layer2(adjacency, h)

    def embed(self, graph: CTDN, rng: np.random.Generator | None = None) -> Tensor:
        """Mean-pool the GCN node embeddings."""
        return self.readout(self.node_embeddings(graph, rng=rng))


class GraphSAGE(GraphClassifierBase):
    """Two-layer GraphSAGE with the MEAN aggregator (Hamilton et al., 2017).

    Each layer concatenates a node's own representation with the mean of
    its neighbours' and applies a shared linear map — the paper's chosen
    configuration.
    """

    def __init__(self, in_features: int, hidden_size: int = 32, seed: int = 0):
        rng = np.random.default_rng(seed)
        super().__init__(embedding_dim=hidden_size, rng=rng)
        self.layer1 = Linear(2 * in_features, hidden_size, rng=rng)
        self.layer2 = Linear(2 * hidden_size, hidden_size, rng=rng)
        self.readout = MeanReadout()

    def node_embeddings(self, graph: CTDN, rng: np.random.Generator | None = None) -> Tensor:
        """Two MEAN-aggregator layers."""
        del rng
        mean_op = Tensor(mean_aggregation_matrix(graph))
        h = Tensor(graph.features)
        h = ops.relu(self.layer1(ops.concat([h, mean_op @ h], axis=1)))
        return self.layer2(ops.concat([h, mean_op @ h], axis=1))

    def embed(self, graph: CTDN, rng: np.random.Generator | None = None) -> Tensor:
        """Mean-pool the SAGE node embeddings."""
        return self.readout(self.node_embeddings(graph, rng=rng))


class GATLayer(Module):
    """Single-head graph attention layer (Velickovic et al., 2018)."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator):
        super().__init__()
        self.project = Linear(in_features, out_features, bias=False, rng=rng)
        self.attn_src = Linear(out_features, 1, bias=False, rng=rng)
        self.attn_dst = Linear(out_features, 1, bias=False, rng=rng)

    def forward(self, adjacency_mask: np.ndarray, h: Tensor) -> Tensor:
        """Attention-weighted aggregation over the masked neighbourhood."""
        projected = self.project(h)
        scores_src = self.attn_src(projected)  # (n, 1)
        scores_dst = self.attn_dst(projected)  # (n, 1)
        scores = ops.leaky_relu(scores_src + scores_dst.T, negative_slope=0.2)
        penalty = np.where(adjacency_mask, 0.0, -1e9)
        weights = ops.softmax(scores + Tensor(penalty), axis=1)
        return weights @ projected


class GAT(GraphClassifierBase):
    """Two-layer, two-head GAT with mean pooling."""

    def __init__(self, in_features: int, hidden_size: int = 32, num_heads: int = 2, seed: int = 0):
        rng = np.random.default_rng(seed)
        super().__init__(embedding_dim=hidden_size, rng=rng)
        if hidden_size % num_heads != 0:
            raise ValueError(f"hidden_size {hidden_size} not divisible by heads {num_heads}")
        head_dim = hidden_size // num_heads
        self.heads1 = [GATLayer(in_features, head_dim, rng) for _ in range(num_heads)]
        for index, head in enumerate(self.heads1):
            setattr(self, f"head1_{index}", head)
        self.layer2 = GATLayer(hidden_size, hidden_size, rng)
        self.readout = MeanReadout()

    def node_embeddings(self, graph: CTDN, rng: np.random.Generator | None = None) -> Tensor:
        """Multi-head attention layer followed by a single-head layer."""
        del rng
        mask = (gcn_normalized_adjacency(graph) > 0.0)
        h = Tensor(graph.features)
        first = ops.concat([ops.relu(head(mask, h)) for head in self.heads1], axis=1)
        return self.layer2(mask, first)

    def embed(self, graph: CTDN, rng: np.random.Generator | None = None) -> Tensor:
        """Mean-pool the GAT node embeddings."""
        return self.readout(self.node_embeddings(graph, rng=rng))
