"""The twelve Table II baselines plus the Table III ``+G`` wrappers."""

from repro.baselines.static import GAT, GCN, GraphSAGE, SpectralClusteringModel
from repro.baselines.discrete import TADDY, AddGraph, EvolveGCN, GCLSTM
from repro.baselines.continuous import TGAT, TGN, DyGNN, GraphMixer
from repro.baselines.plus_g import PlusGlobalExtractor
from repro.baselines.registry import (
    ALL_MODELS,
    CONTINUOUS_MODELS,
    DISCRETE_MODELS,
    PLUS_G_MODELS,
    STATIC_MODELS,
    TPGNN_MODELS,
    make_model,
    model_category,
)

__all__ = [
    "SpectralClusteringModel",
    "GCN",
    "GraphSAGE",
    "GAT",
    "AddGraph",
    "TADDY",
    "EvolveGCN",
    "GCLSTM",
    "TGAT",
    "DyGNN",
    "TGN",
    "GraphMixer",
    "PlusGlobalExtractor",
    "ALL_MODELS",
    "STATIC_MODELS",
    "DISCRETE_MODELS",
    "CONTINUOUS_MODELS",
    "TPGNN_MODELS",
    "PLUS_G_MODELS",
    "make_model",
    "model_category",
]
