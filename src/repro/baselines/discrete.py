"""Discrete-DGNN baselines (paper Table II, middle block).

AddGraph, TADDY, EvolveGCN and GC-LSTM crop the dynamic network into a
sequence of static snapshots (the paper groups 5 edges per snapshot on
the log datasets and 20 on the trajectory datasets) and combine GNN
layers with sequence models across snapshots.  The implementations here
follow the architectural core of each paper at the scale of this
reproduction:

* **EvolveGCN-H** — a GRU evolves the GCN weight matrix column-wise
  across snapshots, driven by summarised node embeddings.
* **GC-LSTM** — a shared per-node LSTM consumes graph-convolved
  snapshot features.
* **AddGraph** — GCN per snapshot + an attention window over previous
  hidden states feeding a GRU (the HCA module, simplified to a learned
  soft attention over a fixed window).
* **TADDY** — a transformer encoder over per-snapshot node codings
  (features, snapshot-local degree, relative snapshot position).

Each produces node embeddings that are mean-pooled into the graph
embedding, as the paper does for all node-level baselines.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import GraphClassifierBase, MeanReadout
from repro.graph.ctdn import CTDN
from repro.graph.snapshots import snapshots_by_edge_count
from repro.graph.static import gcn_normalized_adjacency
from repro.nn import (
    GRUCell,
    LayerNorm,
    Linear,
    LSTMCell,
    MultiHeadAttention,
)
from repro.tensor import Tensor, ops


class _SnapshotModel(GraphClassifierBase):
    """Shared snapshot plumbing for the discrete baselines."""

    def __init__(self, embedding_dim: int, snapshot_size: int, rng: np.random.Generator):
        super().__init__(embedding_dim=embedding_dim, rng=rng)
        self.snapshot_size = snapshot_size
        self.readout = MeanReadout()

    def _snapshots(self, graph: CTDN) -> list[CTDN]:
        return snapshots_by_edge_count(graph, self.snapshot_size)

    def embed(self, graph: CTDN, rng: np.random.Generator | None = None) -> Tensor:
        """Mean-pool the final per-node states."""
        return self.readout(self.node_embeddings(graph, rng=rng))

    def node_embeddings(self, graph: CTDN, rng: np.random.Generator | None = None) -> Tensor:
        raise NotImplementedError


class EvolveGCN(_SnapshotModel):
    """EvolveGCN-H (Pareja et al., 2020).

    The hidden GCN weight matrix is treated as the hidden state of a
    GRU: at each snapshot the (column-wise) GRU ingests summarised node
    embeddings and emits the next weight matrix, which is then used for
    that snapshot's graph convolution.
    """

    def __init__(self, in_features: int, hidden_size: int = 32, snapshot_size: int = 5, seed: int = 0):
        rng = np.random.default_rng(seed)
        super().__init__(embedding_dim=hidden_size, snapshot_size=snapshot_size, rng=rng)
        self.hidden_size = hidden_size
        self.input_proj = Linear(in_features, hidden_size, rng=rng)
        self.weight_gru = GRUCell(hidden_size, hidden_size, rng=rng)
        # Initial evolving weight (the GRU's initial hidden state).
        from repro.nn import init
        from repro.nn.module import Parameter

        self.initial_weight = Parameter(
            init.xavier_uniform((hidden_size, hidden_size), rng), name="W0"
        )

    def node_embeddings(self, graph: CTDN, rng: np.random.Generator | None = None) -> Tensor:
        """Evolve the conv weight across snapshots; convolve node states."""
        del rng
        h = ops.relu(self.input_proj(Tensor(graph.features)))
        weight = self.initial_weight * 1.0  # join the tape without aliasing
        for snapshot in self._snapshots(graph):
            if snapshot.num_edges == 0:
                continue
            adjacency = Tensor(gcn_normalized_adjacency(snapshot))
            # Summarise node embeddings into one driver row per weight column.
            summary = h.mean(axis=0, keepdims=True)
            drivers = ops.concat([summary] * self.hidden_size, axis=0)
            weight = self.weight_gru(drivers, weight)
            h = ops.tanh(adjacency @ (h @ weight))
        return h


class GCLSTM(_SnapshotModel):
    """GC-LSTM (Chen et al., 2022): snapshot graph convolution into an LSTM.

    A single LSTM cell is shared across nodes; its input at snapshot t
    is the graph-convolved feature of each node in that snapshot, so the
    cell state tracks per-node structural change over time.
    """

    def __init__(self, in_features: int, hidden_size: int = 32, snapshot_size: int = 5, seed: int = 0):
        rng = np.random.default_rng(seed)
        super().__init__(embedding_dim=hidden_size, snapshot_size=snapshot_size, rng=rng)
        self.hidden_size = hidden_size
        self.conv = Linear(in_features, hidden_size, rng=rng)
        self.cell = LSTMCell(hidden_size, hidden_size, rng=rng)

    def node_embeddings(self, graph: CTDN, rng: np.random.Generator | None = None) -> Tensor:
        """Per-node LSTM over graph-convolved snapshot features."""
        del rng
        n = graph.num_nodes
        features = Tensor(graph.features)
        h = Tensor(np.zeros((n, self.hidden_size)))
        c = Tensor(np.zeros((n, self.hidden_size)))
        for snapshot in self._snapshots(graph):
            if snapshot.num_edges == 0:
                continue
            adjacency = Tensor(gcn_normalized_adjacency(snapshot))
            x = ops.relu(adjacency @ self.conv(features))
            h, c = self.cell(x, (h, c))
        return h


class AddGraph(_SnapshotModel):
    """AddGraph (Zheng et al., 2019): temporal GCN + attention-based GRU.

    At each snapshot, the per-node GCN output becomes the GRU input,
    and a learned soft attention over a short window of previous hidden
    states provides the recurrent context (the paper's HCA module).
    """

    def __init__(
        self,
        in_features: int,
        hidden_size: int = 32,
        snapshot_size: int = 5,
        window: int = 3,
        seed: int = 0,
    ):
        rng = np.random.default_rng(seed)
        super().__init__(embedding_dim=hidden_size, snapshot_size=snapshot_size, rng=rng)
        self.hidden_size = hidden_size
        self.window = window
        self.input_proj = Linear(in_features, hidden_size, rng=rng)
        self.conv = Linear(hidden_size, hidden_size, rng=rng)
        self.attention_score = Linear(hidden_size, 1, rng=rng)
        self.cell = GRUCell(hidden_size, hidden_size, rng=rng)

    def node_embeddings(self, graph: CTDN, rng: np.random.Generator | None = None) -> Tensor:
        """GCN per snapshot; GRU with attention context across snapshots."""
        del rng
        n = graph.num_nodes
        h = ops.relu(self.input_proj(Tensor(graph.features)))
        history: list[Tensor] = [h]
        for snapshot in self._snapshots(graph):
            if snapshot.num_edges == 0:
                continue
            adjacency = Tensor(gcn_normalized_adjacency(snapshot))
            current = ops.relu(adjacency @ self.conv(history[-1]))
            window = history[-self.window :]
            if len(window) == 1:
                context = window[0]
            else:
                # Per-node soft attention over the hidden-state window.
                stacked = ops.stack(window, axis=0)  # (w, n, d)
                scores = self.attention_score(stacked).reshape(len(window), n)
                weights = ops.softmax(scores, axis=0).reshape(len(window), n, 1)
                context = (stacked * weights).sum(axis=0)
            history.append(self.cell(current, context))
        return history[-1]


class TADDY(_SnapshotModel):
    """TADDY (Liu et al., 2023): transformer over spatio-temporal node codings.

    Each snapshot contributes one token per node, coding the raw
    features, the node's snapshot-local degree (diffusion surrogate) and
    the relative snapshot position; a transformer encoder block mixes
    the tokens and the result is pooled per node, then per graph.
    """

    def __init__(
        self,
        in_features: int,
        hidden_size: int = 32,
        snapshot_size: int = 5,
        num_heads: int = 2,
        seed: int = 0,
    ):
        rng = np.random.default_rng(seed)
        super().__init__(embedding_dim=hidden_size, snapshot_size=snapshot_size, rng=rng)
        self.hidden_size = hidden_size
        # Coding: features + degree + relative position.
        self.token_proj = Linear(in_features + 2, hidden_size, rng=rng)
        self.attention = MultiHeadAttention(hidden_size, num_heads, rng=rng)
        self.norm1 = LayerNorm(hidden_size)
        self.ffn = Linear(hidden_size, hidden_size, rng=rng)
        self.norm2 = LayerNorm(hidden_size)

    def node_embeddings(self, graph: CTDN, rng: np.random.Generator | None = None) -> Tensor:
        """Encode snapshot tokens per node, mix with attention, pool over time."""
        del rng
        snapshots = [s for s in self._snapshots(graph) if s.num_edges > 0]
        if not snapshots:
            snapshots = [graph]
        num_snaps = len(snapshots)
        tokens = []
        for index, snapshot in enumerate(snapshots):
            degree = (snapshot.in_degree() + snapshot.out_degree()).astype(np.float64)
            degree = degree / max(1.0, degree.max())
            position = np.full((graph.num_nodes, 1), index / max(1, num_snaps - 1))
            coding = np.concatenate([graph.features, degree[:, None], position], axis=1)
            tokens.append(self.token_proj(Tensor(coding)))
        sequence = ops.concat(tokens, axis=0)  # (T*n, d)
        attended = self.norm1(sequence + self.attention(sequence, sequence, sequence))
        encoded = self.norm2(attended + ops.relu(self.ffn(attended)))
        # Pool each node's tokens across snapshots.
        per_snapshot = encoded.reshape(num_snaps, graph.num_nodes, self.hidden_size)
        return per_snapshot.mean(axis=0)
