"""Model registry: name -> factory, as used by the experiment harness.

Factories take ``(in_features, seed, **overrides)`` and return a fresh
:class:`~repro.core.base.GraphClassifierBase`.  Names match the rows of
Table II; ``snapshot_size`` follows the paper (5 for the log datasets,
20 for the trajectory datasets — the harness passes it per dataset).
"""

from __future__ import annotations

from typing import Callable

from repro.baselines.continuous import TGAT, TGN, DyGNN, GraphMixer
from repro.baselines.discrete import TADDY, AddGraph, EvolveGCN, GCLSTM
from repro.baselines.plus_g import PlusGlobalExtractor
from repro.baselines.static import GAT, GCN, GraphSAGE, SpectralClusteringModel
from repro.core.base import GraphClassifierBase
from repro.core.model import TPGNN

ModelFactory = Callable[..., GraphClassifierBase]

STATIC_MODELS = ("Spectral Clustering", "GCN", "GraphSage", "GAT")
DISCRETE_MODELS = ("AddGraph", "TADDY", "EvolveGCN", "GC-LSTM")
CONTINUOUS_MODELS = ("TGN", "DyGNN", "TGAT", "GraphMixer")
TPGNN_MODELS = ("TP-GNN-GRU", "TP-GNN-SUM")

#: Table II row order.
ALL_MODELS = STATIC_MODELS + DISCRETE_MODELS + CONTINUOUS_MODELS + TPGNN_MODELS

#: Table III rows: continuous baselines wrapped with the global extractor.
PLUS_G_MODELS = ("TGAT+G", "DyGNN+G", "TGN+G", "GraphMixer+G")


def make_model(
    name: str,
    in_features: int,
    seed: int = 0,
    hidden_size: int = 32,
    time_dim: int = 6,
    snapshot_size: int = 5,
    gru_hidden_size: int | None = None,
) -> GraphClassifierBase:
    """Instantiate any Table II / Table III model by name."""
    gru_hidden = gru_hidden_size if gru_hidden_size is not None else hidden_size
    static = {
        "Spectral Clustering": lambda: SpectralClusteringModel(in_features, hidden_size, seed=seed),
        "GCN": lambda: GCN(in_features, hidden_size, seed=seed),
        "GraphSage": lambda: GraphSAGE(in_features, hidden_size, seed=seed),
        "GAT": lambda: GAT(in_features, hidden_size, seed=seed),
    }
    discrete = {
        "AddGraph": lambda: AddGraph(in_features, hidden_size, snapshot_size=snapshot_size, seed=seed),
        "TADDY": lambda: TADDY(in_features, hidden_size, snapshot_size=snapshot_size, seed=seed),
        "EvolveGCN": lambda: EvolveGCN(in_features, hidden_size, snapshot_size=snapshot_size, seed=seed),
        "GC-LSTM": lambda: GCLSTM(in_features, hidden_size, snapshot_size=snapshot_size, seed=seed),
    }
    continuous = {
        "TGN": lambda: TGN(in_features, hidden_size, time_dim=time_dim, seed=seed),
        "DyGNN": lambda: DyGNN(in_features, hidden_size, seed=seed),
        "TGAT": lambda: TGAT(in_features, hidden_size, time_dim=time_dim, seed=seed),
        "GraphMixer": lambda: GraphMixer(in_features, hidden_size, time_dim=time_dim, seed=seed),
    }
    tpgnn = {
        "TP-GNN-SUM": lambda: TPGNN(
            in_features, updater="sum", hidden_size=hidden_size,
            gru_hidden_size=gru_hidden, time_dim=time_dim, seed=seed,
        ),
        "TP-GNN-GRU": lambda: TPGNN(
            in_features, updater="gru", hidden_size=hidden_size,
            gru_hidden_size=gru_hidden, time_dim=time_dim, seed=seed,
        ),
    }
    table = {**static, **discrete, **continuous, **tpgnn}
    if name in table:
        return table[name]()
    if name in PLUS_G_MODELS:
        base_name = name[: -len("+G")]
        encoder = continuous[base_name]()
        return PlusGlobalExtractor(encoder, gru_hidden_size=gru_hidden, seed=seed)
    raise KeyError(f"unknown model {name!r}; choose from {ALL_MODELS + PLUS_G_MODELS}")


def model_category(name: str) -> str:
    """Category label for reporting (static / discrete / continuous / ours)."""
    if name in STATIC_MODELS:
        return "static"
    if name in DISCRETE_MODELS:
        return "discrete"
    if name in CONTINUOUS_MODELS:
        return "continuous"
    if name in TPGNN_MODELS:
        return "ours"
    if name in PLUS_G_MODELS:
        return "plus_g"
    raise KeyError(f"unknown model {name!r}")
