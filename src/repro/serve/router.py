"""Session routing: demultiplex an interleaved event feed.

A live feed carries events from many concurrent sessions, possibly with
per-session disorder (retries, clock skew, multi-source ingestion).
:class:`SessionRouter` owns the session table and the admission
policy, and hands *ordered* per-session events to the engine:

* **LRU eviction** — at most ``max_sessions`` live sessions; creating
  one more evicts the least-recently-active session (an ``on_evict``
  hook lets the engine flush a final prediction or checkpoint it).
* **Out-of-order policy** — events older than the last event already
  applied to their session are handled per ``out_of_order``:

  - ``"drop"`` (default) — silently discard, counted;
  - ``"raise"`` — raise :class:`OutOfOrderError` (strict pipelines);
  - ``"buffer"`` — hold events in a per-session min-heap and release
    them in time order once the session watermark (latest time seen
    minus ``watermark_delay``) passes them.  Events arriving later
    than the watermark window are dropped, counted separately.

The router is generic over the session payload: the engine supplies a
``factory(session_id) -> payload`` and receives ``(payload, event)``
deliveries back.
"""

from __future__ import annotations

import heapq
import itertools
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Generic, TypeVar

from repro.serve.events import StreamEvent

Payload = TypeVar("Payload")

OUT_OF_ORDER_POLICIES = ("drop", "raise", "buffer")


class OutOfOrderError(RuntimeError):
    """An event arrived older than its session's last applied event."""


@dataclass
class _SessionEntry(Generic[Payload]):
    """Router-internal bookkeeping for one live session."""

    payload: Payload
    last_applied: float = float("-inf")
    max_seen: float = float("-inf")
    pending: list[tuple[float, int, StreamEvent]] = field(default_factory=list)


@dataclass
class RouterStats:
    """Counters the router maintains for :class:`~repro.serve.metrics.ServeMetrics`."""

    routed: int = 0
    dropped: int = 0
    late_dropped: int = 0
    buffered_peak: int = 0
    buffer_overflow_dropped: int = 0
    sessions_started: int = 0
    sessions_evicted: int = 0


class SessionRouter(Generic[Payload]):
    """Demultiplexes an interleaved event feed into ordered sessions.

    Parameters
    ----------
    factory:
        Builds the payload (e.g. a ``SessionState``) for a new session id.
    max_sessions:
        LRU capacity; the least-recently-active session is evicted when
        a new session would exceed it.
    out_of_order:
        One of :data:`OUT_OF_ORDER_POLICIES`.
    watermark_delay:
        Buffer window for the ``"buffer"`` policy: an event is released
        once the session has seen a timestamp ``watermark_delay`` past
        it.  ``0.0`` releases immediately (pure re-sort of ties).
    max_buffered:
        Hard per-session cap on the out-of-order buffer.  When an
        arrival would exceed it, the *oldest* buffered event is dropped
        and counted in ``stats.buffer_overflow_dropped``, so a
        pathological stream (a stalled watermark, a flood of a single
        timestamp) cannot grow memory without limit.  ``None`` disables
        the cap.
    on_evict:
        Called with ``(session_id, payload)`` just before eviction.
    """

    def __init__(
        self,
        factory: Callable[[str], Payload],
        max_sessions: int = 1024,
        out_of_order: str = "drop",
        watermark_delay: float = 0.0,
        max_buffered: int | None = 4096,
        on_evict: Callable[[str, Payload], None] | None = None,
    ):
        if max_sessions <= 0:
            raise ValueError(f"max_sessions must be positive, got {max_sessions}")
        if out_of_order not in OUT_OF_ORDER_POLICIES:
            raise ValueError(
                f"unknown out_of_order policy {out_of_order!r}; "
                f"choose from {OUT_OF_ORDER_POLICIES}"
            )
        if watermark_delay < 0:
            raise ValueError(f"watermark_delay must be >= 0, got {watermark_delay}")
        if max_buffered is not None and max_buffered < 1:
            raise ValueError(f"max_buffered must be >= 1 or None, got {max_buffered}")
        self.factory = factory
        self.max_sessions = max_sessions
        self.out_of_order = out_of_order
        self.watermark_delay = watermark_delay
        self.max_buffered = max_buffered
        self.on_evict = on_evict
        self.stats = RouterStats()
        self._sessions: "OrderedDict[str, _SessionEntry[Payload]]" = OrderedDict()
        self._tiebreak = itertools.count()

    # ------------------------------------------------------------------
    # Session table
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._sessions)

    def __contains__(self, session_id: str) -> bool:
        return session_id in self._sessions

    def session_ids(self) -> list[str]:
        """Live session ids, least-recently-active first."""
        return list(self._sessions)

    def get(self, session_id: str) -> Payload | None:
        """Payload for ``session_id`` (no LRU touch), or None."""
        entry = self._sessions.get(session_id)
        return entry.payload if entry is not None else None

    def pop(self, session_id: str) -> Payload | None:
        """Remove and return a session's payload (no evict hook)."""
        entry = self._sessions.pop(session_id, None)
        return entry.payload if entry is not None else None

    def adopt(
        self,
        session_id: str,
        payload: Payload,
        last_time: float | None = None,
    ) -> list[str]:
        """Install an externally built payload under LRU discipline.

        Used by checkpoint restore and shard migration: the payload was
        built elsewhere (``factory`` is bypassed and ``sessions_started``
        is *not* counted), but capacity is enforced exactly as for a new
        session — the least-recently-active sessions are evicted (with
        the ``on_evict`` hook) until the adoptee fits.  ``last_time``
        seeds the ordering watermarks so the admission policy resumes
        where the donor left off.  Returns the evicted session ids.
        """
        evicted: list[str] = []
        replacing = self._sessions.pop(session_id, None) is not None
        while not replacing and len(self._sessions) >= self.max_sessions:
            evicted_id, evicted_entry = self._sessions.popitem(last=False)
            self.stats.sessions_evicted += 1
            evicted.append(evicted_id)
            if self.on_evict is not None:
                self.on_evict(evicted_id, evicted_entry.payload)
        entry: _SessionEntry[Payload] = _SessionEntry(payload=payload)
        if last_time is not None:
            entry.last_applied = last_time
            entry.max_seen = last_time
        self._sessions[session_id] = entry
        return evicted

    def _entry(self, session_id: str) -> _SessionEntry[Payload]:
        """Fetch-or-create the session entry, applying LRU discipline."""
        entry = self._sessions.get(session_id)
        if entry is not None:
            self._sessions.move_to_end(session_id)
            return entry
        while len(self._sessions) >= self.max_sessions:
            evicted_id, evicted = self._sessions.popitem(last=False)
            self.stats.sessions_evicted += 1
            if self.on_evict is not None:
                self.on_evict(evicted_id, evicted.payload)
        entry = _SessionEntry(payload=self.factory(session_id))
        self._sessions[session_id] = entry
        self.stats.sessions_started += 1
        return entry

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def route(self, event: StreamEvent) -> list[tuple[Payload, StreamEvent]]:
        """Admit one event; return the (payload, event) pairs now ready.

        Under ``"drop"``/``"raise"`` this is the event itself (or
        nothing); under ``"buffer"`` it is every buffered event of the
        session whose watermark has passed, in timestamp order.
        """
        entry = self._entry(event.session_id)
        if self.out_of_order == "buffer":
            return self._route_buffered(entry, event)
        if event.time < entry.last_applied:
            if self.out_of_order == "raise":
                raise OutOfOrderError(
                    f"session {event.session_id!r}: event at t={event.time} arrived "
                    f"after t={entry.last_applied} was already applied"
                )
            self.stats.dropped += 1
            return []
        entry.last_applied = event.time
        self.stats.routed += 1
        return [(entry.payload, event)]

    def _route_buffered(
        self, entry: _SessionEntry[Payload], event: StreamEvent
    ) -> list[tuple[Payload, StreamEvent]]:
        """Buffer policy: heap-reorder within the watermark window."""
        if event.time < entry.last_applied:
            # Beyond repair: an older event was already folded into the
            # recurrence, so this one missed its window.
            self.stats.late_dropped += 1
            return []
        heapq.heappush(entry.pending, (event.time, next(self._tiebreak), event))
        entry.max_seen = max(entry.max_seen, event.time)
        if self.max_buffered is not None and len(entry.pending) > self.max_buffered:
            heapq.heappop(entry.pending)
            self.stats.buffer_overflow_dropped += 1
        self.stats.buffered_peak = max(self.stats.buffered_peak, len(entry.pending))
        watermark = entry.max_seen - self.watermark_delay
        ready: list[tuple[Payload, StreamEvent]] = []
        while entry.pending and entry.pending[0][0] <= watermark:
            _, _, pending_event = heapq.heappop(entry.pending)
            entry.last_applied = pending_event.time
            self.stats.routed += 1
            ready.append((entry.payload, pending_event))
        return ready

    def flush(self, session_id: str | None = None) -> list[tuple[Payload, StreamEvent]]:
        """Release every buffered event (end-of-stream drain).

        With ``session_id`` only that session is drained; otherwise all
        sessions, in LRU order.
        """
        targets = [session_id] if session_id is not None else list(self._sessions)
        ready: list[tuple[Payload, StreamEvent]] = []
        for sid in targets:
            entry = self._sessions.get(sid)
            if entry is None:
                continue
            while entry.pending:
                _, _, pending_event = heapq.heappop(entry.pending)
                entry.last_applied = pending_event.time
                self.stats.routed += 1
                ready.append((entry.payload, pending_event))
        return ready
