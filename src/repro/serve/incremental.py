"""Incremental TP-GNN inference: O(1) state updates per temporal edge.

Batch TP-GNN scores a session by replaying its entire edge list —
O(m) per new event.  Both of the model's components are recurrences
over the chronological edge sequence, so this module carries their
state forward instead:

* :meth:`IncrementalClassifier.observe` advances the propagation state
  and the global extractor's GRU hidden by exactly one edge;
* :meth:`IncrementalClassifier.logit` scores the session from the live
  state.

Two read modes are offered:

* ``"online"`` — the classifier head on the live extractor hidden.
  O(1): one small matmul.  The extractor consumed each edge's
  embedding *as it arrived* (causal semantics — the standard
  continuous-time TGNN serving discipline), so early edges were
  embedded from the node states current at that moment.
* ``"exact"`` — re-runs only the extractor GRU over the logged edges
  using the *current* node states, which reproduces the batch
  ``forward`` logits bit-for-bit (batch embeds every edge with the
  final node states).  O(m) in the extractor but still skips the O(m)
  propagation replay.

The equivalence suite (``tests/serve/test_equivalence.py``) pins
``"exact"`` streaming == batch to ≤ 1e-8, including across
:meth:`snapshot` / :meth:`restore` round-trips.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.core.model import TPGNN
from repro.graph.edge import TemporalEdge
from repro.serve.state import SessionState
from repro.tensor import Tensor, no_grad

READ_MODES = ("online", "exact")

_EDGE_LOG_KEY = "edges"
_FEATURE_SEEN_KEY = "feature_seen"
_LABEL_KEY = "label"


class IncrementalClassifier:
    """Streaming wrapper around a (trained) :class:`TPGNN` model.

    The model's parameters are shared, never copied: one classifier can
    serve any number of concurrent sessions, each represented by a
    :class:`SessionState`.  All methods run under ``no_grad`` — serving
    never builds autograd graphs.

    Parameters
    ----------
    model:
        A TP-GNN instance (SUM or GRU updater).  Updaters without the
        incremental API (e.g. the ``rand`` ablation) are rejected.
    missing_features:
        What to do when an edge endpoint is new to its session and the
        event carries no features for it: ``"raise"`` (default —
        strict, the replay/equivalence discipline) or ``"zeros"``
        (cold-start with zero features; what a server does when a
        session was LRU-evicted mid-stream and its tail re-admitted).
    """

    MISSING_FEATURE_POLICIES = ("raise", "zeros")

    def __init__(self, model: TPGNN, missing_features: str = "raise"):
        if not isinstance(model, TPGNN):
            raise TypeError(
                f"IncrementalClassifier requires a TPGNN model, got {type(model).__name__}"
            )
        if missing_features not in self.MISSING_FEATURE_POLICIES:
            raise KeyError(
                f"unknown missing_features policy {missing_features!r}; "
                f"choose from {self.MISSING_FEATURE_POLICIES}"
            )
        self.model = model
        self.missing_features = missing_features
        self.propagation = model.propagation
        self.extractor = model.extractor

    # ------------------------------------------------------------------
    # Session lifecycle
    # ------------------------------------------------------------------
    def new_session(
        self, session_id: str, features: np.ndarray | None = None
    ) -> SessionState:
        """Create an empty session.

        ``features`` optionally pre-materialises the full ``(n, q_raw)``
        node-feature matrix (replay-style usage); live usage starts with
        no nodes and materialises them from event payloads.
        """
        with no_grad():
            if features is None:
                features = np.zeros((0, self.propagation.in_features))
            features = np.asarray(features, dtype=np.float64)
            state = SessionState(
                session_id=session_id,
                prop_state=self.propagation.init_state(features),
                ext_state=self.extractor.init_state(),
            )
            state.feature_seen.update(range(features.shape[0]))
        return state

    def _materialize(
        self,
        state: SessionState,
        node: int,
        node_features: Mapping[int, np.ndarray] | None,
    ) -> None:
        """Ensure ``node`` has a real (feature-encoded) state row."""
        if node in state.feature_seen:
            return
        features = None if node_features is None else node_features.get(node)
        if features is None:
            if self.missing_features == "raise":
                raise ValueError(
                    f"session {state.session_id!r}: node {node} is new but the event "
                    "carries no features for it"
                )
            features = np.zeros(self.propagation.in_features)
        # Reserve placeholder rows for any ids between the current size
        # and the new node; they are overwritten if their features ever
        # arrive, and are never read as edge endpoints before that.
        missing = node + 1 - state.prop_state.num_nodes
        if missing > 0:
            self.propagation.add_nodes(
                state.prop_state,
                np.zeros((missing, self.propagation.in_features)),
            )
        self.propagation.set_node(state.prop_state, node, np.asarray(features, dtype=np.float64))
        state.feature_seen.add(node)

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def observe(
        self,
        state: SessionState,
        edge: TemporalEdge | tuple[int, int, float],
        node_features: Mapping[int, np.ndarray] | None = None,
    ) -> None:
        """Ingest one temporal edge into the session — O(1) work.

        Advances the propagation recurrence, embeds the edge from the
        now-current endpoint states, and steps the extractor GRU.
        """
        edge = TemporalEdge(int(edge[0]), int(edge[1]), float(edge[2]))
        with no_grad():
            self._materialize(state, edge.src, node_features)
            self._materialize(state, edge.dst, node_features)
            self.propagation.step(state.prop_state, edge)
            row = self.extractor.edge_embedding(
                self.propagation.node_embedding(state.prop_state, edge.src),
                self.propagation.node_embedding(state.prop_state, edge.dst),
            )
            self.extractor.step(state.ext_state, row)
        state.edges.append(edge)

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def graph_embedding(self, state: SessionState, mode: str = "online") -> Tensor:
        """The session's graph embedding ``g`` under the chosen read mode."""
        if mode not in READ_MODES:
            raise KeyError(f"unknown read mode {mode!r}; choose from {READ_MODES}")
        with no_grad():
            if mode == "online":
                return self.extractor.graph_embedding(state.ext_state)
            if not state.edges:
                raise ValueError(
                    "exact mode needs at least one observed edge "
                    "(batch TP-GNN rejects empty graphs too)"
                )
            node_embeddings = self.propagation.finalize(state.prop_state)
            sequence = self.extractor.edge_embeddings(node_embeddings, state.edges)
            replay = self.extractor.init_state()
            width = sequence.shape[1]
            for index in range(len(state.edges)):
                self.extractor.step(replay, sequence[index].reshape(1, width))
            return self.extractor.graph_embedding(replay)

    def logit(self, state: SessionState, mode: str = "online") -> float:
        """Raw classification logit of the session's current state."""
        with no_grad():
            return float(self.model.logit(self.graph_embedding(state, mode)).item())

    def predict_proba(self, state: SessionState, mode: str = "online") -> float:
        """Probability that the session is positive (label 1)."""
        return float(1.0 / (1.0 + np.exp(-self.logit(state, mode))))

    def logits_online(self, states: Sequence[SessionState]) -> np.ndarray:
        """Micro-batched online read path: one matmul for many sessions.

        Stacks the live extractor hiddens into a ``(b, d)`` matrix and
        runs the classifier head once — the engine's grouped scoring
        pass.
        """
        if not states:
            return np.zeros(0)
        stacked = np.stack(
            [s.ext_state.hidden.data.reshape(self.extractor.hidden_size) for s in states],
            axis=0,
        )
        with no_grad():
            logits = self.model.logits(Tensor(stacked))
        return logits.data.copy()

    # ------------------------------------------------------------------
    # Snapshot / restore
    # ------------------------------------------------------------------
    def snapshot(self, state: SessionState) -> dict[str, np.ndarray]:
        """Flat array form of the full session state.

        Round-trips through :meth:`restore`: a restored session
        continues the stream with bit-identical results (asserted by
        the equivalence suite).
        """
        arrays = {
            f"prop.{key}": value
            for key, value in self.propagation.snapshot_state(state.prop_state).items()
        }
        arrays.update(
            {
                f"ext.{key}": value
                for key, value in self.extractor.snapshot_state(state.ext_state).items()
            }
        )
        arrays[_EDGE_LOG_KEY] = np.asarray(state.edges, dtype=np.float64).reshape(
            len(state.edges), 3
        )
        arrays[_FEATURE_SEEN_KEY] = np.array(sorted(state.feature_seen), dtype=np.int64)
        has_label = state.label is not None
        arrays[_LABEL_KEY] = np.array(
            [state.label if has_label else 0, int(has_label)], dtype=np.int64
        )
        return arrays

    def restore(self, session_id: str, arrays: Mapping[str, np.ndarray]) -> SessionState:
        """Rebuild a session from :meth:`snapshot` output."""
        prop_arrays = {
            key[len("prop."):]: value
            for key, value in arrays.items()
            if key.startswith("prop.")
        }
        ext_arrays = {
            key[len("ext."):]: value
            for key, value in arrays.items()
            if key.startswith("ext.")
        }
        label_value, has_label = (int(v) for v in arrays[_LABEL_KEY])
        state = SessionState(
            session_id=session_id,
            prop_state=self.propagation.restore_state(prop_arrays),
            ext_state=self.extractor.restore_state(ext_arrays),
            edges=[
                TemporalEdge(int(src), int(dst), time)
                for src, dst, time in arrays[_EDGE_LOG_KEY].tolist()
            ],
            feature_seen=set(int(n) for n in arrays[_FEATURE_SEEN_KEY]),
            label=label_value if has_label else None,
        )
        return state

    # ------------------------------------------------------------------
    # Replay convenience
    # ------------------------------------------------------------------
    def replay(
        self,
        session_id: str,
        features: np.ndarray,
        edges: Iterable[TemporalEdge | tuple[int, int, float]],
    ) -> SessionState:
        """Fold :meth:`observe` over a full edge list (testing/warm-up)."""
        state = self.new_session(session_id, features=features)
        for edge in edges:
            self.observe(state, edge)
        return state
