"""Online serving: streaming TP-GNN inference with incremental state.

Batch TP-GNN re-reads a session's whole edge list to score it — O(m)
per new event.  This package serves live traffic instead: it ingests
an interleaved per-edge event feed, carries each session's temporal
recurrences forward (propagation state + global-extractor GRU hidden),
and predicts in O(1) per session.

Layers, innermost out:

* :class:`~repro.serve.incremental.IncrementalClassifier` — O(1)
  ``observe``/``logit`` on top of the core model's ``step`` APIs.
* :class:`~repro.serve.router.SessionRouter` — demultiplexes the feed;
  LRU session eviction and out-of-order admission policies.
* :class:`~repro.serve.engine.StreamingEngine` — the deployable unit:
  router + classifier + :class:`~repro.serve.metrics.ServeMetrics`,
  micro-batched reads, checkpoint/restore of full serving state.
* :func:`~repro.serve.events.dataset_to_feed` — replay any dataset as
  a live feed (used by ``repro serve`` and the examples).
"""

from repro.serve.engine import StreamingEngine
from repro.serve.events import StreamEvent, dataset_to_feed, iter_feed, session_events
from repro.serve.recovery import RecoveryReport, recover_engine
from repro.serve.incremental import READ_MODES, IncrementalClassifier
from repro.serve.metrics import LatencyReservoir, ServeMetrics
from repro.serve.router import (
    OUT_OF_ORDER_POLICIES,
    OutOfOrderError,
    RouterStats,
    SessionRouter,
)
from repro.serve.state import SessionState

__all__ = [
    "StreamingEngine",
    "StreamEvent",
    "RecoveryReport",
    "recover_engine",
    "dataset_to_feed",
    "session_events",
    "iter_feed",
    "IncrementalClassifier",
    "READ_MODES",
    "ServeMetrics",
    "LatencyReservoir",
    "SessionRouter",
    "SessionState",
    "RouterStats",
    "OutOfOrderError",
    "OUT_OF_ORDER_POLICIES",
]
