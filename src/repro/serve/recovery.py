"""Crash recovery: checkpoint + write-ahead journal tail replay.

:func:`recover_engine` rebuilds a :class:`~repro.serve.engine.StreamingEngine`
to the exact pre-crash state: load the last good checkpoint (or start
fresh), scan the journal, and replay every record past the checkpoint's
anchor through the engine's own deterministic ingest/observe paths.
Because admission, LRU movement, drop policy and the learner's seeded
update schedule are all deterministic, ``checkpoint + replay`` is
bit-for-bit identical to an engine that never crashed — session arrays,
learner weights, Adam moments, replay buffer and RNG included.

Damage tolerance follows the journal scanner
(:mod:`repro.resilience.journal`): a torn tail record — the normal
artifact of dying mid-append — is dropped silently (the record never
finished reaching stable storage, so it is as if the event was never
accepted); a corrupt record *mid*-segment is real data loss, reported
in :attr:`RecoveryReport.gaps` with exact byte offsets and replayed
past (or escalated to :class:`~repro.resilience.IntegrityError` under
``strict=True``).

Caveat for the ``buffer`` out-of-order policy: events still buffered
when a checkpoint is written are anchored as applied but not part of
the session arrays — drain with ``engine.flush()`` before
checkpointing, or recover from the journal alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.resilience.errors import IntegrityError
from repro.resilience.journal import (
    RECORD_EVENT,
    JournalGap,
    scan_journal,
)
from repro.resilience.faults import inject
from repro.serve.engine import StreamingEngine


@dataclass(frozen=True)
class RecoveryReport:
    """What :func:`recover_engine` found and replayed."""

    checkpoint: Path | None
    anchor_seq: int
    last_seq: int
    events_replayed: int
    observations_replayed: int
    gaps: list[JournalGap] = field(default_factory=list)
    torn_tail: bool = False

    @property
    def records_replayed(self) -> int:
        return self.events_replayed + self.observations_replayed

    def render(self) -> str:
        """Human-readable recovery summary (the ``repro recover`` output)."""
        lines = [
            "recovery report",
            f"  checkpoint        : {self.checkpoint or '(none — journal only)'}",
            f"  anchor seq        : {self.anchor_seq}",
            f"  journal last seq  : {self.last_seq}",
            f"  events replayed   : {self.events_replayed}",
            f"  observations      : {self.observations_replayed}",
            f"  torn tail         : {'yes (dropped)' if self.torn_tail else 'no'}",
        ]
        corrupt = [gap for gap in self.gaps if gap.reason != "torn-tail"]
        if corrupt:
            lines.append(f"  corrupt records   : {len(corrupt)} quarantined")
            lines += [f"    - {gap.describe()}" for gap in corrupt]
        else:
            lines.append("  corrupt records   : none")
        return "\n".join(lines)


def recover_engine(
    journal_dir: str | Path,
    model,
    checkpoint: str | Path | None = None,
    learner=None,
    engine_config: dict | None = None,
    journal=None,
    strict: bool = False,
    allow_version_mismatch: bool = False,
    load_weights: bool = True,
    on_evict=None,
    registry=None,
) -> tuple[StreamingEngine, RecoveryReport]:
    """Rebuild an engine from ``checkpoint`` + the journal tail.

    Parameters
    ----------
    journal_dir:
        The crashed engine's journal directory.
    model:
        Architecture-matched model instance; overwritten with the
        checkpointed weights unless ``load_weights=False``.
    checkpoint:
        Last serving checkpoint (its ``journal_seq`` anchors replay).
        ``None`` — or a path that does not exist yet — replays the
        whole journal into a fresh engine.
    learner:
        Fresh :class:`~repro.online.OnlineLearner` over ``model``.
        Required when the journal holds observation records and no
        checkpoint carries learner state; restored from the checkpoint
        when one does.
    engine_config:
        ``StreamingEngine`` kwargs for the fresh-engine path (ignored
        when restoring a checkpoint, which carries its own config).
    journal:
        Open :class:`~repro.resilience.journal.Journal` to attach
        *after* replay, so the recovered engine resumes journaling new
        traffic without re-appending what it just replayed.  Open the
        writer only after recovery — reopening truncates the torn tail
        this function wants to report.
    strict:
        Escalate corrupt mid-segment records (real data loss) to
        :class:`~repro.resilience.IntegrityError` instead of replaying
        past them.  A torn tail never trips strict mode.
    allow_version_mismatch, load_weights, on_evict:
        Forwarded to :meth:`StreamingEngine.restore`.
    registry:
        Metric registry for ``journal/records_replayed`` and
        ``journal/gaps_detected`` (process global one by default).

    Returns
    -------
    ``(engine, report)`` — the reconstructed engine and what replay did.
    """
    if registry is None:
        from repro import telemetry

        registry = telemetry.get_registry()
    checkpoint_path: Path | None = None
    if checkpoint is not None and Path(checkpoint).exists():
        checkpoint_path = Path(checkpoint)
        engine = StreamingEngine.restore(
            checkpoint_path,
            model,
            on_evict=on_evict,
            learner=learner,
            allow_version_mismatch=allow_version_mismatch,
            load_weights=load_weights,
        )
    else:
        engine = StreamingEngine(model, on_evict=on_evict, **(engine_config or {}))
        if learner is not None:
            engine.attach_learner(learner)
    anchor = engine.journal_anchor
    scan = scan_journal(journal_dir)
    # Gaps entirely at/behind the anchor are already covered by the
    # checkpoint; only damage in the replayed tail matters.
    gaps = [
        gap
        for gap in scan.gaps
        if gap.first_seq_after is None or gap.first_seq_after > anchor + 1
    ]
    corrupt = [gap for gap in gaps if gap.reason != "torn-tail"]
    if corrupt:
        registry.counter("journal/gaps_detected").inc(len(corrupt))
        if strict:
            raise IntegrityError(
                f"journal {journal_dir} has {len(corrupt)} corrupt record(s) past "
                f"the checkpoint anchor (strict mode):\n"
                + "\n".join(f"  - {gap.describe()}" for gap in corrupt)
            )
    events = observations = 0
    replayed = registry.counter("journal/records_replayed")
    for record in scan.records:
        if record.seq <= anchor:
            continue
        inject("journal.replay", context=record.payload)
        if record.kind == RECORD_EVENT:
            engine.ingest(record.decode())
            events += 1
        else:
            if engine.learner is None:
                raise ValueError(
                    f"journal {journal_dir} holds learner observations (seq "
                    f"{record.seq}) but no learner is attached; pass learner= "
                    "to recover_engine (or --updater/--learner flags to "
                    "repro recover)"
                )
            engine.observe_example(record.decode())
            observations += 1
        replayed.inc()
    engine._journal_anchor = max(anchor, scan.last_seq)
    if journal is not None:
        engine.attach_journal(journal)
    report = RecoveryReport(
        checkpoint=checkpoint_path,
        anchor_seq=anchor,
        last_seq=scan.last_seq,
        events_replayed=events,
        observations_replayed=observations,
        gaps=gaps,
        torn_tail=scan.torn_tail,
    )
    return engine, report
