"""Per-session serving state: the carried-forward temporal recurrences.

A :class:`SessionState` bundles everything the engine needs to score a
live session in O(1) after each event:

* the propagation state (``X``/``M`` for the SUM updater, ``h`` for the
  GRU updater) — advanced by
  :meth:`~repro.core.propagation.TemporalPropagationBase.step`;
* the global extractor's GRU hidden state — advanced by
  :meth:`~repro.core.extractor.GlobalTemporalExtractor.step`;
* the session's edge log (needed for exact-mode rescoring and for
  checkpoints).

States are created, advanced, and serialised by
:class:`~repro.serve.incremental.IncrementalClassifier`; this module
only defines the data shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.extractor import ExtractorState
from repro.core.propagation import PropagationState
from repro.graph.edge import TemporalEdge


@dataclass
class SessionState:
    """Live state of one session inside the streaming engine."""

    session_id: str
    prop_state: PropagationState
    ext_state: ExtractorState
    edges: list[TemporalEdge] = field(default_factory=list)
    feature_seen: set[int] = field(default_factory=set)
    label: int | None = None

    @property
    def num_events(self) -> int:
        """Edges consumed so far."""
        return len(self.edges)

    @property
    def last_time(self) -> float | None:
        """Timestamp of the most recent edge (None before the first)."""
        return self.edges[-1].time if self.edges else None

    @property
    def num_nodes(self) -> int:
        """Nodes materialised so far (including placeholder rows)."""
        return self.prop_state.num_nodes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SessionState(id={self.session_id!r}, events={self.num_events}, "
            f"nodes={self.num_nodes})"
        )
