"""The streaming inference engine: router + incremental model + metrics.

:class:`StreamingEngine` is the deployable unit of :mod:`repro.serve`.
It ingests an interleaved :class:`~repro.serve.events.StreamEvent`
feed, maintains live per-session temporal state, and answers
predictions in O(1) per session — no edge-list replay on the hot path.

Responsibilities are split cleanly so later scaling PRs (sharding,
async ingest, state caches) replace one seam at a time:

* :class:`~repro.serve.router.SessionRouter` — session table, LRU
  eviction, out-of-order admission;
* :class:`~repro.serve.incremental.IncrementalClassifier` — the O(1)
  model-state updates and the online/exact read paths;
* :class:`~repro.serve.metrics.ServeMetrics` — operational counters
  and step-latency percentiles;
* :meth:`StreamingEngine.checkpoint` / :meth:`StreamingEngine.restore`
  — full serving state (weights + every live session + counters) in
  one archive, via :mod:`repro.nn.serialization`.
"""

from __future__ import annotations

import time as _time
from pathlib import Path
from typing import Callable, Iterable, Sequence

import numpy as np

from repro import telemetry
from repro.core.model import TPGNN
from repro.nn.serialization import read_archive, write_archive
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.errors import DeadlineExceededError
from repro.resilience.faults import inject
from repro.serve.events import StreamEvent
from repro.serve.incremental import IncrementalClassifier
from repro.serve.metrics import ServeMetrics
from repro.serve.router import SessionRouter
from repro.serve.state import SessionState

_FORMAT = "repro-serve-state"
_FORMAT_VERSION = 1


def _code_version() -> str:
    # Imported lazily: repro.experiments pulls in the whole offline
    # training stack, which the serve layer must not load at import.
    from repro.experiments.parallel import CODE_VERSION

    return CODE_VERSION


class StreamingEngine:
    """Online TP-GNN inference over an interleaved multi-session feed.

    Parameters
    ----------
    model:
        The (ideally trained) TP-GNN whose parameters serve traffic.
    max_sessions:
        LRU capacity of the session table.
    out_of_order:
        Admission policy for per-session disorder (``"drop"``,
        ``"raise"`` or ``"buffer"``; see :class:`SessionRouter`).
    watermark_delay:
        Buffer window for the ``"buffer"`` policy.
    on_evict:
        Optional hook ``(session_id, SessionState) -> None`` fired when
        the LRU evicts a session (e.g. emit its final prediction).
    missing_features:
        Endpoint cold-start policy (see :class:`IncrementalClassifier`).
        The engine defaults to ``"zeros"``: after an LRU eviction the
        tail of a re-admitted session must keep serving rather than
        crash the ingest loop.
    metrics:
        Inject a :class:`ServeMetrics` (a fresh one is created
        otherwise).
    max_buffered:
        Per-session cap on the out-of-order buffer (see
        :class:`SessionRouter`); overflow drops are counted in
        ``metrics.events_overflow_dropped``.
    validate:
        Event admission control: ``None`` (off), a policy string
        (``"strict"`` / ``"skip"`` / ``"degrade"``, see
        :class:`~repro.resilience.validation.EventValidator`), or a
        pre-built validator.  Quarantined events are counted in
        ``metrics.events_quarantined`` and never touch model state.
    max_node:
        Node-range bound handed to the validator (ignored when
        ``validate`` is a pre-built instance).
    breaker:
        Optional :class:`~repro.resilience.CircuitBreaker` guarding the
        hot paths.  While open, *writes are shed* (the update is
        skipped and ``metrics.breaker_rejections`` counted — the stream
        keeps flowing) and *reads raise*
        :class:`~repro.resilience.CircuitOpenError` (a caller must not
        mistake a rejection for a prediction).
    deadline_seconds:
        Cooperative per-call latency budget for apply/predict.  A
        breach is detected when the call returns: it is counted in
        ``metrics.deadline_breaches``, recorded as a breaker failure,
        and — on the read path only — raised as
        :class:`~repro.resilience.DeadlineExceededError`.
    learner:
        Optional :class:`~repro.online.OnlineLearner` co-deployed with
        this engine (continual learning on the served model).  Its full
        state — weights, optimizer moments, replay buffer — is folded
        into :meth:`checkpoint` archives and restored by
        :meth:`restore`, so online updates survive restarts and
        cluster live migration.
    journal:
        Optional :class:`~repro.resilience.journal.Journal` the engine
        appends every *accepted* event (and every learner observation
        routed through :meth:`observe_example`) to **before** applying
        it — the write-ahead discipline
        :func:`~repro.serve.recovery.recover_engine` replays after a
        crash.  Quarantined events never reach the journal; router
        drops do (replay re-drops them deterministically).
    """

    def __init__(
        self,
        model: TPGNN,
        max_sessions: int = 1024,
        out_of_order: str = "drop",
        watermark_delay: float = 0.0,
        on_evict: Callable[[str, SessionState], None] | None = None,
        missing_features: str = "zeros",
        metrics: ServeMetrics | None = None,
        max_buffered: int | None = 4096,
        validate=None,
        max_node: int | None = None,
        breaker: CircuitBreaker | None = None,
        deadline_seconds: float | None = None,
        learner=None,
        journal=None,
    ):
        if deadline_seconds is not None and deadline_seconds <= 0:
            raise ValueError(f"deadline_seconds must be positive, got {deadline_seconds}")
        self.classifier = IncrementalClassifier(model, missing_features=missing_features)
        self.metrics = metrics if metrics is not None else ServeMetrics()
        self.learner = None
        if learner is not None:
            self.attach_learner(learner)
        self.journal = journal
        # Replay position of the checkpoint this engine was restored
        # from: journal records with seq <= anchor are already folded
        # into the state (0 for a fresh engine).
        self._journal_anchor = 0
        self._user_on_evict = on_evict
        self.validator = self._build_validator(validate, max_node)
        self.breaker = breaker
        self.deadline_seconds = deadline_seconds
        self.router: SessionRouter[SessionState] = SessionRouter(
            factory=self._new_session,
            max_sessions=max_sessions,
            out_of_order=out_of_order,
            watermark_delay=watermark_delay,
            max_buffered=max_buffered,
            on_evict=self._on_evict,
        )

    @staticmethod
    def _build_validator(validate, max_node: int | None):
        # Imported lazily: repro.resilience.validation imports this
        # module back (see the note in repro/resilience/__init__.py).
        if validate is None:
            return None
        from repro.resilience.validation import EventValidator

        if isinstance(validate, EventValidator):
            return validate
        return EventValidator(policy=str(validate), max_node=max_node)

    @property
    def model(self) -> TPGNN:
        """The served model (parameters shared, not copied)."""
        return self.classifier.model

    @property
    def journal_anchor(self) -> int:
        """Journal seq already folded into this engine's base state."""
        return self._journal_anchor

    def attach_learner(self, learner) -> None:
        """Co-deploy an online learner updating this engine's model.

        The learner must hold the *same* model object the engine serves
        — parameter updates are shared by identity, never copied — so a
        mismatch is a wiring bug and raises.
        """
        if learner.model is not self.classifier.model:
            raise ValueError(
                "learner must wrap the same model object this engine serves"
            )
        self.learner = learner

    def attach_journal(self, journal) -> None:
        """Start write-ahead journaling every accepted event.

        Attached *after* replay by :func:`~repro.serve.recovery.recover_engine`
        so replayed events are not re-journaled.
        """
        self.journal = journal

    def observe_example(self, graph) -> float:
        """Feed one labelled graph to the co-deployed learner, journaled.

        The observation is appended to the journal (when one is
        attached) *before* the learner sees it, so a crash mid-update
        replays it and reconstructs the exact post-update weights,
        Adam moments, replay buffer and RNG state.
        """
        if self.learner is None:
            raise ValueError(
                "no learner attached; pass learner= or call attach_learner() "
                "before observe_example()"
            )
        if self.journal is not None:
            self.journal.append_observation(graph)
        return self.learner.observe(graph)

    def _new_session(self, session_id: str) -> SessionState:
        self.metrics.sessions_started += 1
        return self.classifier.new_session(session_id)

    def _on_evict(self, session_id: str, state: SessionState) -> None:
        self.metrics.sessions_evicted += 1
        if self._user_on_evict is not None:
            self._user_on_evict(session_id, state)

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def ingest(self, event: StreamEvent) -> int:
        """Admit one event; returns how many session updates it applied.

        Under the buffer policy one arrival can release several queued
        events (or none); under drop/raise it is 0 or 1.  With a
        validator configured, a quarantined event is counted and
        returns 0 without touching the router.
        """
        self.metrics.events_ingested += 1
        if self.validator is not None:
            admitted = self.validator.admit(event)
            if admitted is None:
                self.metrics.events_quarantined += 1
                return 0
            event = admitted
        if self.journal is not None:
            # Write-ahead: the event hits stable storage before any
            # router/model state changes.  Replay routes it through
            # this same deterministic path, so drops/buffering recur
            # identically and recovery is bit-exact.
            self.journal.append_event(event)
        before_dropped = self.router.stats.dropped
        before_late = self.router.stats.late_dropped
        before_overflow = self.router.stats.buffer_overflow_dropped
        deliveries = self.router.route(event)
        self.metrics.events_dropped += self.router.stats.dropped - before_dropped
        self.metrics.events_late_dropped += self.router.stats.late_dropped - before_late
        self.metrics.events_overflow_dropped += (
            self.router.stats.buffer_overflow_dropped - before_overflow
        )
        applied = 0
        for state, ready in deliveries:
            self._apply(state, ready)
            applied += 1
        return applied

    def _apply(self, state: SessionState, event: StreamEvent) -> None:
        if self.breaker is not None and not self.breaker.allow():
            # Load shedding: while the circuit is open the stream keeps
            # flowing, but updates are skipped and counted.
            self.metrics.breaker_rejections += 1
            return
        if state.label is None and event.label is not None:
            state.label = event.label
        with telemetry.span("serve_apply"):
            start = _time.perf_counter()
            try:
                inject("serve.apply")
                self.classifier.observe(
                    state, (event.src, event.dst, event.time), event.node_features
                )
            except Exception:
                if self.breaker is not None:
                    self.breaker.record_failure()
                raise
            elapsed = _time.perf_counter() - start
            self.metrics.observe_step(elapsed)
        if self._deadline_breached(elapsed):
            return
        if self.breaker is not None:
            self.breaker.record_success()

    def _deadline_breached(self, elapsed: float) -> bool:
        """Count (and feed the breaker) a post-call deadline breach."""
        if self.deadline_seconds is None or elapsed <= self.deadline_seconds:
            return False
        self.metrics.deadline_breaches += 1
        if self.breaker is not None:
            self.breaker.record_failure()
        return True

    def ingest_many(self, feed: Iterable[StreamEvent]) -> int:
        """Ingest a whole feed; returns total session updates applied."""
        return sum(self.ingest(event) for event in feed)

    def flush(self, session_id: str | None = None) -> int:
        """Drain buffered events (end-of-stream); returns count applied.

        With ``session_id`` only that session's buffer is drained — the
        pre-migration barrier a cluster runs before snapshotting one
        session out of a live shard.
        """
        applied = 0
        for state, event in self.router.flush(session_id):
            self._apply(state, event)
            applied += 1
        return applied

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def session(self, session_id: str) -> SessionState | None:
        """The live state of one session (None if unknown/evicted)."""
        return self.router.get(session_id)

    def live_sessions(self) -> list[str]:
        """Ids of all live sessions, least-recently-active first."""
        return self.router.session_ids()

    def predict(self, session_id: str, mode: str = "online") -> float:
        """Probability that ``session_id`` is positive, from live state.

        ``mode="online"`` is the O(1) hot path; ``mode="exact"``
        reproduces batch-replay logits (O(m) in the extractor only).
        """
        state = self.router.get(session_id)
        if state is None:
            raise KeyError(f"unknown session {session_id!r} (never seen or evicted)")
        if self.breaker is not None and not self.breaker.allow():
            self.metrics.breaker_rejections += 1
            from repro.resilience.errors import CircuitOpenError

            raise CircuitOpenError(
                f"serving circuit open; prediction for {session_id!r} rejected"
            )
        with telemetry.span("serve_predict"):
            start = _time.perf_counter()
            try:
                inject("serve.predict")
                probability = self.classifier.predict_proba(state, mode=mode)
            except Exception:
                if self.breaker is not None:
                    self.breaker.record_failure()
                raise
            elapsed = _time.perf_counter() - start
        if self._deadline_breached(elapsed):
            raise DeadlineExceededError(
                f"predict({session_id!r}) took {elapsed:.3f}s, exceeding the "
                f"{self.deadline_seconds:.3f}s deadline"
            )
        if self.breaker is not None:
            self.breaker.record_success()
        self.metrics.predictions_served += 1
        return probability

    def predict_many(
        self, session_ids: Sequence[str] | None = None
    ) -> dict[str, float]:
        """Micro-batched online scoring of many sessions at once.

        Groups the pending sessions' graph embeddings into one matrix
        and runs the classifier head in a single matmul pass — the
        grouped read path a polling consumer should use.
        """
        ids = list(session_ids) if session_ids is not None else self.live_sessions()
        states = []
        for session_id in ids:
            state = self.router.get(session_id)
            if state is None:
                raise KeyError(f"unknown session {session_id!r} (never seen or evicted)")
            states.append(state)
        with telemetry.span("serve_predict_many"):
            logits = self.classifier.logits_online(states)
        self.metrics.predictions_served += len(ids)
        probabilities = 1.0 / (1.0 + np.exp(-logits))
        return dict(zip(ids, (float(p) for p in probabilities)))

    # ------------------------------------------------------------------
    # Checkpoint / restore
    # ------------------------------------------------------------------
    def checkpoint(self, path: str | Path, metadata: dict | None = None) -> Path:
        """Persist the full serving state to one ``.npz`` archive.

        Contains the model weights, every live session's temporal
        state, the LRU order, and the metric counters — enough to
        restart the server mid-stream with :meth:`restore`.

        With a journal attached the archive also anchors the journal
        position (``journal_seq``): recovery replays only records past
        it, and :meth:`Journal.truncate_upto` can reclaim the segments
        behind it.  The journal is fsynced first so the anchor never
        points past stable storage.  Note the anchor covers *accepted*
        events — under the ``buffer`` policy, drain with :meth:`flush`
        before checkpointing if buffered events must be folded in.
        """
        if self.journal is not None:
            self.journal.sync()
        arrays: dict[str, np.ndarray] = {
            f"model.{name}": value for name, value in self.model.state_dict().items()
        }
        session_ids = self.live_sessions()
        labels = {}
        for index, session_id in enumerate(session_ids):
            state = self.router.get(session_id)
            for key, value in self.classifier.snapshot(state).items():
                arrays[f"session.{index}.{key}"] = value
            labels[session_id] = state.label
        if self.learner is not None:
            for key, value in self.learner.snapshot().items():
                arrays[f"learner.{key}"] = value
        meta = {
            "format": _FORMAT,
            "format_version": _FORMAT_VERSION,
            "code_version": _code_version(),
            "journal_seq": (
                self.journal.last_seq
                if self.journal is not None
                else self._journal_anchor
            ),
            "model_class": type(self.model).__name__,
            "has_learner": self.learner is not None,
            "sessions": session_ids,
            "config": {
                "max_sessions": self.router.max_sessions,
                "out_of_order": self.router.out_of_order,
                "watermark_delay": self.router.watermark_delay,
                "max_buffered": self.router.max_buffered,
            },
            "metrics": self.metrics.counters(),
            "user": metadata or {},
        }
        return write_archive(path, arrays, meta)

    @classmethod
    def restore(
        cls,
        path: str | Path,
        model: TPGNN,
        on_evict: Callable[[str, SessionState], None] | None = None,
        max_sessions: int | None = None,
        learner=None,
        allow_version_mismatch: bool = False,
        load_weights: bool = True,
    ) -> "StreamingEngine":
        """Rebuild an engine (weights + sessions + counters) from disk.

        ``model`` must be architecturally identical to the one that
        wrote the checkpoint; its parameters are overwritten.
        ``max_sessions`` overrides the checkpointed LRU capacity (e.g.
        restoring into a smaller shard).  If the checkpoint holds more
        sessions than the capacity — a tampered archive, or a deliberate
        downsize — the oldest sessions *in checkpoint order* (the
        checkpoint lists least-recently-active first) are evicted and
        counted in ``metrics.sessions_restore_evicted`` rather than
        silently over-filling the router.

        ``learner`` restores a co-deployed online learner: pass a fresh
        :class:`~repro.online.OnlineLearner` built over ``model`` with
        the same config, and its weights, optimizer moments and replay
        buffer are loaded from the checkpoint (written there by
        :meth:`checkpoint` when a learner was attached).  Restoring a
        learner from a checkpoint that carries none raises.

        A checkpoint written by a different ``CODE_VERSION`` (or one
        predating the version field) raises
        :class:`~repro.resilience.errors.CheckpointVersionError` —
        state layouts are only guaranteed compatible within one
        version.  Pass ``allow_version_mismatch=True`` to load it
        anyway after verifying the layouts match.

        ``load_weights=False`` keeps ``model``'s *current* parameters
        instead of the checkpointed ones — the shard-respawn path: the
        cluster model is live (possibly advanced by the online
        learner), and a respawned shard must rejoin it, not roll it
        back.
        """
        arrays, meta = read_archive(path)
        if meta.get("format") != _FORMAT:
            raise ValueError(f"{path} is not a serving-state checkpoint")
        if meta.get("format_version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported serving-state format {meta.get('format_version')!r}"
            )
        stored_version = meta.get("code_version")
        current_version = _code_version()
        if stored_version != current_version and not allow_version_mismatch:
            from repro.resilience.errors import CheckpointVersionError

            raise CheckpointVersionError(
                f"{path} was written by code version {stored_version!r} but this "
                f"process runs {current_version!r}; serving-state layouts are only "
                "guaranteed compatible within one version.  Re-checkpoint from a "
                "matching build, or pass allow_version_mismatch=True "
                "(repro recover --allow-version-mismatch) after verifying the "
                "layouts match.",
                stored=stored_version,
                current=current_version,
            )
        model_state = {
            key[len("model."):]: value
            for key, value in arrays.items()
            if key.startswith("model.")
        }
        if load_weights:
            model.load_state_dict(model_state)
        config = meta.get("config", {})
        max_buffered = config.get("max_buffered", 4096)
        engine = cls(
            model,
            max_sessions=int(config.get("max_sessions", 1024))
            if max_sessions is None
            else int(max_sessions),
            out_of_order=str(config.get("out_of_order", "drop")),
            watermark_delay=float(config.get("watermark_delay", 0.0)),
            max_buffered=None if max_buffered is None else int(max_buffered),
            on_evict=on_evict,
        )
        engine.metrics.load_counters(meta.get("metrics", {}))
        engine._journal_anchor = int(meta.get("journal_seq", 0) or 0)
        for index, session_id in enumerate(meta.get("sessions", [])):
            prefix = f"session.{index}."
            session_arrays = {
                key[len(prefix):]: value
                for key, value in arrays.items()
                if key.startswith(prefix)
            }
            state = engine.classifier.restore(session_id, session_arrays)
            evicted = engine.adopt_session(session_id, state)
            engine.metrics.sessions_restore_evicted += len(evicted)
        if learner is not None:
            if not meta.get("has_learner"):
                raise ValueError(
                    f"{path} carries no learner state but a learner was passed"
                )
            learner.restore(
                {
                    key[len("learner."):]: value
                    for key, value in arrays.items()
                    if key.startswith("learner.")
                }
            )
            engine.attach_learner(learner)
        return engine

    # ------------------------------------------------------------------
    # Session migration (single-session snapshot / adopt / remove)
    # ------------------------------------------------------------------
    def snapshot_session(self, session_id: str) -> dict[str, np.ndarray]:
        """Flat array snapshot of one live session (for migration).

        Drain the session's out-of-order buffer first (``flush(session_id)``)
        if in-flight events must be folded in before the state moves.
        """
        state = self.router.get(session_id)
        if state is None:
            raise KeyError(f"unknown session {session_id!r} (never seen or evicted)")
        return self.classifier.snapshot(state)

    def adopt_session(self, session_id: str, state: SessionState) -> list[str]:
        """Install an externally restored session under LRU discipline.

        The router evicts least-recently-active sessions (firing
        ``on_evict`` and counting ``sessions_evicted``) until the
        adoptee fits; their ids are returned so the caller can account
        the displacement (restore counts them as
        ``sessions_restore_evicted``).
        """
        return self.router.adopt(session_id, state, last_time=state.last_time)

    def remove_session(self, session_id: str) -> SessionState | None:
        """Drop one session from the table (no evict hook); returns it.

        The migration source calls this after the target has adopted
        the snapshot — removal is not an eviction, so ``on_evict`` (a
        final-prediction or checkpoint hook) must not fire.
        """
        return self.router.pop(session_id)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StreamingEngine(sessions={len(self.router)}, "
            f"policy={self.router.out_of_order!r}, "
            f"events={self.metrics.events_applied})"
        )
