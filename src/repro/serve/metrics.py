"""Serving metrics: counters and step-latency percentiles.

A deliberately small, dependency-free counter block modelled on what a
real inference service exports: ingest/drop/eviction counters plus a
fixed-size latency reservoir from which p50/p99 are computed.  The
engine updates it on every event; ``repro serve`` prints the summary
after a replay.
"""

from __future__ import annotations

import numpy as np


class LatencyReservoir:
    """Fixed-size ring buffer of the most recent latency samples.

    Keeps serving-time memory bounded no matter how long the engine
    runs; percentiles therefore describe *recent* behaviour, which is
    what an operator watches.
    """

    def __init__(self, capacity: int = 4096):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._samples = np.zeros(capacity)
        self._next = 0
        self.count = 0

    def record(self, seconds: float) -> None:
        """Add one latency sample (seconds)."""
        self._samples[self._next] = seconds
        self._next = (self._next + 1) % self.capacity
        self.count += 1

    def values(self) -> np.ndarray:
        """The retained samples (at most ``capacity``), unordered."""
        return self._samples[: min(self.count, self.capacity)].copy()

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile of retained samples (0 when empty)."""
        values = self.values()
        return float(np.percentile(values, q)) if values.size else 0.0


class ServeMetrics:
    """Counter block for the streaming engine.

    Attributes mirror the lifecycle of an event: it is *ingested*, then
    either *applied* (stepping some session), *dropped* (out-of-order),
    or *late-dropped* (missed the buffer watermark); sessions are
    *started* and possibly *evicted*; reads are *predictions served*.
    """

    def __init__(self, latency_capacity: int = 4096):
        self.events_ingested = 0
        self.events_applied = 0
        self.events_dropped = 0
        self.events_late_dropped = 0
        self.sessions_started = 0
        self.sessions_evicted = 0
        self.predictions_served = 0
        self.step_latency = LatencyReservoir(latency_capacity)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def observe_step(self, seconds: float) -> None:
        """Record one applied event and its step latency."""
        self.events_applied += 1
        self.step_latency.record(seconds)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def counters(self) -> dict[str, int]:
        """The integer counters as a plain dict (checkpointed as-is)."""
        return {
            "events_ingested": self.events_ingested,
            "events_applied": self.events_applied,
            "events_dropped": self.events_dropped,
            "events_late_dropped": self.events_late_dropped,
            "sessions_started": self.sessions_started,
            "sessions_evicted": self.sessions_evicted,
            "predictions_served": self.predictions_served,
        }

    def load_counters(self, counters: dict[str, int]) -> None:
        """Restore counters written by :meth:`counters`."""
        for key, value in counters.items():
            if hasattr(self, key):
                setattr(self, key, int(value))

    def summary(self) -> dict[str, float]:
        """Counters plus latency percentiles (milliseconds)."""
        info: dict[str, float] = dict(self.counters())
        info["step_latency_p50_ms"] = self.step_latency.percentile(50) * 1e3
        info["step_latency_p99_ms"] = self.step_latency.percentile(99) * 1e3
        return info

    def render(self) -> str:
        """Human-readable one-block summary (printed by ``repro serve``)."""
        summary = self.summary()
        lines = ["serve metrics"]
        for key, value in summary.items():
            if key.endswith("_ms"):
                lines.append(f"  {key:<24} {value:9.3f}")
            else:
                lines.append(f"  {key:<24} {int(value):9d}")
        return "\n".join(lines)
