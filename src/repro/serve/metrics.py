"""Serving metrics: a thin facade over :mod:`repro.telemetry`.

The counters and the step-latency distribution of the streaming engine
live in a :class:`~repro.telemetry.MetricRegistry` (private per engine
by default; pass a shared registry to aggregate several engines into
one export).  The original attribute API — ``metrics.events_ingested``,
``metrics.step_latency.percentile(99)`` — is preserved exactly, so the
engine, its checkpoints and existing callers are unchanged.

:class:`LatencyReservoir` is kept only as a deprecated alias of the
shared :class:`~repro.telemetry.Histogram`; the bespoke ring-buffer and
quantile code it used to carry now has a single implementation in
:mod:`repro.telemetry.registry`.
"""

from __future__ import annotations

from repro.telemetry import Histogram, MetricRegistry

#: Lifecycle counters exported by the engine, in render order.
_COUNTER_NAMES = (
    "events_ingested",
    "events_applied",
    "events_dropped",
    "events_late_dropped",
    "events_quarantined",
    "events_overflow_dropped",
    "sessions_started",
    "sessions_evicted",
    "sessions_restore_evicted",
    "predictions_served",
    "deadline_breaches",
    "breaker_rejections",
)


class LatencyReservoir(Histogram):
    """Deprecated: use :class:`repro.telemetry.Histogram`.

    The serving layer's original fixed-size latency ring buffer is now
    the telemetry histogram (same ``record``/``values``/``percentile``
    surface plus exact running aggregates); this alias remains for
    import compatibility only.
    """


def _counter_property(name: str) -> property:
    """Attribute-style access to one registry counter."""

    def getter(self: "ServeMetrics") -> int:
        return self._counters[name].value

    def setter(self: "ServeMetrics", value: int) -> None:
        self._counters[name].set(int(value))

    getter.__name__ = name
    return property(getter, setter, doc=f"Count of {name.replace('_', ' ')}.")


class ServeMetrics:
    """Counter block for the streaming engine, registry-backed.

    Attributes mirror the lifecycle of an event: it is *ingested*, then
    either *applied* (stepping some session), *dropped* (out-of-order),
    or *late-dropped* (missed the buffer watermark); sessions are
    *started* and possibly *evicted*; reads are *predictions served*.

    Parameters
    ----------
    latency_capacity:
        Ring-buffer size of the step-latency histogram.
    registry:
        Optional shared :class:`~repro.telemetry.MetricRegistry`; a
        private one is created otherwise so concurrent engines never
        collide on series names.
    """

    def __init__(
        self,
        latency_capacity: int = 4096,
        registry: MetricRegistry | None = None,
    ):
        self.registry = registry if registry is not None else MetricRegistry()
        self._counters = {
            name: self.registry.counter(f"serve/{name}") for name in _COUNTER_NAMES
        }
        self.step_latency: Histogram = self.registry.histogram(
            "serve/step_latency_seconds", capacity=latency_capacity
        )

    events_ingested = _counter_property("events_ingested")
    events_applied = _counter_property("events_applied")
    events_dropped = _counter_property("events_dropped")
    events_late_dropped = _counter_property("events_late_dropped")
    events_quarantined = _counter_property("events_quarantined")
    events_overflow_dropped = _counter_property("events_overflow_dropped")
    sessions_started = _counter_property("sessions_started")
    sessions_evicted = _counter_property("sessions_evicted")
    sessions_restore_evicted = _counter_property("sessions_restore_evicted")
    predictions_served = _counter_property("predictions_served")
    deadline_breaches = _counter_property("deadline_breaches")
    breaker_rejections = _counter_property("breaker_rejections")

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def observe_step(self, seconds: float) -> None:
        """Record one applied event and its step latency."""
        self._counters["events_applied"].inc()
        self.step_latency.record(seconds)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def counters(self) -> dict[str, int]:
        """The integer counters as a plain dict (checkpointed as-is)."""
        return {name: self._counters[name].value for name in _COUNTER_NAMES}

    def load_counters(self, counters: dict[str, int]) -> None:
        """Restore counters written by :meth:`counters`."""
        for key, value in counters.items():
            if key in self._counters:
                self._counters[key].set(int(value))

    def summary(self) -> dict[str, float]:
        """Counters plus latency percentiles (milliseconds)."""
        info: dict[str, float] = dict(self.counters())
        info["step_latency_p50_ms"] = self.step_latency.percentile(50) * 1e3
        info["step_latency_p99_ms"] = self.step_latency.percentile(99) * 1e3
        return info

    def render(self) -> str:
        """Human-readable one-block summary (printed by ``repro serve``)."""
        summary = self.summary()
        lines = ["serve metrics"]
        for key, value in summary.items():
            if key.endswith("_ms"):
                lines.append(f"  {key:<24} {value:9.3f}")
            else:
                lines.append(f"  {key:<24} {int(value):9d}")
        return "\n".join(lines)
