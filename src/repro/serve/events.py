"""Event model for online serving: one record per temporal edge.

A live deployment observes an *interleaved* feed of events from many
concurrent sessions (user sessions, HDFS blocks, trajectories …).  Each
:class:`StreamEvent` is one temporal edge of one session, carrying raw
features for any endpoint the server has not seen yet — the streaming
analogue of a :class:`~repro.graph.ctdn.CTDN` row.

:func:`dataset_to_feed` replays a :class:`~repro.graph.dataset.GraphDataset`
as such a feed (chronological within each session, sessions interleaved
by timestamp), which is how the ``repro serve`` CLI, the examples, and
the serve test-suite drive the engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

import numpy as np

from repro.graph.ctdn import CTDN


@dataclass(frozen=True)
class StreamEvent:
    """One temporal edge of one session, as seen on the wire.

    Parameters
    ----------
    session_id:
        Which session (dynamic graph) the edge belongs to.
    src, dst:
        Session-local node ids (information flows ``src -> dst``).
    time:
        Event timestamp.  Sessions keep independent clocks; the model
        encodes session-relative time, so absolute offsets are free.
    node_features:
        Raw feature rows for endpoints this event introduces, keyed by
        node id.  Required the first time a node id appears in a
        session; ignored for already-known nodes.
    label:
        Optional ground-truth session label, carried through for replay
        evaluation (never consumed by the engine itself).
    """

    session_id: str
    src: int
    dst: int
    time: float
    node_features: Mapping[int, np.ndarray] | None = None
    label: int | None = field(default=None, compare=False)

    def __post_init__(self):
        if self.src < 0 or self.dst < 0:
            raise ValueError(f"node ids must be non-negative, got ({self.src}, {self.dst})")
        if not np.isfinite(self.time):
            raise ValueError(f"event time must be finite, got {self.time}")


def session_events(
    graph: CTDN, session_id: str | None = None, offset: float = 0.0
) -> list[StreamEvent]:
    """One session's chronological events, features attached on first sight.

    ``offset`` shifts the session's clock (time encoding is
    session-relative, so predictions are unaffected).
    """
    sid = session_id if session_id is not None else (graph.graph_id or "session-0")
    seen: set[int] = set()
    events = []
    for edge in graph.edges_sorted():
        features = {}
        for node in (edge.src, edge.dst):
            if node not in seen:
                features[node] = graph.features[node]
                seen.add(node)
        events.append(
            StreamEvent(
                session_id=sid,
                src=edge.src,
                dst=edge.dst,
                time=edge.time + offset,
                node_features=features or None,
                label=graph.label,
            )
        )
    return events


def dataset_to_feed(
    graphs: Iterable[CTDN],
    rng: np.random.Generator | None = None,
    spread: float = 0.0,
) -> list[StreamEvent]:
    """Replay a dataset as one interleaved, time-ordered event feed.

    Parameters
    ----------
    graphs:
        The sessions to replay (a :class:`GraphDataset` works directly).
    rng:
        When given with ``spread`` > 0, each session's clock is shifted
        by a uniform offset in ``[0, spread)`` so arrivals interleave
        the way independent live sessions do.
    spread:
        Width of the random per-session start-time window.

    Returns
    -------
    Events sorted by timestamp; ties keep per-session chronological
    order (stable sort), so every session still sees its own edges in
    order.
    """
    feed: list[StreamEvent] = []
    for index, graph in enumerate(graphs):
        sid = graph.graph_id or f"session-{index}"
        offset = float(rng.uniform(0.0, spread)) if (rng is not None and spread > 0) else 0.0
        feed.extend(session_events(graph, session_id=sid, offset=offset))
    feed.sort(key=lambda e: e.time)
    return feed


def iter_feed(feed: Iterable[StreamEvent]) -> Iterator[StreamEvent]:
    """Iterate a feed, validating monotone non-decreasing arrival times."""
    last = -np.inf
    for event in feed:
        if event.time < last:
            raise ValueError(
                f"feed is not time-ordered: {event.time} after {last} "
                "(sort it or route through SessionRouter with a buffer policy)"
            )
        last = event.time
        yield event
