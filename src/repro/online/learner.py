"""The OnlineLearner: prequential test-then-train on the live stream.

Offline, the reproduction trains with Adam over epochs; online, a
deployed model must keep serving while the stream may be shifting under
it.  :class:`OnlineLearner` closes the loop with the standard
continual-learning discipline:

1. **test** — every completed session is scored first (under
   ``no_grad``), and the score/loss lands in the
   :class:`~repro.online.prequential.PrequentialMetrics` series;
2. **then train** — the session joins a bounded
   :class:`~repro.online.buffer.ReplayBuffer`, and every
   ``online_update_every`` examples one micro-batch update round runs:
   a seeded sample from the buffer, gradients accumulated and averaged
   exactly like the offline trainer, ``clip_grad_norm``, a finiteness
   guard, one Adam step.

With ``online_update_every=0`` the learner never touches a parameter:
the online path is then *exactly* offline inference (a property test
pins this bit-for-bit).  All learner state — weights, Adam moments,
replay buffer, sampling RNG, counters, prequential series — snapshots
to flat arrays, so serve checkpoints and cluster migration carry the
updates along (see ``StreamingEngine.checkpoint`` and the round-trip
tests).

Hyperparameters come from :class:`~repro.training.TrainConfig`:
``learning_rate`` / ``batch_size`` / ``grad_clip`` / ``seed`` exactly as
offline, plus the online-only ``replay_buffer`` and
``online_update_every`` fields.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from typing import Mapping

import numpy as np

from repro import telemetry
from repro.core.base import GraphClassifierBase
from repro.graph.ctdn import CTDN
from repro.nn import bce_with_logits
from repro.online.buffer import ReplayBuffer
from repro.online.prequential import PrequentialMetrics
from repro.optim import Adam, clip_grad_norm
from repro.resilience.faults import inject
from repro.tensor import no_grad
from repro.training.trainer import TrainConfig


def _json_array(payload) -> np.ndarray:
    return np.frombuffer(json.dumps(payload).encode("utf-8"), dtype=np.uint8).copy()


def _json_load(array: np.ndarray):
    return json.loads(np.asarray(array, dtype=np.uint8).tobytes().decode("utf-8"))


class OnlineLearner:
    """Incremental parameter updates over a stream of labelled sessions.

    Parameters
    ----------
    model:
        Any :class:`~repro.core.base.GraphClassifierBase`; its
        parameters are updated **in place** (shared with every serving
        engine holding the same model object).
    config:
        Hyperparameters; see the module docstring.  ``replay_buffer``
        must be >= 1; ``online_update_every=0`` disables updates.
    metrics_window:
        Default window for rolling prequential loss/AUC.
    """

    def __init__(
        self,
        model: GraphClassifierBase,
        config: TrainConfig | None = None,
        metrics_window: int = 40,
    ):
        config = config if config is not None else TrainConfig()
        if config.online_update_every < 0:
            raise ValueError(
                f"online_update_every must be >= 0, got {config.online_update_every}"
            )
        self.model = model
        self.config = config
        self.optimizer = Adam(model.parameters(), lr=config.learning_rate)
        self.buffer = ReplayBuffer(config.replay_buffer)
        self.metrics = PrequentialMetrics(window=metrics_window)
        self.rng = np.random.default_rng(config.seed)
        self.examples_seen = 0
        self.updates_applied = 0
        self.nonfinite_updates = 0
        # Frozen copy of the weights at attach time: what the
        # reset-and-retrain policy rolls back to.
        self._initial_weights = {
            key: value.copy() for key, value in model.state_dict().items()
        }

    # ------------------------------------------------------------------
    # Prequential write path
    # ------------------------------------------------------------------
    def score(self, graph: CTDN) -> float:
        """P(label=1) under the current weights (no training side effects)."""
        with no_grad():
            logit = float(self.model(graph).item())
        return float(1.0 / (1.0 + np.exp(-logit)))

    def observe(self, graph: CTDN) -> float:
        """Test-then-train on one completed labelled session.

        Returns the *pre-update* probability — the honest prequential
        score, produced before this example could influence the weights.
        """
        if graph.label is None:
            raise ValueError("online learning needs labelled sessions")
        with telemetry.span("online_observe"):
            with no_grad():
                logit = float(self.model(graph).item())
            probability = float(1.0 / (1.0 + np.exp(-logit)))
            label = float(graph.label)
            # Stable scalar BCE from the raw logit (same form the
            # training loss uses).
            loss = max(logit, 0.0) - logit * label + float(np.log1p(np.exp(-abs(logit))))
            self.metrics.record(graph.label, probability, loss)
            self.buffer.add(graph)
            self.examples_seen += 1
            if telemetry.enabled():
                telemetry.get_registry().counter("online/examples").inc()
            if (
                self.config.online_update_every > 0
                and self.examples_seen % self.config.online_update_every == 0
            ):
                self.update()
        return probability

    # ------------------------------------------------------------------
    # Update rounds
    # ------------------------------------------------------------------
    def update(self, rounds: int = 1) -> int:
        """Run ``rounds`` micro-batch update rounds from the replay buffer.

        Each round mirrors one optimizer step of the offline trainer:
        gradients from a seeded ``batch_size`` sample are accumulated,
        averaged over the actual batch, globally clipped, and stepped
        only if the norm is finite (a poisoned round is skipped and
        counted in ``nonfinite_updates``, never stepped into the Adam
        moments).  Returns how many rounds actually stepped.
        """
        stepped = 0
        for _ in range(rounds):
            batch = self.buffer.sample(self.config.batch_size, self.rng)
            if not batch:
                break
            with telemetry.span("online_update"):
                was_training = self.model.training
                self.model.train()
                try:
                    self.optimizer.zero_grad()
                    for graph in batch:
                        loss = bce_with_logits(
                            self.model(graph), np.array([float(graph.label)])
                        )
                        loss.backward()
                    if len(batch) > 1:
                        for param in self.model.parameters():
                            if param.grad is not None:
                                param.grad /= len(batch)
                    # Chaos hook: "nan"/"inf" plans poison the averaged
                    # gradients here; the finiteness guard below must
                    # then skip the round.
                    inject(
                        "online.update",
                        context=lambda: [
                            param.grad
                            for param in self.model.parameters()
                            if param.grad is not None
                        ],
                    )
                    norm = clip_grad_norm(self.model.parameters(), self.config.grad_clip)
                    if np.isfinite(norm):
                        self.optimizer.step()
                        self.updates_applied += 1
                        stepped += 1
                        if telemetry.enabled():
                            registry = telemetry.get_registry()
                            registry.counter("online/updates").inc()
                            registry.histogram("online/update_grad_norm").record(
                                float(norm)
                            )
                    else:
                        self.nonfinite_updates += 1
                        if telemetry.enabled():
                            telemetry.get_registry().counter(
                                "online/update_skipped_nonfinite"
                            ).inc()
                    self.optimizer.zero_grad()
                finally:
                    if not was_training:
                        self.model.eval()
        return stepped

    def reset_parameters(self) -> None:
        """Roll the model back to its attach-time weights, fresh moments.

        The reset-and-retrain adaptation policy calls this before
        retraining on the (post-drift) replay buffer.
        """
        self.model.load_state_dict(
            {key: value.copy() for key, value in self._initial_weights.items()}
        )
        self.optimizer = Adam(self.model.parameters(), lr=self.config.learning_rate)

    # ------------------------------------------------------------------
    # Snapshot / restore
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, np.ndarray]:
        """Everything needed to continue the learner bit-exactly.

        Weights, Adam moments (including the bias-correction step
        count), the attach-time weights, the replay buffer, the
        sampling-RNG state, the prequential series and the counters.
        """
        arrays: dict[str, np.ndarray] = {}
        for key, value in self.model.state_dict().items():
            arrays[f"model.{key}"] = value.copy()
        for key, value in self.optimizer.state_dict().items():
            arrays[f"optim.{key}"] = np.asarray(value).copy()
        for key, value in self._initial_weights.items():
            arrays[f"init.{key}"] = value.copy()
        for key, value in self.buffer.snapshot().items():
            arrays[f"buffer.{key}"] = value
        for key, value in self.metrics.snapshot().items():
            arrays[f"metrics.{key}"] = value
        arrays["counters"] = np.asarray(
            [self.examples_seen, self.updates_applied, self.nonfinite_updates],
            dtype=np.int64,
        )
        arrays["rng"] = _json_array(self.rng.bit_generator.state)
        arrays["config"] = _json_array(asdict(self.config))
        return arrays

    def restore(self, arrays: Mapping[str, np.ndarray]) -> None:
        """Load a :meth:`snapshot` in place (config must match exactly).

        Like resuming offline training, restoring under different
        hyperparameters would splice two trajectories, so a mismatched
        config raises instead.
        """
        stored = _json_load(arrays["config"])
        if stored != asdict(self.config):
            raise ValueError(
                f"learner snapshot was written under a different TrainConfig "
                f"({stored} vs {asdict(self.config)}); refusing to restore"
            )

        def group(prefix: str) -> dict[str, np.ndarray]:
            return {
                key[len(prefix):]: value
                for key, value in arrays.items()
                if key.startswith(prefix)
            }

        self.model.load_state_dict(group("model."))
        self.optimizer.load_state_dict(group("optim."))
        self._initial_weights = {
            key: np.asarray(value).copy() for key, value in group("init.").items()
        }
        self.buffer = ReplayBuffer.restore(group("buffer."))
        self.metrics = PrequentialMetrics.restore(group("metrics."))
        seen, applied, nonfinite = (int(v) for v in arrays["counters"])
        self.examples_seen = seen
        self.updates_applied = applied
        self.nonfinite_updates = nonfinite
        self.rng = np.random.default_rng(self.config.seed)
        self.rng.bit_generator.state = _json_load(arrays["rng"])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"OnlineLearner(examples={self.examples_seen}, "
            f"updates={self.updates_applied}, buffer={len(self.buffer)}, "
            f"update_every={self.config.online_update_every})"
        )
