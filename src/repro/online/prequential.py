"""Prequential (test-then-train) metrics and query-time evaluation.

Two evaluation views of a model serving a live stream:

* :class:`PrequentialMetrics` — the interleaved test-then-train
  protocol: every streamed session is scored *before* the learner may
  train on it, so the loss/AUC series measures generalisation to
  genuinely unseen data at every point of the stream.  A sustained rise
  in the prequential loss is the canonical concept-drift signal the
  detectors in :mod:`repro.online.drift` consume.
* :func:`score_at` / :func:`prefix_at` — continuous-prediction
  evaluation at *arbitrary query times*: the probability the model
  assigns a session given only the events with timestamp ``<= tau``,
  for any ``tau`` between (or beyond) its events.  Prefixes are
  zero-copy chronological store views, so sweeping many query times
  over one session costs O(1) memory per query.
"""

from __future__ import annotations

import numpy as np

from repro import telemetry
from repro.graph.ctdn import CTDN
from repro.tensor import no_grad
from repro.training.metrics import roc_auc


class PrequentialMetrics:
    """Streaming test-then-train loss/AUC over an example stream.

    ``record`` appends one scored example; AUC is computed on demand
    over any index window through the rank statistic in
    :func:`repro.training.metrics.roc_auc` (whose single-class fallback
    of 0.5 makes small windows safe).  When telemetry is captured, every
    loss lands in the ``online/prequential_loss`` histogram.
    """

    def __init__(self, window: int = 40):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.window = window
        self.labels: list[int] = []
        self.scores: list[float] = []
        self.losses: list[float] = []

    def __len__(self) -> int:
        return len(self.losses)

    def record(self, label: int, score: float, loss: float) -> None:
        """Log one prequential example (scored before any training)."""
        self.labels.append(int(label))
        self.scores.append(float(score))
        self.losses.append(float(loss))
        if telemetry.enabled():
            telemetry.get_registry().histogram("online/prequential_loss").record(
                float(loss)
            )

    @property
    def last_loss(self) -> float:
        if not self.losses:
            raise ValueError("no prequential examples recorded yet")
        return self.losses[-1]

    def mean_loss(self, start: int = 0, end: int | None = None) -> float:
        """Mean prequential loss over ``[start, end)`` (whole stream by default)."""
        span = self.losses[start:end]
        if not span:
            raise ValueError(f"empty loss window [{start}, {end})")
        return float(np.mean(span))

    def rolling_loss(self, window: int | None = None) -> float:
        """Mean loss over the trailing ``window`` examples."""
        return self.mean_loss(start=-min(window or self.window, len(self.losses)))

    def auc(self, start: int = 0, end: int | None = None) -> float:
        """Prequential AUC over ``[start, end)`` (0.5 when single-class)."""
        labels = self.labels[start:end]
        scores = self.scores[start:end]
        if not labels:
            raise ValueError(f"empty AUC window [{start}, {end})")
        return roc_auc(labels, scores)

    def windowed_auc(self, window: int | None = None) -> float:
        """AUC over the trailing ``window`` examples."""
        return self.auc(start=-min(window or self.window, len(self.labels)))

    def snapshot(self) -> dict[str, np.ndarray]:
        return {
            "labels": np.asarray(self.labels, dtype=np.int64),
            "scores": np.asarray(self.scores, dtype=np.float64),
            "losses": np.asarray(self.losses, dtype=np.float64),
            "window": np.asarray(self.window, dtype=np.int64),
        }

    @classmethod
    def restore(cls, arrays) -> "PrequentialMetrics":
        metrics = cls(window=int(arrays["window"]))
        metrics.labels = [int(v) for v in arrays["labels"]]
        metrics.scores = [float(v) for v in arrays["scores"]]
        metrics.losses = [float(v) for v in arrays["losses"]]
        return metrics


# ----------------------------------------------------------------------
# Query-time evaluation
# ----------------------------------------------------------------------
def prefix_at(graph: CTDN, time: float) -> CTDN:
    """The session as of query time ``time``: events with ``t <= time``.

    Returns a zero-copy chronological prefix view (possibly empty).  The
    full node-feature matrix is kept — TP-GNN reads node features only
    through edge endpoints, so rows of not-yet-seen nodes are inert,
    and the prefix scores identically to a stream that materialised
    features on arrival.
    """
    chronological = graph.store.chronological()
    count = int(np.searchsorted(chronological.t, float(time), side="right"))
    return CTDN.from_store(
        graph.num_nodes,
        graph.features,
        chronological.prefix(count),
        label=graph.label,
        graph_id=graph.graph_id,
    )


def score_at(model, graph: CTDN, time: float) -> float:
    """P(label=1) for ``graph`` using only events up to query time ``time``.

    Query times before the first event carry no information: the defined
    result is 0.5 (matching the AUC no-information convention) rather
    than an error, so sweeping a time grid across a session is safe.
    For ``time >= graph.duration``'s end the score equals the model's
    full-session probability.
    """
    prefix = prefix_at(graph, time)
    if prefix.num_edges == 0:
        return 0.5
    with no_grad():
        logit = float(model(prefix).item())
    return float(1.0 / (1.0 + np.exp(-logit)))


def score_curve(model, graph: CTDN, times) -> np.ndarray:
    """Vector of :func:`score_at` probabilities over a query-time grid."""
    return np.asarray([score_at(model, graph, t) for t in times], dtype=np.float64)
