"""Seeded concept-drift scenarios and the detection/recovery harness.

Each scenario is a workflow automaton emitting labelled session graphs
(columns straight into :class:`~repro.graph.store.EventStore` via
:class:`~repro.data.SessionBuilder`), with a distribution change
injected at a known stream position — the chaos harness's
seeded-scenario idiom applied to data drift instead of faults:

* ``stationary`` — the control: one regime end to end.  Any alarm is a
  false alarm.
* ``transition-shift`` — the automaton's transition probabilities shift
  mid-stream: healthy workflows suddenly route through warn/retry
  stages (``warn_probability`` 0 → 0.7), so post-drift *positives*
  carry the exception flag the pre-drift model learned to read as
  "faulty".
* ``fault-onset`` — a fault type that exists only after a deployment
  point: pre-drift negatives are exception cascades; post-drift the
  cascades are replaced by *silent bursts* (no exception flag, a
  rapid-fire temporal/duration signature the pre-drift model has never
  seen).

:func:`run_drift_scenario` executes the full protocol — offline
pretraining on the stream head, prequential test-then-train over the
rest through a :class:`~repro.online.drift.DriftMonitor` — and reports
detection delay, false alarms and pre/post/recovered prequential AUC.
``repro drift`` renders these as the detection/recovery table and
records them to ``BENCH_drift.json``; the slow suite under
``benchmarks/`` gates on them.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, replace

import numpy as np

from repro.core.model import TPGNN
from repro.data.session import SessionBuilder
from repro.graph.ctdn import CTDN
from repro.graph.dataset import GraphDataset
from repro.online.drift import DriftMonitor, make_detector
from repro.online.learner import OnlineLearner
from repro.online.policies import make_policy
from repro.training.trainer import TrainConfig, train_model

#: Node features are ``[stage_code, duration, exception_flag]``.
FEATURE_DIM = 3


@dataclass(frozen=True)
class PhaseParams:
    """One regime of the workflow automaton.

    ``warn_probability`` is the transition probability of routing a
    healthy workflow step through a warn/retry stage (which sets the
    exception flag); ``gap_scale`` scales the exponential inter-event
    gaps; ``negative_kind`` picks which fault family produces the
    negative sessions.
    """

    warn_probability: float = 0.0
    gap_scale: float = 1.0
    negative_kind: str = "cascade"  # "cascade" | "burst"


@dataclass(frozen=True)
class DriftScenario:
    """A seeded stream with (optionally) one mid-stream regime change."""

    name: str
    kind: str  # "stationary" | "transition-shift" | "fault-onset"
    description: str
    pre: PhaseParams = PhaseParams()
    post: PhaseParams | None = None
    sessions: int = 240
    drift_at: float | None = 0.5  # stream fraction; None = stationary
    negative_ratio: float = 0.5

    def drift_index(self) -> int | None:
        """Absolute stream index of the first post-drift session."""
        if self.drift_at is None or self.post is None:
            return None
        return int(self.sessions * self.drift_at)

    def generate(self, seed: int = 0) -> list[CTDN]:
        """The full session stream, in arrival order (seeded)."""
        rng = np.random.default_rng(seed)
        drift = self.drift_index()
        graphs = []
        for index in range(self.sessions):
            params = self.pre if drift is None or index < drift else self.post
            graph_id = f"{self.name}-{index}"
            if rng.random() < self.negative_ratio:
                graphs.append(_negative_session(rng, params, graph_id))
            else:
                graphs.append(_positive_session(rng, params, graph_id))
        return graphs


def _positive_session(rng: np.random.Generator, params: PhaseParams, graph_id: str) -> CTDN:
    """A healthy workflow chain; warn stages appear per the automaton."""
    builder = SessionBuilder(FEATURE_DIM, graph_id=graph_id)
    stages = int(rng.integers(4, 9))
    previous = builder.add_event([0.0, 0.5, 0.0])
    for stage in range(1, stages + 1):
        gap = float(rng.exponential(params.gap_scale)) + 0.05
        flag = 1.0 if rng.random() < params.warn_probability else 0.0
        previous = builder.follow(previous, [stage / 10.0, 0.5, flag], gap)
    return builder.build(label=1)


def _negative_session(rng: np.random.Generator, params: PhaseParams, graph_id: str) -> CTDN:
    """A faulty workflow of the regime's fault family."""
    builder = SessionBuilder(FEATURE_DIM, graph_id=graph_id)
    previous = builder.add_event([0.0, 0.5, 0.0])
    # Normal prefix: the session starts healthy either way.
    for stage in (1, 2):
        gap = float(rng.exponential(params.gap_scale)) + 0.05
        previous = builder.follow(previous, [stage / 10.0, 0.5, 0.0], gap)
    if params.negative_kind == "cascade":
        # Exception cascade: error events with the flag set, fanned out
        # from the failing step in quick succession.
        origin = previous
        for _ in range(int(rng.integers(4, 8))):
            gap = 0.05 + 0.1 * float(rng.random())
            node = builder.follow(origin, [0.9, 0.9, 1.0], gap)
            builder.add_edge(previous, node)
            previous = node
    elif params.negative_kind == "burst":
        # Silent burst: no exception flag; the signature is rapid-fire
        # repeats with a near-zero duration feature.
        partner = builder.follow(previous, [0.5, 0.05, 0.0], 0.02)
        for _ in range(int(rng.integers(6, 11))):
            builder.advance(0.02)
            builder.add_edge(previous, partner)
            builder.add_edge(partner, previous)
    else:  # pragma: no cover - registry-validated
        raise KeyError(f"unknown negative kind {params.negative_kind!r}")
    return builder.build(label=0)


#: The scenario registry behind ``repro drift --scenarios``.
SCENARIOS: dict[str, DriftScenario] = {
    scenario.name: scenario
    for scenario in (
        DriftScenario(
            name="stationary",
            kind="stationary",
            description="one regime end to end; any alarm is a false alarm",
            drift_at=None,
        ),
        DriftScenario(
            name="transition-shift",
            kind="transition-shift",
            description="healthy workflows start routing through warn stages "
                        "mid-stream (transition probability 0 -> 0.7)",
            post=PhaseParams(warn_probability=0.7),
        ),
        DriftScenario(
            name="fault-onset",
            kind="fault-onset",
            description="exception cascades are replaced by silent bursts "
                        "after the deployment point",
            post=PhaseParams(negative_kind="burst"),
        ),
    )
}

SCENARIO_NAMES = tuple(SCENARIOS)


# ----------------------------------------------------------------------
# Detection / recovery harness
# ----------------------------------------------------------------------
@dataclass
class DriftOutcome:
    """What one scenario run measured (one row of the report table)."""

    scenario: str
    kind: str
    detector: str
    policy: str
    sessions: int
    pretrain: int
    drift_index: int | None  # index within the *streamed* part
    alarms: list[tuple[int, str]]
    false_alarms: int
    detection_delay: int | None
    pre_auc: float
    post_auc: float | None
    recovered_auc: float
    recovery_fraction: float | None
    updates_applied: int
    detector_errors: int
    seconds: float

    def to_dict(self) -> dict:
        payload = asdict(self)
        payload["alarms"] = [list(alarm) for alarm in self.alarms]
        return payload


def run_drift_scenario(
    scenario: DriftScenario | str,
    *,
    seed: int = 0,
    detector: str = "page-hinkley",
    policy: str = "fine-tune",
    sessions: int | None = None,
    pretrain: int = 60,
    pretrain_epochs: int = 4,
    window: int = 30,
    update_every: int = 2,
    replay_buffer: int = 96,
    batch_size: int = 8,
    learning_rate: float = 1e-2,
    hidden_size: int = 8,
    time_dim: int = 4,
) -> DriftOutcome:
    """Run the full pretrain → stream → detect → adapt protocol.

    The stream head (``pretrain`` sessions, all pre-drift) trains the
    model offline; the rest is streamed prequentially through an
    :class:`OnlineLearner` under a :class:`DriftMonitor`.  AUC windows
    of ``window`` examples are read right before the drift point, right
    after it, and at the stream tail; ``recovery_fraction`` is
    tail AUC / pre-drift AUC.
    """
    if isinstance(scenario, str):
        if scenario not in SCENARIOS:
            raise KeyError(
                f"unknown drift scenario {scenario!r}; choose from {SCENARIO_NAMES}"
            )
        scenario = SCENARIOS[scenario]
    if sessions is not None:
        scenario = replace(scenario, sessions=sessions)
    drift_abs = scenario.drift_index()
    if drift_abs is not None and pretrain >= drift_abs:
        raise ValueError(
            f"pretrain ({pretrain}) must end before the drift point ({drift_abs})"
        )
    if pretrain >= scenario.sessions:
        raise ValueError(
            f"pretrain ({pretrain}) must leave sessions to stream "
            f"({scenario.sessions} total)"
        )

    started = time.perf_counter()
    stream = scenario.generate(seed)
    model = TPGNN(
        in_features=FEATURE_DIM,
        hidden_size=hidden_size,
        gru_hidden_size=hidden_size,
        time_dim=time_dim,
        seed=seed,
    )
    config = TrainConfig(
        epochs=pretrain_epochs,
        learning_rate=learning_rate,
        batch_size=batch_size,
        seed=seed,
        replay_buffer=replay_buffer,
        online_update_every=update_every,
    )
    train_model(model, GraphDataset(stream[:pretrain], name=scenario.name), config)
    model.eval()

    learner = OnlineLearner(model, config, metrics_window=window)
    monitor = DriftMonitor(
        learner,
        detector=make_detector(detector),
        policy=make_policy(policy),
    )
    for graph in stream[pretrain:]:
        monitor.observe(graph)

    metrics = learner.metrics
    streamed = len(stream) - pretrain
    drift_index = None if drift_abs is None else drift_abs - pretrain
    alarms = [(alarm.index, alarm.source) for alarm in monitor.alarms]
    if drift_index is None:
        false_alarms = len(alarms)
        detection_delay = None
        pre_auc = metrics.auc(0, min(window, streamed))
        post_auc = None
        recovery_fraction = None
    else:
        false_alarms = sum(1 for index, _ in alarms if index < drift_index)
        detected = [index for index, _ in alarms if index >= drift_index]
        detection_delay = (detected[0] - drift_index) if detected else None
        pre_auc = metrics.auc(max(0, drift_index - window), drift_index)
        post_auc = metrics.auc(drift_index, min(drift_index + window, streamed))
        recovery_fraction = None
    recovered_auc = metrics.windowed_auc(window)
    if drift_index is not None and pre_auc > 0:
        recovery_fraction = recovered_auc / pre_auc
    return DriftOutcome(
        scenario=scenario.name,
        kind=scenario.kind,
        detector=detector,
        policy=policy,
        sessions=scenario.sessions,
        pretrain=pretrain,
        drift_index=drift_index,
        alarms=alarms,
        false_alarms=false_alarms,
        detection_delay=detection_delay,
        pre_auc=float(pre_auc),
        post_auc=None if post_auc is None else float(post_auc),
        recovered_auc=float(recovered_auc),
        recovery_fraction=None if recovery_fraction is None else float(recovery_fraction),
        updates_applied=learner.updates_applied,
        detector_errors=monitor.detector_errors,
        seconds=time.perf_counter() - started,
    )


def run_drift_suite(names=None, **kwargs) -> list[DriftOutcome]:
    """Run several scenarios (all registered ones by default)."""
    chosen = list(names) if names is not None else list(SCENARIO_NAMES)
    return [run_drift_scenario(name, **kwargs) for name in chosen]


def render_drift_report(outcomes: list[DriftOutcome]) -> str:
    """The detection-delay / recovery-AUC table ``repro drift`` prints."""

    def fmt(value, pattern="{:.3f}") -> str:
        return "-" if value is None else pattern.format(value)

    header = (
        f"{'scenario':<18} {'drift@':>6} {'delay':>5} {'false':>5} "
        f"{'AUC pre':>8} {'AUC post':>8} {'AUC rec':>8} {'recover':>8}  action"
    )
    lines = [header, "-" * len(header)]
    for outcome in outcomes:
        recover = (
            "-"
            if outcome.recovery_fraction is None
            else f"{100.0 * outcome.recovery_fraction:.0f}%"
        )
        lines.append(
            f"{outcome.scenario:<18} {fmt(outcome.drift_index, '{:d}'):>6} "
            f"{fmt(outcome.detection_delay, '{:d}'):>5} {outcome.false_alarms:>5} "
            f"{fmt(outcome.pre_auc):>8} {fmt(outcome.post_auc):>8} "
            f"{fmt(outcome.recovered_auc):>8} {recover:>8}  "
            f"{outcome.detector}+{outcome.policy}"
        )
    survived = all(
        (o.drift_index is None and o.false_alarms == 0)
        or (o.drift_index is not None and o.detection_delay is not None)
        for o in outcomes
    )
    lines.append("")
    lines.append(
        "every drift detected, no false alarms"
        if survived and all(o.false_alarms == 0 for o in outcomes)
        else "DETECTION GAPS OR FALSE ALARMS — see rows above"
    )
    return "\n".join(lines)
