"""Concept-drift detection on the prequential loss stream.

When the stream shifts, a frozen (or lagging) model's prequential loss
rises; detecting that rise quickly — without crying wolf on a
stationary stream — is the whole game.  Two classical sequential tests
are provided, both tuned for the one-sided "loss went *up*" case:

* :class:`PageHinkley` — the Page-Hinkley cumulative-deviation test:
  alarm when the running sum of ``(x - mean - delta)`` climbs
  ``threshold`` above its historical minimum.
* :class:`AdaptiveWindow` — an ADWIN-style adaptive sliding window:
  alarm when some split of the window into *older | recent* halves
  shows a mean gap larger than the Hoeffding cut bound.

:class:`DriftMonitor` wires a detector to an
:class:`~repro.online.learner.OnlineLearner` and an adaptation policy,
and adds the operational safety net the chaos suite exercises: the
primary detector runs inside a guarded region (fault-injection point
``drift.detect``), and a crashing or silenced detector degrades to a
simple **watchdog** — rolling mean loss versus a frozen baseline — so
a broken detector produces late alarms, not no alarms.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro import telemetry
from repro.graph.ctdn import CTDN
from repro.resilience.faults import inject


class PageHinkley:
    """Page-Hinkley test for an upward mean shift.

    Parameters
    ----------
    delta:
        Tolerated drift magnitude (subtracted from every deviation);
        larger values ignore slower creep.
    threshold:
        Alarm when the cumulative deviation exceeds its running minimum
        by this much (the classical ``lambda``).
    burn_in:
        Minimum samples before any alarm (the running mean needs to
        settle on the in-control level first).
    """

    name = "page-hinkley"

    def __init__(self, delta: float = 0.05, threshold: float = 3.0, burn_in: int = 20):
        if threshold <= 0:
            raise ValueError(f"threshold must be positive, got {threshold}")
        if burn_in < 1:
            raise ValueError(f"burn_in must be >= 1, got {burn_in}")
        self.delta = delta
        self.threshold = threshold
        self.burn_in = burn_in
        self.reset()

    def reset(self) -> None:
        """Forget everything (called after an adaptation completes)."""
        self._count = 0
        self._mean = 0.0
        self._cumulative = 0.0
        self._minimum = 0.0

    def update(self, value: float) -> bool:
        """Feed one loss sample; True when drift is flagged."""
        value = float(value)
        self._count += 1
        self._mean += (value - self._mean) / self._count
        self._cumulative += value - self._mean - self.delta
        self._minimum = min(self._minimum, self._cumulative)
        if self._count < self.burn_in:
            return False
        return (self._cumulative - self._minimum) > self.threshold


#: Cut-bound modes of :class:`AdaptiveWindow`.
ADWIN_CUTS = ("variance", "fixed")


class AdaptiveWindow:
    """ADWIN-style adaptive window test for an upward mean shift.

    Keeps a bounded window of recent samples; on every update it scans
    the admissible splits into an *older* and a *recent* part and
    alarms when ``mean(recent) - mean(older)`` exceeds the cut bound at
    confidence ``delta``.  On alarm the older part is dropped, so the
    window re-anchors on the post-change regime.

    Two cut bounds are available (``cut=``):

    ``"variance"`` (default)
        The Bernstein-style bound of the original ADWIN2 —
        ``sqrt(2·σ²·L/m) + (2/3)·R·L/m`` with ``σ²`` the window
        variance, ``m`` the harmonic split size and
        ``L = ln(4·n/delta)``.  On low-variance loss streams this is
        far tighter than the range-only bound (which it matches at the
        worst case ``σ² = R²/4``), catching small shifts the fixed cut
        misses.
    ``"fixed"``
        The original Hoeffding bound, ``R·sqrt(L/(2·m))`` — depends on
        ``value_range`` only.  Kept as the conservative fallback for
        streams whose empirical variance is untrustworthy (heavy tails,
        tiny windows).
    """

    name = "adwin"

    def __init__(
        self,
        delta: float = 0.002,
        max_window: int = 256,
        min_split: int = 12,
        value_range: float = 4.0,
        cut: str = "variance",
    ):
        if not 0.0 < delta < 1.0:
            raise ValueError(f"delta must be in (0, 1), got {delta}")
        if min_split < 2:
            raise ValueError(f"min_split must be >= 2, got {min_split}")
        if max_window < 2 * min_split:
            raise ValueError(
                f"max_window must be >= 2 * min_split, got {max_window} < {2 * min_split}"
            )
        if cut not in ADWIN_CUTS:
            raise ValueError(f"cut must be one of {ADWIN_CUTS}, got {cut!r}")
        self.delta = delta
        self.max_window = max_window
        self.min_split = min_split
        self.value_range = value_range
        self.cut = cut
        self.reset()

    def reset(self) -> None:
        self._window: deque[float] = deque(maxlen=self.max_window)

    def update(self, value: float) -> bool:
        self._window.append(float(value))
        total = len(self._window)
        if total < 2 * self.min_split:
            return False
        values = np.asarray(self._window, dtype=np.float64)
        prefix = np.concatenate([[0.0], np.cumsum(values)])
        log_term = float(np.log(4.0 * total / self.delta))
        variance = float(values.var()) if self.cut == "variance" else 0.0
        for split in range(self.min_split, total - self.min_split + 1):
            n_old = split
            n_new = total - split
            mean_old = prefix[split] / n_old
            mean_new = (prefix[total] - prefix[split]) / n_new
            harmonic = 1.0 / (1.0 / n_old + 1.0 / n_new)
            if self.cut == "variance":
                cut = float(
                    np.sqrt(2.0 * variance * log_term / harmonic)
                ) + (2.0 * self.value_range * log_term) / (3.0 * harmonic)
            else:
                cut = self.value_range * float(np.sqrt(log_term / (2.0 * harmonic)))
            if mean_new - mean_old > cut:
                # Drop the pre-change half so the window re-anchors.
                for _ in range(split):
                    self._window.popleft()
                return True
        return False


#: Detector registry behind ``repro drift --detector``.
DETECTOR_NAMES = ("page-hinkley", "adwin")


def make_detector(name: str, **kwargs):
    """Build a detector by registry name."""
    if name == "page-hinkley":
        return PageHinkley(**kwargs)
    if name == "adwin":
        return AdaptiveWindow(**kwargs)
    raise KeyError(f"unknown drift detector {name!r}; choose from {DETECTOR_NAMES}")


@dataclass
class DriftAlarm:
    """One raised alarm: where in the stream, which path raised it."""

    index: int
    source: str  # "detector" or "watchdog"
    action: str  # what the adaptation policy did


@dataclass
class _Watchdog:
    """Fallback detector: rolling mean loss vs. a frozen baseline.

    Deliberately crude — it exists so a crashed/suppressed primary
    detector degrades to *late* alarms instead of silence.  The
    baseline freezes after the first ``window`` samples; an alarm needs
    ``patience`` consecutive rolling means above
    ``max(baseline * factor, baseline + min_delta)``.
    """

    window: int = 16
    factor: float = 2.0
    min_delta: float = 0.3
    patience: int = 4
    _recent: deque = field(default_factory=deque)
    _baseline_sum: float = 0.0
    _baseline_count: int = 0
    _breaches: int = 0

    def reset(self) -> None:
        self._recent = deque()
        self._baseline_sum = 0.0
        self._baseline_count = 0
        self._breaches = 0

    def update(self, value: float) -> bool:
        if self._baseline_count < self.window:
            self._baseline_sum += value
            self._baseline_count += 1
            return False
        baseline = self._baseline_sum / self._baseline_count
        self._recent.append(value)
        if len(self._recent) > self.window:
            self._recent.popleft()
        if len(self._recent) < self.window:
            return False
        rolling = sum(self._recent) / len(self._recent)
        if rolling > max(baseline * self.factor, baseline + self.min_delta):
            self._breaches += 1
        else:
            self._breaches = 0
        return self._breaches >= self.patience


class DriftMonitor:
    """Detector + watchdog + adaptation policy over a learner's stream.

    ``observe`` runs the learner's prequential step and feeds the loss
    to :meth:`step`; ``step`` can also be driven directly with a loss
    series (the chaos suite does this to exercise the detection plumbing
    without a model).  After every alarm the detector and watchdog are
    reset and alarms are suppressed for ``cooldown`` examples, so one
    drift yields one alarm.
    """

    def __init__(
        self,
        learner=None,
        detector=None,
        policy=None,
        cooldown: int = 20,
        watchdog: _Watchdog | None = None,
    ):
        if cooldown < 0:
            raise ValueError(f"cooldown must be >= 0, got {cooldown}")
        self.learner = learner
        self.detector = detector
        self.policy = policy
        self.cooldown = cooldown
        self.watchdog = watchdog if watchdog is not None else _Watchdog()
        self.alarms: list[DriftAlarm] = []
        self.detector_errors = 0
        self.examples = 0
        self._cooldown_left = 0

    def observe(self, graph: CTDN) -> float:
        """Prequential test-then-train plus drift detection for one session."""
        if self.learner is None:
            raise ValueError("DriftMonitor.observe needs an attached learner")
        probability = self.learner.observe(graph)
        self.step(self.learner.metrics.last_loss)
        return probability

    def step(self, loss: float) -> DriftAlarm | None:
        """Feed one prequential loss sample through detection.

        The primary detector runs inside a guarded region: an exception
        (including an injected one at the ``drift.detect`` fault point)
        is counted in ``detector_errors`` and detection falls through to
        the watchdog for this and every subsequent sample.
        """
        self.examples += 1
        fired_by = None
        try:
            inject("drift.detect")
            if self.detector is not None and self.detector.update(loss):
                fired_by = "detector"
        except Exception:
            self.detector_errors += 1
            if telemetry.enabled():
                telemetry.get_registry().counter("online/detector_errors").inc()
        if self.watchdog.update(loss) and fired_by is None:
            fired_by = "watchdog"
        if self._cooldown_left > 0:
            self._cooldown_left -= 1
            return None
        if fired_by is None:
            return None
        return self._raise_alarm(fired_by)

    def _raise_alarm(self, source: str) -> DriftAlarm:
        with telemetry.span("drift_adapt"):
            if self.policy is not None:
                action = self.policy.on_drift(self.learner, self)
            else:
                action = "alert"
        alarm = DriftAlarm(index=self.examples - 1, source=source, action=action)
        self.alarms.append(alarm)
        if telemetry.enabled():
            registry = telemetry.get_registry()
            registry.counter("online/drift_alarms", source=source).inc()
            if self.policy is not None:
                registry.counter("online/adaptations").inc()
        # Re-anchor both detection paths on the post-adaptation regime.
        if self.detector is not None:
            self.detector.reset()
        self.watchdog.reset()
        self._cooldown_left = self.cooldown
        return alarm

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DriftMonitor(examples={self.examples}, alarms={len(self.alarms)}, "
            f"detector_errors={self.detector_errors})"
        )
