"""Continual learning on the event stream: learn, detect drift, adapt.

The serving stack (:mod:`repro.serve`, :mod:`repro.cluster`) folds
events into session state but never touches parameters — a deployed
model silently decays when the stream shifts.  This package closes the
loop:

* :class:`~repro.online.learner.OnlineLearner` — prequential
  test-then-train: score each completed session, then update the
  weights from micro-batches drawn off a bounded
  :class:`~repro.online.buffer.ReplayBuffer`, reusing the offline
  Adam / ``clip_grad_norm`` / checkpoint machinery.  Learner state
  (weights + optimizer moments + buffer) joins serve snapshots, so
  updates survive cluster live migration.
* :mod:`~repro.online.prequential` — streaming loss/AUC plus
  *query-time evaluation*: score a session at any timestamp between
  its events (zero-copy chronological prefixes).
* :mod:`~repro.online.drift` — Page-Hinkley / ADWIN-style detection on
  the prequential loss, wrapped by a :class:`DriftMonitor` with a
  watchdog fallback (chaos-tested: a crashed detector degrades to late
  alarms, not silence).
* :mod:`~repro.online.policies` — pluggable adaptation: alert-only,
  fine-tune, reset-and-retrain.
* :mod:`~repro.online.scenarios` — seeded drift scenarios (workflow
  automata whose transition probabilities shift mid-stream; fault
  types that appear only after a deployment point) and the
  detection-delay / recovery-AUC harness behind ``repro drift``.
"""

from repro.online.buffer import ReplayBuffer
from repro.online.drift import (
    DETECTOR_NAMES,
    AdaptiveWindow,
    DriftAlarm,
    DriftMonitor,
    PageHinkley,
    make_detector,
)
from repro.online.learner import OnlineLearner
from repro.online.policies import (
    POLICY_NAMES,
    AdaptationPolicy,
    AlertOnly,
    FineTune,
    ResetAndRetrain,
    make_policy,
)
from repro.online.prequential import (
    PrequentialMetrics,
    prefix_at,
    score_at,
    score_curve,
)
from repro.online.scenarios import (
    SCENARIO_NAMES,
    SCENARIOS,
    DriftOutcome,
    DriftScenario,
    PhaseParams,
    render_drift_report,
    run_drift_scenario,
    run_drift_suite,
)

__all__ = [
    "ReplayBuffer",
    "OnlineLearner",
    "PrequentialMetrics",
    "prefix_at",
    "score_at",
    "score_curve",
    "PageHinkley",
    "AdaptiveWindow",
    "DriftMonitor",
    "DriftAlarm",
    "DETECTOR_NAMES",
    "make_detector",
    "AdaptationPolicy",
    "AlertOnly",
    "FineTune",
    "ResetAndRetrain",
    "POLICY_NAMES",
    "make_policy",
    "DriftScenario",
    "DriftOutcome",
    "PhaseParams",
    "SCENARIOS",
    "SCENARIO_NAMES",
    "run_drift_scenario",
    "run_drift_suite",
    "render_drift_report",
]
