"""Bounded replay buffer for the continual-learning path.

The :class:`~repro.online.learner.OnlineLearner` performs prequential
test-then-train: every streamed session is scored first and then pushed
here, and micro-batches for parameter updates are drawn from this
bounded window of recent labelled sessions.  FIFO eviction keeps the
buffer a sliding window over the stream — exactly what adaptation needs
under concept drift, where the most recent examples reflect the current
distribution.

The buffer snapshots to flat numpy arrays (one column set per slot) so
learner state — and therefore a serve checkpoint containing it —
round-trips bit-exactly through :mod:`repro.nn.serialization` archives.
"""

from __future__ import annotations

from typing import Iterator, Mapping, Sequence

import numpy as np

from repro.graph.ctdn import CTDN
from repro.graph.store import EventStore


class ReplayBuffer:
    """A bounded FIFO window of labelled session graphs.

    Parameters
    ----------
    capacity:
        Maximum number of sessions retained; adding to a full buffer
        evicts the oldest.
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError(f"replay-buffer capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._graphs: list[CTDN] = []
        #: Total sessions ever added (monotone; survives eviction).
        self.total_added = 0

    def __len__(self) -> int:
        return len(self._graphs)

    def __iter__(self) -> Iterator[CTDN]:
        return iter(self._graphs)

    def __getitem__(self, index: int) -> CTDN:
        return self._graphs[index]

    def add(self, graph: CTDN) -> None:
        """Append one labelled session, evicting the oldest if full."""
        if graph.label is None:
            raise ValueError("replay buffer needs labelled graphs (graph.label is None)")
        if graph.num_edges == 0:
            raise ValueError("replay buffer rejects empty sessions (no edges)")
        self._graphs.append(graph)
        self.total_added += 1
        if len(self._graphs) > self.capacity:
            del self._graphs[0]

    def sample(self, batch_size: int, rng: np.random.Generator) -> list[CTDN]:
        """Draw ``batch_size`` sessions without replacement (seeded).

        When the buffer holds fewer than ``batch_size`` sessions, the
        whole buffer is returned (in a seeded random order) — a partial
        micro-batch, mirroring the trailing partial batch of offline
        training.
        """
        count = min(batch_size, len(self._graphs))
        if count == 0:
            return []
        indices = rng.choice(len(self._graphs), size=count, replace=False)
        return [self._graphs[int(i)] for i in indices]

    def labels(self) -> np.ndarray:
        """Labels of the buffered sessions, oldest first."""
        return np.asarray([g.label for g in self._graphs], dtype=np.int64)

    # ------------------------------------------------------------------
    # Snapshot / restore
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, np.ndarray]:
        """Flat array form: per-slot feature/edge columns plus metadata."""
        arrays: dict[str, np.ndarray] = {
            "meta": np.asarray([self.capacity, len(self._graphs), self.total_added],
                               dtype=np.int64),
        }
        for slot, graph in enumerate(self._graphs):
            arrays[f"{slot}.features"] = np.asarray(graph.features, dtype=np.float64)
            arrays[f"{slot}.src"] = np.asarray(graph.store.src, dtype=np.int64)
            arrays[f"{slot}.dst"] = np.asarray(graph.store.dst, dtype=np.int64)
            arrays[f"{slot}.t"] = np.asarray(graph.store.t, dtype=np.float64)
            arrays[f"{slot}.label"] = np.asarray(int(graph.label), dtype=np.int64)
        return arrays

    @classmethod
    def restore(cls, arrays: Mapping[str, np.ndarray]) -> "ReplayBuffer":
        """Rebuild a buffer from :meth:`snapshot` output."""
        capacity, count, total_added = (int(v) for v in arrays["meta"])
        buffer = cls(capacity)
        for slot in range(count):
            features = np.asarray(arrays[f"{slot}.features"], dtype=np.float64)
            store = EventStore(
                np.asarray(arrays[f"{slot}.src"], dtype=np.int64),
                np.asarray(arrays[f"{slot}.dst"], dtype=np.int64),
                np.asarray(arrays[f"{slot}.t"], dtype=np.float64),
                num_nodes=features.shape[0],
            )
            buffer._graphs.append(
                CTDN.from_store(
                    features.shape[0], features, store,
                    label=int(arrays[f"{slot}.label"]),
                )
            )
        buffer.total_added = total_added
        return buffer

    def equals(self, other: "ReplayBuffer") -> bool:
        """Bit-exact content equality (used by round-trip tests)."""
        if (self.capacity, len(self), self.total_added) != (
            other.capacity, len(other), other.total_added
        ):
            return False
        for mine, theirs in zip(self._graphs, other._graphs):
            if mine.label != theirs.label:
                return False
            if not np.array_equal(mine.features, theirs.features):
                return False
            if not (
                np.array_equal(mine.store.src, theirs.store.src)
                and np.array_equal(mine.store.dst, theirs.store.dst)
                and np.array_equal(mine.store.t, theirs.store.t)
            ):
                return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ReplayBuffer(size={len(self)}/{self.capacity}, "
            f"total_added={self.total_added})"
        )
