"""Pluggable adaptation policies: what to do when drift is flagged.

A policy is invoked by :class:`~repro.online.drift.DriftMonitor` with
the learner and the monitor, and returns a short human-readable action
string (recorded on the alarm).  Three standard responses:

* :class:`AlertOnly` — record the alarm, change nothing.  The right
  default when a human owns the retrain decision.
* :class:`FineTune` — run extra micro-batch update rounds on the replay
  buffer.  Cheap, keeps the pre-drift weights as the starting point;
  recovers fastest when the shift is partial.
* :class:`ResetAndRetrain` — roll the model back to its attach-time
  weights (fresh Adam moments) and retrain on the buffer, which by now
  holds mostly post-drift sessions.  The heavy hammer for shifts that
  invalidate the old decision boundary outright.
"""

from __future__ import annotations


class AdaptationPolicy:
    """Interface: react to one confirmed drift alarm."""

    name = "abstract"

    def on_drift(self, learner, monitor) -> str:
        raise NotImplementedError


class AlertOnly(AdaptationPolicy):
    """Record the alarm; leave the model untouched."""

    name = "alert-only"

    def on_drift(self, learner, monitor) -> str:
        return "alert-only"


class FineTune(AdaptationPolicy):
    """Extra update rounds on the replay buffer from the current weights."""

    name = "fine-tune"

    def __init__(self, rounds: int = 16):
        if rounds < 1:
            raise ValueError(f"rounds must be >= 1, got {rounds}")
        self.rounds = rounds

    def on_drift(self, learner, monitor) -> str:
        if learner is None:
            return "fine-tune skipped (no learner attached)"
        stepped = learner.update(rounds=self.rounds)
        return f"fine-tune: {stepped}/{self.rounds} rounds stepped"


class ResetAndRetrain(AdaptationPolicy):
    """Roll back to attach-time weights, then retrain on the buffer."""

    name = "reset-retrain"

    def __init__(self, rounds: int = 32):
        if rounds < 1:
            raise ValueError(f"rounds must be >= 1, got {rounds}")
        self.rounds = rounds

    def on_drift(self, learner, monitor) -> str:
        if learner is None:
            return "reset-retrain skipped (no learner attached)"
        learner.reset_parameters()
        stepped = learner.update(rounds=self.rounds)
        return f"reset-retrain: {stepped}/{self.rounds} rounds stepped"


#: Policy registry behind ``repro drift --policy``.
POLICY_NAMES = ("alert-only", "fine-tune", "reset-retrain")


def make_policy(name: str, **kwargs) -> AdaptationPolicy:
    """Build an adaptation policy by registry name."""
    if name == "alert-only":
        return AlertOnly()
    if name == "fine-tune":
        return FineTune(**kwargs)
    if name == "reset-retrain":
        return ResetAndRetrain(**kwargs)
    raise KeyError(f"unknown adaptation policy {name!r}; choose from {POLICY_NAMES}")
