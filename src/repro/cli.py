"""Command-line interface for the reproduction experiments.

Usage::

    python -m repro.cli table1  --preset smoke
    python -m repro.cli table2  --preset small --datasets Forum-java HDFS
    python -m repro.cli table3  --preset smoke
    python -m repro.cli fig3    --preset smoke          # ablation, SUM
    python -m repro.cli fig4    --preset smoke          # ablation, GRU
    python -m repro.cli fig5    --preset smoke          # sensitivity
    python -m repro.cli fig6    --preset smoke          # runtime vs F1
    python -m repro.cli fig7    --preset smoke          # case study
    python -m repro.cli bench   --table 2 --jobs 8      # parallel cached sweep
    python -m repro.cli train   --dataset HDFS --model TP-GNN-SUM
    python -m repro.cli serve   --dataset Forum-java --num-graphs 40
    python -m repro.cli profile --dataset HDFS --epochs 1
    python -m repro.cli loadtest --shards 4 --sessions 1000 --events 20000
    python -m repro.cli chaos   --quick
    python -m repro.cli drift   --policy fine-tune
    python -m repro.cli serve   --journal wal/ --save-state state.npz
    python -m repro.cli recover --journal wal/ --checkpoint state.npz

Every experiment command prints the same text tables/figures the
benchmarks emit, at the chosen preset (override individual knobs with
the flags below).  ``bench`` regenerates Table II/III through the
parallel, fault-tolerant trial runner with an on-disk cache under
``results/cache/`` — a warm re-run executes zero trials, and killed or
failed trials resume from their last epoch checkpoint.  ``serve``
replays a dataset as a live timestamped event feed through the
streaming inference engine and emits one JSON line per session
prediction.  ``profile`` trains under the telemetry subsystem (span
tracer + op-level autograd profiler) and prints a text flame report
plus a top-k op table; ``bench --profile`` does the same per trial and
aggregates op timings across the sweep (see OBSERVABILITY.md).
``loadtest`` drives a seeded synthetic feed through the sharded
serving cluster, compares sustained events/sec against a lone
streaming engine over the identical feed, and records p50/p95/p99
ingest/predict latency to ``BENCH_serve.json``.  ``drift`` runs the
seeded concept-drift scenario suite through the continual-learning
path (prequential test-then-train + drift detection + adaptation) and
records the detection-delay / recovery-AUC table to
``BENCH_drift.json``.  ``serve --journal`` writes every accepted event
to a segmented CRC-checked write-ahead journal before applying it, and
``recover`` rebuilds the serving state after a crash from the last
checkpoint plus the journal tail, reporting any torn or corrupt
records it had to skip (exit status 1 when the replay had gaps).
"""

from __future__ import annotations

import argparse
import importlib.metadata
import json
import sys

from repro.baselines.registry import ALL_MODELS, PLUS_G_MODELS, make_model
from repro.data.registry import DATASET_NAMES
from repro.experiments import (
    PRESETS,
    format_ablation,
    format_case_study,
    format_runtime,
    format_sensitivity,
    format_table1,
    format_table2,
    format_table3,
    run_ablation,
    run_case_study,
    run_runtime,
    run_sensitivity,
    run_table2,
    run_table3,
    snapshot_size_for,
)
from repro.training import TrainConfig, evaluate, train_model


class _HelpFormatter(
    argparse.ArgumentDefaultsHelpFormatter, argparse.RawDescriptionHelpFormatter
):
    """Show argument defaults while keeping the docstring layout."""


def _package_version() -> str:
    """Installed distribution version, falling back to the source tree."""
    try:
        return importlib.metadata.version("repro")
    except importlib.metadata.PackageNotFoundError:
        from repro import __version__

        return __version__


def _config_from_args(args) -> "ExperimentConfig":
    config = PRESETS[args.preset]
    overrides = {}
    for field in ("num_graphs", "epochs", "runs", "hidden_size", "time_dim", "seed"):
        value = getattr(args, field, None)
        if value is not None:
            overrides[field] = value
    if getattr(args, "scale", None) is not None:
        overrides["graph_scale"] = args.scale
    return config.with_overrides(**overrides) if overrides else config


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--preset", choices=sorted(PRESETS), default="smoke",
                        help="experiment scale")
    parser.add_argument("--num-graphs", dest="num_graphs", type=int,
                        help="override the preset's graphs per dataset")
    parser.add_argument("--scale", type=float,
                        help="override the preset's graph-size multiplier")
    parser.add_argument("--epochs", type=int,
                        help="override the preset's training epochs")
    parser.add_argument("--runs", type=int,
                        help="override the preset's repeated runs")
    parser.add_argument("--hidden-size", dest="hidden_size", type=int,
                        help="override the preset's hidden size d")
    parser.add_argument("--time-dim", dest="time_dim", type=int,
                        help="override the preset's time encoding size d_t")
    parser.add_argument("--seed", type=int,
                        help="override the preset's base random seed")


def _progress(*parts) -> None:
    print("  " + " ".join(str(p) for p in parts[:-1]), flush=True)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__, formatter_class=_HelpFormatter
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {_package_version()}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_command(name: str, help_text: str) -> argparse.ArgumentParser:
        return sub.add_parser(name, help=help_text, formatter_class=_HelpFormatter)

    for name in ("table1", "table2", "table3", "fig3", "fig4", "fig5", "fig6", "fig7"):
        cmd = add_command(name, f"regenerate {name}")
        _add_common(cmd)
        if name in ("table2", "table3", "fig3", "fig4", "fig6"):
            cmd.add_argument("--datasets", nargs="+", choices=DATASET_NAMES)

    bench = add_command(
        "bench",
        "regenerate Table II/III through the parallel, cached trial runner",
    )
    _add_common(bench)
    bench.add_argument("--table", type=int, choices=(2, 3), default=2,
                       help="which table's (model x dataset) grid to run")
    bench.add_argument("--datasets", nargs="+", choices=DATASET_NAMES,
                       help="restrict to these datasets")
    bench.add_argument("--models", nargs="+", choices=ALL_MODELS + PLUS_G_MODELS,
                       help="restrict to these models")
    bench.add_argument("--jobs", type=int,
                       help="concurrent trial workers (default: CPU count)")
    bench.add_argument("--retries", type=int, default=1,
                       help="extra attempts per trial after a failure")
    bench.add_argument("--trial-timeout", dest="trial_timeout", type=float,
                       help="per-trial wall-clock budget in seconds")
    bench.add_argument("--cache-dir", dest="cache_dir", default=None,
                       help="trial cache directory (default: results/cache)")
    bench.add_argument("--no-cache", dest="no_cache", action="store_true",
                       help="run every cell even if cached")
    bench.add_argument("--clear-cache", dest="clear_cache", action="store_true",
                       help="delete cached trials before running")
    bench.add_argument("--profile", action="store_true",
                       help="attribute per-op time in every trial and print a "
                            "sweep-wide top-ops table")
    bench.add_argument("--top", type=int, default=10,
                       help="rows in the --profile top-ops table")

    train = add_command("train", "train one model on one dataset")
    _add_common(train)
    train.add_argument("--dataset", choices=DATASET_NAMES, required=True)
    train.add_argument("--model", choices=ALL_MODELS + PLUS_G_MODELS, required=True)
    train.add_argument("--checkpoint", help="save the trained model to this .npz path")

    serve = add_command(
        "serve", "replay a dataset as a live event feed through the streaming engine"
    )
    serve.add_argument("--dataset", choices=DATASET_NAMES, default="Forum-java")
    serve.add_argument("--num-graphs", dest="num_graphs", type=int, default=40,
                       help="sessions to generate and replay")
    serve.add_argument("--scale", type=float, default=1.0,
                       help="dataset size multiplier passed to the generator")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--updater", choices=("sum", "gru"), default="sum")
    serve.add_argument("--hidden-size", dest="hidden_size", type=int, default=32)
    serve.add_argument("--time-dim", dest="time_dim", type=int, default=6)
    serve.add_argument("--train-epochs", dest="train_epochs", type=int, default=0,
                       help="warm-up training epochs on a 30%% split before serving "
                            "(0 serves the untrained model)")
    serve.add_argument("--checkpoint", help="load model weights from this .npz first")
    serve.add_argument("--mode", choices=("online", "exact"), default="online",
                       help="read path: O(1) online state or exact batch-equivalent")
    serve.add_argument("--max-sessions", dest="max_sessions", type=int, default=1024,
                       help="LRU capacity of the session table")
    serve.add_argument("--out-of-order", dest="out_of_order",
                       choices=("drop", "raise", "buffer"), default="drop",
                       help="policy for events older than their session's last event")
    serve.add_argument("--watermark-delay", dest="watermark_delay", type=float,
                       default=0.0, help="buffer window for --out-of-order buffer")
    serve.add_argument("--spread", type=float, default=0.0,
                       help="random per-session start-time window, interleaving arrivals")
    serve.add_argument("--rolling", type=int, default=0, metavar="N",
                       help="also emit a prediction every N events per session (0 = final only)")
    serve.add_argument("--output", default="-",
                       help="JSONL destination ('-' = stdout)")
    serve.add_argument("--save-state", dest="save_state",
                       help="write a serving-state checkpoint here after the replay")
    serve.add_argument("--journal", metavar="DIR",
                       help="append every accepted event to a write-ahead "
                            "journal in this directory (see 'repro recover')")
    serve.add_argument("--journal-fsync", dest="journal_fsync",
                       choices=("always", "interval", "off"), default="interval",
                       help="journal durability policy: fsync per record, on "
                            "a short timer, or only at rotation/close")

    profile = add_command(
        "profile",
        "train under the telemetry subsystem; print a span flame report "
        "and a top-k op table",
    )
    _add_common(profile)
    profile.add_argument("--dataset", choices=DATASET_NAMES, default="HDFS")
    profile.add_argument("--model", choices=ALL_MODELS + PLUS_G_MODELS,
                         default="TP-GNN-SUM")
    profile.add_argument("--engine", choices=("wave", "per-edge", "mega"),
                         default=None,
                         help="execution path to profile: 'wave'/'per-edge' "
                              "force the per-graph engines (mega-batching "
                              "off), 'mega' the cross-graph mega-batched "
                              "trainer (default: the model's own defaults, "
                              "i.e. mega-batched waves where supported)")
    profile.add_argument("--top", type=int, default=10,
                         help="rows in the top-ops table")
    profile.add_argument("--no-ops", dest="no_ops", action="store_true",
                         help="skip op-level profiling (spans and metrics only)")
    profile.add_argument("--jsonl",
                         help="also write every telemetry row (spans, ops, "
                              "metrics) to this JSONL file")

    loadtest = add_command(
        "loadtest",
        "drive a seeded load through the sharded serving cluster and "
        "record the latency/throughput SLO report to BENCH_serve.json",
    )
    loadtest.add_argument("--sessions", type=int, default=1000,
                          help="distinct sessions in the synthetic feed")
    loadtest.add_argument("--events", type=int, default=20000,
                          help="total events in the feed")
    loadtest.add_argument("--shards", type=int, default=4,
                          help="initial shard count")
    loadtest.add_argument("--backend", choices=("serial", "thread"),
                          default="thread",
                          help="shard drain backend")
    loadtest.add_argument("--updater", choices=("sum", "gru"), default="sum",
                          help="propagation updater of the served model")
    loadtest.add_argument("--rate", type=float, default=0.0,
                          help="target offered load in events/sec "
                               "(0 = as fast as possible)")
    loadtest.add_argument("--predict-every", type=int, default=500,
                          help="predict round-trip every N events (0 = never)")
    loadtest.add_argument("--rebalance-at", type=float, default=0.0,
                          help="feed fraction (0-1) at which to add a shard "
                               "and rebalance live (0 = no topology change)")
    loadtest.add_argument("--seed", type=int, default=0,
                          help="seed for the model and the feed")
    loadtest.add_argument("--nodes-per-session", type=int, default=12)
    loadtest.add_argument("--feature-dim", type=int, default=4)
    loadtest.add_argument("--hidden-size", type=int, default=16)
    loadtest.add_argument("--time-dim", type=int, default=4)
    loadtest.add_argument("--queue-capacity", type=int, default=4096,
                          help="per-shard ingest queue bound")
    loadtest.add_argument("--backpressure", choices=("block", "shed", "raise"),
                          default="block",
                          help="per-shard queue overflow policy")
    loadtest.add_argument("--batch-size", type=int, default=64,
                          help="drain micro-batch size")
    loadtest.add_argument("--no-fast-apply", dest="no_fast_apply",
                          action="store_true",
                          help="disable the raw-array fast lane")
    loadtest.add_argument("--no-baseline", dest="no_baseline",
                          action="store_true",
                          help="skip the single-engine comparison phase")
    loadtest.add_argument("--journal", metavar="DIR",
                          help="give every shard a write-ahead journal under "
                               "this directory (measures journaled ingest)")
    loadtest.add_argument("--journal-fsync", dest="journal_fsync",
                          choices=("always", "interval", "off"),
                          default="interval",
                          help="journal durability policy when --journal is set")
    loadtest.add_argument("--output", default="BENCH_serve.json",
                          help="where to record the JSON report")

    dataset = add_command(
        "dataset",
        "generate a dataset into a columnar on-disk bundle, or inspect one",
    )
    dataset.add_argument("--generate", choices=DATASET_NAMES,
                         help="dataset to generate and save as a bundle")
    dataset.add_argument("--load", metavar="PATH",
                         help="stream an existing bundle and print its statistics")
    dataset.add_argument("--output", default=None, metavar="DIR",
                         help="bundle directory for --generate "
                              "(default: datasets/<name>)")
    dataset.add_argument("--num-graphs", dest="num_graphs", type=int, default=1000,
                         help="graphs to generate")
    dataset.add_argument("--scale", type=float, default=0.25,
                         help="per-graph size multiplier relative to Table I")
    dataset.add_argument("--seed", type=int, default=0)
    dataset.add_argument("--chunk-size", dest="chunk_size", type=int, default=1024,
                         help="graphs per chunk when streaming with --load")
    dataset.add_argument("--no-mmap", dest="no_mmap", action="store_true",
                         help="read bundle columns eagerly instead of memory-mapping")

    drift = add_command(
        "drift",
        "run the concept-drift scenario suite (detection + adaptation) and "
        "record the detection-delay / recovery-AUC report to BENCH_drift.json",
    )
    from repro.online.drift import DETECTOR_NAMES
    from repro.online.policies import POLICY_NAMES
    from repro.online.scenarios import SCENARIO_NAMES

    drift.add_argument("--scenarios", nargs="+", choices=SCENARIO_NAMES,
                       help="run only these scenarios (default: all)")
    drift.add_argument("--detector", choices=DETECTOR_NAMES,
                       default="page-hinkley",
                       help="sequential test on the prequential loss")
    drift.add_argument("--policy", choices=POLICY_NAMES, default="fine-tune",
                       help="adaptation policy on a confirmed alarm")
    drift.add_argument("--sessions", type=int, default=240,
                       help="sessions per scenario stream")
    drift.add_argument("--pretrain", type=int, default=60,
                       help="stream head trained offline before streaming")
    drift.add_argument("--pretrain-epochs", dest="pretrain_epochs", type=int,
                       default=4, help="offline warm-up epochs")
    drift.add_argument("--window", type=int, default=30,
                       help="AUC window (examples) for pre/post/recovered")
    drift.add_argument("--update-every", dest="update_every", type=int, default=2,
                       help="prequential examples between update rounds "
                            "(0 = detection only, no online updates)")
    drift.add_argument("--buffer", type=int, default=96,
                       help="replay-buffer capacity (sessions)")
    drift.add_argument("--seed", type=int, default=0,
                       help="seed for the stream, the model and sampling")
    drift.add_argument("--output", default="BENCH_drift.json",
                       help="where to record the JSON report ('' = don't)")

    chaos = add_command(
        "chaos",
        "run the fault-injection scenario suite and print a survival report",
    )
    chaos.add_argument("--quick", action="store_true",
                       help="in-process scenarios only (skips the ones that "
                            "spawn worker processes)")
    chaos.add_argument("--seed", type=int, default=0,
                       help="seed for every fault plan and corruption helper")
    chaos.add_argument("--scenarios", nargs="+", metavar="NAME",
                       help="run only these scenarios (see --list)")
    chaos.add_argument("--list", dest="list_scenarios", action="store_true",
                       help="list scenarios and exit")

    recover = add_command(
        "recover",
        "rebuild serving state from a checkpoint plus the write-ahead "
        "journal tail, and print the recovery report",
    )
    recover.add_argument("--journal", required=True, metavar="DIR",
                         help="journal directory written by 'repro serve --journal'")
    recover.add_argument("--checkpoint", metavar="NPZ",
                         help="serving-state checkpoint to anchor the replay "
                              "(default: replay the whole journal into a "
                              "fresh engine)")
    recover.add_argument("--updater", choices=("sum", "gru"), default="sum",
                         help="model architecture (must match the journaled run)")
    recover.add_argument("--feature-dim", dest="feature_dim", type=int, default=4)
    recover.add_argument("--hidden-size", dest="hidden_size", type=int, default=32)
    recover.add_argument("--time-dim", dest="time_dim", type=int, default=6)
    recover.add_argument("--seed", type=int, default=0)
    recover.add_argument("--out-of-order", dest="out_of_order",
                         choices=("drop", "raise", "buffer"), default="drop",
                         help="engine policy when recovering without a checkpoint")
    recover.add_argument("--strict", action="store_true",
                         help="fail instead of skipping quarantined corrupt "
                              "journal records")
    recover.add_argument("--allow-version-mismatch", dest="allow_version_mismatch",
                         action="store_true",
                         help="load a checkpoint written by a different code "
                              "version anyway")
    recover.add_argument("--save-state", dest="save_state", metavar="NPZ",
                         help="write the recovered serving state here")
    return parser


def _run_bench(args) -> int:
    from repro.experiments import (
        DEFAULT_CACHE_DIR,
        TrialCache,
        aggregate_telemetry,
        failed_trials,
        format_duration,
        run_table_parallel,
    )

    config = _config_from_args(args)
    if args.table == 2:
        datasets = tuple(args.datasets) if args.datasets else DATASET_NAMES
        models = tuple(args.models) if args.models else ALL_MODELS
        formatter = format_table2
    else:
        from repro.experiments import TABLE3_DATASETS, TABLE3_MODELS

        datasets = tuple(args.datasets) if args.datasets else TABLE3_DATASETS
        models = tuple(args.models) if args.models else TABLE3_MODELS
        formatter = format_table3

    cache = None
    if not args.no_cache:
        cache = TrialCache(args.cache_dir or DEFAULT_CACHE_DIR)
        if args.clear_cache:
            removed = cache.clear()
            print(f"cleared {removed} cached trial(s) from {cache.root}",
                  file=sys.stderr)

    def report(event) -> None:
        eta = format_duration(event.eta_seconds) if event.eta_seconds is not None else "?"
        print(
            f"  [{event.done}/{event.total}] "
            f"completed={event.completed} cached={event.cached} "
            f"failed={event.failed} running={event.running} "
            f"eta={eta}  {event.message}",
            file=sys.stderr,
            flush=True,
        )

    table, results = run_table_parallel(
        config,
        datasets=datasets,
        models=models,
        cache=cache,
        jobs=args.jobs,
        retries=args.retries,
        trial_timeout=args.trial_timeout,
        progress=report,
        profile=args.profile,
    )
    print(formatter(table))
    counts = {
        status: sum(1 for r in results if r.status == status)
        for status in ("completed", "cached", "failed")
    }
    print(
        f"\n{counts['completed']} trial(s) executed, {counts['cached']} served "
        f"from cache" + (f" ({cache.root})" if cache is not None else "")
        + f", {counts['failed']} failed",
    )
    if args.profile:
        from repro.telemetry import aggregate_op_rows, render_op_rows

        groups = aggregate_telemetry(results, kind="op")
        if groups:
            print()
            print(render_op_rows(aggregate_op_rows(groups), k=args.top))
        else:
            print("\n(no op telemetry collected — all cells cached without "
                  "profiled telemetry?)", file=sys.stderr)
    failures = failed_trials(results)
    for failure in failures:
        last_line = failure.error.strip().splitlines()[-1] if failure.error else "?"
        print(
            f"FAILED {failure.spec.cell()} after {failure.attempts} attempt(s), "
            f"{format_duration(failure.seconds)} wall: {last_line}",
            file=sys.stderr,
        )
    if failures:
        print(
            "re-running `repro bench` retries failed cells and resumes "
            "interrupted trials from their last checkpoint",
            file=sys.stderr,
        )
    return 1 if failures else 0


def _run_train(args) -> None:
    from repro.experiments.runner import build_dataset

    config = _config_from_args(args)
    dataset = build_dataset(args.dataset, config)
    train_data, test_data = dataset.split(config.train_fraction)
    model = make_model(
        args.model,
        in_features=dataset.feature_dim,
        seed=config.seed,
        hidden_size=config.hidden_size,
        time_dim=config.time_dim,
        snapshot_size=snapshot_size_for(args.dataset),
    )
    print(f"training {args.model} on {args.dataset} "
          f"({len(train_data)} train / {len(test_data)} test graphs)")
    result = train_model(model, train_data, config.train_config())
    metrics = evaluate(model, test_data)
    print(f"loss {result.losses[0]:.3f} -> {result.losses[-1]:.3f} "
          f"({result.train_seconds:.1f}s)")
    print(f"F1={100 * metrics.f1:.2f} precision={100 * metrics.precision:.2f} "
          f"recall={100 * metrics.recall:.2f}")
    if args.checkpoint:
        from repro.nn import save_checkpoint

        path = save_checkpoint(model, args.checkpoint, metadata={"f1": metrics.f1})
        print(f"checkpoint written to {path}")


def _run_serve(args) -> None:
    import numpy as np

    from repro.core import TPGNN
    from repro.data import make_dataset
    from repro.serve import StreamingEngine, dataset_to_feed
    from repro.training import TrainConfig, train_model

    dataset = make_dataset(
        args.dataset, num_graphs=args.num_graphs, seed=args.seed, scale=args.scale
    )
    model = TPGNN(
        in_features=dataset.feature_dim,
        updater=args.updater,
        hidden_size=args.hidden_size,
        time_dim=args.time_dim,
        seed=args.seed,
    )
    if args.checkpoint:
        from repro.nn import load_checkpoint

        load_checkpoint(model, args.checkpoint)
        print(f"loaded model weights from {args.checkpoint}", file=sys.stderr)
    elif args.train_epochs > 0:
        train_data, _ = dataset.split(0.3)
        print(
            f"warm-up: training {args.train_epochs} epochs on "
            f"{len(train_data)} sessions",
            file=sys.stderr,
        )
        train_model(model, train_data, TrainConfig(epochs=args.train_epochs, seed=args.seed))
    model.eval()

    sink = sys.stdout if args.output == "-" else open(args.output, "w")
    emitted = 0

    def emit(record: dict) -> None:
        nonlocal emitted
        print(json.dumps(record), file=sink, flush=sink is sys.stdout)
        emitted += 1

    def session_record(
        session_id, state, engine, final: bool, evicted: bool = False,
        probability: float | None = None,
    ) -> dict:
        if probability is None:
            probability = engine.classifier.predict_proba(state, mode=args.mode)
            engine.metrics.predictions_served += 1
        record = {
            "session_id": session_id,
            "events": state.num_events,
            "nodes": state.num_nodes,
            "probability": round(probability, 6),
            "prediction": int(probability >= 0.5),
            "mode": args.mode,
            "final": final,
        }
        if state.label is not None:
            record["label"] = state.label
        if evicted:
            record["evicted"] = True
        return record

    journal = None
    if args.journal:
        from repro.resilience import Journal

        journal = Journal(args.journal, fsync=args.journal_fsync)
        print(
            f"journaling accepted events to {args.journal} "
            f"(fsync={args.journal_fsync})",
            file=sys.stderr,
        )
    engine = StreamingEngine(
        model,
        max_sessions=args.max_sessions,
        out_of_order=args.out_of_order,
        watermark_delay=args.watermark_delay,
        on_evict=lambda sid, state: emit(
            session_record(sid, state, engine, final=True, evicted=True)
        ),
        journal=journal,
    )

    rng = np.random.default_rng(args.seed) if args.spread > 0 else None
    feed = dataset_to_feed(dataset, rng=rng, spread=args.spread)
    print(
        f"replaying {len(feed)} events from {len(dataset)} {args.dataset} sessions",
        file=sys.stderr,
    )
    last_emitted: dict[str, int] = {}
    for event in feed:
        applied = engine.ingest(event)
        if args.rolling and applied:
            # Compare against the last emission point, not num_events
            # modulo N: under the buffer policy one ingest can apply
            # several events and jump past the exact multiple.
            state = engine.session(event.session_id)
            if (state is not None
                    and state.num_events - last_emitted.get(event.session_id, 0)
                    >= args.rolling):
                last_emitted[event.session_id] = state.num_events
                emit(session_record(event.session_id, state, engine, final=False))
    engine.flush()

    if args.mode == "online":
        # Micro-batched read path: one matmul over all live sessions.
        probabilities = engine.predict_many()
        for session_id, probability in probabilities.items():
            state = engine.session(session_id)
            emit(session_record(session_id, state, engine, final=True,
                                probability=probability))
    else:
        for session_id in engine.live_sessions():
            emit(session_record(session_id, engine.session(session_id), engine, final=True))

    if args.save_state:
        path = engine.checkpoint(args.save_state)
        print(f"serving state written to {path}", file=sys.stderr)
    if journal is not None:
        stats = journal.stats()
        journal.close()
        print(
            f"journal: seq {stats['last_seq']} across {stats['segments']} "
            f"segment(s), {stats['bytes']} bytes on disk",
            file=sys.stderr,
        )
    print(engine.metrics.render(), file=sys.stderr)
    print(f"{emitted} JSONL records emitted", file=sys.stderr)
    if sink is not sys.stdout:
        sink.close()


def _run_profile(args) -> None:
    from repro import telemetry
    from repro.experiments.runner import build_dataset

    config = _config_from_args(args)
    dataset = build_dataset(args.dataset, config)
    train_data, _ = dataset.split(config.train_fraction)
    model = make_model(
        args.model,
        in_features=dataset.feature_dim,
        seed=config.seed,
        hidden_size=config.hidden_size,
        time_dim=config.time_dim,
        snapshot_size=snapshot_size_for(args.dataset),
    )
    from dataclasses import replace

    engine = getattr(args, "engine", None)
    train_config = config.train_config()
    if engine == "mega":
        if not getattr(model, "SUPPORTS_MEGABATCH", False):
            print(f"--engine mega ignored: {args.model} has no mega-batched "
                  "path; profiling the per-graph loop",
                  file=sys.stderr)
        train_config = replace(train_config, megabatch=True)
    elif engine is not None:
        # Attribute the per-graph engines in isolation: the mega path
        # would otherwise fold whole minibatches into one plan.
        train_config = replace(train_config, megabatch=False)
        propagation = getattr(model, "propagation", None)
        if propagation is None or not hasattr(propagation, "engine"):
            print(f"--engine ignored: {args.model} has no propagation engine",
                  file=sys.stderr)
        else:
            propagation.engine = engine
    print(
        f"profiling {args.model} on {args.dataset} "
        f"({len(train_data)} train graphs, {config.epochs} epoch(s))",
        file=sys.stderr,
    )
    with telemetry.capture(profile=not args.no_ops) as cap:
        result = train_model(model, train_data, train_config)
    print(f"loss {result.losses[0]:.3f} -> {result.losses[-1]:.3f} "
          f"({result.train_seconds:.2f}s)")
    print()
    print(cap.flame())
    if not args.no_ops:
        print()
        print(cap.top_ops(args.top))
        op_total = cap.profiler.total_seconds
        wall = cap.tracer.total_seconds
        if wall > 0:
            print(f"\nop time {op_total:.3f}s of {wall:.3f}s traced wall "
                  f"({100 * op_total / wall:.0f}%)")
    if args.jsonl:
        with open(args.jsonl, "w") as stream:
            count = cap.write_jsonl(stream)
        print(f"{count} telemetry rows written to {args.jsonl}", file=sys.stderr)


def _run_loadtest(args) -> int:
    from repro.cluster import LoadtestConfig, run_loadtest, write_bench

    config = LoadtestConfig(
        sessions=args.sessions,
        events=args.events,
        shards=args.shards,
        backend=args.backend,
        updater=args.updater,
        rate=args.rate,
        predict_every=args.predict_every,
        rebalance_at=args.rebalance_at,
        seed=args.seed,
        nodes_per_session=args.nodes_per_session,
        feature_dim=args.feature_dim,
        hidden_size=args.hidden_size,
        gru_hidden_size=args.hidden_size,
        time_dim=args.time_dim,
        queue_capacity=args.queue_capacity,
        backpressure=args.backpressure,
        batch_size=args.batch_size,
        fast_apply=not args.no_fast_apply,
        baseline=not args.no_baseline,
        journal_dir=args.journal,
        journal_fsync=args.journal_fsync,
    )
    report = run_loadtest(
        config, log=lambda message: print(message, file=sys.stderr)
    )
    print(report.render())
    path = write_bench(report, args.output)
    print(f"report recorded to {path}", file=sys.stderr)
    return 0


def _run_recover(args) -> int:
    from repro.core import TPGNN
    from repro.resilience.errors import CheckpointVersionError, IntegrityError
    from repro.serve import recover_engine

    model = TPGNN(
        in_features=args.feature_dim,
        updater=args.updater,
        hidden_size=args.hidden_size,
        time_dim=args.time_dim,
        seed=args.seed,
    )
    model.eval()
    try:
        engine, report = recover_engine(
            args.journal,
            model,
            checkpoint=args.checkpoint,
            engine_config={"out_of_order": args.out_of_order},
            strict=args.strict,
            allow_version_mismatch=args.allow_version_mismatch,
        )
    except CheckpointVersionError as error:
        print(f"recover: {error}", file=sys.stderr)
        return 2
    except IntegrityError as error:
        print(f"recover: {error}", file=sys.stderr)
        return 1
    print(report.render())
    print(f"{len(engine.live_sessions())} live sessions recovered")
    if args.save_state:
        path = engine.checkpoint(args.save_state)
        print(f"recovered serving state written to {path}", file=sys.stderr)
    return 1 if report.gaps else 0


def _run_dataset(args) -> int:
    from repro.data.registry import make_dataset
    from repro.graph.io import iter_dataset_chunks, save_dataset

    if bool(args.generate) == bool(args.load):
        print("dataset: pass exactly one of --generate or --load", file=sys.stderr)
        return 2
    if args.generate:
        dataset = make_dataset(
            args.generate, args.num_graphs, seed=args.seed, scale=args.scale
        )
        output = args.output or f"datasets/{args.generate}"
        path = save_dataset(dataset, output)
        stats = dataset.statistics()
        print(
            f"saved {stats.graph_count} graphs "
            f"(avg {stats.avg_nodes:.1f} nodes / {stats.avg_edges:.1f} edges, "
            f"~{100.0 * stats.negative_ratio:.1f}% negative) to {path}"
        )
        return 0
    graphs = nodes = edges = negatives = chunks = 0
    for chunk in iter_dataset_chunks(
        args.load, args.chunk_size, mmap=not args.no_mmap
    ):
        chunks += 1
        graphs += len(chunk)
        nodes += sum(g.num_nodes for g in chunk)
        edges += sum(g.num_edges for g in chunk)
        negatives += int((chunk.labels == 0).sum())
    print(
        f"{args.load}: {graphs} graphs in {chunks} chunk(s), "
        f"avg {nodes / graphs:.1f} nodes / {edges / graphs:.1f} edges, "
        f"~{100.0 * negatives / graphs:.1f}% negative"
    )
    return 0


def _run_drift(args) -> int:
    from repro.online import render_drift_report, run_drift_suite

    outcomes = run_drift_suite(
        names=args.scenarios,
        seed=args.seed,
        detector=args.detector,
        policy=args.policy,
        sessions=args.sessions,
        pretrain=args.pretrain,
        pretrain_epochs=args.pretrain_epochs,
        window=args.window,
        update_every=args.update_every,
        replay_buffer=args.buffer,
    )
    print(render_drift_report(outcomes))
    if args.output:
        payload = {
            "suite": "drift",
            "seed": args.seed,
            "detector": args.detector,
            "policy": args.policy,
            "outcomes": [outcome.to_dict() for outcome in outcomes],
        }
        with open(args.output, "w") as stream:
            json.dump(payload, stream, indent=2, sort_keys=True)
            stream.write("\n")
        print(f"report recorded to {args.output}", file=sys.stderr)
    missed = [
        o.scenario
        for o in outcomes
        if o.drift_index is not None and o.detection_delay is None
    ]
    false_alarms = sum(o.false_alarms for o in outcomes)
    return 1 if missed or false_alarms else 0


def _run_chaos(args) -> int:
    from repro.resilience.chaos import (
        render_report,
        run_scenarios,
        scenario_description,
        scenario_names,
    )

    if args.list_scenarios:
        quick_set = set(scenario_names(quick=True))
        for name in scenario_names():
            tag = "" if name in quick_set else "  [full only]"
            print(f"  {name:<22} {scenario_description(name)}{tag}")
        return 0
    results = run_scenarios(
        names=args.scenarios, quick=args.quick, seed=args.seed
    )
    print(render_report(results))
    return 0 if all(result.survived for result in results) else 1


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    config = (
        _config_from_args(args)
        if args.command
        not in ("bench", "train", "serve", "profile", "chaos", "loadtest",
                "dataset", "drift", "recover")
        else None
    )

    if args.command == "table1":
        print(format_table1(config))
    elif args.command == "table2":
        datasets = tuple(args.datasets) if args.datasets else DATASET_NAMES
        results = run_table2(config, datasets=datasets, progress=_progress)
        print(format_table2(results))
    elif args.command == "table3":
        kwargs = {"datasets": tuple(args.datasets)} if args.datasets else {}
        print(format_table3(run_table3(config, progress=_progress, **kwargs)))
    elif args.command in ("fig3", "fig4"):
        updater = "sum" if args.command == "fig3" else "gru"
        kwargs = {"datasets": tuple(args.datasets)} if args.datasets else {}
        results = run_ablation(config, updater=updater, progress=_progress, **kwargs)
        print(format_ablation(results, updater=updater))
    elif args.command == "fig5":
        print(format_sensitivity(run_sensitivity(config)))
    elif args.command == "fig6":
        kwargs = {"datasets": tuple(args.datasets)} if args.datasets else {}
        print(format_runtime(run_runtime(config, **kwargs)))
    elif args.command == "fig7":
        print(format_case_study(run_case_study(config)))
    elif args.command == "bench":
        return _run_bench(args)
    elif args.command == "train":
        _run_train(args)
    elif args.command == "serve":
        _run_serve(args)
    elif args.command == "profile":
        _run_profile(args)
    elif args.command == "loadtest":
        return _run_loadtest(args)
    elif args.command == "chaos":
        return _run_chaos(args)
    elif args.command == "drift":
        return _run_drift(args)
    elif args.command == "dataset":
        return _run_dataset(args)
    elif args.command == "recover":
        return _run_recover(args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
