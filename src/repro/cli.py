"""Command-line interface for the reproduction experiments.

Usage::

    python -m repro.cli table1  --preset smoke
    python -m repro.cli table2  --preset small --datasets Forum-java HDFS
    python -m repro.cli table3  --preset smoke
    python -m repro.cli fig3    --preset smoke          # ablation, SUM
    python -m repro.cli fig4    --preset smoke          # ablation, GRU
    python -m repro.cli fig5    --preset smoke          # sensitivity
    python -m repro.cli fig6    --preset smoke          # runtime vs F1
    python -m repro.cli fig7    --preset smoke          # case study
    python -m repro.cli train   --dataset HDFS --model TP-GNN-SUM

Every command prints the same text tables/figures the benchmarks emit,
at the chosen preset (override individual knobs with the flags below).
"""

from __future__ import annotations

import argparse
import sys

from repro.baselines.registry import ALL_MODELS, PLUS_G_MODELS, make_model
from repro.data.registry import DATASET_NAMES
from repro.experiments import (
    PRESETS,
    format_ablation,
    format_case_study,
    format_runtime,
    format_sensitivity,
    format_table1,
    format_table2,
    format_table3,
    run_ablation,
    run_case_study,
    run_runtime,
    run_sensitivity,
    run_table2,
    run_table3,
    snapshot_size_for,
)
from repro.training import TrainConfig, evaluate, train_model


def _config_from_args(args) -> "ExperimentConfig":
    config = PRESETS[args.preset]
    overrides = {}
    for field in ("num_graphs", "epochs", "runs", "hidden_size", "time_dim", "seed"):
        value = getattr(args, field, None)
        if value is not None:
            overrides[field] = value
    if getattr(args, "scale", None) is not None:
        overrides["graph_scale"] = args.scale
    return config.with_overrides(**overrides) if overrides else config


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--preset", choices=sorted(PRESETS), default="smoke")
    parser.add_argument("--num-graphs", dest="num_graphs", type=int)
    parser.add_argument("--scale", type=float)
    parser.add_argument("--epochs", type=int)
    parser.add_argument("--runs", type=int)
    parser.add_argument("--hidden-size", dest="hidden_size", type=int)
    parser.add_argument("--time-dim", dest="time_dim", type=int)
    parser.add_argument("--seed", type=int)


def _progress(*parts) -> None:
    print("  " + " ".join(str(p) for p in parts[:-1]), flush=True)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    for name in ("table1", "table2", "table3", "fig3", "fig4", "fig5", "fig6", "fig7"):
        cmd = sub.add_parser(name, help=f"regenerate {name}")
        _add_common(cmd)
        if name in ("table2", "table3", "fig3", "fig4", "fig6"):
            cmd.add_argument("--datasets", nargs="+", choices=DATASET_NAMES)

    train = sub.add_parser("train", help="train one model on one dataset")
    _add_common(train)
    train.add_argument("--dataset", choices=DATASET_NAMES, required=True)
    train.add_argument("--model", choices=ALL_MODELS + PLUS_G_MODELS, required=True)
    train.add_argument("--checkpoint", help="save the trained model to this .npz path")
    return parser


def _run_train(args) -> None:
    from repro.experiments.runner import build_dataset

    config = _config_from_args(args)
    dataset = build_dataset(args.dataset, config)
    train_data, test_data = dataset.split(config.train_fraction)
    model = make_model(
        args.model,
        in_features=dataset.feature_dim,
        seed=config.seed,
        hidden_size=config.hidden_size,
        time_dim=config.time_dim,
        snapshot_size=snapshot_size_for(args.dataset),
    )
    print(f"training {args.model} on {args.dataset} "
          f"({len(train_data)} train / {len(test_data)} test graphs)")
    result = train_model(model, train_data, config.train_config())
    metrics = evaluate(model, test_data)
    print(f"loss {result.losses[0]:.3f} -> {result.losses[-1]:.3f} "
          f"({result.train_seconds:.1f}s)")
    print(f"F1={100 * metrics.f1:.2f} precision={100 * metrics.precision:.2f} "
          f"recall={100 * metrics.recall:.2f}")
    if args.checkpoint:
        from repro.nn import save_checkpoint

        path = save_checkpoint(model, args.checkpoint, metadata={"f1": metrics.f1})
        print(f"checkpoint written to {path}")


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    config = _config_from_args(args) if args.command != "train" else None

    if args.command == "table1":
        print(format_table1(config))
    elif args.command == "table2":
        datasets = tuple(args.datasets) if args.datasets else DATASET_NAMES
        results = run_table2(config, datasets=datasets, progress=_progress)
        print(format_table2(results))
    elif args.command == "table3":
        kwargs = {"datasets": tuple(args.datasets)} if args.datasets else {}
        print(format_table3(run_table3(config, progress=_progress, **kwargs)))
    elif args.command in ("fig3", "fig4"):
        updater = "sum" if args.command == "fig3" else "gru"
        kwargs = {"datasets": tuple(args.datasets)} if args.datasets else {}
        results = run_ablation(config, updater=updater, progress=_progress, **kwargs)
        print(format_ablation(results, updater=updater))
    elif args.command == "fig5":
        print(format_sensitivity(run_sensitivity(config)))
    elif args.command == "fig6":
        kwargs = {"datasets": tuple(args.datasets)} if args.datasets else {}
        print(format_runtime(run_runtime(config, **kwargs)))
    elif args.command == "fig7":
        print(format_case_study(run_case_study(config)))
    elif args.command == "train":
        _run_train(args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
