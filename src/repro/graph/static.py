"""Static-graph views of a CTDN.

The static baselines (Spectral Clustering, GCN, GraphSAGE, GAT) ignore
edge timestamps; this module collapses a CTDN into adjacency structures
and provides the standard normalisations.
"""

from __future__ import annotations

import numpy as np

from repro.graph.ctdn import CTDN


def adjacency_matrix(graph: CTDN, directed: bool = True, weighted: bool = False) -> np.ndarray:
    """Dense adjacency matrix of the time-collapsed graph.

    Parameters
    ----------
    graph:
        The dynamic network.
    directed:
        When False, the matrix is symmetrised (spectral clustering needs
        an undirected graph, as the paper notes).
    weighted:
        When True, multi-edges accumulate counts; otherwise entries are
        binary.
    """
    n = graph.num_nodes
    adj = np.zeros((n, n))
    for edge in graph.edges:
        if weighted:
            adj[edge.src, edge.dst] += 1.0
        else:
            adj[edge.src, edge.dst] = 1.0
    if not directed:
        adj = np.maximum(adj, adj.T) if not weighted else adj + adj.T
    return adj


def gcn_normalized_adjacency(graph: CTDN) -> np.ndarray:
    """Symmetric GCN normalisation ``D^-1/2 (A + I) D^-1/2`` (Kipf & Welling)."""
    adj = adjacency_matrix(graph, directed=False) + np.eye(graph.num_nodes)
    degree = adj.sum(axis=1)
    inv_sqrt = 1.0 / np.sqrt(np.maximum(degree, 1e-12))
    return adj * inv_sqrt[:, None] * inv_sqrt[None, :]


def mean_aggregation_matrix(graph: CTDN, include_self: bool = False) -> np.ndarray:
    """Row-stochastic neighbour-mean operator (GraphSAGE MEAN aggregator).

    Row ``v`` averages over the (undirected) neighbours of ``v``; rows of
    isolated nodes are zero unless ``include_self`` adds a self-loop.
    """
    adj = adjacency_matrix(graph, directed=False)
    if include_self:
        adj = adj + np.eye(graph.num_nodes)
    degree = adj.sum(axis=1, keepdims=True)
    with np.errstate(invalid="ignore", divide="ignore"):
        mean = np.where(degree > 0, adj / np.maximum(degree, 1e-12), 0.0)
    return mean


def laplacian(graph: CTDN, normalized: bool = True) -> np.ndarray:
    """(Normalised) graph Laplacian of the undirected collapsed graph."""
    adj = adjacency_matrix(graph, directed=False, weighted=True)
    degree = adj.sum(axis=1)
    if not normalized:
        return np.diag(degree) - adj
    inv_sqrt = 1.0 / np.sqrt(np.maximum(degree, 1e-12))
    lap = np.eye(graph.num_nodes) - adj * inv_sqrt[:, None] * inv_sqrt[None, :]
    # Zero-degree nodes contribute identity rows; keep them finite.
    return np.where(np.isfinite(lap), lap, 0.0)
