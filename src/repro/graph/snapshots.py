"""Snapshot discretisation for the discrete-DGNN baselines.

AddGraph, TADDY, EvolveGCN and GC-LSTM treat a dynamic network as a
sequence of static snapshots.  The paper sets the snapshot size to 5
(Forum-java, HDFS) or 20 (Gowalla, Brightkite); we interpret "snapshot
size" as the number of consecutive edges grouped into one snapshot and
additionally provide time-window and fixed-count policies.
"""

from __future__ import annotations

import math

import numpy as np

from repro.graph.ctdn import CTDN
from repro.graph.edge import TemporalEdge


def snapshots_by_edge_count(graph: CTDN, edges_per_snapshot: int) -> list[CTDN]:
    """Group every ``edges_per_snapshot`` consecutive edges into a snapshot.

    Edges are taken in chronological order; each snapshot is a CTDN over
    the full node set (so node indices stay aligned across snapshots).
    """
    if edges_per_snapshot <= 0:
        raise ValueError(f"edges_per_snapshot must be positive, got {edges_per_snapshot}")
    ordered = graph.edges_sorted()
    result = []
    for start in range(0, len(ordered), edges_per_snapshot):
        chunk = ordered[start : start + edges_per_snapshot]
        result.append(graph.with_edges(chunk))
    if not result:
        result.append(graph.with_edges([]))
    return result


def snapshots_by_count(graph: CTDN, num_snapshots: int) -> list[CTDN]:
    """Split the edge sequence into exactly ``num_snapshots`` chunks.

    Useful when a model needs a fixed-length snapshot sequence; trailing
    snapshots may be empty for very sparse graphs.
    """
    if num_snapshots <= 0:
        raise ValueError(f"num_snapshots must be positive, got {num_snapshots}")
    ordered = graph.edges_sorted()
    per = max(1, math.ceil(len(ordered) / num_snapshots)) if ordered else 1
    chunks: list[list[TemporalEdge]] = [
        ordered[i * per : (i + 1) * per] for i in range(num_snapshots)
    ]
    return [graph.with_edges(chunk) for chunk in chunks]


def snapshots_by_time_window(graph: CTDN, window: float) -> list[CTDN]:
    """Partition edges into consecutive half-open time windows of width ``window``."""
    if window <= 0:
        raise ValueError(f"window must be positive, got {window}")
    ordered = graph.edges_sorted()
    if not ordered:
        return [graph.with_edges([])]
    start = ordered[0].time
    end = ordered[-1].time
    num_windows = int(np.floor((end - start) / window)) + 1
    buckets: list[list[TemporalEdge]] = [[] for _ in range(num_windows)]
    for edge in ordered:
        index = min(int((edge.time - start) / window), num_windows - 1)
        buckets[index].append(edge)
    return [graph.with_edges(bucket) for bucket in buckets]


def cumulative_snapshots(snapshots: list[CTDN]) -> list[CTDN]:
    """Turn incremental snapshots into cumulative ones.

    Snapshot ``k`` of the output contains all edges of snapshots
    ``0..k`` — the "graph so far" view some discrete DGNNs operate on.
    """
    accumulated: list[TemporalEdge] = []
    result = []
    for snap in snapshots:
        accumulated = accumulated + list(snap.edges)
        result.append(snap.with_edges(accumulated))
    return result
