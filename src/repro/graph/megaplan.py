"""Block-diagonal mega-plans: one wave schedule for a whole minibatch.

TP-GNN's session graphs are tiny (avg ~12 nodes), so per-graph wave
execution pays its fixed Python/dispatch overhead once per graph per
epoch — most of every kernel call on such graphs is overhead, not math.
Disjoint graphs compose freely: offsetting each member's node ids into
one shared index space yields a block-diagonal system in which wave
``k`` of the mega-plan is simply the concatenation of wave ``k`` of
every member.  No edge of one member can read or write another member's
state rows, so executing the merged wave as one gather → update →
scatter kernel over the shared ``(Σn, q)`` state matrix is exactly the
per-graph recurrence run in parallel — same semantics, ``B``-fold fewer
kernel launches.

A :class:`MegaPlan` quacks like a
:class:`~repro.graph.plan.PropagationPlan` where it matters to the
propagation engines — ``src``/``dst``/``times`` in merged-wave order
plus ``wave_bounds``/``waves()``/``num_edges`` — so
:meth:`~repro.core.propagation.TemporalPropagationBase._run_waves`
executes it verbatim.  On top it carries the offset tables
(:attr:`~BatchLayout.node_offsets` / :attr:`~BatchLayout.edge_offsets`),
the member-major chronological endpoint arrays the global extractor
consumes, and per-node member ids for batched segment readouts.

Timestamps are stored *session-relative* (``t`` minus the member's
first edge time): time encoding is per-session in the per-graph path
(each graph's state carries its own origin), and subtracting the origin
up front lets the whole mega-plan run with origin 0 while producing
bit-identical Time2Vec inputs.

Tie shuffling composes per member: :meth:`MegaPlan.from_graphs` calls
``graph.propagation_plan(rng=rng)`` member by member in batch order —
the exact calls, in the exact order, that the per-graph training loop
makes — so the rng stream and every tie permutation are bit-identical
to the per-graph path.

Layouts and deterministic plans are cached per batch composition in a
bounded LRU (:class:`MegaPlanCache`, keyed on member identity); hits
and misses are exported through the shared metric registry as
``propagation/megaplan_cache_hits`` / ``_misses``.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator, Sequence

import numpy as np

from repro.graph.edge import TemporalEdge
from repro.graph.plan import PropagationPlan


class BatchLayout:
    """Composition-static offset tables for one batch of graphs.

    Everything here depends only on *which* graphs make up the batch —
    their node/edge counts and stacked features — not on tie shuffling,
    so one layout is shared by every tie-shuffled mega-plan of the same
    composition (the cache exploits exactly this).
    """

    __slots__ = ("graphs", "features", "node_offsets", "edge_offsets", "member_node_ids")

    def __init__(self, graphs: Sequence):
        graphs = tuple(graphs)
        if not graphs:
            raise ValueError("a mega-plan needs at least one member graph")
        widths = {int(np.asarray(g.features).shape[1]) for g in graphs}
        if len(widths) > 1:
            raise ValueError(
                f"member graphs disagree on feature width: {sorted(widths)}"
            )
        count = len(graphs)
        node_counts = np.fromiter((g.num_nodes for g in graphs), dtype=np.int64, count=count)
        edge_counts = np.fromiter((g.num_edges for g in graphs), dtype=np.int64, count=count)
        self.graphs = graphs
        self.features = np.concatenate(
            [np.asarray(g.features, dtype=np.float64) for g in graphs], axis=0
        )
        self.node_offsets = np.concatenate([[0], np.cumsum(node_counts)]).astype(np.int64)
        self.edge_offsets = np.concatenate([[0], np.cumsum(edge_counts)]).astype(np.int64)
        self.member_node_ids = np.repeat(np.arange(count, dtype=np.int64), node_counts)

    @property
    def num_members(self) -> int:
        """Batch size ``B``."""
        return len(self.graphs)

    @property
    def num_nodes(self) -> int:
        """Total node count ``Σn`` of the packed state matrix."""
        return int(self.node_offsets[-1])

    @property
    def num_edges(self) -> int:
        """Total edge count ``Σm`` across members."""
        return int(self.edge_offsets[-1])


class MegaPlan:
    """One block-diagonal execution schedule for a minibatch of graphs.

    Attributes
    ----------
    src, dst, times:
        ``(Σm,)`` arrays in **merged-wave order** — the view the
        propagation engines execute.  Node ids carry the member's node
        offset; times are session-relative per member.
    wave_bounds:
        ``(W + 1,)`` boundaries of the merged waves (``W`` is the
        maximum member wave count).
    chrono_src, chrono_dst, chrono_times:
        The same edges in **member-major chronological order** (member
        ``b``'s edges occupy ``[edge_offsets[b], edge_offsets[b+1])``)
        — the view the global extractor consumes.
    wave_order:
        ``(Σm,)`` permutation from member-major position to merged-wave
        position (``src == chrono_src[wave_order]`` etc.).
    member_plans:
        The per-graph :class:`~repro.graph.plan.PropagationPlan` each
        block was built from (local node ids).
    """

    __slots__ = (
        "layout",
        "member_plans",
        "chrono_src",
        "chrono_dst",
        "chrono_times",
        "wave_order",
        "src",
        "dst",
        "times",
        "wave_bounds",
        "_edges",
    )

    def __init__(self, member_plans: Sequence[PropagationPlan], layout: BatchLayout):
        member_plans = tuple(member_plans)
        if len(member_plans) != layout.num_members:
            raise ValueError(
                f"got {len(member_plans)} member plans for a "
                f"{layout.num_members}-member layout"
            )
        self.layout = layout
        self.member_plans = member_plans
        node_offsets = layout.node_offsets
        edge_offsets = layout.edge_offsets
        total = layout.num_edges
        chrono_src = np.empty(total, dtype=np.int64)
        chrono_dst = np.empty(total, dtype=np.int64)
        chrono_times = np.empty(total, dtype=np.float64)
        for b, plan in enumerate(member_plans):
            start, end = int(edge_offsets[b]), int(edge_offsets[b + 1])
            if plan.num_edges != end - start:
                raise ValueError(
                    f"member {b} plan has {plan.num_edges} edges but the layout "
                    f"expects {end - start}"
                )
            if plan.num_edges == 0:
                continue  # an edgeless member is a valid (empty) block
            chrono_src[start:end] = plan.src + node_offsets[b]
            chrono_dst[start:end] = plan.dst + node_offsets[b]
            chrono_times[start:end] = plan.times - float(plan.times[0])
        self.chrono_src = chrono_src
        self.chrono_dst = chrono_dst
        self.chrono_times = chrono_times
        # Merged schedule: wave k executes wave k of every member that
        # has one.  Member node sets are disjoint, so the union of valid
        # waves is a valid wave (reads-before-writes and unique
        # destinations both survive concatenation).
        max_waves = max((plan.num_waves for plan in member_plans), default=0)
        order_parts: list[np.ndarray] = []
        wave_sizes = np.zeros(max_waves, dtype=np.int64)
        for k in range(max_waves):
            for b, plan in enumerate(member_plans):
                if k >= plan.num_waves:
                    continue
                lo = int(plan.wave_bounds[k]) + int(edge_offsets[b])
                hi = int(plan.wave_bounds[k + 1]) + int(edge_offsets[b])
                order_parts.append(np.arange(lo, hi, dtype=np.int64))
                wave_sizes[k] += hi - lo
        self.wave_order = (
            np.concatenate(order_parts) if order_parts else np.zeros(0, dtype=np.int64)
        )
        self.wave_bounds = np.concatenate([[0], np.cumsum(wave_sizes)]).astype(np.int64)
        self.src = chrono_src[self.wave_order]
        self.dst = chrono_dst[self.wave_order]
        self.times = chrono_times[self.wave_order]
        self._edges: list[TemporalEdge] | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_graphs(
        cls,
        graphs: Sequence,
        rng: np.random.Generator | None = None,
        layout: BatchLayout | None = None,
    ) -> "MegaPlan":
        """Pack ``graphs`` into one mega-plan.

        With an ``rng``, each member's tie groups are shuffled via its
        own ``propagation_plan(rng=rng)`` in batch order — consuming the
        rng stream exactly as the per-graph training loop does, so the
        two paths stay bit-compatible.
        """
        layout = layout if layout is not None else BatchLayout(graphs)
        plans = [graph.propagation_plan(rng=rng) for graph in layout.graphs]
        return cls(plans, layout)

    # ------------------------------------------------------------------
    # PropagationPlan-compatible views (what the engines execute)
    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        """Total scheduled edges ``Σm``."""
        return int(self.src.shape[0])

    @property
    def num_waves(self) -> int:
        """Merged kernel launches — the *maximum* member wave count."""
        return max(0, int(self.wave_bounds.shape[0]) - 1)

    def waves(self) -> Iterator[tuple[int, int]]:
        """Yield each merged wave as a half-open ``(start, end)`` slice."""
        bounds = self.wave_bounds
        for i in range(len(bounds) - 1):
            yield int(bounds[i]), int(bounds[i + 1])

    def edges(self) -> list[TemporalEdge]:
        """The merged schedule as edge objects (per-edge fallback path).

        Offsets applied, session-relative times; member blocks are
        disjoint, so folding this order per edge reproduces each
        member's own chronological recurrence exactly.
        """
        if self._edges is None:
            self._edges = [
                TemporalEdge(int(s), int(d), float(t))
                for s, d, t in zip(self.src, self.dst, self.times)
            ]
        return self._edges

    # ------------------------------------------------------------------
    # Batch views (what the model/extractor consume)
    # ------------------------------------------------------------------
    @property
    def features(self) -> np.ndarray:
        """Stacked raw node features ``(Σn, q_raw)``."""
        return self.layout.features

    @property
    def node_offsets(self) -> np.ndarray:
        """``(B + 1,)`` node-row offsets of each member block."""
        return self.layout.node_offsets

    @property
    def edge_offsets(self) -> np.ndarray:
        """``(B + 1,)`` member-major edge offsets of each member block."""
        return self.layout.edge_offsets

    @property
    def member_node_ids(self) -> np.ndarray:
        """``(Σn,)`` member index of every packed node row."""
        return self.layout.member_node_ids

    @property
    def num_members(self) -> int:
        """Batch size ``B``."""
        return self.layout.num_members

    @property
    def num_nodes(self) -> int:
        """Total packed node count ``Σn``."""
        return self.layout.num_nodes

    @property
    def member_edge_counts(self) -> np.ndarray:
        """``(B,)`` edge counts per member."""
        return np.diff(self.layout.edge_offsets)

    def member_node_slice(self, member: int) -> slice:
        """Row slice of member ``member`` in the packed ``(Σn, ·)`` matrices."""
        offsets = self.layout.node_offsets
        return slice(int(offsets[member]), int(offsets[member + 1]))

    def split_rows(self, matrix) -> list:
        """Per-member views of a packed ``(Σn, ·)`` matrix (tensor or array)."""
        return [matrix[self.member_node_slice(b)] for b in range(self.num_members)]

    def padded_sequence_index(self) -> tuple[np.ndarray, np.ndarray]:
        """Gather index materializing the end-padded ``(T, B)`` edge grid.

        Returns ``(index, lengths)``: ``index`` has ``T * B`` entries in
        step-major order such that gathering member-major edge rows with
        it and reshaping to ``(T, B, ·)`` puts member ``b``'s ``i``-th
        chronological edge at ``[i, b]``.  Pad slots (steps past a
        member's length) point at row 0; their value never reaches a
        read-out position and their gradient is exactly zero, because
        the fused GRU backward's carry is zero past the last step whose
        upstream gradient is taken.
        """
        lengths = self.member_edge_counts
        batch = self.num_members
        steps = int(lengths.max()) if batch else 0
        index = np.zeros((steps, batch), dtype=np.int64)
        offsets = self.layout.edge_offsets
        for b in range(batch):
            m = int(lengths[b])
            index[:m, b] = np.arange(int(offsets[b]), int(offsets[b]) + m, dtype=np.int64)
        return index.reshape(steps * batch), lengths

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MegaPlan(members={self.num_members}, nodes={self.num_nodes}, "
            f"edges={self.num_edges}, waves={self.num_waves})"
        )


class MegaPlanCache:
    """Bounded LRU of batch layouts and deterministic mega-plans.

    Keyed by batch composition (member identity, in order).  A hit
    reuses the composition's :class:`BatchLayout` — and, for the
    deterministic (no tie shuffle) path, the fully merged plan; a
    tie-shuffled request still rebuilds the merge (the permutations
    change every epoch) but skips the feature stacking and offset
    tables.  Entries hold strong references to their member graphs, so
    an ``id()`` can never be recycled while its entry is live; identity
    is still re-verified on lookup.
    """

    def __init__(self, capacity: int = 128):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[tuple[int, ...], dict] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        """Drop every cached layout/plan."""
        self._entries.clear()

    def batch(self, graphs: Sequence, rng: np.random.Generator | None = None) -> MegaPlan:
        """The mega-plan for ``graphs`` (tie-shuffled when ``rng`` given)."""
        graphs = tuple(graphs)
        key = tuple(id(graph) for graph in graphs)
        entry = self._entries.get(key)
        if entry is not None and all(a is b for a, b in zip(entry["graphs"], graphs)):
            self._entries.move_to_end(key)
            _count("propagation/megaplan_cache_hits")
        else:
            entry = {"graphs": graphs, "layout": BatchLayout(graphs), "plan": None}
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
            _count("propagation/megaplan_cache_misses")
        if rng is not None:
            return MegaPlan.from_graphs(entry["graphs"], rng=rng, layout=entry["layout"])
        if entry["plan"] is None:
            entry["plan"] = MegaPlan.from_graphs(entry["graphs"], layout=entry["layout"])
        return entry["plan"]


#: Process-wide composition cache used by the model/trainer batch path.
_default_cache = MegaPlanCache()


def mega_plan(graphs: Sequence, rng: np.random.Generator | None = None) -> MegaPlan:
    """Batch ``graphs`` into one mega-plan via the process-wide cache."""
    return _default_cache.batch(graphs, rng=rng)


def _count(name: str) -> None:
    """Bump a registry counter (telemetry imported lazily — no cycle)."""
    from repro import telemetry

    telemetry.get_registry().counter(name).inc()
