"""Columnar on-disk dataset bundles and the chunked streaming loader.

A dataset bundle packs every graph of a :class:`GraphDataset` into six
flat columns — the concatenated edge columns (``src``/``dst``/``t``),
the stacked feature matrix, and two CSR-style offset arrays that say
where each graph's slice lives:

======================  ======================================  ==========
array                   shape                                   dtype
======================  ======================================  ==========
``src`` / ``dst``       ``(total_edges,)``                      int64
``t``                   ``(total_edges,)``                      float64
``edge_indptr``         ``(num_graphs + 1,)``                   int64
``features``            ``(total_nodes, feature_dim)``          float64
``node_indptr``         ``(num_graphs + 1,)``                   int64
``labels``              ``(num_graphs,)``                       int64
======================  ======================================  ==========

Graph ``g`` owns edges ``edge_indptr[g]:edge_indptr[g+1]`` and feature
rows ``node_indptr[g]:node_indptr[g+1]``.  Each array is one raw
``.npy`` file next to a ``manifest.json`` carrying the format version,
the dataset name, per-file SHA-256 checksums, and the graph ids — the
same checksummed-manifest idiom as :meth:`EventStore.save`, with every
damage mode surfacing as :class:`IntegrityError`.

Because the layout is flat, loading is near zero-copy: with
``mmap=True`` the columns are memory-mapped read-only and every graph
materializes as a :class:`CTDN` shell whose store and feature matrix
are *slices* of the mapped files.  :func:`iter_dataset_chunks` goes one
step further and yields the dataset a chunk at a time, so a 10⁵-graph
bundle never needs all its Python shells alive at once.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator

import numpy as np

from repro.graph.ctdn import CTDN
from repro.graph.dataset import GraphDataset
from repro.graph.store import (
    MANIFEST_NAME,
    EventStore,
    _column_entry,
    _load_column,
    _read_manifest,
    _write_json_atomic,
)
from repro.resilience.errors import IntegrityError

DATASET_FORMAT = "repro.dataset/v1"

#: Column name -> dtype of a dataset bundle.
DATASET_COLUMNS = {
    "src": np.int64,
    "dst": np.int64,
    "t": np.float64,
    "edge_indptr": np.int64,
    "features": np.float64,
    "node_indptr": np.int64,
    "labels": np.int64,
}


def save_dataset(dataset: GraphDataset, path: str | Path) -> Path:
    """Write ``dataset`` as a columnar bundle under directory ``path``."""
    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)
    graphs = dataset.graphs
    edge_indptr = np.zeros(len(graphs) + 1, dtype=np.int64)
    node_indptr = np.zeros(len(graphs) + 1, dtype=np.int64)
    np.cumsum([g.num_edges for g in graphs], out=edge_indptr[1:])
    np.cumsum([g.num_nodes for g in graphs], out=node_indptr[1:])
    arrays = {
        "src": np.concatenate([g.store.src for g in graphs]),
        "dst": np.concatenate([g.store.dst for g in graphs]),
        "t": np.concatenate([g.store.t for g in graphs]),
        "edge_indptr": edge_indptr,
        "features": np.concatenate([g.features for g in graphs], axis=0),
        "node_indptr": node_indptr,
        "labels": dataset.labels,
    }
    manifest: dict = {
        "format": DATASET_FORMAT,
        "name": dataset.name,
        "graph_count": len(graphs),
        "feature_dim": dataset.feature_dim,
        "total_edges": int(edge_indptr[-1]),
        "total_nodes": int(node_indptr[-1]),
        "graph_ids": [g.graph_id for g in graphs],
        "columns": {},
    }
    for name in DATASET_COLUMNS:
        array = np.ascontiguousarray(arrays[name])
        manifest["columns"][name] = _column_entry(path, name, array)
    _write_json_atomic(path / MANIFEST_NAME, manifest)
    return path


def _open_bundle(path: Path, *, mmap: bool, verify: bool) -> tuple[dict, dict]:
    """Shared open path: manifest + integrity-checked column arrays."""
    manifest = _read_manifest(path, expected_format=DATASET_FORMAT)
    arrays = {}
    for name, dtype in DATASET_COLUMNS.items():
        entry = manifest["columns"].get(name)
        array = _load_column(path, name, entry, mmap=mmap, verify=verify)
        if array.dtype != dtype:
            raise IntegrityError(
                f"column {name!r} of dataset bundle {path} has dtype "
                f"{array.dtype}, expected {np.dtype(dtype)}"
            )
        arrays[name] = array
    count = int(manifest["graph_count"])
    if arrays["edge_indptr"].shape[0] != count + 1 or arrays["node_indptr"].shape[0] != count + 1:
        raise IntegrityError(
            f"dataset bundle {path} offset tables disagree with its "
            f"graph count ({count})"
        )
    if arrays["labels"].shape[0] != count:
        raise IntegrityError(f"dataset bundle {path} label column is the wrong length")
    if arrays["features"].ndim != 2:
        raise IntegrityError(f"dataset bundle {path} feature matrix is not 2-D")
    graph_ids = manifest.get("graph_ids") or [None] * count
    if len(graph_ids) != count:
        raise IntegrityError(f"dataset bundle {path} graph-id table is the wrong length")
    return manifest, arrays


def _graph_slice(arrays: dict, graph_ids: list, labels: list, index: int) -> CTDN:
    """Materialize graph ``index`` as a shell over the bundle columns."""
    e0 = int(arrays["edge_indptr"][index])
    e1 = int(arrays["edge_indptr"][index + 1])
    n0 = int(arrays["node_indptr"][index])
    n1 = int(arrays["node_indptr"][index + 1])
    store = EventStore(
        arrays["src"][e0:e1], arrays["dst"][e0:e1], arrays["t"][e0:e1],
        num_nodes=n1 - n0, validate=False,
    )
    return CTDN.from_store(
        n1 - n0,
        arrays["features"][n0:n1],
        store,
        label=int(labels[index]),
        graph_id=graph_ids[index],
    )


def load_dataset(
    path: str | Path, *, mmap: bool = True, verify: bool = True
) -> GraphDataset:
    """Load a bundle as a :class:`GraphDataset` of zero-copy graph shells.

    With ``mmap=True`` (the default) the edge columns and feature rows
    of every returned :class:`CTDN` are read-only views into the
    memory-mapped bundle files; nothing is read eagerly beyond the
    integrity pass.
    """
    path = Path(path)
    manifest, arrays = _open_bundle(path, mmap=mmap, verify=verify)
    graph_ids = manifest.get("graph_ids") or [None] * int(manifest["graph_count"])
    labels = arrays["labels"].tolist()
    graphs = [
        _graph_slice(arrays, graph_ids, labels, index)
        for index in range(int(manifest["graph_count"]))
    ]
    return GraphDataset(graphs, name=manifest.get("name", "dataset"))


def iter_dataset_chunks(
    path: str | Path,
    chunk_size: int = 1024,
    *,
    mmap: bool = True,
    verify: bool = True,
) -> Iterator[GraphDataset]:
    """Stream a bundle back as successive :class:`GraphDataset` chunks.

    Chunk ``k`` is named ``<name>/chunk<k>`` and holds at most
    ``chunk_size`` graphs; only one chunk's worth of Python shells is
    alive per iteration, which is what lets paper-scale (10⁵+ graph)
    bundles feed training loops on small machines.
    """
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    path = Path(path)
    manifest, arrays = _open_bundle(path, mmap=mmap, verify=verify)
    count = int(manifest["graph_count"])
    graph_ids = manifest.get("graph_ids") or [None] * count
    labels = arrays["labels"].tolist()
    name = manifest.get("name", "dataset")
    for chunk_index, start in enumerate(range(0, count, chunk_size)):
        stop = min(start + chunk_size, count)
        graphs = [
            _graph_slice(arrays, graph_ids, labels, index)
            for index in range(start, stop)
        ]
        yield GraphDataset(graphs, name=f"{name}/chunk{chunk_index}")
