"""Continuous-Time Dynamic Network (CTDN) — paper Definition 1.

A CTDN is a directed graph ``G = (V, E^T, X, T)`` whose edges carry
timestamps.  This module provides the central data structure shared by
the TP-GNN core, every baseline, the dataset generators, and the
negative samplers.

Since the columnar refactor, every CTDN is a thin shell around an
:class:`~repro.graph.store.EventStore`: the edges live as contiguous
``src``/``dst``/``t`` numpy columns, and the historical object API —
:attr:`edges`, :meth:`edges_sorted`, :meth:`propagation_plan` — is a
set of views over those columns.  :attr:`edges` is **read-only**:
graphs are immutable after construction (derived graphs are fresh
instances), and the columnar backend enforces what the old list-backed
attribute could only document — in-place mutation used to silently
serve stale ``_sorted_cache``/``_plan_cache`` entries; now it raises.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.graph.edge import TemporalEdge
from repro.graph.store import EdgeView, EventStore


class CTDN:
    """A continuous-time dynamic network with node features and a label.

    Parameters
    ----------
    num_nodes:
        Size of the node set ``V``; nodes are the integers ``0..n-1``.
    features:
        ``(num_nodes, q)`` float array: the raw feature matrix ``X``.
    edges:
        Iterable of ``(src, dst, time)`` triples or :class:`TemporalEdge`,
        or an :class:`EventStore` whose columns are adopted zero-copy.
        Stored exactly as given; use :meth:`edges_sorted` for the
        chronological view the models consume.
    label:
        Graph class in ``{0, 1}`` (1 = positive/normal in the paper's
        datasets), or ``None`` for unlabelled graphs.
    graph_id:
        Optional identifier (session/trace/user id) for traceability.
    """

    __slots__ = (
        "num_nodes",
        "features",
        "store",
        "label",
        "graph_id",
        "_edge_view",
        "_sorted_cache",
        "_plan_cache",
    )

    def __init__(
        self,
        num_nodes: int,
        features: np.ndarray,
        edges: Iterable[tuple[int, int, float] | TemporalEdge] | EventStore,
        label: int | None = None,
        graph_id: str | None = None,
    ):
        if num_nodes <= 0:
            raise ValueError(f"CTDN needs at least one node, got {num_nodes}")
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2 or features.shape[0] != num_nodes:
            raise ValueError(
                f"features must have shape ({num_nodes}, q), got {features.shape}"
            )
        self.num_nodes = num_nodes
        self.features = features
        self.store = _coerce_store(edges, num_nodes)
        self.label = label
        self.graph_id = graph_id
        # Memoized chronological views; graphs are immutable after
        # construction (derived graphs are fresh CTDN instances), so
        # both caches stay valid for the object's lifetime.
        self._edge_view: EdgeView | None = None
        self._sorted_cache: list[TemporalEdge] | None = None
        self._plan_cache = None

    @classmethod
    def from_store(
        cls,
        num_nodes: int,
        features: np.ndarray,
        store: EventStore,
        label: int | None = None,
        graph_id: str | None = None,
    ) -> "CTDN":
        """Wrap already-validated columns without copying the features.

        The zero-copy fast path used by :meth:`prefix`,
        :meth:`with_appended`, the dataset generators, and the bundle
        loader: the feature matrix and the store buffers are shared
        with the caller, so deriving a graph allocates only the shell.
        """
        graph = cls.__new__(cls)
        if store.num_nodes != num_nodes:
            store = EventStore(store.src, store.dst, store.t, num_nodes)
        graph.num_nodes = num_nodes
        graph.features = features
        graph.store = store
        graph.label = label
        graph.graph_id = graph_id
        graph._edge_view = None
        graph._sorted_cache = None
        graph._plan_cache = None
        return graph

    # ------------------------------------------------------------------
    # Basic views
    # ------------------------------------------------------------------
    @property
    def edges(self) -> EdgeView:
        """The edge multiset in storage order, as a read-only sequence.

        Iterates/indexes/slices like the list it replaced, but exposes
        no mutators: ``graph.edges.append(...)`` and item assignment
        raise, which is what keeps the memoized sorted/plan caches
        trustworthy.
        """
        if self._edge_view is None:
            self._edge_view = EdgeView(self.store)
        return self._edge_view

    @property
    def num_edges(self) -> int:
        """Number of temporal edges ``m``."""
        return self.store.num_events

    @property
    def feature_dim(self) -> int:
        """Raw node feature dimensionality ``q``."""
        return self.features.shape[1]

    @property
    def duration(self) -> float:
        """Time span between the first and last edge (0 when empty)."""
        if self.store.num_events == 0:
            return 0.0
        return float(self.store.t.max() - self.store.t.min())

    def edges_sorted(self, rng: np.random.Generator | None = None) -> list[TemporalEdge]:
        """Edges in ascending timestamp order.

        When ``rng`` is given, edges sharing a timestamp are shuffled
        among themselves before the (stable) sort — the paper shuffles
        ties before each training epoch to remove order artifacts within
        a timestamp.

        The deterministic (no-rng) order is memoized: propagation,
        snapshots and reachability all request it repeatedly, and the
        edge columns never change after construction.  A fresh list is
        returned each call so callers may reorder it freely.
        """
        if rng is not None:
            edges = list(self.edges)
            order = rng.permutation(len(edges))
            edges = [edges[i] for i in order]
            return sorted(edges, key=lambda e: e.time)
        if self._sorted_cache is None:
            self._sorted_cache = self.store.chronological().edges()
        return list(self._sorted_cache)

    def propagation_plan(self, rng: np.random.Generator | None = None):
        """The wave-scheduled execution plan for this graph's edges.

        The deterministic plan (sorted order, wave boundaries, endpoint
        index arrays, timestamps) is computed once and cached — it is
        what the vectorized propagation engine replays every epoch.
        Construction is zero-copy: the plan's endpoint/timestamp arrays
        are the store's chronological columns, not a materialized edge
        list.  With an ``rng``, a fresh plan is derived from the cached
        one by re-permuting only the timestamp tie groups (the paper's
        per-epoch tie shuffle) and recomputing wave boundaries; the
        expensive sort is never repeated.
        """
        from repro.graph.plan import PropagationPlan

        if self._plan_cache is None:
            self._plan_cache = PropagationPlan.from_store(self.store)
        if rng is None:
            return self._plan_cache
        return self._plan_cache.tie_shuffled(rng)

    def timestamps(self) -> np.ndarray:
        """All edge timestamps in storage order (a fresh, writable array)."""
        return self.store.t.copy()

    def in_neighbors(self) -> list[list[tuple[int, float]]]:
        """Per-node list of ``(source, time)`` pairs of incoming edges."""
        indptr, event_ids = self.store.in_csr()
        src = self.store.src
        t = self.store.t
        table: list[list[tuple[int, float]]] = []
        for node in range(self.num_nodes):
            bucket = event_ids[indptr[node]:indptr[node + 1]]
            table.append([(int(src[i]), float(t[i])) for i in bucket])
        return table

    def out_degree(self) -> np.ndarray:
        """Out-degree per node, counting multi-edges."""
        return self.store.out_degree()

    def in_degree(self) -> np.ndarray:
        """In-degree per node, counting multi-edges."""
        return self.store.in_degree()

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def with_edges(
        self,
        edges: Sequence[TemporalEdge] | EventStore | EdgeView,
        label: int | None = None,
    ) -> "CTDN":
        """Return a copy of this graph with a different edge set."""
        return CTDN(
            self.num_nodes,
            self.features.copy(),
            edges,
            label=self.label if label is None else label,
            graph_id=self.graph_id,
        )

    def with_appended(self, *edges: tuple[int, int, float] | TemporalEdge) -> "CTDN":
        """Return a copy with ``edges`` appended after the existing ones.

        The streaming tests and benchmarks use this to model a live
        session growing one event at a time.  The existing columns and
        the feature matrix are shared with the parent, not copied.
        """
        count = len(edges)
        store = self.store.with_appended(
            np.fromiter((e[0] for e in edges), dtype=np.int64, count=count),
            np.fromiter((e[1] for e in edges), dtype=np.int64, count=count),
            np.fromiter((e[2] for e in edges), dtype=np.float64, count=count),
        )
        return CTDN.from_store(
            self.num_nodes, self.features, store,
            label=self.label, graph_id=self.graph_id,
        )

    def prefix(self, count: int) -> "CTDN":
        """Return a copy containing the first ``count`` chronological edges.

        The ``count``-edge prefix of :meth:`edges_sorted` — the
        "session so far" view that online serving scores incrementally.
        The prefix store is a buffer-sharing slice of this graph's
        chronological columns, and the feature matrix is shared too:
        deriving every prefix of a session costs O(1) memory per step.
        """
        if count < 0:
            raise ValueError(f"prefix length must be >= 0, got {count}")
        return CTDN.from_store(
            self.num_nodes, self.features, self.store.prefix(count),
            label=self.label, graph_id=self.graph_id,
        )

    def copy(self) -> "CTDN":
        """Copy with fresh features and caches (the edge columns are
        immutable and therefore shared)."""
        return self.with_edges(self.store)

    def to_networkx(self):
        """Export as a ``networkx.MultiDiGraph`` with ``time`` edge attrs."""
        import networkx as nx

        graph = nx.MultiDiGraph()
        for node in range(self.num_nodes):
            graph.add_node(node, features=self.features[node])
        for edge in self.edges:
            graph.add_edge(edge.src, edge.dst, time=edge.time)
        return graph

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f", label={self.label}" if self.label is not None else ""
        return f"CTDN(nodes={self.num_nodes}, edges={self.num_edges}{label})"


def _coerce_store(
    edges: Iterable[tuple[int, int, float] | TemporalEdge] | EventStore | EdgeView,
    num_nodes: int,
) -> EventStore:
    """Adopt columns zero-copy when possible, else convert edge objects."""
    if isinstance(edges, EdgeView):
        edges = edges.store
    if isinstance(edges, EventStore):
        if edges.num_nodes == num_nodes:
            return edges
        # Rewrap (and revalidate) the shared columns for a different
        # node-set size without copying the buffers.
        return EventStore(edges.src, edges.dst, edges.t, num_nodes)
    return EventStore.from_edges(edges, num_nodes)
