"""Continuous-Time Dynamic Network (CTDN) — paper Definition 1.

A CTDN is a directed graph ``G = (V, E^T, X, T)`` whose edges carry
timestamps.  This module provides the central data structure shared by
the TP-GNN core, every baseline, the dataset generators, and the
negative samplers.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.graph.edge import TemporalEdge


class CTDN:
    """A continuous-time dynamic network with node features and a label.

    Parameters
    ----------
    num_nodes:
        Size of the node set ``V``; nodes are the integers ``0..n-1``.
    features:
        ``(num_nodes, q)`` float array: the raw feature matrix ``X``.
    edges:
        Iterable of ``(src, dst, time)`` triples or :class:`TemporalEdge`.
        Stored exactly as given; use :meth:`edges_sorted` for the
        chronological view the models consume.
    label:
        Graph class in ``{0, 1}`` (1 = positive/normal in the paper's
        datasets), or ``None`` for unlabelled graphs.
    graph_id:
        Optional identifier (session/trace/user id) for traceability.
    """

    __slots__ = (
        "num_nodes",
        "features",
        "edges",
        "label",
        "graph_id",
        "_sorted_cache",
        "_plan_cache",
    )

    def __init__(
        self,
        num_nodes: int,
        features: np.ndarray,
        edges: Iterable[tuple[int, int, float] | TemporalEdge],
        label: int | None = None,
        graph_id: str | None = None,
    ):
        if num_nodes <= 0:
            raise ValueError(f"CTDN needs at least one node, got {num_nodes}")
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2 or features.shape[0] != num_nodes:
            raise ValueError(
                f"features must have shape ({num_nodes}, q), got {features.shape}"
            )
        edge_list = [TemporalEdge(int(e[0]), int(e[1]), float(e[2])) for e in edges]
        for edge in edge_list:
            if not (0 <= edge.src < num_nodes and 0 <= edge.dst < num_nodes):
                raise ValueError(f"edge {edge} references a node outside [0, {num_nodes})")
            if edge.time < 0:
                raise ValueError(f"edge {edge} has a negative timestamp")
        self.num_nodes = num_nodes
        self.features = features
        self.edges: list[TemporalEdge] = edge_list
        self.label = label
        self.graph_id = graph_id
        # Memoized chronological views; graphs are immutable after
        # construction (derived graphs are fresh CTDN instances), so
        # both caches stay valid for the object's lifetime.
        self._sorted_cache: list[TemporalEdge] | None = None
        self._plan_cache = None

    # ------------------------------------------------------------------
    # Basic views
    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        """Number of temporal edges ``m``."""
        return len(self.edges)

    @property
    def feature_dim(self) -> int:
        """Raw node feature dimensionality ``q``."""
        return self.features.shape[1]

    @property
    def duration(self) -> float:
        """Time span between the first and last edge (0 when empty)."""
        if not self.edges:
            return 0.0
        times = [e.time for e in self.edges]
        return max(times) - min(times)

    def edges_sorted(self, rng: np.random.Generator | None = None) -> list[TemporalEdge]:
        """Edges in ascending timestamp order.

        When ``rng`` is given, edges sharing a timestamp are shuffled
        among themselves before the (stable) sort — the paper shuffles
        ties before each training epoch to remove order artifacts within
        a timestamp.

        The deterministic (no-rng) order is memoized: propagation,
        snapshots and reachability all request it repeatedly, and the
        edge list never changes after construction.  A fresh list is
        returned each call so callers may reorder it freely.
        """
        if rng is not None:
            edges = list(self.edges)
            order = rng.permutation(len(edges))
            edges = [edges[i] for i in order]
            return sorted(edges, key=lambda e: e.time)
        if self._sorted_cache is None:
            self._sorted_cache = sorted(self.edges, key=lambda e: e.time)
        return list(self._sorted_cache)

    def propagation_plan(self, rng: np.random.Generator | None = None):
        """The wave-scheduled execution plan for this graph's edges.

        The deterministic plan (sorted order, wave boundaries, endpoint
        index arrays, timestamps) is computed once and cached — it is
        what the vectorized propagation engine replays every epoch.
        With an ``rng``, a fresh plan is derived from the cached one by
        re-permuting only the timestamp tie groups (the paper's
        per-epoch tie shuffle) and recomputing wave boundaries; the
        expensive sort is never repeated.
        """
        from repro.graph.plan import PropagationPlan

        if self._plan_cache is None:
            self._plan_cache = PropagationPlan.from_edges(self.edges)
        if rng is None:
            return self._plan_cache
        return self._plan_cache.tie_shuffled(rng)

    def timestamps(self) -> np.ndarray:
        """All edge timestamps in storage order."""
        return np.array([e.time for e in self.edges], dtype=np.float64)

    def in_neighbors(self) -> list[list[tuple[int, float]]]:
        """Per-node list of ``(source, time)`` pairs of incoming edges."""
        table: list[list[tuple[int, float]]] = [[] for _ in range(self.num_nodes)]
        for edge in self.edges:
            table[edge.dst].append((edge.src, edge.time))
        return table

    def out_degree(self) -> np.ndarray:
        """Out-degree per node, counting multi-edges."""
        degree = np.zeros(self.num_nodes, dtype=np.int64)
        for edge in self.edges:
            degree[edge.src] += 1
        return degree

    def in_degree(self) -> np.ndarray:
        """In-degree per node, counting multi-edges."""
        degree = np.zeros(self.num_nodes, dtype=np.int64)
        for edge in self.edges:
            degree[edge.dst] += 1
        return degree

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def with_edges(self, edges: Sequence[TemporalEdge], label: int | None = None) -> "CTDN":
        """Return a copy of this graph with a different edge set."""
        return CTDN(
            self.num_nodes,
            self.features.copy(),
            edges,
            label=self.label if label is None else label,
            graph_id=self.graph_id,
        )

    def with_appended(self, *edges: tuple[int, int, float] | TemporalEdge) -> "CTDN":
        """Return a copy with ``edges`` appended after the existing ones.

        The streaming tests and benchmarks use this to model a live
        session growing one event at a time.
        """
        return self.with_edges(list(self.edges) + list(edges))

    def prefix(self, count: int) -> "CTDN":
        """Return a copy containing the first ``count`` chronological edges.

        The ``count``-edge prefix of :meth:`edges_sorted` — the
        "session so far" view that online serving scores incrementally.
        """
        if count < 0:
            raise ValueError(f"prefix length must be >= 0, got {count}")
        return self.with_edges(self.edges_sorted()[:count])

    def copy(self) -> "CTDN":
        """Deep copy."""
        return self.with_edges(list(self.edges))

    def to_networkx(self):
        """Export as a ``networkx.MultiDiGraph`` with ``time`` edge attrs."""
        import networkx as nx

        graph = nx.MultiDiGraph()
        for node in range(self.num_nodes):
            graph.add_node(node, features=self.features[node])
        for edge in self.edges:
            graph.add_edge(edge.src, edge.dst, time=edge.time)
        return graph

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f", label={self.label}" if self.label is not None else ""
        return f"CTDN(nodes={self.num_nodes}, edges={self.num_edges}{label})"
