"""Propagation plans: wave-scheduled execution order for temporal edges.

Temporal propagation (paper Algorithm 1) is a strict recurrence over the
chronological edge list: each edge reads the *current* states of its
endpoints and overwrites the target's state.  Executing it edge by edge
costs dozens of tiny autograd nodes per edge, so the engine instead
partitions the sequence into **waves** — maximal chronological runs in
which

* no edge reads a node row written earlier in the same wave (every
  source, and every target that is read before being overwritten, is
  untouched so far within the wave), and
* no two edges write the same target row.

Within such a run every edge sees exactly the node states that the
per-edge recurrence would have shown it, so the whole wave can execute
as one batched gather → update → scatter kernel with identical
semantics.  Dependency chains (``a→b`` then ``b→c``) still split into
separate waves, preserving Algorithm 1's ordering and therefore
Theorem 1's influence guarantees.

A :class:`PropagationPlan` packages everything the vectorized engine
needs — the chronological ``src``/``dst``/``times`` arrays, the wave
boundaries, and the tie-group structure.  Plans are cached per
:class:`~repro.graph.ctdn.CTDN` (graphs are immutable after
construction) and reused across training epochs; when an rng shuffles
timestamp ties, only the tie groups are re-permuted and the wave
boundaries recomputed, instead of re-sorting and re-validating the
whole edge list.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.graph.edge import TemporalEdge
from repro.resilience.faults import inject


class PropagationPlan:
    """An execution schedule for one graph's chronological edge list.

    Attributes
    ----------
    src, dst:
        ``(m,)`` int64 arrays of edge endpoints in chronological order.
    times:
        ``(m,)`` float64 array of edge timestamps (ascending).
    wave_bounds:
        ``(w + 1,)`` int64 boundaries: wave ``i`` covers the half-open
        slice ``[wave_bounds[i], wave_bounds[i + 1])``.
    order:
        ``(m,)`` int64 permutation mapping chronological position to
        the edge's index in the graph's storage order.
    """

    __slots__ = ("src", "dst", "times", "wave_bounds", "order", "_tie_bounds", "_edges")

    def __init__(
        self,
        src: np.ndarray,
        dst: np.ndarray,
        times: np.ndarray,
        order: np.ndarray,
        tie_bounds: np.ndarray | None = None,
    ):
        self.src = src
        self.dst = dst
        self.times = times
        self.order = order
        self.wave_bounds = _wave_bounds(src, dst)
        self._tie_bounds = tie_bounds
        self._edges: list[TemporalEdge] | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(cls, edges: Sequence[TemporalEdge]) -> "PropagationPlan":
        """Build the deterministic (no tie shuffling) plan for ``edges``.

        The stable sort keeps storage order among equal timestamps,
        matching :meth:`CTDN.edges_sorted` without an rng.
        """
        inject("plan.build")
        m = len(edges)
        times_raw = np.fromiter((e.time for e in edges), dtype=np.float64, count=m)
        order = np.argsort(times_raw, kind="stable")
        src = np.fromiter((edges[i].src for i in order), dtype=np.int64, count=m)
        dst = np.fromiter((edges[i].dst for i in order), dtype=np.int64, count=m)
        return cls(src, dst, times_raw[order], order)

    @classmethod
    def from_store(cls, store) -> "PropagationPlan":
        """Zero-copy plan construction from an event store's columns.

        The chronological ``src``/``dst``/``times`` arrays and the
        storage-order permutation are the store's own (read-only)
        buffers — no edge objects are materialized and nothing is
        copied; only the wave boundaries are computed here.  Produces
        bit-identical plans to :meth:`from_edges` over the same edges
        (both use the same stable sort).
        """
        inject("plan.build")
        chronological = store.chronological()
        return cls(
            chronological.src,
            chronological.dst,
            chronological.t,
            store.order,
        )

    def tie_shuffled(self, rng: np.random.Generator) -> "PropagationPlan":
        """A fresh plan with each timestamp tie group independently permuted.

        The paper shuffles same-timestamp edges before each training
        epoch to remove order artifacts within a tie.  Reusing this
        plan's sort means only the tie groups are touched: the sorted
        times, the tie structure and the storage mapping are shared,
        and just the wave boundaries are recomputed for the new order.
        """
        inject("plan.build")
        src = self.src.copy()
        dst = self.dst.copy()
        order = self.order.copy()
        for start, end in zip(self.tie_bounds[:-1], self.tie_bounds[1:]):
            if end - start > 1:
                perm = rng.permutation(end - start)
                src[start:end] = src[start:end][perm]
                dst[start:end] = dst[start:end][perm]
                order[start:end] = order[start:end][perm]
        return PropagationPlan(src, dst, self.times, order, tie_bounds=self.tie_bounds)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        """Number of scheduled edges ``m``."""
        return int(self.src.shape[0])

    @property
    def num_waves(self) -> int:
        """Number of batched kernel launches the schedule needs."""
        return max(0, int(self.wave_bounds.shape[0]) - 1)

    @property
    def tie_bounds(self) -> np.ndarray:
        """Boundaries of equal-timestamp runs (computed once, shared)."""
        if self._tie_bounds is None:
            if self.num_edges == 0:
                self._tie_bounds = np.zeros(1, dtype=np.int64)
            else:
                breaks = np.flatnonzero(np.diff(self.times)) + 1
                self._tie_bounds = np.concatenate(
                    [[0], breaks, [self.num_edges]]
                ).astype(np.int64)
        return self._tie_bounds

    def waves(self) -> Iterator[tuple[int, int]]:
        """Yield each wave as a half-open ``(start, end)`` slice."""
        bounds = self.wave_bounds
        for i in range(len(bounds) - 1):
            yield int(bounds[i]), int(bounds[i + 1])

    def edges(self) -> list[TemporalEdge]:
        """The scheduled order as :class:`TemporalEdge` objects (cached)."""
        if self._edges is None:
            self._edges = [
                TemporalEdge(int(s), int(d), float(t))
                for s, d, t in zip(self.src, self.dst, self.times)
            ]
        return self._edges

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PropagationPlan(edges={self.num_edges}, waves={self.num_waves})"


def _wave_bounds(src: np.ndarray, dst: np.ndarray) -> np.ndarray:
    """Greedy maximal wave partition of a chronological edge order.

    Scans once, keeping the set of node rows written by the current
    wave; an edge that reads (src or dst) or rewrites (dst) any of them
    closes the wave.  A self-loop is fine within a wave — the per-edge
    recurrence reads both endpoints *before* writing — but a repeated
    destination is not.
    """
    m = int(src.shape[0])
    if m == 0:
        return np.zeros(1, dtype=np.int64)
    bounds = [0]
    written: set[int] = set()
    for i, (s, d) in enumerate(zip(src.tolist(), dst.tolist())):
        if s in written or d in written:
            bounds.append(i)
            written = {d}
        else:
            written.add(d)
    bounds.append(m)
    return np.asarray(bounds, dtype=np.int64)
