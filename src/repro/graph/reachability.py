"""Temporal reachability: valid paths and influential nodes (Definition 4).

A *valid path* is a sequence of edges ``(u1,u2,t1), (u2,u3,t2), ...``
with non-decreasing timestamps ``0 < t1 <= t2 <= ...``.  Node ``u`` is
*influential* to ``v`` when a valid path runs from ``u`` to ``v``.

Theorem 1 of the paper states that the temporal propagation algorithm
aggregates information from exactly the influential nodes; the test
suite verifies this property against these reference implementations.

Timestamp ties: the paper's algorithm processes edges in a specific
(chronological) order and shuffles ties between epochs.  The functions
here accept an explicit edge order so callers can reason about exactly
the order the propagation algorithm saw.
"""

from __future__ import annotations

from typing import Sequence

from repro.graph.ctdn import CTDN
from repro.graph.edge import TemporalEdge


def influence_sets(
    graph: CTDN, edge_order: Sequence[TemporalEdge] | None = None
) -> list[set[int]]:
    """For every node ``v``, the set of nodes influential to ``v``.

    Runs the same single chronological sweep as temporal propagation:
    when edge ``(u, v, t)`` is processed, everything that has reached
    ``u`` so far (plus ``u`` itself) reaches ``v``.

    Parameters
    ----------
    graph:
        The dynamic network.
    edge_order:
        Explicit processing order; defaults to ``graph.edges_sorted()``.
        Must be non-decreasing in time.

    Returns
    -------
    ``sets[v]`` is the set of influential nodes of ``v`` (never contains
    ``v`` unless a valid cycle returns to it).
    """
    edges = list(edge_order) if edge_order is not None else graph.edges_sorted()
    _check_sorted(edges)
    sets: list[set[int]] = [set() for _ in range(graph.num_nodes)]
    for edge in edges:
        sets[edge.dst] |= sets[edge.src]
        sets[edge.dst].add(edge.src)
    return sets


def is_influential(
    graph: CTDN,
    source: int,
    target: int,
    edge_order: Sequence[TemporalEdge] | None = None,
) -> bool:
    """Whether ``source`` is influential to ``target`` (valid path exists)."""
    return source in influence_sets(graph, edge_order)[target]


def valid_path(
    graph: CTDN,
    source: int,
    target: int,
    edge_order: Sequence[TemporalEdge] | None = None,
) -> list[TemporalEdge] | None:
    """Return one valid path ``source -> target`` or None.

    A witness-producing variant of :func:`is_influential`, used by tests
    and the Fig. 7 case study to explain why an embedding changed.
    """
    edges = list(edge_order) if edge_order is not None else graph.edges_sorted()
    _check_sorted(edges)
    # best_path[v] = shortest-prefix valid path from source to v found so far.
    best_path: dict[int, list[TemporalEdge]] = {source: []}
    for edge in edges:
        if edge.src in best_path and edge.dst not in best_path:
            best_path[edge.dst] = best_path[edge.src] + [edge]
        elif edge.src in best_path:
            # Keep the first (earliest) discovered path; later ones are
            # equally valid but not needed.
            pass
    path = best_path.get(target)
    if path is None or target == source and not path:
        return path if target == source else None
    return path


def temporal_neighbors(
    graph: CTDN, node: int, before: float, limit: int | None = None
) -> list[tuple[int, float]]:
    """Most recent in-neighbours of ``node`` strictly before time ``before``.

    This is the sampling primitive of the TGAT/TGN baselines: neighbours
    are returned most-recent-first, truncated to ``limit``.
    """
    history = [
        (edge.src, edge.time)
        for edge in graph.edges
        if edge.dst == node and edge.time < before
    ]
    history.sort(key=lambda pair: -pair[1])
    if limit is not None:
        history = history[:limit]
    return history


def _check_sorted(edges: Sequence[TemporalEdge]) -> None:
    """Raise when the edge order is not chronological."""
    for previous, current in zip(edges, edges[1:]):
        if current.time < previous.time:
            raise ValueError(
                "edge order must be non-decreasing in time; "
                f"got {previous.time} before {current.time}"
            )
