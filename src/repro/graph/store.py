"""Columnar event storage: the struct-of-arrays backend of every CTDN.

A :class:`EventStore` holds one graph's temporal edges as three
contiguous numpy columns — ``src``/``dst`` (int64) and ``t`` (float64)
— instead of a Python list of :class:`~repro.graph.edge.TemporalEdge`
objects.  Everything the rest of the stack needs is derived from the
columns and cached lazily:

* the **chronological permutation** (stable argsort over ``t``, the
  exact order :meth:`CTDN.edges_sorted` has always produced);
* **CSR in/out-neighbor indexes** (``indptr`` + event ids bucketed by
  endpoint, storage order preserved within each bucket);
* **materialize-on-slice views**: :meth:`prefix` and
  :meth:`chronological` return stores whose columns are numpy *views*
  of the parent's buffers — deriving the "session so far" graph or
  handing the sorted columns to the wave planner copies nothing.

Columns are exposed as read-only numpy views, which is what makes the
CTDN "immutable after construction" contract enforceable: the sorted
and plan caches stay valid because nobody can rebind or write the
storage they were derived from.

Stores round-trip to disk as a raw ``.npy`` bundle (one file per
column, memory-mappable with ``mmap=True``) guarded by a checksummed
JSON manifest; any damage — truncation, bit flips, a missing column, a
dtype/shape mismatch — surfaces as
:class:`~repro.resilience.errors.IntegrityError`, the same typed
failure the resilience layer's archives raise.
"""

from __future__ import annotations

import hashlib
import json
import os
from collections.abc import Sequence
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

from repro.graph.edge import TemporalEdge
from repro.resilience.errors import IntegrityError

STORE_FORMAT = "repro.eventstore/v1"
MANIFEST_NAME = "manifest.json"

#: Column name -> dtype of the on-disk bundle.
COLUMNS = {"src": np.int64, "dst": np.int64, "t": np.float64}


def _readonly(values, dtype) -> np.ndarray:
    """Coerce ``values`` to a 1-D read-only array without copying.

    When ``values`` is already a 1-D array of the right dtype, the
    result is a zero-copy *view* with the writeable flag cleared — the
    caller's array is untouched, but nothing reached through the store
    can mutate the shared buffer.
    """
    array = np.asarray(values, dtype=dtype)
    if array.ndim != 1:
        raise ValueError(f"event columns must be 1-D, got shape {array.shape}")
    view = array.view()
    view.flags.writeable = False
    return view


class EventStore:
    """One graph's temporal edges as contiguous ``src``/``dst``/``t`` columns.

    Parameters
    ----------
    src, dst:
        Integer endpoint columns (storage order, i.e. insertion order).
    t:
        Float timestamp column, aligned with ``src``/``dst``.
    num_nodes:
        Size of the node set the endpoints index into.
    validate:
        When True (the default for externally supplied columns), check
        endpoint bounds and timestamp signs vectorized.  Internal view
        constructions pass False — their columns are already validated.
    chronological:
        Tri-state sortedness hint: ``True`` (known ascending), ``False``
        (known not), ``None`` (unknown; computed lazily on demand).
    """

    __slots__ = (
        "src",
        "dst",
        "t",
        "num_nodes",
        "_chronological",
        "_order",
        "_sorted_store",
        "_in_csr",
        "_out_csr",
    )

    def __init__(
        self,
        src,
        dst,
        t,
        num_nodes: int,
        *,
        validate: bool = True,
        chronological: bool | None = None,
    ):
        if num_nodes <= 0:
            raise ValueError(f"EventStore needs at least one node, got {num_nodes}")
        self.src = _readonly(src, np.int64)
        self.dst = _readonly(dst, np.int64)
        self.t = _readonly(t, np.float64)
        if not (self.src.shape == self.dst.shape == self.t.shape):
            raise ValueError(
                "event columns must share one length, got "
                f"src={self.src.shape[0]}, dst={self.dst.shape[0]}, t={self.t.shape[0]}"
            )
        self.num_nodes = int(num_nodes)
        self._chronological = chronological
        self._order: np.ndarray | None = None
        self._sorted_store: "EventStore | None" = None
        self._in_csr: tuple[np.ndarray, np.ndarray] | None = None
        self._out_csr: tuple[np.ndarray, np.ndarray] | None = None
        if validate:
            self._validate()

    def _validate(self) -> None:
        """Vectorized bounds/sign checks over the whole column set."""
        if self.num_events == 0:
            return
        endpoints = np.concatenate([self.src, self.dst])
        out_of_range = (endpoints < 0) | (endpoints >= self.num_nodes)
        if out_of_range.any():
            index = int(np.flatnonzero(out_of_range)[0]) % self.num_events
            raise ValueError(
                f"edge {self.edge_at(index)} references a node outside "
                f"[0, {self.num_nodes})"
            )
        negative = self.t < 0
        if negative.any():
            index = int(np.flatnonzero(negative)[0])
            raise ValueError(f"edge {self.edge_at(index)} has a negative timestamp")

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        edges: Iterable[tuple[int, int, float] | TemporalEdge],
        num_nodes: int,
        *,
        validate: bool = True,
    ) -> "EventStore":
        """Convert an edge-object iterable into columns (the object path).

        This is the compatibility bridge for callers that still hand
        over tuples or :class:`TemporalEdge`; generators and loaders
        emit columns directly and never pass through here.
        """
        edges = edges if isinstance(edges, (list, tuple)) else list(edges)
        m = len(edges)
        src = np.fromiter((e[0] for e in edges), dtype=np.int64, count=m)
        dst = np.fromiter((e[1] for e in edges), dtype=np.int64, count=m)
        t = np.fromiter((e[2] for e in edges), dtype=np.float64, count=m)
        return cls(src, dst, t, num_nodes, validate=validate)

    @classmethod
    def empty(cls, num_nodes: int) -> "EventStore":
        """A store with zero events."""
        zero = np.zeros(0, dtype=np.int64)
        return cls(
            zero, zero, np.zeros(0, dtype=np.float64), num_nodes,
            validate=False, chronological=True,
        )

    # ------------------------------------------------------------------
    # Basic views
    # ------------------------------------------------------------------
    @property
    def num_events(self) -> int:
        """Number of stored temporal edges ``m``."""
        return int(self.src.shape[0])

    def __len__(self) -> int:
        return self.num_events

    def is_chronological(self) -> bool:
        """True when storage order is already ascending in time."""
        if self._chronological is None:
            self._chronological = bool(
                self.num_events <= 1 or np.all(self.t[:-1] <= self.t[1:])
            )
        return self._chronological

    @property
    def order(self) -> np.ndarray:
        """The chronological permutation (lazy, cached, stable).

        ``order[i]`` is the storage index of the ``i``-th edge in
        ascending-time order; ties keep storage order, matching the
        stable sort :meth:`CTDN.edges_sorted` has always used.
        """
        if self._order is None:
            if self.is_chronological():
                order = np.arange(self.num_events, dtype=np.int64)
            else:
                order = np.argsort(self.t, kind="stable")
            self._order = _readonly(order, np.int64)
        return self._order

    def chronological(self) -> "EventStore":
        """This store's events in ascending-time order.

        Already-sorted stores return ``self`` (zero copy); otherwise the
        permuted columns are materialized once and cached.
        """
        if self.is_chronological():
            return self
        if self._sorted_store is None:
            order = self.order
            self._sorted_store = EventStore(
                self.src[order], self.dst[order], self.t[order], self.num_nodes,
                validate=False, chronological=True,
            )
        return self._sorted_store

    def prefix(self, count: int) -> "EventStore":
        """The first ``count`` chronological events as a buffer-sharing view.

        Slicing the sorted columns is a numpy basic slice — the derived
        store reads the parent's memory and copies nothing.
        """
        if count < 0:
            raise ValueError(f"prefix length must be >= 0, got {count}")
        chron = self.chronological()
        count = min(count, chron.num_events)
        return EventStore(
            chron.src[:count], chron.dst[:count], chron.t[:count], self.num_nodes,
            validate=False, chronological=True,
        )

    def with_appended(self, src, dst, t) -> "EventStore":
        """A new store with extra events appended after the existing ones.

        Only the appended columns are validated; the combined store's
        sortedness is recomputed lazily (appends may go back in time).
        """
        tail = EventStore(src, dst, t, self.num_nodes)
        if tail.num_events == 0:
            return self
        return EventStore(
            np.concatenate([self.src, tail.src]),
            np.concatenate([self.dst, tail.dst]),
            np.concatenate([self.t, tail.t]),
            self.num_nodes,
            validate=False,
        )

    # ------------------------------------------------------------------
    # Neighbor indexes and degrees
    # ------------------------------------------------------------------
    def out_csr(self) -> tuple[np.ndarray, np.ndarray]:
        """CSR index over sources: ``(indptr, event_ids)``.

        Events of node ``v`` are ``event_ids[indptr[v]:indptr[v + 1]]``,
        in storage order (stable bucketing).
        """
        if self._out_csr is None:
            self._out_csr = self._csr(self.src)
        return self._out_csr

    def in_csr(self) -> tuple[np.ndarray, np.ndarray]:
        """CSR index over destinations: ``(indptr, event_ids)``."""
        if self._in_csr is None:
            self._in_csr = self._csr(self.dst)
        return self._in_csr

    def _csr(self, endpoints: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        counts = np.bincount(endpoints, minlength=self.num_nodes)
        indptr = np.zeros(self.num_nodes + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        event_ids = np.argsort(endpoints, kind="stable")
        return _readonly(indptr, np.int64), _readonly(event_ids, np.int64)

    def out_degree(self) -> np.ndarray:
        """Out-degree per node, counting multi-edges."""
        return np.bincount(self.src, minlength=self.num_nodes).astype(np.int64)

    def in_degree(self) -> np.ndarray:
        """In-degree per node, counting multi-edges."""
        return np.bincount(self.dst, minlength=self.num_nodes).astype(np.int64)

    # ------------------------------------------------------------------
    # Materialization
    # ------------------------------------------------------------------
    def edge_at(self, index: int) -> TemporalEdge:
        """Materialize one event as a :class:`TemporalEdge`."""
        return TemporalEdge(
            int(self.src[index]), int(self.dst[index]), float(self.t[index])
        )

    def edges(self) -> list[TemporalEdge]:
        """Materialize every event, in storage order."""
        return [
            TemporalEdge(s, d, tm)
            for s, d, tm in zip(self.src.tolist(), self.dst.tolist(), self.t.tolist())
        ]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"EventStore(nodes={self.num_nodes}, events={self.num_events})"

    # ------------------------------------------------------------------
    # Disk bundle
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> Path:
        """Persist the columns as a ``.npy`` bundle under directory ``path``.

        Layout: one ``.npy`` file per column plus a ``manifest.json``
        recording the format version, the node/event counts, and the
        SHA-256 of every column file.  The manifest is written last
        (temp file + atomic rename), so a writer killed mid-save leaves
        a bundle that fails :meth:`load` with a clear
        :class:`IntegrityError` rather than a torn one that parses.
        """
        path = Path(path)
        path.mkdir(parents=True, exist_ok=True)
        manifest: dict = {
            "format": STORE_FORMAT,
            "num_nodes": self.num_nodes,
            "num_events": self.num_events,
            "columns": {},
        }
        for name in COLUMNS:
            array = np.ascontiguousarray(getattr(self, name))
            manifest["columns"][name] = _column_entry(path, name, array)
        _write_json_atomic(path / MANIFEST_NAME, manifest)
        return path

    @classmethod
    def load(
        cls, path: str | Path, *, mmap: bool = False, verify: bool = True
    ) -> "EventStore":
        """Load a bundle written by :meth:`save`.

        ``mmap=True`` maps the column files read-only instead of
        reading them into memory — a 10⁵-graph dataset opens in
        milliseconds and pages in only what is touched.  ``verify``
        re-hashes every column file against the manifest first (one
        sequential read; disable only for trusted scratch data).
        """
        path = Path(path)
        manifest = _read_manifest(path)
        arrays = {}
        for name, dtype in COLUMNS.items():
            entry = manifest["columns"].get(name)
            array = _load_column(path, name, entry, mmap=mmap, verify=verify)
            if array.dtype != dtype:
                raise IntegrityError(
                    f"column {name!r} of store bundle {path} has dtype "
                    f"{array.dtype}, expected {np.dtype(dtype)}"
                )
            arrays[name] = array
        store = cls(
            arrays["src"], arrays["dst"], arrays["t"],
            int(manifest["num_nodes"]), validate=False,
        )
        if store.num_events != int(manifest["num_events"]):
            raise IntegrityError(
                f"store bundle {path} holds {store.num_events} events, "
                f"manifest says {manifest['num_events']}"
            )
        return store


class EdgeView(Sequence):
    """Read-only sequence of :class:`TemporalEdge` over an :class:`EventStore`.

    This is what :attr:`CTDN.edges` returns: it iterates, indexes and
    slices like the list it replaced, but it owns no storage — every
    access materializes edge objects from the columns — and it exposes
    no mutators, so the "immutable after construction" contract is now
    enforced instead of merely documented (``append``/item assignment
    raise instead of silently poisoning the graph's plan caches).
    """

    __slots__ = ("_store",)

    def __init__(self, store: EventStore):
        self._store = store

    @property
    def store(self) -> EventStore:
        """The backing columnar store."""
        return self._store

    def __len__(self) -> int:
        return self._store.num_events

    def __getitem__(self, index):
        if isinstance(index, slice):
            sl_src = self._store.src[index]
            sl_dst = self._store.dst[index]
            sl_t = self._store.t[index]
            return [
                TemporalEdge(s, d, tm)
                for s, d, tm in zip(sl_src.tolist(), sl_dst.tolist(), sl_t.tolist())
            ]
        m = self._store.num_events
        if index < 0:
            index += m
        if not 0 <= index < m:
            raise IndexError(f"edge index {index} out of range for {m} edges")
        return self._store.edge_at(index)

    def __iter__(self) -> Iterator[TemporalEdge]:
        store = self._store
        for s, d, tm in zip(store.src.tolist(), store.dst.tolist(), store.t.tolist()):
            yield TemporalEdge(s, d, tm)

    def __eq__(self, other) -> bool:
        if isinstance(other, EdgeView) and other._store is self._store:
            return True
        try:
            if len(other) != len(self):
                return False
        except TypeError:
            return NotImplemented
        return all(a == b for a, b in zip(self, other))

    def __hash__(self) -> int:
        return hash(tuple(self))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"EdgeView({list(self)!r})"


# ----------------------------------------------------------------------
# Bundle plumbing shared with the dataset loader (repro.graph.io)
# ----------------------------------------------------------------------
def _file_digest(path: Path) -> str:
    """SHA-256 of a file's raw bytes (streamed)."""
    hasher = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            hasher.update(chunk)
    return hasher.hexdigest()


def _write_array(path: Path, array: np.ndarray) -> None:
    """Write one ``.npy`` file durably (temp + fsync + atomic rename)."""
    temporary = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    try:
        with open(temporary, "wb") as handle:
            np.save(handle, array)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temporary, path)
    finally:
        temporary.unlink(missing_ok=True)


def _write_json_atomic(path: Path, payload: dict) -> None:
    """Write the manifest durably; its appearance commits the bundle."""
    temporary = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    try:
        with open(temporary, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temporary, path)
    finally:
        temporary.unlink(missing_ok=True)


def _read_manifest(path: Path, expected_format: str = STORE_FORMAT) -> dict:
    """Parse and sanity-check a bundle manifest."""
    manifest_path = path / MANIFEST_NAME
    if not manifest_path.is_file():
        raise IntegrityError(
            f"{path} is not a store bundle (no {MANIFEST_NAME}; save may have "
            "been interrupted before commit)"
        )
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        raise IntegrityError(f"manifest of store bundle {path} is unreadable: {error}") from error
    if not isinstance(manifest, dict) or "columns" not in manifest:
        raise IntegrityError(f"manifest of store bundle {path} has no column table")
    fmt = manifest.get("format")
    if fmt != expected_format:
        raise IntegrityError(
            f"store bundle {path} has unknown format {fmt!r} (expected {expected_format})"
        )
    return manifest


def _load_column(
    path: Path, name: str, entry: dict, *, mmap: bool, verify: bool
) -> np.ndarray:
    """Load one manifest-described ``.npy`` column with integrity checks."""
    if entry is None:
        raise IntegrityError(f"store bundle {path} is missing column {name!r}")
    file_path = path / entry["file"]
    if not file_path.is_file():
        raise IntegrityError(f"store bundle {path} lost file {entry['file']!r}")
    if verify:
        digest = _file_digest(file_path)
        if digest != entry["sha256"]:
            raise IntegrityError(
                f"column {name!r} of store bundle {path} failed its "
                f"checksum (expected {entry['sha256'][:12]}…, got {digest[:12]}…)"
            )
    try:
        array = np.load(file_path, mmap_mode="r" if mmap else None)
    except Exception as error:
        raise IntegrityError(
            f"column {name!r} of store bundle {path} is unreadable: {error}"
        ) from error
    if str(array.dtype) != entry["dtype"]:
        raise IntegrityError(
            f"column {name!r} of store bundle {path} has dtype "
            f"{array.dtype}, manifest says {entry['dtype']}"
        )
    if list(array.shape) != entry["shape"]:
        raise IntegrityError(
            f"column {name!r} of store bundle {path} has shape "
            f"{list(array.shape)}, manifest says {entry['shape']}"
        )
    return array


def _column_entry(path: Path, name: str, array: np.ndarray) -> dict:
    """Write one column file and return its manifest entry."""
    file_name = f"{name}.npy"
    _write_array(path / file_name, array)
    return {
        "file": file_name,
        "dtype": str(array.dtype),
        "shape": list(array.shape),
        "sha256": _file_digest(path / file_name),
    }
