"""Graph-classification datasets: collections of labelled CTDNs.

Provides the paper's chronological 30/70 train/test split, per-class
statistics for Table I, and deterministic shuffling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.graph.ctdn import CTDN


@dataclass(frozen=True)
class DatasetStatistics:
    """Summary statistics reported in Table I of the paper."""

    name: str
    graph_count: int
    negative_ratio: float
    avg_nodes: float
    avg_edges: float
    feature_dim: int

    def as_row(self) -> dict[str, object]:
        """Row form used by the Table I benchmark printer."""
        return {
            "Datasets": self.name,
            "Graph Number": self.graph_count,
            "Negative ratio": f"~{100.0 * self.negative_ratio:.1f}%",
            "Avg # Node": round(self.avg_nodes, 1),
            "Avg # Edge": round(self.avg_edges, 1),
            "# Node features": self.feature_dim,
        }


class GraphDataset:
    """An ordered collection of labelled dynamic networks.

    Order matters: the paper uses the *first* 30% of graphs for training
    and the remaining 70% for testing, so generators emit graphs in a
    stable order and splits are positional.
    """

    def __init__(self, graphs: Sequence[CTDN], name: str = "dataset"):
        graphs = list(graphs)
        if not graphs:
            raise ValueError("GraphDataset needs at least one graph")
        dim = graphs[0].feature_dim
        for i, graph in enumerate(graphs):
            if graph.label is None:
                raise ValueError(f"graph {i} has no label; classification datasets must be labelled")
            if graph.feature_dim != dim:
                raise ValueError(
                    f"graph {i} has feature_dim {graph.feature_dim}, but graph 0 "
                    f"has {dim}; feature_dim must be uniform across the dataset"
                )
        self.graphs: list[CTDN] = graphs
        self.name = name

    def __len__(self) -> int:
        return len(self.graphs)

    def __getitem__(self, index: int) -> CTDN:
        return self.graphs[index]

    def __iter__(self) -> Iterator[CTDN]:
        return iter(self.graphs)

    @property
    def labels(self) -> np.ndarray:
        """Label vector aligned with graph order."""
        return np.array([g.label for g in self.graphs], dtype=np.int64)

    @property
    def feature_dim(self) -> int:
        """Raw node feature dimensionality (uniform across graphs)."""
        return self.graphs[0].feature_dim

    def split(self, train_fraction: float = 0.3) -> tuple["GraphDataset", "GraphDataset"]:
        """Chronological split: first ``train_fraction`` train, rest test.

        Matches the paper's "first 30% of each dataset for training and
        the last 70% for testing".
        """
        if not 0.0 < train_fraction < 1.0:
            raise ValueError(f"train_fraction must be in (0, 1), got {train_fraction}")
        if len(self.graphs) < 2:
            raise ValueError(
                "cannot split a dataset with fewer than 2 graphs "
                "(both sides of the split need at least one graph)"
            )
        cut = max(1, min(len(self.graphs) - 1, int(round(train_fraction * len(self.graphs)))))
        return (
            GraphDataset(self.graphs[:cut], name=f"{self.name}/train"),
            GraphDataset(self.graphs[cut:], name=f"{self.name}/test"),
        )

    def shuffled(self, rng: np.random.Generator) -> "GraphDataset":
        """Return a deterministically shuffled copy (name tagged
        ``<name>/shuffled`` so derived Table-I rows stay traceable)."""
        order = rng.permutation(len(self.graphs))
        return GraphDataset([self.graphs[i] for i in order], name=f"{self.name}/shuffled")

    def subset(self, indices: Sequence[int]) -> "GraphDataset":
        """Select graphs by index (name tagged ``<name>/subset``)."""
        return GraphDataset([self.graphs[i] for i in indices], name=f"{self.name}/subset")

    # ------------------------------------------------------------------
    # Disk bundles
    # ------------------------------------------------------------------
    def save(self, path) -> "GraphDataset":
        """Persist as a columnar on-disk bundle (see :mod:`repro.graph.io`)."""
        from repro.graph.io import save_dataset

        save_dataset(self, path)
        return self

    @classmethod
    def load(cls, path, *, mmap: bool = True, verify: bool = True) -> "GraphDataset":
        """Load a bundle written by :meth:`save`, memory-mapped by default."""
        from repro.graph.io import load_dataset

        return load_dataset(path, mmap=mmap, verify=verify)

    @classmethod
    def stream(cls, path, chunk_size: int = 1024, *, mmap: bool = True, verify: bool = True):
        """Yield a bundle back as :class:`GraphDataset` chunks (streaming)."""
        from repro.graph.io import iter_dataset_chunks

        return iter_dataset_chunks(path, chunk_size, mmap=mmap, verify=verify)

    def statistics(self) -> DatasetStatistics:
        """Compute the Table I row for this dataset."""
        labels = self.labels
        return DatasetStatistics(
            name=self.name,
            graph_count=len(self.graphs),
            negative_ratio=float((labels == 0).mean()),
            avg_nodes=float(np.mean([g.num_nodes for g in self.graphs])),
            avg_edges=float(np.mean([g.num_edges for g in self.graphs])),
            feature_dim=self.feature_dim,
        )
