"""Temporal edges: the atomic events of a continuous-time dynamic network."""

from __future__ import annotations

from typing import NamedTuple


class TemporalEdge(NamedTuple):
    """A T-labelled directed edge ``(u, v, t)`` (paper Definition 1).

    ``src -> dst`` denotes the direction of information flow: in a log
    session network, event ``dst`` occurs after event ``src``; in a
    user-trajectory network, the user moves from POI ``src`` to ``dst``.
    """

    src: int
    dst: int
    time: float

    def reversed(self) -> "TemporalEdge":
        """Return the edge with its direction flipped (case study, Fig. 7)."""
        return TemporalEdge(self.dst, self.src, self.time)

    def at(self, time: float) -> "TemporalEdge":
        """Return a copy of this edge with a different timestamp."""
        return TemporalEdge(self.src, self.dst, time)
