"""Dynamic-graph substrate: CTDNs, static views, snapshots, reachability."""

from repro.graph.edge import TemporalEdge
from repro.graph.store import EdgeView, EventStore
from repro.graph.ctdn import CTDN
from repro.graph.plan import PropagationPlan
from repro.graph.megaplan import BatchLayout, MegaPlan, MegaPlanCache, mega_plan
from repro.graph.dataset import DatasetStatistics, GraphDataset
from repro.graph.io import iter_dataset_chunks, load_dataset, save_dataset
from repro.graph.static import (
    adjacency_matrix,
    gcn_normalized_adjacency,
    laplacian,
    mean_aggregation_matrix,
)
from repro.graph.snapshots import (
    cumulative_snapshots,
    snapshots_by_count,
    snapshots_by_edge_count,
    snapshots_by_time_window,
)
from repro.graph.reachability import (
    influence_sets,
    is_influential,
    temporal_neighbors,
    valid_path,
)

__all__ = [
    "TemporalEdge",
    "EventStore",
    "EdgeView",
    "CTDN",
    "PropagationPlan",
    "BatchLayout",
    "MegaPlan",
    "MegaPlanCache",
    "mega_plan",
    "GraphDataset",
    "DatasetStatistics",
    "save_dataset",
    "load_dataset",
    "iter_dataset_chunks",
    "adjacency_matrix",
    "gcn_normalized_adjacency",
    "laplacian",
    "mean_aggregation_matrix",
    "snapshots_by_count",
    "snapshots_by_edge_count",
    "snapshots_by_time_window",
    "cumulative_snapshots",
    "influence_sets",
    "is_influential",
    "valid_path",
    "temporal_neighbors",
]
