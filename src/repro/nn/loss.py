"""Loss functions.

The paper trains the graph classifier with binary cross-entropy over a
sigmoid output (Eqs. 11-12).  :func:`bce_with_logits` is the numerically
stable fused form used by every model in the reproduction; the separate
sigmoid + BCE path and a multi-class cross-entropy are provided for
completeness and testing.
"""

from __future__ import annotations

import numpy as np

from repro.tensor import Tensor, ops


def bce_with_logits(logits: Tensor, targets) -> Tensor:
    """Stable binary cross-entropy on raw logits.

    Uses ``max(x, 0) - x*y + log(1 + exp(-|x|))``, avoiding the overflow
    of ``log(sigmoid(x))`` for large ``|x|``.

    Parameters
    ----------
    logits:
        Raw scores of any shape.
    targets:
        Array/Tensor of the same shape with values in ``{0, 1}`` (soft
        labels in ``[0, 1]`` also work).

    Returns
    -------
    Scalar mean loss.
    """
    if not isinstance(targets, Tensor):
        targets = Tensor(np.asarray(targets, dtype=np.float64))
    relu_x = ops.relu(logits)
    abs_x = ops.absolute(logits)
    per_element = relu_x - logits * targets + ops.log(1.0 + ops.exp(-abs_x))
    return per_element.mean()


def binary_cross_entropy(probabilities: Tensor, targets, eps: float = 1e-12) -> Tensor:
    """BCE on probabilities (paper Eq. 12 verbatim).

    Prefer :func:`bce_with_logits` in training loops; this form matches
    the paper's notation and is used in tests comparing the two.
    """
    if not isinstance(targets, Tensor):
        targets = Tensor(np.asarray(targets, dtype=np.float64))
    p = probabilities.clip(eps, 1.0 - eps)
    per_element = -(targets * p.log() + (1.0 - targets) * (1.0 - p).log())
    return per_element.mean()


def cross_entropy(logits: Tensor, class_indices: np.ndarray) -> Tensor:
    """Multi-class cross entropy on ``(n, classes)`` logits."""
    labels = np.asarray(class_indices, dtype=np.int64)
    log_probs = ops.log_softmax(logits, axis=-1)
    picked = log_probs[np.arange(len(labels)), labels]
    return -picked.mean()
