"""Normalisation and regularisation layers."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module, Parameter
from repro.tensor import Tensor, ops


class LayerNorm(Module):
    """Layer normalisation over the last axis (TADDY / GraphMixer blocks)."""

    def __init__(self, dim: int, eps: float = 1e-5):
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.gamma = Parameter(np.ones(dim), name="gamma")
        self.beta = Parameter(np.zeros(dim), name="beta")

    def forward(self, x: Tensor) -> Tensor:
        """Normalise the last axis to zero mean / unit variance."""
        mean = x.mean(axis=-1, keepdims=True)
        centred = x - mean
        variance = (centred * centred).mean(axis=-1, keepdims=True)
        normalised = centred / ops.power(variance + self.eps, 0.5)
        return normalised * self.gamma + self.beta


class Dropout(Module):
    """Inverted dropout; identity in eval mode."""

    def __init__(self, rate: float, rng: np.random.Generator | None = None):
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self.rng = rng if rng is not None else np.random.default_rng(0)

    def forward(self, x: Tensor) -> Tensor:
        """Apply dropout when training; pass through when evaluating."""
        if not self.training or self.rate == 0.0:
            return x
        return ops.dropout(x, self.rate, self.rng)
