"""Neural-network layers built on :mod:`repro.tensor`.

Public surface mirrors the subset of ``torch.nn`` the TP-GNN paper uses:
modules/parameters, dense and embedding layers, GRU/LSTM cells and
sequence wrappers, multi-head attention, Time2Vec time encoding,
normalisation and losses.
"""

from repro.nn.module import Module, ModuleList, Parameter
from repro.nn.linear import Linear
from repro.nn.embedding import Embedding, FeatureEncoder
from repro.nn.mlp import MLP
from repro.nn.rnn import GRU, GRUCell, LSTM, LSTMCell
from repro.nn.attention import MultiHeadAttention, scaled_dot_product_attention
from repro.nn.time2vec import Time2Vec
from repro.nn.norm import Dropout, LayerNorm
from repro.nn.loss import bce_with_logits, binary_cross_entropy, cross_entropy
from repro.nn.serialization import (
    load_checkpoint,
    pack_namespaced,
    read_archive,
    save_checkpoint,
    unpack_namespaced,
    write_archive,
)
from repro.nn import init

__all__ = [
    "Module",
    "ModuleList",
    "Parameter",
    "Linear",
    "Embedding",
    "FeatureEncoder",
    "MLP",
    "GRU",
    "GRUCell",
    "LSTM",
    "LSTMCell",
    "MultiHeadAttention",
    "scaled_dot_product_attention",
    "Time2Vec",
    "Dropout",
    "LayerNorm",
    "bce_with_logits",
    "binary_cross_entropy",
    "cross_entropy",
    "save_checkpoint",
    "load_checkpoint",
    "write_archive",
    "read_archive",
    "pack_namespaced",
    "unpack_namespaced",
    "init",
]
