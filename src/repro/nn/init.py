"""Weight initialisation schemes.

All initialisers take an explicit :class:`numpy.random.Generator` so
every model in the reproduction is seedable end to end.
"""

from __future__ import annotations

import numpy as np


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier uniform initialisation.

    Keeps activation variance stable through tanh/sigmoid layers — the
    default for the gated recurrent units in TP-GNN.
    """
    fan_in, fan_out = _fans(shape)
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def xavier_normal(shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier normal initialisation."""
    fan_in, fan_out = _fans(shape)
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def kaiming_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He uniform initialisation for ReLU layers."""
    fan_in, _ = _fans(shape)
    bound = np.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def uniform(shape: tuple[int, ...], rng: np.random.Generator, low: float = -0.1, high: float = 0.1) -> np.ndarray:
    """Plain uniform initialisation in ``[low, high]``."""
    return rng.uniform(low, high, size=shape)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    """All-zero initialisation (biases)."""
    return np.zeros(shape)


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    """Return (fan_in, fan_out) for a weight shape."""
    if len(shape) == 1:
        return shape[0], shape[0]
    fan_in = int(np.prod(shape[1:]))
    fan_out = shape[0]
    return fan_in, fan_out
