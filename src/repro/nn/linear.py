"""Dense (fully connected) layers."""

from __future__ import annotations

import numpy as np

from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.tensor import Tensor


class Linear(Module):
    """Affine map ``y = x @ W + b``.

    Parameters
    ----------
    in_features:
        Size of the last axis of the input.
    out_features:
        Size of the last axis of the output.
    bias:
        Whether to add a learnable bias (default True).
    rng:
        Generator used for Xavier-uniform weight initialisation.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform((in_features, out_features), rng), name="weight")
        self.bias = Parameter(init.zeros((out_features,)), name="bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        """Apply the affine map to the last axis of ``x``."""
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out
