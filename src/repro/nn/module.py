"""Base classes for neural-network modules.

Mirrors the familiar ``torch.nn.Module`` contract at the scale this
reproduction needs: parameter registration via attribute assignment,
recursive ``parameters()`` traversal, train/eval mode, and state-dict
save/load for checkpointing experiments.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.tensor import Tensor


class Parameter(Tensor):
    """A trainable tensor; always requires gradients."""

    def __init__(self, data, name: str | None = None):
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all layers and models.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; these are discovered automatically for optimisation,
    gradient zeroing, and checkpointing.
    """

    def __init__(self):
        self._parameters: dict[str, Parameter] = {}
        self._modules: dict[str, Module] = {}
        self.training: bool = True

    def __setattr__(self, key: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", {})[key] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[key] = value
        object.__setattr__(self, key, value)

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def parameters(self) -> Iterator[Parameter]:
        """Yield every trainable parameter in this module tree."""
        yield from self._parameters.values()
        for module in self._modules.values():
            yield from module.parameters()

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs."""
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def modules(self) -> Iterator["Module"]:
        """Yield this module and every descendant."""
        yield self
        for module in self._modules.values():
            yield from module.modules()

    def num_parameters(self) -> int:
        """Total number of scalar trainable parameters."""
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------
    # Training state
    # ------------------------------------------------------------------
    def zero_grad(self) -> None:
        """Reset gradients of all parameters."""
        for param in self.parameters():
            param.zero_grad()

    def train(self) -> "Module":
        """Switch the module tree to training mode."""
        for module in self.modules():
            module.training = True
        return self

    def eval(self) -> "Module":
        """Switch the module tree to evaluation mode."""
        for module in self.modules():
            module.training = False
        return self

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Return a copy of every parameter keyed by dotted name.

        Dotted names must be unique: an attribute assigned via
        ``setattr(m, "child.weight", p)`` would collide with a child
        module ``child`` owning a parameter ``weight`` and silently
        shadow it in the dict, corrupting checkpoints — so collisions
        raise instead.
        """
        state: dict[str, np.ndarray] = {}
        for name, param in self.named_parameters():
            if name in state:
                raise KeyError(
                    f"duplicate parameter name {name!r} in state dict; "
                    "a parameter attribute containing '.' collides with a "
                    "nested module's parameter"
                )
            state[name] = param.data.copy()
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameters from :meth:`state_dict` output.

        Values are cast to each parameter's existing dtype, so loading
        a checkpoint that was stored at a different precision cannot
        silently change the model's compute dtype.
        """
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(f"state dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}")
        for name, values in state.items():
            param = own[name]
            if param.data.shape != values.shape:
                raise ValueError(f"shape mismatch for {name}: {param.data.shape} vs {values.shape}")
            param.data = np.asarray(values, dtype=param.data.dtype).copy()

    # ------------------------------------------------------------------
    # Call protocol
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        """Compute the module's output; must be overridden."""
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class ModuleList(Module):
    """An indexable container whose children are registered modules."""

    def __init__(self, modules=()):
        super().__init__()
        self._items: list[Module] = []
        for module in modules:
            self.append(module)

    def append(self, module: Module) -> None:
        """Register and store a child module."""
        index = len(self._items)
        self._items.append(module)
        self._modules[str(index)] = module

    def __getitem__(self, index: int) -> Module:
        return self._items[index]

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self):
        return iter(self._items)
