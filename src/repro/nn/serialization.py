"""Checkpointing: save/load module parameters as ``.npz`` archives.

The experiment harness trains many models; these helpers persist any
:class:`~repro.nn.module.Module` (TP-GNN or baseline) so long runs can
be resumed and trained models shipped with results.

Two layers are exposed:

* :func:`write_archive` / :func:`read_archive` — the raw format: named
  float arrays plus a JSON metadata blob in one compressed ``.npz``.
  The serving engine reuses this layer to checkpoint live session
  state next to the model weights.
* :func:`save_checkpoint` / :func:`load_checkpoint` — the module-level
  convenience API built on top.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

import numpy as np

from repro.nn.module import Module
from repro.resilience.errors import IntegrityError

_META_KEY = "__repro_meta__"
_FORMAT_VERSION = 1
_ENVELOPE_KEY = "__archive__"
_CHECKSUM_ALGORITHM = "sha256"


def _digest(array: np.ndarray) -> str:
    """Content hash of one entry: dtype + shape + raw bytes."""
    hasher = hashlib.sha256()
    hasher.update(str(array.dtype).encode("utf-8"))
    hasher.update(repr(tuple(array.shape)).encode("utf-8"))
    hasher.update(np.ascontiguousarray(array).tobytes())
    return hasher.hexdigest()


def _normalize(path: str | Path) -> Path:
    path = Path(path)
    return path if path.suffix == ".npz" else path.with_suffix(".npz")


def write_archive(
    path: str | Path, arrays: dict[str, np.ndarray], meta: dict
) -> Path:
    """Write named arrays plus JSON-serialisable ``meta`` to ``path``.

    Returns the resolved path (``.npz`` suffix enforced).  Array names
    must not collide with the reserved metadata key.  The archive is
    self-verifying: every entry's SHA-256 is recorded in the metadata
    envelope and re-checked by :func:`read_archive`.  The archive is
    written to a temp file, fsynced, and atomically renamed into place
    (then the directory is fsynced), so a writer killed mid-checkpoint
    (e.g. a timed-out trial worker) can never publish a torn or
    half-visible file.
    """
    path = _normalize(path)
    if _META_KEY in arrays:
        raise ValueError(
            f"array name {_META_KEY!r} is reserved for checkpoint metadata"
        )
    envelope = {
        _ENVELOPE_KEY: {
            "checksum_algorithm": _CHECKSUM_ALGORITHM,
            "checksums": {name: _digest(np.asarray(value)) for name, value in arrays.items()},
        },
        "meta": meta,
    }
    payload = dict(arrays)
    payload[_META_KEY] = np.frombuffer(
        json.dumps(envelope).encode("utf-8"), dtype=np.uint8
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    # savez appends ".npz" unless the name already ends with it.
    temporary = path.with_name(f".{path.stem}.{os.getpid()}.tmp.npz")
    try:
        with open(temporary, "wb") as handle:
            np.savez_compressed(handle, **payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temporary, path)
        _fsync_directory(path.parent)
    finally:
        temporary.unlink(missing_ok=True)
    return path


def _fsync_directory(directory: Path) -> None:
    """Flush a directory entry so a rename survives power loss.

    Best-effort: some filesystems (and all of Windows) refuse to open
    directories, which only loses the durability of the *rename*, not
    the atomicity.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


def read_archive(path: str | Path, verify: bool = True) -> tuple[dict[str, np.ndarray], dict]:
    """Read back ``(arrays, meta)`` written by :func:`write_archive`.

    Every failure mode of a damaged file — truncation, a corrupt zip
    member, unparseable metadata, a checksum mismatch — raises
    :class:`~repro.resilience.errors.IntegrityError` (a ``ValueError``
    subclass) instead of leaking numpy/zipfile internals or, worse,
    silently returning garbage.  ``verify=False`` skips only the
    per-entry SHA-256 re-hash (zip CRCs are still enforced).  Archives
    written before checksums existed load without verification.
    """
    path = _normalize(path)
    try:
        with np.load(path) as archive:
            if _META_KEY not in archive:
                raise IntegrityError(
                    f"{path} is not a repro checkpoint (missing metadata)"
                )
            blob = json.loads(bytes(archive[_META_KEY].tobytes()).decode("utf-8"))
            arrays = {key: archive[key] for key in archive.files if key != _META_KEY}
    except (FileNotFoundError, IntegrityError):
        raise
    except Exception as error:
        raise IntegrityError(f"{path} is corrupt or truncated: {error}") from error
    if not isinstance(blob, dict):
        raise IntegrityError(f"{path} carries malformed metadata: {type(blob).__name__}")
    if _ENVELOPE_KEY not in blob:
        return arrays, blob  # pre-checksum archive: accepted, unverified
    envelope = blob[_ENVELOPE_KEY]
    meta = blob.get("meta", {})
    if verify:
        _verify_checksums(path, arrays, envelope)
    return arrays, meta


def _verify_checksums(path: Path, arrays: dict[str, np.ndarray], envelope) -> None:
    if not isinstance(envelope, dict) or not isinstance(envelope.get("checksums"), dict):
        raise IntegrityError(f"{path} carries a malformed checksum envelope")
    checksums = envelope["checksums"]
    if set(checksums) != set(arrays):
        missing = sorted(set(checksums) - set(arrays))
        extra = sorted(set(arrays) - set(checksums))
        raise IntegrityError(
            f"{path} entry manifest mismatch "
            f"(missing entries: {missing}, unchecksummed entries: {extra})"
        )
    for name, expected in checksums.items():
        actual = _digest(np.asarray(arrays[name]))
        if actual != expected:
            raise IntegrityError(
                f"{path} entry {name!r} failed {_CHECKSUM_ALGORITHM} verification "
                f"(expected {expected[:12]}…, got {actual[:12]}…)"
            )


_NAMESPACE_SEP = "/"


def pack_namespaced(
    groups: dict[str, dict[str, np.ndarray]]
) -> dict[str, np.ndarray]:
    """Flatten named array groups into one archive-ready dict.

    ``{"model": {...}, "optim": {...}}`` becomes ``{"model/w": ...,
    "optim/m.0": ...}`` so several state dicts (model weights, optimiser
    moments, serving state) can share one :func:`write_archive` file
    without key collisions.  Group names must not contain the
    separator; inner keys may (only the first separator splits).
    """
    packed: dict[str, np.ndarray] = {}
    for group, arrays in groups.items():
        if _NAMESPACE_SEP in group:
            raise ValueError(
                f"group name {group!r} must not contain {_NAMESPACE_SEP!r}"
            )
        for key, value in arrays.items():
            packed[f"{group}{_NAMESPACE_SEP}{key}"] = value
    return packed


def unpack_namespaced(
    arrays: dict[str, np.ndarray]
) -> dict[str, dict[str, np.ndarray]]:
    """Invert :func:`pack_namespaced` back into per-group dicts."""
    groups: dict[str, dict[str, np.ndarray]] = {}
    for key, value in arrays.items():
        group, _, inner = key.partition(_NAMESPACE_SEP)
        if not inner:
            raise ValueError(f"array key {key!r} carries no namespace")
        groups.setdefault(group, {})[inner] = value
    return groups


def save_checkpoint(model: Module, path: str | Path, metadata: dict | None = None) -> Path:
    """Write the model's parameters (and optional metadata) to ``path``.

    Parameters are stored by dotted name in a compressed ``.npz``;
    ``metadata`` must be JSON-serialisable (experiment config, metrics).
    Returns the resolved path (``.npz`` suffix enforced).
    """
    meta = {
        "format_version": _FORMAT_VERSION,
        "model_class": type(model).__name__,
        "num_parameters": model.num_parameters(),
        "user": metadata or {},
    }
    return write_archive(path, model.state_dict(), meta)


def load_checkpoint(model: Module, path: str | Path, strict_class: bool = True) -> dict:
    """Load parameters saved by :func:`save_checkpoint` into ``model``.

    Parameters
    ----------
    model:
        A freshly constructed module with the same architecture.
    path:
        Checkpoint file.
    strict_class:
        When True (default), refuse to load a checkpoint written by a
        different model class.

    Returns
    -------
    The checkpoint's metadata dict.
    """
    state, meta = read_archive(path)
    if meta.get("format_version") != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported checkpoint format {meta.get('format_version')!r}"
        )
    if strict_class and meta.get("model_class") != type(model).__name__:
        raise TypeError(
            f"checkpoint was written by {meta.get('model_class')}, "
            f"refusing to load into {type(model).__name__} "
            "(pass strict_class=False to override)"
        )
    model.load_state_dict(state)
    return meta
