"""Checkpointing: save/load module parameters as ``.npz`` archives.

The experiment harness trains many models; these helpers persist any
:class:`~repro.nn.module.Module` (TP-GNN or baseline) so long runs can
be resumed and trained models shipped with results.

Two layers are exposed:

* :func:`write_archive` / :func:`read_archive` — the raw format: named
  float arrays plus a JSON metadata blob in one compressed ``.npz``.
  The serving engine reuses this layer to checkpoint live session
  state next to the model weights.
* :func:`save_checkpoint` / :func:`load_checkpoint` — the module-level
  convenience API built on top.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from repro.nn.module import Module

_META_KEY = "__repro_meta__"
_FORMAT_VERSION = 1


def _normalize(path: str | Path) -> Path:
    path = Path(path)
    return path if path.suffix == ".npz" else path.with_suffix(".npz")


def write_archive(
    path: str | Path, arrays: dict[str, np.ndarray], meta: dict
) -> Path:
    """Write named arrays plus JSON-serialisable ``meta`` to ``path``.

    Returns the resolved path (``.npz`` suffix enforced).  Array names
    must not collide with the reserved metadata key.  The archive is
    written to a temp file and atomically renamed into place, so a
    writer killed mid-checkpoint (e.g. a timed-out trial worker) can
    never publish a torn file.
    """
    path = _normalize(path)
    if _META_KEY in arrays:
        raise ValueError(
            f"array name {_META_KEY!r} is reserved for checkpoint metadata"
        )
    payload = dict(arrays)
    payload[_META_KEY] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    # savez appends ".npz" unless the name already ends with it.
    temporary = path.with_name(f".{path.stem}.{os.getpid()}.tmp.npz")
    try:
        np.savez_compressed(temporary, **payload)
        os.replace(temporary, path)
    finally:
        temporary.unlink(missing_ok=True)
    return path


def read_archive(path: str | Path) -> tuple[dict[str, np.ndarray], dict]:
    """Read back ``(arrays, meta)`` written by :func:`write_archive`."""
    path = _normalize(path)
    with np.load(path) as archive:
        if _META_KEY not in archive:
            raise ValueError(f"{path} is not a repro checkpoint (missing metadata)")
        meta = json.loads(bytes(archive[_META_KEY].tobytes()).decode("utf-8"))
        arrays = {key: archive[key] for key in archive.files if key != _META_KEY}
    return arrays, meta


_NAMESPACE_SEP = "/"


def pack_namespaced(
    groups: dict[str, dict[str, np.ndarray]]
) -> dict[str, np.ndarray]:
    """Flatten named array groups into one archive-ready dict.

    ``{"model": {...}, "optim": {...}}`` becomes ``{"model/w": ...,
    "optim/m.0": ...}`` so several state dicts (model weights, optimiser
    moments, serving state) can share one :func:`write_archive` file
    without key collisions.  Group names must not contain the
    separator; inner keys may (only the first separator splits).
    """
    packed: dict[str, np.ndarray] = {}
    for group, arrays in groups.items():
        if _NAMESPACE_SEP in group:
            raise ValueError(
                f"group name {group!r} must not contain {_NAMESPACE_SEP!r}"
            )
        for key, value in arrays.items():
            packed[f"{group}{_NAMESPACE_SEP}{key}"] = value
    return packed


def unpack_namespaced(
    arrays: dict[str, np.ndarray]
) -> dict[str, dict[str, np.ndarray]]:
    """Invert :func:`pack_namespaced` back into per-group dicts."""
    groups: dict[str, dict[str, np.ndarray]] = {}
    for key, value in arrays.items():
        group, _, inner = key.partition(_NAMESPACE_SEP)
        if not inner:
            raise ValueError(f"array key {key!r} carries no namespace")
        groups.setdefault(group, {})[inner] = value
    return groups


def save_checkpoint(model: Module, path: str | Path, metadata: dict | None = None) -> Path:
    """Write the model's parameters (and optional metadata) to ``path``.

    Parameters are stored by dotted name in a compressed ``.npz``;
    ``metadata`` must be JSON-serialisable (experiment config, metrics).
    Returns the resolved path (``.npz`` suffix enforced).
    """
    meta = {
        "format_version": _FORMAT_VERSION,
        "model_class": type(model).__name__,
        "num_parameters": model.num_parameters(),
        "user": metadata or {},
    }
    return write_archive(path, model.state_dict(), meta)


def load_checkpoint(model: Module, path: str | Path, strict_class: bool = True) -> dict:
    """Load parameters saved by :func:`save_checkpoint` into ``model``.

    Parameters
    ----------
    model:
        A freshly constructed module with the same architecture.
    path:
        Checkpoint file.
    strict_class:
        When True (default), refuse to load a checkpoint written by a
        different model class.

    Returns
    -------
    The checkpoint's metadata dict.
    """
    state, meta = read_archive(path)
    if meta.get("format_version") != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported checkpoint format {meta.get('format_version')!r}"
        )
    if strict_class and meta.get("model_class") != type(model).__name__:
        raise TypeError(
            f"checkpoint was written by {meta.get('model_class')}, "
            f"refusing to load into {type(model).__name__} "
            "(pass strict_class=False to override)"
        )
    model.load_state_dict(state)
    return meta
