"""Recurrent cells and sequence wrappers (GRU, LSTM).

The GRU is central to TP-GNN: the GRU-updater of temporal propagation
(paper Eq. 6) and the global temporal embedding extractor (Eqs. 7-10)
both step a GRU cell along the chronological edge sequence.  The LSTM is
needed by the DyGNN and GC-LSTM baselines.
"""

from __future__ import annotations

import numpy as np

from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.tensor import Tensor, ops


class GRUCell(Module):
    """A single gated recurrent unit step.

    Implements the standard formulation used by the paper (Eqs. 7-10):

        z = sigmoid(x W_z + h U_z + b_z)
        r = sigmoid(x W_r + h U_r + b_r)
        n = tanh(x W_n + (r * h) U_n + b_n)
        h' = z * h + (1 - z) * n

    Gate weights are fused into single matrices for speed; the cell
    operates on 2-d ``(batch, dim)`` tensors.
    """

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.weight_ih = Parameter(init.xavier_uniform((input_size, 3 * hidden_size), rng), name="W")
        self.weight_hh = Parameter(init.xavier_uniform((hidden_size, 3 * hidden_size), rng), name="U")
        self.bias = Parameter(init.zeros((3 * hidden_size,)), name="b")

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        """Advance the hidden state one step.

        Parameters
        ----------
        x:
            Input of shape ``(batch, input_size)``.
        h:
            Previous hidden state of shape ``(batch, hidden_size)``.
        """
        H = self.hidden_size
        gates_x = x @ self.weight_ih + self.bias
        gates_h = h @ self.weight_hh
        z = ops.sigmoid(gates_x[:, 0:H] + gates_h[:, 0:H])
        r = ops.sigmoid(gates_x[:, H : 2 * H] + gates_h[:, H : 2 * H])
        n = ops.tanh(gates_x[:, 2 * H : 3 * H] + r * gates_h[:, 2 * H : 3 * H])
        return z * h + (1.0 - z) * n


class LSTMCell(Module):
    """A single long short-term memory step (for DyGNN / GC-LSTM)."""

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.weight_ih = Parameter(init.xavier_uniform((input_size, 4 * hidden_size), rng), name="W")
        self.weight_hh = Parameter(init.xavier_uniform((hidden_size, 4 * hidden_size), rng), name="U")
        self.bias = Parameter(init.zeros((4 * hidden_size,)), name="b")

    def forward(self, x: Tensor, state: tuple[Tensor, Tensor]) -> tuple[Tensor, Tensor]:
        """Advance ``(h, c)`` one step; returns the new ``(h, c)``."""
        h, c = state
        H = self.hidden_size
        gates = x @ self.weight_ih + h @ self.weight_hh + self.bias
        i = ops.sigmoid(gates[:, 0:H])
        f = ops.sigmoid(gates[:, H : 2 * H])
        g = ops.tanh(gates[:, 2 * H : 3 * H])
        o = ops.sigmoid(gates[:, 3 * H : 4 * H])
        c_new = f * c + i * g
        h_new = o * ops.tanh(c_new)
        return h_new, c_new


class GRU(Module):
    """Run a :class:`GRUCell` over a sequence.

    The global temporal embedding extractor feeds the chronological edge
    embedding sequence through this wrapper and keeps the final hidden
    state as the graph embedding.

    The scan runs through the fused :func:`repro.tensor.ops.gru_sequence`
    kernel — one autograd node for the whole sequence instead of ~20 per
    step — with the input projection batched over all steps.  The
    numerics match folding :attr:`cell` step by step (the streaming
    engine's path) to machine precision.
    """

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator | None = None):
        super().__init__()
        self.cell = GRUCell(input_size, hidden_size, rng=rng)
        self.hidden_size = hidden_size

    def forward(self, sequence: Tensor, h0: Tensor | None = None) -> tuple[Tensor, Tensor]:
        """Process a sequence.

        Parameters
        ----------
        sequence:
            Tensor of shape ``(steps, batch, input_size)`` or
            ``(steps, input_size)`` (treated as batch 1).
        h0:
            Optional initial hidden state ``(batch, hidden_size)``.

        Returns
        -------
        (outputs, final_hidden):
            ``outputs`` stacks the per-step hidden states along axis 0;
            ``final_hidden`` is the last hidden state.
        """
        squeeze = sequence.ndim == 2
        if squeeze:
            sequence = sequence.reshape(sequence.shape[0], 1, sequence.shape[1])
        steps, batch, _ = sequence.shape
        h = h0 if h0 is not None else Tensor(np.zeros((batch, self.hidden_size)))
        outputs = ops.gru_sequence(
            sequence, h, self.cell.weight_ih, self.cell.weight_hh, self.cell.bias
        )
        final = outputs[steps - 1] if steps else h
        if squeeze:
            outputs = outputs.reshape(steps, self.hidden_size)
        return outputs, final


class LSTM(Module):
    """Run an :class:`LSTMCell` over a sequence (GC-LSTM baseline)."""

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator | None = None):
        super().__init__()
        self.cell = LSTMCell(input_size, hidden_size, rng=rng)
        self.hidden_size = hidden_size

    def forward(
        self, sequence: Tensor, state: tuple[Tensor, Tensor] | None = None
    ) -> tuple[Tensor, tuple[Tensor, Tensor]]:
        """Process a sequence; see :meth:`GRU.forward` for shapes."""
        squeeze = sequence.ndim == 2
        if squeeze:
            sequence = sequence.reshape(sequence.shape[0], 1, sequence.shape[1])
        steps, batch, _ = sequence.shape
        if state is None:
            h = Tensor(np.zeros((batch, self.hidden_size)))
            c = Tensor(np.zeros((batch, self.hidden_size)))
        else:
            h, c = state
        outputs = []
        for step in range(steps):
            h, c = self.cell(sequence[step], (h, c))
            outputs.append(h)
        stacked = ops.stack(outputs, axis=0)
        if squeeze:
            stacked = stacked.reshape(steps, self.hidden_size)
        return stacked, (h, c)
