"""Attention building blocks.

Needed by the TGAT and TGN baselines (temporal multi-head attention over
sampled neighbours), the TADDY baseline (transformer encoder over
snapshot codings), and the GAT baseline (additive attention scores).
"""

from __future__ import annotations

import numpy as np

from repro.nn.linear import Linear
from repro.nn.module import Module
from repro.tensor import Tensor, ops


def scaled_dot_product_attention(
    query: Tensor, key: Tensor, value: Tensor, mask: np.ndarray | None = None
) -> Tensor:
    """Classic attention: ``softmax(Q K^T / sqrt(d)) V``.

    Parameters
    ----------
    query, key, value:
        Tensors of shape ``(n_q, d)``, ``(n_k, d)``, ``(n_k, d_v)``.
    mask:
        Optional boolean array of shape ``(n_q, n_k)``; False entries are
        excluded from attention.
    """
    d = query.shape[-1]
    scores = (query @ key.T) * (1.0 / np.sqrt(d))
    if mask is not None:
        penalty = np.where(mask, 0.0, -1e9)
        scores = scores + Tensor(penalty)
    weights = ops.softmax(scores, axis=-1)
    return weights @ value


class MultiHeadAttention(Module):
    """Multi-head attention over flat ``(sequence, dim)`` tensors.

    A per-head projection + scaled dot-product attention + output
    projection.  Works on single sequences (no batch axis), which is all
    the per-graph baselines require.
    """

    def __init__(
        self,
        embed_dim: int,
        num_heads: int,
        kdim: int | None = None,
        vdim: int | None = None,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if embed_dim % num_heads != 0:
            raise ValueError(f"embed_dim {embed_dim} not divisible by num_heads {num_heads}")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.embed_dim = embed_dim
        self.num_heads = num_heads
        self.head_dim = embed_dim // num_heads
        kdim = kdim if kdim is not None else embed_dim
        vdim = vdim if vdim is not None else embed_dim
        self.q_proj = Linear(embed_dim, embed_dim, rng=rng)
        self.k_proj = Linear(kdim, embed_dim, rng=rng)
        self.v_proj = Linear(vdim, embed_dim, rng=rng)
        self.out_proj = Linear(embed_dim, embed_dim, rng=rng)

    def forward(
        self, query: Tensor, key: Tensor, value: Tensor, mask: np.ndarray | None = None
    ) -> Tensor:
        """Attend ``query`` (n_q, embed_dim) over ``key``/``value`` (n_k, *)."""
        q = self.q_proj(query)
        k = self.k_proj(key)
        v = self.v_proj(value)
        heads = []
        for head in range(self.num_heads):
            lo, hi = head * self.head_dim, (head + 1) * self.head_dim
            heads.append(
                scaled_dot_product_attention(q[:, lo:hi], k[:, lo:hi], v[:, lo:hi], mask=mask)
            )
        return self.out_proj(ops.concat(heads, axis=1))
