"""Embedding layers.

TP-GNN's node feature encoding layer (Eq. 1 of the paper) is an affine
transform of the raw feature matrix; :class:`FeatureEncoder` implements
exactly that.  :class:`Embedding` is the classic integer-id lookup used
by the log-event datasets whose node features are label-coded.
"""

from __future__ import annotations

import numpy as np

from repro.nn import init
from repro.nn.linear import Linear
from repro.nn.module import Module, Parameter
from repro.tensor import Tensor, ops


class Embedding(Module):
    """Lookup table mapping integer ids to dense vectors.

    Gradients from duplicate ids accumulate (scatter-add), matching the
    semantics of ``torch.nn.Embedding``.
    """

    def __init__(self, num_embeddings: int, embedding_dim: int, rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(
            init.xavier_normal((num_embeddings, embedding_dim), rng), name="embedding"
        )

    def forward(self, indices: np.ndarray) -> Tensor:
        """Return ``weight[indices]`` as a differentiable tensor."""
        idx = np.asarray(indices, dtype=np.int64)
        if idx.size and (idx.min() < 0 or idx.max() >= self.num_embeddings):
            raise IndexError(
                f"embedding index out of range [0, {self.num_embeddings}): "
                f"min={idx.min()}, max={idx.max()}"
            )
        return ops.embedding_lookup(self.weight, idx)


class FeatureEncoder(Module):
    """TP-GNN's node feature encoding layer (paper Eq. 1).

    Transforms the raw ``n x q_raw`` node feature matrix into a dense
    continuous representation ``X := W_i * raw + b_i``.
    """

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator | None = None):
        super().__init__()
        self.projection = Linear(in_features, out_features, rng=rng)

    def forward(self, raw_features: Tensor) -> Tensor:
        """Encode the raw node feature matrix."""
        return self.projection(raw_features)
