"""Multi-layer perceptrons (GraphMixer's core block, classifier heads)."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.nn.linear import Linear
from repro.nn.module import Module, ModuleList
from repro.tensor import Tensor, ops


class MLP(Module):
    """A stack of Linear layers with a configurable activation.

    Parameters
    ----------
    sizes:
        Layer widths, e.g. ``[in, hidden, out]``.
    activation:
        Elementwise nonlinearity applied between layers (not after the
        last one).  Defaults to ReLU.
    """

    def __init__(
        self,
        sizes: Sequence[int],
        activation: Callable[[Tensor], Tensor] = ops.relu,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if len(sizes) < 2:
            raise ValueError(f"MLP needs at least [in, out] sizes, got {list(sizes)}")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.activation = activation
        self.layers = ModuleList(
            [Linear(sizes[i], sizes[i + 1], rng=rng) for i in range(len(sizes) - 1)]
        )

    def forward(self, x: Tensor) -> Tensor:
        """Apply the layer stack."""
        for i, layer in enumerate(self.layers):
            x = layer(x)
            if i < len(self.layers) - 1:
                x = self.activation(x)
        return x
