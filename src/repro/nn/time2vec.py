"""Time2Vec functional time encoding (Kazemi et al., 2019).

The paper's time encoding layer (Eq. 2):

    f(t) := (w0 * t + phi0) ⊕ sin(w * t + phi)

producing a ``d_t``-dimensional vector whose first component is a
learnable linear trend and whose remaining ``d_t - 1`` components are
learnable-frequency sinusoids.  Both the TP-GNN core and several
continuous-DGNN baselines share this module.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module, Parameter
from repro.tensor import Tensor, ops


class Time2Vec(Module):
    """Map scalar timestamps to ``dim``-dimensional time embeddings.

    Parameters
    ----------
    dim:
        Output dimensionality ``d_t`` (>= 2: one linear + >=1 periodic).
    rng:
        Generator used to initialise frequencies.  Frequencies are drawn
        log-uniformly so several timescales are covered from the start.
    """

    def __init__(self, dim: int, rng: np.random.Generator | None = None):
        super().__init__()
        if dim < 2:
            raise ValueError(f"Time2Vec dim must be >= 2 (one linear + one periodic), got {dim}")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.dim = dim
        self.linear_weight = Parameter(rng.normal(0.0, 1.0, size=(1,)), name="w0")
        self.linear_bias = Parameter(np.zeros(1), name="phi0")
        # Log-uniform frequencies over roughly 3 decades.
        freqs = 10.0 ** rng.uniform(-2.0, 1.0, size=(dim - 1,))
        self.periodic_weight = Parameter(freqs, name="w")
        self.periodic_bias = Parameter(rng.uniform(0.0, 2.0 * np.pi, size=(dim - 1,)), name="phi")

    def forward(self, timestamps) -> Tensor:
        """Encode timestamps.

        Parameters
        ----------
        timestamps:
            A scalar, 0-d/1-d array, or Tensor of shape ``(m,)``.

        Returns
        -------
        Tensor of shape ``(m, dim)`` (``(1, dim)`` for a scalar input).
        """
        if not isinstance(timestamps, Tensor):
            timestamps = Tensor(np.atleast_1d(np.asarray(timestamps, dtype=np.float64)))
        t = timestamps.reshape(len(timestamps), 1)
        trend = t * self.linear_weight + self.linear_bias
        periodic = ops.sin(t * self.periodic_weight + self.periodic_bias)
        return ops.concat([trend, periodic], axis=1)
