"""One retry policy for the whole repo: backoff + jitter + deadline.

Before this module, every subsystem that retried (the parallel trial
runner, ad-hoc test loops) carried its own attempt counting.
:class:`RetryPolicy` is the single value object they now share: it
describes *how many* attempts, *how long* to wait between them
(exponential backoff with an optional seeded jitter), and the *total*
wall-clock budget after which retrying stops even if attempts remain.

The policy is a frozen dataclass so it can ride inside specs, configs
and cache keys; execution state (attempt number, elapsed budget) lives
in the caller or in :meth:`RetryPolicy.call`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterator

import numpy as np


@dataclass(frozen=True)
class RetryPolicy:
    """How to retry a failing operation.

    Parameters
    ----------
    attempts:
        Total tries including the first (``1`` disables retrying).
    backoff:
        Delay before the first retry, in seconds.
    multiplier:
        Backoff growth factor per subsequent retry.
    max_backoff:
        Ceiling on any single delay.
    jitter:
        Fraction of each delay drawn uniformly at random and *added*
        (``0.25`` → delays land in ``[d, 1.25 d)``).  Seeded, so a
        chaos run's schedule is reproducible.
    deadline:
        Total wall-clock budget across all attempts and waits; ``None``
        disables it.
    """

    attempts: int = 3
    backoff: float = 0.0
    multiplier: float = 2.0
    max_backoff: float = 60.0
    jitter: float = 0.0
    deadline: float | None = None

    def __post_init__(self):
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts}")
        if self.backoff < 0:
            raise ValueError(f"backoff must be >= 0, got {self.backoff}")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if not 0.0 <= self.jitter:
            raise ValueError(f"jitter must be >= 0, got {self.jitter}")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError(f"deadline must be positive, got {self.deadline}")

    @property
    def retries(self) -> int:
        """Extra attempts after the first (the legacy runner knob)."""
        return self.attempts - 1

    def delay_for(self, attempt: int, rng: np.random.Generator | None = None) -> float:
        """Seconds to wait before launching attempt ``attempt`` (2-based:
        the first attempt never waits)."""
        if attempt <= 1:
            return 0.0
        delay = min(self.backoff * self.multiplier ** (attempt - 2), self.max_backoff)
        if self.jitter > 0.0 and rng is not None:
            delay += delay * self.jitter * float(rng.random())
        return delay

    def delays(self, rng: np.random.Generator | None = None) -> Iterator[float]:
        """The waits before attempts ``2 .. attempts`` in order."""
        for attempt in range(2, self.attempts + 1):
            yield self.delay_for(attempt, rng=rng)

    def call(
        self,
        fn: Callable,
        *args,
        retry_on: tuple[type[BaseException], ...] = (Exception,),
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
        rng: np.random.Generator | None = None,
        on_retry: Callable[[int, BaseException], None] | None = None,
        **kwargs,
    ):
        """Run ``fn(*args, **kwargs)`` under this policy.

        Exceptions matching ``retry_on`` are swallowed until attempts
        (or the deadline) run out, then the last one is re-raised.
        ``on_retry(attempt, error)`` is called before each wait, so
        callers can log or count.
        """
        started = clock()
        last: BaseException | None = None
        for attempt in range(1, self.attempts + 1):
            try:
                return fn(*args, **kwargs)
            except retry_on as error:
                last = error
                if attempt >= self.attempts:
                    break
                delay = self.delay_for(attempt + 1, rng=rng)
                if self.deadline is not None and clock() - started + delay >= self.deadline:
                    break
                if on_retry is not None:
                    on_retry(attempt, error)
                if delay > 0.0:
                    sleep(delay)
        assert last is not None
        raise last
