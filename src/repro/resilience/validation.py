"""Serve-side event validation: schema, monotonicity, node-range.

Everything upstream of the serving engine is untrusted: a live feed can
carry records that are not events at all, events with non-finite
timestamps or features, node ids outside the deployment's range, or
per-session time regressions.  :class:`EventValidator` sits in front of
the :class:`~repro.serve.router.SessionRouter` and applies one of three
policies to each arrival:

- ``"strict"`` — any violation raises
  :class:`~repro.resilience.errors.EventValidationError` (CI replays,
  pipelines that must halt on bad data);
- ``"skip"`` — invalid events are *quarantined*: dropped, counted per
  session and in telemetry, never touching model state (the production
  default);
- ``"degrade"`` — repairable events are sanitised and admitted
  (non-finite feature values zeroed, time regressions deferred to the
  router's out-of-order policy); only unrepairable ones are
  quarantined.

The validator is stateful only in the cheap sense: the last timestamp
per session (for monotonicity) and the quarantine counters.
"""

from __future__ import annotations

import dataclasses
from typing import Mapping

import numpy as np

from repro.resilience.errors import EventValidationError
from repro.serve.events import StreamEvent

VALIDATION_POLICIES = ("strict", "skip", "degrade")

#: Violations "degrade" can repair in place; everything else quarantines.
_REPAIRABLE = ("nonfinite_features", "time_regression")


class EventValidator:
    """Admission control for one engine's event feed.

    Parameters
    ----------
    policy:
        One of :data:`VALIDATION_POLICIES`.
    max_node:
        Exclusive upper bound on session-local node ids (``None``
        disables the range check).
    time_tolerance:
        Allowed per-session backwards time step before an event counts
        as a regression (clock-skew allowance).
    """

    def __init__(
        self,
        policy: str = "skip",
        max_node: int | None = None,
        time_tolerance: float = 0.0,
    ):
        if policy not in VALIDATION_POLICIES:
            raise ValueError(
                f"unknown validation policy {policy!r}; choose from {VALIDATION_POLICIES}"
            )
        if max_node is not None and max_node < 1:
            raise ValueError(f"max_node must be >= 1, got {max_node}")
        if time_tolerance < 0:
            raise ValueError(f"time_tolerance must be >= 0, got {time_tolerance}")
        self.policy = policy
        self.max_node = max_node
        self.time_tolerance = time_tolerance
        self.quarantined: dict[str, int] = {}
        self._last_time: dict[str, float] = {}

    # ------------------------------------------------------------------
    # Checks
    # ------------------------------------------------------------------
    def check(self, event) -> list[str]:
        """All violations of ``event``, without admitting it."""
        violations: list[str] = []
        if not isinstance(event, StreamEvent):
            return [f"schema: not a StreamEvent (got {type(event).__name__})"]
        if not isinstance(event.session_id, str) or not event.session_id:
            violations.append("schema: session_id must be a non-empty string")
        for name in ("src", "dst"):
            node = getattr(event, name)
            if not isinstance(node, (int, np.integer)) or isinstance(node, bool):
                violations.append(f"schema: {name} must be an integer, got {node!r}")
            elif node < 0:
                violations.append(f"schema: {name} must be non-negative, got {node}")
            elif self.max_node is not None and node >= self.max_node:
                violations.append(
                    f"node_range: {name}={node} outside [0, {self.max_node})"
                )
        try:
            time_ok = bool(np.isfinite(event.time))
        except TypeError:
            time_ok = False
        if not time_ok:
            violations.append(f"schema: time must be a finite number, got {event.time!r}")
        violations.extend(self._check_features(event.node_features))
        if time_ok and isinstance(event.session_id, str):
            last = self._last_time.get(event.session_id)
            if last is not None and event.time < last - self.time_tolerance:
                violations.append(
                    f"time_regression: t={event.time} after t={last} in "
                    f"session {event.session_id!r}"
                )
        return violations

    def _check_features(self, features) -> list[str]:
        if features is None:
            return []
        if not isinstance(features, Mapping):
            return [f"schema: node_features must be a mapping, got {type(features).__name__}"]
        violations = []
        for node, row in features.items():
            array = np.asarray(row)
            if array.dtype.kind not in "fiu":
                violations.append(f"schema: features of node {node} are non-numeric")
            elif not np.all(np.isfinite(array)):
                violations.append(f"nonfinite_features: node {node} carries NaN/Inf values")
        return violations

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def admit(self, event) -> StreamEvent | None:
        """Validate one arrival under the configured policy.

        Returns the event to route (possibly repaired under
        ``"degrade"``) or ``None`` when it was quarantined.  Raises
        :class:`EventValidationError` under ``"strict"``.
        """
        violations = self.check(event)
        if not violations:
            self._note_time(event)
            return event
        if self.policy == "strict":
            raise EventValidationError(
                f"event failed validation: {'; '.join(violations)}", violations
            )
        if self.policy == "degrade" and all(
            v.startswith(_REPAIRABLE) for v in violations
        ):
            repaired = self._repair(event, violations)
            self._note_time(repaired)
            return repaired
        self._quarantine(event)
        return None

    def _repair(self, event: StreamEvent, violations: list[str]) -> StreamEvent:
        """Sanitise the repairable violations of ``event``.

        Non-finite feature values become zeros (the engine's cold-start
        vector, so downstream maths stays finite); time regressions are
        admitted unchanged — the router's out-of-order policy owns them.
        """
        if not any(v.startswith("nonfinite_features") for v in violations):
            return event
        sanitized = {
            node: np.nan_to_num(
                np.asarray(row, dtype=float), nan=0.0, posinf=0.0, neginf=0.0
            )
            for node, row in event.node_features.items()
        }
        return dataclasses.replace(event, node_features=sanitized)

    def _note_time(self, event: StreamEvent) -> None:
        last = self._last_time.get(event.session_id, float("-inf"))
        self._last_time[event.session_id] = max(last, float(event.time))

    def _quarantine(self, event) -> None:
        session_id = getattr(event, "session_id", None)
        key = session_id if isinstance(session_id, str) else "<invalid>"
        self.quarantined[key] = self.quarantined.get(key, 0) + 1
        from repro import telemetry

        telemetry.get_registry().counter(
            "resilience/events_quarantined", session=key
        ).inc()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def quarantined_total(self) -> int:
        """Events quarantined across all sessions."""
        return sum(self.quarantined.values())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"EventValidator(policy={self.policy!r}, "
            f"quarantined={self.quarantined_total})"
        )
