"""The chaos scenario suite behind ``repro chaos``.

Each scenario stages one documented failure mode (RELIABILITY.md),
injects it deterministically — via a seeded
:class:`~repro.resilience.faults.FaultPlan` or the file/feed corruption
helpers — and asserts that the stack *detects* the fault and *recovers*
along the documented path.  A scenario survives only if the failure was
caught by a typed guard (never an unhandled exception) and the system
ended in a usable state with no silent corruption.

Scenarios are registered with the :func:`scenario` decorator and run by
:func:`run_scenarios`; :func:`render_report` prints the survival table
the CLI shows.  Everything is seeded, so a failing scenario replays
identically under ``repro chaos --seed N --scenarios <name>``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable

import numpy as np

from repro.core.model import TPGNN
from repro.graph.ctdn import CTDN
from repro.graph.dataset import GraphDataset
from repro.graph.edge import TemporalEdge
from repro.nn.serialization import load_checkpoint, save_checkpoint
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.errors import (
    DeadlineExceededError,
    EventValidationError,
    FaultInjected,
    IntegrityError,
)
from repro.resilience.faults import (
    FaultPlan,
    activate,
    corrupt_file,
    perturb_feed,
    truncate_file,
)
from repro.serve.engine import StreamingEngine
from repro.serve.events import StreamEvent, dataset_to_feed
from repro.training.trainer import TrainConfig, train_model

# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
@dataclass
class ScenarioResult:
    """Outcome of one chaos scenario."""

    name: str
    survived: bool
    detection: str
    recovery: str
    faults_injected: int = 0
    seconds: float = 0.0
    error: str | None = None


@dataclass
class ChaosContext:
    """Seeded workbench handed to every scenario."""

    seed: int
    workdir: Path

    def rng(self, salt: int = 0) -> np.random.Generator:
        return np.random.default_rng(self.seed + salt)

    def model(self) -> TPGNN:
        return TPGNN(
            in_features=3, hidden_size=8, gru_hidden_size=8, time_dim=4,
            seed=self.seed,
        )

    def dataset(self, num_graphs: int = 6) -> GraphDataset:
        """Small random labelled temporal graphs (feature width 3)."""
        rng = self.rng(salt=101)
        graphs = []
        for index in range(num_graphs):
            n = int(rng.integers(4, 8))
            edges, t = [], 0.0
            for _ in range(int(rng.integers(5, 10))):
                t += float(rng.exponential(1.0)) + 0.05
                u, v = rng.choice(n, size=2, replace=False)
                edges.append(TemporalEdge(int(u), int(v), t))
            graphs.append(
                CTDN(n, rng.normal(size=(n, 3)), edges, label=int(index % 2),
                     graph_id=f"chaos-{index}")
            )
        return GraphDataset(graphs, name="chaos")

    def feed(self, num_graphs: int = 6) -> list[StreamEvent]:
        return dataset_to_feed(self.dataset(num_graphs), rng=self.rng(salt=7), spread=2.0)


#: name -> (function, description, included in --quick)
_SCENARIOS: dict[str, tuple[Callable[[ChaosContext], tuple[str, str]], str, bool]] = {}


def scenario(name: str, description: str, quick: bool = True):
    """Register a chaos scenario (returns ``(detection, recovery)``)."""

    def wrap(fn):
        _SCENARIOS[name] = (fn, description, quick)
        return fn

    return wrap


def scenario_names(quick: bool = False) -> list[str]:
    """Registered scenario names, registration order."""
    return [
        name for name, (_, _, is_quick) in _SCENARIOS.items() if is_quick or not quick
    ]


def scenario_description(name: str) -> str:
    return _SCENARIOS[name][1]


def run_scenarios(
    names: list[str] | None = None,
    quick: bool = False,
    seed: int = 0,
    workdir: str | Path | None = None,
) -> list[ScenarioResult]:
    """Execute scenarios (all by default); never raises.

    A scenario that lets any exception escape is reported as not
    survived with the traceback head attached — the suite itself is the
    last line of defence against unhandled failures.
    """
    import tempfile

    chosen = names if names is not None else scenario_names(quick=quick)
    results = []
    for name in chosen:
        if name not in _SCENARIOS:
            raise KeyError(
                f"unknown chaos scenario {name!r}; choose from {scenario_names()}"
            )
        fn, _, _ = _SCENARIOS[name]
        with tempfile.TemporaryDirectory(prefix=f"chaos-{name}-") as tmp:
            context = ChaosContext(seed=seed, workdir=Path(workdir or tmp))
            started = time.perf_counter()
            before = _faults_fired_total()
            try:
                detection, recovery = fn(context)
                results.append(ScenarioResult(
                    name=name, survived=True, detection=detection,
                    recovery=recovery,
                    faults_injected=_faults_fired_total() - before,
                    seconds=time.perf_counter() - started,
                ))
            except Exception as error:  # noqa: BLE001 - survival report
                results.append(ScenarioResult(
                    name=name, survived=False, detection="", recovery="",
                    faults_injected=_faults_fired_total() - before,
                    seconds=time.perf_counter() - started,
                    error=f"{type(error).__name__}: {error}",
                ))
    return results


def _faults_fired_total() -> int:
    """Total ``resilience/faults_injected`` count on the live registry.

    In-process injections (fault plans activated inside the scenario's
    own process) are counted; faults fired inside worker subprocesses
    land on the workers' registries and are not visible here.
    """
    from repro import telemetry

    return sum(
        instrument.value
        for name, _labels, kind, instrument in telemetry.get_registry()
        if name == "resilience/faults_injected" and kind == "counter"
    )


def render_report(results: list[ScenarioResult]) -> str:
    """The survival table printed by ``repro chaos``."""
    lines = ["chaos survival report", ""]
    width = max((len(result.name) for result in results), default=8)
    for result in results:
        status = "SURVIVED" if result.survived else "FAILED"
        lines.append(
            f"  {status:<8} {result.name:<{width}}  "
            f"faults={result.faults_injected:<3d} {result.seconds*1e3:7.1f} ms"
        )
        if result.survived:
            lines.append(f"{'':11}detected by: {result.detection}")
            lines.append(f"{'':11}recovered:   {result.recovery}")
        else:
            lines.append(f"{'':11}UNHANDLED: {result.error}")
    survived = sum(result.survived for result in results)
    lines.append("")
    lines.append(f"  {survived}/{len(results)} scenarios survived")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Persistence scenarios
# ----------------------------------------------------------------------
@scenario(
    "corrupt-checkpoint",
    "random byte corruption of a model checkpoint is detected on load",
)
def _corrupt_checkpoint(ctx: ChaosContext) -> tuple[str, str]:
    model = ctx.model()
    path = save_checkpoint(model, ctx.workdir / "model.npz", metadata={"run": 1})
    corrupt_file(path, rng=ctx.rng(salt=1), nbytes=8)
    try:
        load_checkpoint(ctx.model(), path)
    except IntegrityError:
        pass
    else:
        raise AssertionError("corrupt checkpoint loaded without IntegrityError")
    # Recovery: re-materialise the checkpoint from the live model.
    path = save_checkpoint(model, path)
    load_checkpoint(ctx.model(), path)
    return "IntegrityError (zip CRC / SHA-256 verification)", "checkpoint rewritten from live weights and reloaded"


@scenario(
    "truncated-checkpoint",
    "a checkpoint cut short mid-write is rejected, not half-loaded",
)
def _truncated_checkpoint(ctx: ChaosContext) -> tuple[str, str]:
    model = ctx.model()
    path = save_checkpoint(model, ctx.workdir / "model.npz")
    truncate_file(path, keep_fraction=0.5)
    try:
        load_checkpoint(ctx.model(), path)
    except IntegrityError:
        pass
    else:
        raise AssertionError("truncated checkpoint loaded without IntegrityError")
    path = save_checkpoint(model, path)
    load_checkpoint(ctx.model(), path)
    return "IntegrityError (torn npz archive)", "checkpoint rewritten; atomic write + fsync prevents torn publishes"


def _fake_trial(ctx: ChaosContext):
    from repro.experiments.parallel import TrialOutcome, TrialSpec, trial_cache_key
    from repro.training.metrics import Metrics

    spec = TrialSpec(
        model_name="TP-GNN-SUM", dataset_name="HDFS", num_graphs=4, graph_scale=0.1,
        dataset_seed=ctx.seed, hidden_size=4, time_dim=2, snapshot_size=8,
        train_fraction=0.5, run_index=0, train=TrainConfig(epochs=1, seed=ctx.seed),
    )
    outcome = TrialOutcome(
        metrics=Metrics(precision=0.75, recall=0.5, f1=0.6),
        losses=(0.7, 0.6), train_seconds=0.1, epochs_run=1, nonfinite_batches=0,
    )
    return spec, trial_cache_key(spec), outcome


@scenario(
    "corrupt-cache-entry",
    "byte corruption of a trial-cache entry quarantines it and recomputes",
)
def _corrupt_cache_entry(ctx: ChaosContext) -> tuple[str, str]:
    from repro.experiments.parallel import TrialCache

    cache = TrialCache(ctx.workdir / "cache")
    spec, key, outcome = _fake_trial(ctx)
    path = cache.put(key, spec, outcome)
    corrupt_file(path, rng=ctx.rng(salt=2), nbytes=6)
    if cache.get(key) is not None:
        raise AssertionError("corrupt cache entry was served")
    if not cache.quarantine_path(key).exists():
        raise AssertionError("corrupt entry was not quarantined")
    # Recovery: the recomputed outcome republishes cleanly.
    cache.put(key, spec, outcome)
    if cache.get(key) != outcome:
        raise AssertionError("recomputed entry did not round-trip")
    return "cache entry failed JSON/SHA-256 verification", "entry moved to quarantine/, cell recomputed and republished"


@scenario(
    "cache-tamper",
    "a semantically edited (valid-JSON) cache entry fails its digest",
)
def _cache_tamper(ctx: ChaosContext) -> tuple[str, str]:
    import json

    from repro.experiments.parallel import TrialCache

    cache = TrialCache(ctx.workdir / "cache")
    spec, key, outcome = _fake_trial(ctx)
    path = cache.put(key, spec, outcome)
    payload = json.loads(path.read_text(encoding="utf-8"))
    payload["outcome"]["metrics"]["precision"] = 0.99  # inflate the result
    path.write_text(json.dumps(payload), encoding="utf-8")
    if cache.get(key) is not None:
        raise AssertionError("tampered cache entry was served")
    cache.put(key, spec, outcome)
    if cache.get(key) != outcome:
        raise AssertionError("honest entry did not round-trip after tamper")
    return "SHA-256 digest mismatch on an otherwise valid entry", "entry quarantined; honest recompute republished"


# ----------------------------------------------------------------------
# Serving scenarios
# ----------------------------------------------------------------------
@scenario(
    "event-disorder",
    "a dropped/duplicated/reordered feed streams through without error",
)
def _event_disorder(ctx: ChaosContext) -> tuple[str, str]:
    feed = ctx.feed()
    noisy = perturb_feed(feed, rng=ctx.rng(salt=3), drop=0.1, duplicate=0.1, swap=0.3)
    engine = StreamingEngine(
        ctx.model(), out_of_order="buffer", watermark_delay=1.0, max_buffered=64,
    )
    engine.ingest_many(noisy)
    engine.flush()
    scores = engine.predict_many()
    if not all(np.isfinite(list(scores.values()))):
        raise AssertionError("disorder produced non-finite predictions")
    handled = (
        engine.metrics.events_dropped
        + engine.metrics.events_late_dropped
        + engine.router.stats.buffered_peak
    )
    if handled == 0 and len(noisy) == len(feed):
        raise AssertionError("perturbation had no observable effect")
    return "router out-of-order admission (buffer policy + watermark)", "late events re-ordered or counted dropped; predictions stayed finite"


@scenario(
    "malformed-events",
    "non-event records and NaN features are quarantined, never applied",
)
def _malformed_events(ctx: ChaosContext) -> tuple[str, str]:
    feed = ctx.feed(num_graphs=3)
    bad_features = {0: np.array([np.nan, 1.0, 2.0])}
    garbage = [
        {"session_id": "x", "src": 0, "dst": 1},  # not an event at all
        StreamEvent("s-bad", 0, 1, 1.0, node_features=bad_features),
        StreamEvent("s-range", 0, 99, 2.0),  # node id outside max_node
    ]
    engine = StreamingEngine(ctx.model(), validate="skip", max_node=32)
    for record in feed + garbage:
        engine.ingest(record)
    if engine.metrics.events_quarantined < len(garbage):
        raise AssertionError(
            f"only {engine.metrics.events_quarantined} of {len(garbage)} "
            "malformed records quarantined"
        )
    # Strict policy turns the same records into typed errors.
    strict = StreamingEngine(ctx.model(), validate="strict", max_node=32)
    raised = 0
    for record in garbage:
        try:
            strict.ingest(record)
        except EventValidationError:
            raised += 1
    if raised != len(garbage):
        raise AssertionError("strict policy missed a malformed record")
    return "EventValidator schema / node-range / finiteness checks", "skip policy quarantined and counted; strict raised EventValidationError"


@scenario(
    "serve-exception-burst",
    "repeated apply failures open the circuit breaker and shed load",
)
def _serve_exception_burst(ctx: ChaosContext) -> tuple[str, str]:
    feed = ctx.feed()
    breaker = CircuitBreaker(failure_threshold=3, cooldown=60.0)
    engine = StreamingEngine(ctx.model(), breaker=breaker)
    plan = FaultPlan(seed=ctx.seed).add("serve.apply", kind="raise")
    caught = 0
    with activate(plan):
        for event in feed:
            try:
                engine.ingest(event)
            except FaultInjected:
                caught += 1
    if breaker.state != "open":
        raise AssertionError(f"breaker ended {breaker.state!r}, expected open")
    if caught != breaker.failure_threshold:
        raise AssertionError(
            f"{caught} exceptions escaped before the circuit opened "
            f"(threshold {breaker.failure_threshold})"
        )
    if engine.metrics.breaker_rejections == 0:
        raise AssertionError("open breaker shed no load")
    return "circuit breaker consecutive-failure threshold", (
        "circuit opened after "
        f"{breaker.failure_threshold} failures; remaining updates shed and counted"
    )


@scenario(
    "deadline-breach",
    "slow apply/predict calls are counted and surfaced as deadline breaches",
)
def _deadline_breach(ctx: ChaosContext) -> tuple[str, str]:
    feed = ctx.feed(num_graphs=2)
    engine = StreamingEngine(ctx.model(), deadline_seconds=1e-9)
    engine.ingest_many(feed)
    if engine.metrics.deadline_breaches == 0:
        raise AssertionError("no apply deadline breach was recorded")
    session = engine.live_sessions()[0]
    try:
        engine.predict(session)
    except DeadlineExceededError:
        pass
    else:
        raise AssertionError("slow predict returned instead of raising")
    # Recovery: with a sane deadline the same engine keeps serving.
    engine.deadline_seconds = 60.0
    if not np.isfinite(engine.predict(session)):
        raise AssertionError("post-breach prediction non-finite")
    return "cooperative post-call deadline check", "breaches counted (writes) / raised (reads); serving resumed under a sane budget"


@scenario(
    "buffer-flood",
    "a stalled-watermark flood cannot grow the reorder buffer unboundedly",
)
def _buffer_flood(ctx: ChaosContext) -> tuple[str, str]:
    engine = StreamingEngine(
        ctx.model(), out_of_order="buffer", watermark_delay=1e9, max_buffered=16,
    )
    for i in range(200):
        engine.ingest(StreamEvent("flood", src=0, dst=1, time=float(i),
                                  node_features={0: np.zeros(3), 1: np.zeros(3)}))
    entry = engine.router._sessions["flood"]
    if len(entry.pending) > 16:
        raise AssertionError(f"buffer grew to {len(entry.pending)} > cap 16")
    if engine.metrics.events_overflow_dropped != 200 - 16:
        raise AssertionError(
            f"expected {200 - 16} overflow drops, "
            f"counted {engine.metrics.events_overflow_dropped}"
        )
    engine.flush()
    return "bounded per-session reorder buffer (max_buffered)", "oldest events dropped and counted; memory stayed O(cap)"


# ----------------------------------------------------------------------
# Cluster scenarios
# ----------------------------------------------------------------------
@scenario(
    "shard-kill",
    "a faulting shard's breaker opens and isolates it; survivors keep serving",
)
def _shard_kill(ctx: ChaosContext) -> tuple[str, str]:
    from repro.cluster import ShardedCluster
    from repro.resilience.errors import CircuitOpenError

    feed = ctx.feed(num_graphs=9)
    with ShardedCluster(
        ctx.model(), n_shards=3, backend="serial",
        breaker_threshold=3, breaker_cooldown=1e9, max_sessions=64,
    ) as cluster:
        cluster.ingest_many(feed)
        sessions = cluster.sessions()
        victim = next(sid for sid, ids in sessions.items() if ids)
        plan = FaultPlan(seed=ctx.seed).add(
            f"cluster.shard{victim}.apply", kind="raise"
        )
        with activate(plan):
            cluster.ingest_many(feed)
            cluster.barrier()
        breaker = cluster._shards[victim].engine.breaker
        if breaker.state != "open":
            raise AssertionError(
                f"victim breaker ended {breaker.state!r}, expected open"
            )
        try:
            cluster.predict(sessions[victim][0])
        except CircuitOpenError:
            pass
        else:
            raise AssertionError("open shard answered a read")
        served = 0
        for shard_id, ids in sessions.items():
            if shard_id == victim:
                continue
            survivor = cluster._shards[shard_id].engine.breaker
            if survivor.state != "closed":
                raise AssertionError(
                    f"survivor shard {shard_id} breaker went {survivor.state!r}"
                )
            for session_id in ids:
                if not np.isfinite(cluster.predict(session_id)):
                    raise AssertionError("survivor produced non-finite score")
                served += 1
        if served == 0:
            raise AssertionError("no surviving shard held any session")
    return "per-shard circuit breaker consecutive-failure threshold", (
        f"victim shard isolated (writes shed, reads rejected); "
        f"{served} sessions on surviving shards kept serving"
    )


@scenario(
    "migration-corrupt-snapshot",
    "a snapshot corrupted mid-migration quarantines the session, not the shard",
)
def _migration_corrupt_snapshot(ctx: ChaosContext) -> tuple[str, str]:
    from repro.cluster import ShardedCluster

    feed = ctx.feed(num_graphs=12)
    with ShardedCluster(
        ctx.model(), n_shards=2, backend="serial", max_sessions=64,
    ) as cluster:
        cluster.ingest_many(feed)
        cluster.add_shard()
        plan = FaultPlan(seed=ctx.seed).add(
            "cluster.migrate.snapshot", kind="nan", times=1
        )
        with activate(plan):
            report = cluster.rebalance()
        if report.quarantined != 1:
            raise AssertionError(
                f"expected exactly 1 quarantined session, got {report.quarantined}"
            )
        if report.moved == 0:
            raise AssertionError("no healthy session completed its migration")
        victim = next(iter(cluster.quarantined))
        if victim in cluster.live_sessions():
            raise AssertionError("quarantined session still serving")
        try:
            cluster.predict(victim)
        except KeyError:
            pass
        else:
            raise AssertionError("quarantined session answered a read")
        for shard_id, worker in cluster._shards.items():
            breaker = worker.engine.breaker
            if breaker is not None and breaker.state != "closed":
                raise AssertionError(
                    f"shard {shard_id} breaker went {breaker.state!r}; "
                    "corruption must quarantine the session, not the shard"
                )
        for session_id, _, target_id in report.moves:
            score = cluster.predict(session_id)
            if not np.isfinite(score):
                raise AssertionError(
                    f"migrated session {session_id!r} on shard {target_id} "
                    "produced a non-finite score"
                )
    return "snapshot finiteness validation inside the migration", (
        f"1 session quarantined; {report.moved} healthy migrations and "
        "every shard kept serving"
    )


# ----------------------------------------------------------------------
# Compute scenarios
# ----------------------------------------------------------------------
@scenario(
    "nan-gradient-storm",
    "NaN-poisoned gradients are skipped, never stepped into Adam",
)
def _nan_gradient_storm(ctx: ChaosContext) -> tuple[str, str]:
    model = ctx.model()
    data = ctx.dataset(num_graphs=6)
    plan = FaultPlan(seed=ctx.seed).add("train.gradients", kind="nan")
    with activate(plan):
        result = train_model(model, data, TrainConfig(epochs=2, batch_size=3, seed=ctx.seed))
    if result.nonfinite_batches == 0:
        raise AssertionError("no poisoned batch was detected")
    for param in model.parameters():
        if not np.all(np.isfinite(param.data)):
            raise AssertionError("NaN reached the model parameters")
    if any(not np.isfinite(loss) for loss in result.losses):
        raise AssertionError("loss history went non-finite")
    return "non-finite gradient-norm guard in the optimiser step", (
        f"{result.nonfinite_batches} poisoned batches skipped; "
        "parameters stayed finite"
    )


@scenario(
    "plan-failure",
    "plan-construction failure falls back to the per-edge fold, same output",
)
def _plan_failure(ctx: ChaosContext) -> tuple[str, str]:
    model = ctx.model()
    graph = ctx.dataset(num_graphs=1)[0]
    healthy = model.propagation(graph).data.copy()
    fresh = CTDN(graph.num_nodes, graph.features, graph.store, label=graph.label)
    plan = FaultPlan(seed=ctx.seed).add("plan.build", kind="raise")
    with activate(plan):
        degraded = model.propagation(fresh).data.copy()
    if not model.propagation.fallback:
        raise AssertionError("fallback flag not set")
    drift = float(np.max(np.abs(healthy - degraded)))
    if drift > 1e-9:
        raise AssertionError(f"fallback drifted {drift:.2e} > 1e-9 from wave path")
    return "plan construction raised; caught at the engine boundary", f"per-edge fold over sorted edges, max drift {drift:.1e}"


@scenario(
    "wave-kernel-failure",
    "a mid-run wave-kernel failure replays the plan per edge, same output",
)
def _wave_kernel_failure(ctx: ChaosContext) -> tuple[str, str]:
    model = ctx.model()
    graph = ctx.dataset(num_graphs=1)[0]
    healthy = model.propagation(graph).data.copy()
    plan = FaultPlan(seed=ctx.seed).add("propagation.wave", kind="raise")
    with activate(plan):
        degraded = model.propagation(graph).data.copy()
    if not model.propagation.fallback:
        raise AssertionError("fallback flag not set")
    drift = float(np.max(np.abs(healthy - degraded)))
    if drift > 1e-9:
        raise AssertionError(f"fallback drifted {drift:.2e} > 1e-9 from wave path")
    return "wave kernel raised; state discarded and rebuilt", f"plan edge order replayed per edge, max drift {drift:.1e}"


# ----------------------------------------------------------------------
# Scheduler scenarios (process-spawning: excluded from --quick)
# ----------------------------------------------------------------------
def _hung_worker(spec, checkpoint_path, checkpoint_every, conn) -> None:
    """A worker that never answers (stands in for a wedged trial)."""
    time.sleep(300)


@scenario(
    "worker-timeout",
    "a hung trial worker is terminated at its deadline without sinking the sweep",
    quick=False,
)
def _worker_timeout(ctx: ChaosContext) -> tuple[str, str]:
    from repro.experiments.parallel import ParallelRunner

    spec, _, _ = _fake_trial(ctx)
    runner = ParallelRunner(
        cache=None, jobs=1, retries=0, trial_timeout=0.5, worker=_hung_worker,
    )
    results = runner.run([spec])
    if len(results) != 1 or results[0].status != "failed":
        raise AssertionError(f"expected a failed cell, got {results!r}")
    if "timed out" not in (results[0].error or ""):
        raise AssertionError(f"unexpected error: {results[0].error!r}")
    return "per-attempt trial_timeout in the parallel scheduler", "worker terminated and joined; sweep completed with the cell marked failed"


@scenario(
    "trial-retry-resume",
    "a trial killed mid-run resumes from its checkpoint on retry",
    quick=False,
)
def _trial_retry_resume(ctx: ChaosContext) -> tuple[str, str]:
    from repro.experiments.parallel import ParallelRunner, TrialCache
    from repro.resilience.retry import RetryPolicy

    cache = TrialCache(ctx.workdir / "cache")
    spec, _, _ = _fake_trial(ctx)
    spec = replace(spec, train=replace(spec.train, epochs=2))
    runner = ParallelRunner(
        cache=cache, jobs=1, retry=RetryPolicy(attempts=2, backoff=0.0),
        worker=_dying_then_ok_worker,
    )
    results = runner.run([spec])
    if len(results) != 1 or results[0].status != "completed":
        raise AssertionError(f"expected completion after retry, got {results!r}")
    if results[0].attempts != 2:
        raise AssertionError(f"expected 2 attempts, got {results[0].attempts}")
    outcome = results[0].outcome
    if outcome is None or outcome.epochs_run != 2:
        raise AssertionError(f"resumed run incomplete: {outcome!r}")
    return "worker death detected via pipe EOF + exit code", "RetryPolicy relaunched the cell; epoch checkpoint resumed the run"


def _dying_then_ok_worker(spec, checkpoint_path, checkpoint_every, conn) -> None:
    """Dies (hard) after epoch 1 on the first attempt, succeeds after.

    The sentinel file marking "already died once" lives next to the
    checkpoint, so the retry takes the healthy path and must resume
    from the epoch-boundary checkpoint the first attempt left behind.
    """
    import os

    from repro.experiments.parallel import _trial_worker

    sentinel = Path(str(checkpoint_path) + ".died")
    if checkpoint_path is not None and not sentinel.exists():
        sentinel.touch()
        plan = FaultPlan().add(
            "train.epoch", kind="call", at=(1,),
            action=lambda _context: os._exit(17),
        )
        with activate(plan):
            _trial_worker(spec, checkpoint_path, checkpoint_every, conn)
        return
    _trial_worker(spec, checkpoint_path, checkpoint_every, conn)


# ----------------------------------------------------------------------
# Continual-learning / drift scenarios
# ----------------------------------------------------------------------
@scenario(
    "drift-detector-never-fires",
    "a crashed drift detector degrades to watchdog alarms, not silence",
)
def _drift_detector_never_fires(ctx: ChaosContext) -> tuple[str, str]:
    from repro.online.drift import DriftMonitor, PageHinkley

    monitor = DriftMonitor(detector=PageHinkley(), policy=None)
    rng = ctx.rng(salt=31)
    # Every detector update raises: the monitor must count the errors
    # and keep detecting through the watchdog fallback.
    plan = FaultPlan(seed=ctx.seed).add("drift.detect", kind="raise")
    with activate(plan):
        for _ in range(40):  # in-control regime
            monitor.step(0.2 + 0.02 * float(rng.random()))
        for _ in range(60):  # drifted regime: loss jumps ~7x
            monitor.step(1.5 + 0.05 * float(rng.random()))
    if monitor.detector_errors == 0:
        raise AssertionError("injected detector crashes were not counted")
    if not monitor.alarms:
        raise AssertionError("no alarm raised: the watchdog failed to back "
                             "up the dead detector")
    if any(alarm.source != "watchdog" for alarm in monitor.alarms):
        raise AssertionError(f"unexpected alarm sources: {monitor.alarms!r}")
    return (
        f"primary detector dead (fault at drift.detect, "
        f"{monitor.detector_errors} errors counted)",
        f"watchdog fallback alarmed at example {monitor.alarms[0].index}",
    )


@scenario(
    "drift-adaptation-mid-migration",
    "a poisoned online update during a live rebalance is skipped; "
    "migrated sessions and learner state stay healthy",
)
def _drift_adaptation_mid_migration(ctx: ChaosContext) -> tuple[str, str]:
    import numpy as np

    from repro.cluster import ShardedCluster
    from repro.online import FineTune, OnlineLearner

    model = ctx.model()
    config = TrainConfig(
        learning_rate=1e-2, batch_size=4, seed=ctx.seed,
        replay_buffer=8, online_update_every=0,
    )
    with ShardedCluster(model, n_shards=2, backend="serial") as cluster:
        learner = OnlineLearner(model, config)
        cluster.attach_learner(learner)
        cluster.ingest_many(ctx.feed(6))
        cluster.flush()
        for graph in ctx.dataset(6):
            cluster.observe_example(graph)
        before = set(cluster.live_sessions())

        # Topology change in flight: a shard joins, and the adaptation
        # fires while its sessions are still awaiting migration.  The
        # first update round's gradients are poisoned with NaN.
        cluster.add_shard()
        plan = FaultPlan(seed=ctx.seed).add("online.update", kind="nan", at=(0,))
        with activate(plan):
            FineTune(rounds=3).on_drift(learner, None)
            report = cluster.rebalance()

        if learner.nonfinite_updates != 1:
            raise AssertionError(
                f"poisoned round not skipped: {learner.nonfinite_updates} nonfinite"
            )
        if learner.updates_applied < 1:
            raise AssertionError("no healthy update round stepped")
        for key, value in model.state_dict().items():
            if not np.isfinite(value).all():
                raise AssertionError(f"non-finite weights after adaptation: {key}")
        if report.quarantined or cluster.quarantined:
            raise AssertionError(f"migration quarantined sessions: {report!r}")
        if set(cluster.live_sessions()) != before:
            raise AssertionError("sessions lost across the rebalance")
        for session_id, probability in cluster.predict_many().items():
            if not np.isfinite(probability):
                raise AssertionError(f"non-finite prediction for {session_id!r}")

        # The updated learner state round-trips bit-exactly into a
        # fresh replica (what a restarted destination shard would load).
        snapshot = learner.snapshot()
        replica = OnlineLearner(ctx.model(), config)
        replica.restore(snapshot)
        for key, value in model.state_dict().items():
            if not np.array_equal(value, replica.model.state_dict()[key]):
                raise AssertionError(f"restored weights differ at {key}")
    return (
        "NaN gradients caught by the finite-norm guard mid-migration "
        "(1 update round skipped)",
        f"{report.moved} sessions migrated clean; adapted weights finite and "
        "bit-exact through snapshot/restore",
    )


# ----------------------------------------------------------------------
# Durability / crash-recovery scenarios
# ----------------------------------------------------------------------
def _engines_bitwise_equal(recovered, reference) -> None:
    """Assert two engines hold identical sessions, bit for bit."""
    got, want = set(recovered.live_sessions()), set(reference.live_sessions())
    if got != want:
        raise AssertionError(
            f"session sets differ: missing={sorted(want - got)} "
            f"extra={sorted(got - want)}"
        )
    for session_id in want:
        ours = recovered.snapshot_session(session_id)
        theirs = reference.snapshot_session(session_id)
        for key in theirs:
            if not np.array_equal(ours[key], theirs[key]):
                raise AssertionError(
                    f"session {session_id!r} drifted at array {key!r}"
                )


def _reference_engine(ctx: ChaosContext, events) -> StreamingEngine:
    """A never-crashed engine that applied exactly ``events``."""
    engine = StreamingEngine(ctx.model())
    for event in events:
        engine.ingest(event)
    engine.flush()
    return engine


@scenario(
    "journal-torn-tail",
    "a crash mid-append tears the journal tail; recovery drops exactly "
    "the unfinished record and replays the rest bit-exact",
)
def _journal_torn_tail(ctx: ChaosContext) -> tuple[str, str]:
    from repro.resilience.journal import Journal, list_segments, scan_journal
    from repro.serve.recovery import recover_engine

    feed = ctx.feed(6)
    wal = ctx.workdir / "torn-wal"
    with Journal(wal, fsync="off") as journal:
        engine = StreamingEngine(ctx.model(), journal=journal)
        for event in feed:
            engine.ingest(event)
        engine.flush()
    # Tear the tail: the last record loses its final 5 bytes, exactly
    # what a crash between write() and a completed flush leaves behind.
    tail = list_segments(wal)[-1]
    with open(tail, "r+b") as stream:
        stream.truncate(tail.stat().st_size - 5)
    scan = scan_journal(wal)
    if not scan.torn_tail:
        raise AssertionError("torn tail not classified as torn-tail")
    if scan.last_seq != len(feed) - 1:
        raise AssertionError(
            f"expected last intact seq {len(feed) - 1}, got {scan.last_seq}"
        )
    recovered, report = recover_engine(wal, ctx.model())
    if not report.torn_tail:
        raise AssertionError("recovery report did not flag the torn tail")
    if report.events_replayed != len(feed) - 1:
        raise AssertionError(
            f"replayed {report.events_replayed}, wanted {len(feed) - 1}"
        )
    _engines_bitwise_equal(recovered, _reference_engine(ctx, feed[:-1]))
    return (
        f"CRC scan found the torn tail ({scan.gaps[-1].describe()})",
        f"{report.events_replayed}/{len(feed)} events replayed bit-exact; "
        "only the unfinished record dropped",
    )


@scenario(
    "journal-corrupt-record",
    "a flipped byte mid-segment is quarantined with exact offsets; "
    "replay resynchronises past it instead of misparsing",
)
def _journal_corrupt_record(ctx: ChaosContext) -> tuple[str, str]:
    from repro.resilience.journal import Journal, list_segments, scan_journal
    from repro.serve.recovery import recover_engine

    feed = ctx.feed(6)
    wal = ctx.workdir / "corrupt-wal"
    with Journal(wal, fsync="off") as journal:
        engine = StreamingEngine(ctx.model(), journal=journal)
        for event in feed:
            engine.ingest(event)
        engine.flush()
    # Flip one byte in the middle of the segment — bit rot, not a torn
    # write, so it must be reported as corruption, never as a tail.
    segment = list_segments(wal)[0]
    flip_at = segment.stat().st_size // 2
    with open(segment, "r+b") as stream:
        stream.seek(flip_at)
        byte = stream.read(1)
        stream.seek(flip_at)
        stream.write(bytes([byte[0] ^ 0xFF]))
    scan = scan_journal(wal)
    corrupt = scan.corrupt_gaps()
    if len(corrupt) != 1:
        raise AssertionError(f"expected 1 corrupt gap, got {scan.gaps!r}")
    gap = corrupt[0]
    if not gap.start_offset <= flip_at < gap.end_offset:
        raise AssertionError(
            f"gap [{gap.start_offset}, {gap.end_offset}) misses the "
            f"flipped byte at {flip_at}"
        )
    survivors = [record.seq for record in scan.records]
    if len(survivors) >= len(feed):
        raise AssertionError("corruption cost no records; flip was a no-op")
    recovered, report = recover_engine(wal, ctx.model())
    if not report.gaps or report.torn_tail:
        raise AssertionError(f"misclassified damage: {report.render()}")
    # seq k holds feed[k - 1]: replay exactly the surviving records.
    _engines_bitwise_equal(
        recovered, _reference_engine(ctx, [feed[seq - 1] for seq in survivors])
    )
    return (
        f"CRC quarantined bytes {gap.start_offset}-{gap.end_offset} "
        f"(flip at {flip_at})",
        f"resynchronised on the next magic: {len(survivors)}/{len(feed)} "
        "records replayed bit-exact",
    )


def _journal_kill_worker(wal_dir: str, seed: int, apply_upto: int) -> None:
    """Ingest ``apply_upto`` events, journal one more, die before applying.

    Stands in for a crash in the write-ahead window: the extra record
    reached stable storage (fsync="always") but the engine never saw
    it.  Recovery must surface it — durable means journaled, not
    applied.
    """
    import os

    from repro.resilience.journal import Journal

    ctx = ChaosContext(seed=seed, workdir=Path(wal_dir))
    feed = ctx.feed(6)
    journal = Journal(Path(wal_dir), fsync="always")
    engine = StreamingEngine(ctx.model(), journal=journal)
    for event in feed[:apply_upto]:
        engine.ingest(event)
    journal.append_event(feed[apply_upto])
    os._exit(1)


def _journal_kill_rotation_worker(wal_dir: str, seed: int, apply_upto: int) -> None:
    """Ingest across several tiny segments, then die without closing."""
    import os

    from repro.resilience.journal import Journal

    ctx = ChaosContext(seed=seed, workdir=Path(wal_dir))
    feed = ctx.feed(6)
    journal = Journal(Path(wal_dir), fsync="always", segment_bytes=512)
    engine = StreamingEngine(ctx.model(), journal=journal)
    for event in feed[:apply_upto]:
        engine.ingest(event)
    os._exit(1)


@scenario(
    "journal-kill-recover",
    "a process killed between journal append and apply loses nothing: "
    "recovery replays the journaled-but-unapplied event too",
    quick=False,
)
def _journal_kill_recover(ctx: ChaosContext) -> tuple[str, str]:
    import multiprocessing

    from repro.serve.recovery import recover_engine

    wal = ctx.workdir / "kill-wal"
    apply_upto = 10
    process = multiprocessing.Process(
        target=_journal_kill_worker, args=(str(wal), ctx.seed, apply_upto)
    )
    process.start()
    process.join(timeout=60)
    if process.exitcode != 1:
        raise AssertionError(f"worker exitcode {process.exitcode}, wanted 1")
    feed = ctx.feed(6)
    recovered, report = recover_engine(wal, ctx.model())
    if report.events_replayed != apply_upto + 1:
        raise AssertionError(
            f"replayed {report.events_replayed}, wanted {apply_upto + 1} "
            "(the journaled-but-unapplied event must come back)"
        )
    _engines_bitwise_equal(
        recovered, _reference_engine(ctx, feed[: apply_upto + 1])
    )
    return (
        "SIGKILL-grade death (os._exit) between append and apply",
        f"{apply_upto + 1} events recovered bit-exact, including the one "
        "the engine never applied",
    )


@scenario(
    "journal-kill-mid-rotation",
    "a kill while the journal spans several segments recovers the whole "
    "multi-segment stream bit-exact",
    quick=False,
)
def _journal_kill_mid_rotation(ctx: ChaosContext) -> tuple[str, str]:
    import multiprocessing

    from repro.resilience.journal import list_segments
    from repro.serve.recovery import recover_engine

    wal = ctx.workdir / "rotate-wal"
    apply_upto = 24
    process = multiprocessing.Process(
        target=_journal_kill_rotation_worker, args=(str(wal), ctx.seed, apply_upto)
    )
    process.start()
    process.join(timeout=60)
    if process.exitcode != 1:
        raise AssertionError(f"worker exitcode {process.exitcode}, wanted 1")
    segments = list_segments(wal)
    if len(segments) < 2:
        raise AssertionError(
            f"only {len(segments)} segment(s); rotation never happened"
        )
    feed = ctx.feed(6)
    recovered, report = recover_engine(wal, ctx.model())
    if report.events_replayed != apply_upto:
        raise AssertionError(
            f"replayed {report.events_replayed}, wanted {apply_upto}"
        )
    _engines_bitwise_equal(recovered, _reference_engine(ctx, feed[:apply_upto]))
    return (
        f"kill with {len(segments)} open segments (512-byte rotation)",
        f"{apply_upto} events replayed across segment boundaries bit-exact",
    )
