"""Segmented, CRC-checksummed write-ahead journal for the serve layer.

TP-GNN serving state is the accumulated effect of every event seen so
far, so a crash between checkpoints silently loses sessions and
online-learner updates.  The :class:`Journal` closes that hole with the
classic WAL discipline: every accepted :class:`~repro.serve.events.StreamEvent`
and every online-learner observation is appended (and optionally
fsynced) *before* it is applied, so recovery can replay the tail past
the last good checkpoint and reconstruct the exact pre-crash state.

Wire format — one record::

    magic(4B) | seq(u64 LE) | payload_len(u32 LE) | crc32(u32 LE) | payload

The CRC covers ``seq + payload_len + payload``, so a flipped bit
anywhere in a record (header or body) fails verification; the magic
marker lets the reader *resync* after a corrupt record by scanning
forward for the next verifiable header.  The payload is a kind byte
(event / observation) followed by a JSON header and the raw array
buffers, dtype- and shape-tagged so decode is bit-exact.

Durability is tiered by fsync policy (:data:`FSYNC_POLICIES`):

``always``
    ``fsync`` after every append — survives power loss, slowest.
``interval``
    ``flush`` to the OS after every append (survives *process* death)
    and ``fsync`` at most every ``fsync_interval`` seconds (bounds
    data-at-risk under power loss).  The serving default.
``off``
    No explicit flushing until rotation/close; fastest, for bulk
    replay/backfill where the source feed still exists.

Segments are named by the first sequence number they contain
(``segment-<seq>.wal``), so :meth:`Journal.truncate_upto` can drop
whole segments behind a checkpoint anchor without scanning them.  On
reopen after a crash the writer truncates a torn tail record (the
normal crash artifact) and continues the sequence; a corrupt record
*mid*-segment is never overwritten — the scanner quarantines it into a
:class:`JournalGap` with exact byte offsets and replays past it.

This module deliberately imports nothing from :mod:`repro.serve` or
:mod:`repro.graph` at module scope — the serve package imports
:mod:`repro.resilience` back, and the journal must stay importable
from inside that cycle (decoders import lazily).
"""

from __future__ import annotations

import json
import math
import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from time import monotonic
from typing import Iterable

import numpy as np

from repro.resilience.errors import IntegrityError
from repro.resilience.faults import inject

FSYNC_POLICIES = ("always", "interval", "off")

RECORD_EVENT = 1
RECORD_OBSERVATION = 2
_RECORD_KINDS = (RECORD_EVENT, RECORD_OBSERVATION)

_MAGIC = b"RJL1"
_HEADER = struct.Struct("<4sQII")  # magic, seq, payload_len, crc32
_HEADER_SIZE = _HEADER.size
_CRC_PREFIX = struct.Struct("<QI")  # the crc covers seq + payload_len + payload
_MAX_PAYLOAD = 64 * 1024 * 1024  # plausibility bound while resyncing
_SEGMENT_GLOB = "segment-*.wal"


# ----------------------------------------------------------------------
# Payload codecs
# ----------------------------------------------------------------------
def _pack_payload(kind: int, header: dict, arrays: list[np.ndarray]) -> bytes:
    """kind byte + u32 JSON length + JSON header + raw array buffers."""
    descriptors = []
    buffers = []
    for array in arrays:
        array = np.ascontiguousarray(array)
        descriptors.append([array.dtype.str, list(array.shape)])
        buffers.append(array.tobytes())
    blob = json.dumps(
        dict(header, arrays=descriptors), separators=(",", ":")
    ).encode("utf-8")
    return bytes([kind]) + struct.pack("<I", len(blob)) + blob + b"".join(buffers)


def _unpack_payload(payload: bytes) -> tuple[int, dict, list[np.ndarray]]:
    if len(payload) < 5:
        raise IntegrityError(f"journal payload too short ({len(payload)} bytes)")
    kind = payload[0]
    if kind not in _RECORD_KINDS:
        raise IntegrityError(f"unknown journal record kind {kind}")
    (blob_len,) = struct.unpack_from("<I", payload, 1)
    if 5 + blob_len > len(payload):
        raise IntegrityError("journal payload header overruns the record")
    header = json.loads(payload[5 : 5 + blob_len].decode("utf-8"))
    offset = 5 + blob_len
    arrays = []
    for dtype_str, shape in header.get("arrays", []):
        dtype = np.dtype(dtype_str)
        count = int(np.prod(shape)) if shape else 1
        nbytes = dtype.itemsize * count
        if offset + nbytes > len(payload):
            raise IntegrityError("journal payload arrays overrun the record")
        arrays.append(
            np.frombuffer(payload, dtype=dtype, count=count, offset=offset)
            .reshape(shape)
            .copy()
        )
        offset += nbytes
    if offset != len(payload):
        raise IntegrityError(
            f"journal payload has {len(payload) - offset} trailing bytes"
        )
    return kind, header, arrays


def encode_event(event) -> bytes:
    """Encode one :class:`~repro.serve.events.StreamEvent` payload.

    Hand-formats the JSON header instead of round-tripping a dict
    through :func:`json.dumps`: this codec sits on the hot write-ahead
    path (every ingested event pays for it before the model runs), and
    the dict build + serializer cost dominated the journal's overhead.
    The bytes produced are identical to the ``_pack_payload`` route.
    """
    features = event.node_features
    if features:
        nodes = sorted(features)
        arrays = [np.ascontiguousarray(np.asarray(features[n])) for n in nodes]
        descriptors = ",".join(
            '["%s",[%s]]' % (a.dtype.str, ",".join(str(d) for d in a.shape))
            for a in arrays
        )
        buffers = b"".join(a.tobytes() for a in arrays)
        nodes_json = "[%s]" % ",".join(str(int(n)) for n in nodes)
    else:
        descriptors, buffers, nodes_json = "", b"", "[]"
    time = float(event.time)
    label = event.label
    blob = (
        '{"sid":%s,"src":%d,"dst":%d,"time":%s,"label":%s,"nodes":%s,"arrays":[%s]}'
        % (
            json.dumps(str(event.session_id)),
            event.src,
            event.dst,
            repr(time) if math.isfinite(time) else json.dumps(time),
            "null" if label is None else int(label),
            nodes_json,
            descriptors,
        )
    ).encode("utf-8")
    return bytes([RECORD_EVENT]) + struct.pack("<I", len(blob)) + blob + buffers


def decode_event(payload: bytes):
    """Decode an event payload back into a :class:`StreamEvent`."""
    from repro.serve.events import StreamEvent

    kind, header, arrays = _unpack_payload(payload)
    if kind != RECORD_EVENT:
        raise IntegrityError(f"expected an event record, got kind {kind}")
    nodes = header.get("nodes", [])
    if len(nodes) != len(arrays):
        raise IntegrityError("event record nodes/arrays mismatch")
    return StreamEvent(
        session_id=header["sid"],
        src=header["src"],
        dst=header["dst"],
        time=header["time"],
        node_features=dict(zip(nodes, arrays)) or None,
        label=header.get("label"),
    )


def encode_observation(graph) -> bytes:
    """Encode one labelled :class:`~repro.graph.ctdn.CTDN` observation."""
    store = graph.store
    header = {
        "gid": graph.graph_id,
        "n": int(graph.num_nodes),
        "label": None if graph.label is None else int(graph.label),
    }
    arrays = [graph.features, store.src, store.dst, store.t]
    return _pack_payload(RECORD_OBSERVATION, header, arrays)


def decode_observation(payload: bytes):
    """Decode an observation payload back into a :class:`CTDN`."""
    from repro.graph.ctdn import CTDN
    from repro.graph.store import EventStore

    kind, header, arrays = _unpack_payload(payload)
    if kind != RECORD_OBSERVATION:
        raise IntegrityError(f"expected an observation record, got kind {kind}")
    if len(arrays) != 4:
        raise IntegrityError(
            f"observation record carries {len(arrays)} arrays, expected 4"
        )
    features, src, dst, t = arrays
    num_nodes = int(header["n"])
    store = EventStore(src, dst, t, num_nodes)
    return CTDN.from_store(
        num_nodes,
        features,
        store,
        label=header.get("label"),
        graph_id=header.get("gid"),
    )


# ----------------------------------------------------------------------
# Record framing
# ----------------------------------------------------------------------
def _frame(seq: int, payload: bytes) -> bytes:
    crc = zlib.crc32(payload, zlib.crc32(_CRC_PREFIX.pack(seq, len(payload))))
    return _HEADER.pack(_MAGIC, seq, len(payload), crc & 0xFFFFFFFF) + payload


def _try_parse(data: bytes, offset: int):
    """Parse one record at ``offset``; None if it does not verify."""
    if offset + _HEADER_SIZE > len(data):
        return None
    magic, seq, length, crc = _HEADER.unpack_from(data, offset)
    if magic != _MAGIC or length > _MAX_PAYLOAD:
        return None
    end = offset + _HEADER_SIZE + length
    if end > len(data):
        return None
    payload = data[offset + _HEADER_SIZE : end]
    expected = zlib.crc32(payload, zlib.crc32(_CRC_PREFIX.pack(seq, length)))
    if crc != expected & 0xFFFFFFFF:
        return None
    return seq, payload, end - offset


def _find_next_record(data: bytes, start: int):
    """Byte offset of the next verifiable record at/after ``start``."""
    offset = data.find(_MAGIC, start)
    while offset != -1:
        if _try_parse(data, offset) is not None:
            return offset
        offset = data.find(_MAGIC, offset + 1)
    return None


@dataclass(frozen=True)
class JournalRecord:
    """One verified record, with its provenance in the segment file."""

    seq: int
    kind: int
    payload: bytes
    segment: str
    offset: int
    length: int

    def decode(self):
        """The original :class:`StreamEvent` or :class:`CTDN`."""
        if self.kind == RECORD_EVENT:
            return decode_event(self.payload)
        return decode_observation(self.payload)


@dataclass(frozen=True)
class JournalGap:
    """A quarantined byte range the scanner could not verify.

    ``reason`` is ``"torn-tail"`` (the gap runs to end-of-file — the
    benign artifact of a crash mid-append) or ``"corrupt-record"`` (the
    scanner resynced to a later valid record; whatever lived in
    ``[start_offset, end_offset)`` is lost).  ``last_seq_before`` /
    ``first_seq_after`` bound the sequence numbers that may be missing
    (either may be None at a segment edge).
    """

    segment: str
    start_offset: int
    end_offset: int
    reason: str
    last_seq_before: int | None
    first_seq_after: int | None

    def describe(self) -> str:
        lost = "?"
        if self.last_seq_before is not None and self.first_seq_after is not None:
            low, high = self.last_seq_before + 1, self.first_seq_after - 1
            lost = f"{low}..{high}" if low <= high else "none"
        elif self.last_seq_before is not None:
            lost = f">{self.last_seq_before}"
        return (
            f"{self.segment}: bytes {self.start_offset}-{self.end_offset} "
            f"{self.reason} (seqs lost: {lost})"
        )


def _first_seq_of(path: Path) -> int:
    stem = path.name[len("segment-") : -len(".wal")]
    try:
        return int(stem)
    except ValueError:
        raise IntegrityError(f"not a journal segment name: {path.name}") from None


def _segment_name(first_seq: int) -> str:
    return f"segment-{first_seq:020d}.wal"


def list_segments(directory: str | Path) -> list[Path]:
    """Segment files of a journal directory, in sequence order."""
    return sorted(Path(directory).glob(_SEGMENT_GLOB), key=_first_seq_of)


def scan_segment(path: str | Path) -> tuple[list[JournalRecord], list[JournalGap]]:
    """Verify one segment: records in order, plus quarantined gaps.

    Never raises on damage — a corrupt record becomes a
    :class:`JournalGap` and scanning resyncs on the next verifiable
    magic marker.  A gap that reaches end-of-file is classified
    ``"torn-tail"`` here; :func:`scan_journal` reclassifies it as
    corruption when later segments exist (a true torn tail can only be
    in the newest segment).
    """
    path = Path(path)
    data = path.read_bytes()
    records: list[JournalRecord] = []
    gaps: list[JournalGap] = []
    offset = 0
    last_seq: int | None = None
    size = len(data)
    while offset < size:
        parsed = _try_parse(data, offset)
        if parsed is not None:
            seq, payload, length = parsed
            records.append(
                JournalRecord(seq, payload[0], payload, path.name, offset, length)
            )
            last_seq = seq
            offset += length
            continue
        resumed = _find_next_record(data, offset + 1)
        if resumed is None:
            gaps.append(
                JournalGap(path.name, offset, size, "torn-tail", last_seq, None)
            )
            break
        next_seq, _, _ = _try_parse(data, resumed)
        gaps.append(
            JournalGap(
                path.name, offset, resumed, "corrupt-record", last_seq, next_seq
            )
        )
        offset = resumed
    return records, gaps


@dataclass(frozen=True)
class JournalScan:
    """The verified contents of a whole journal directory."""

    records: list[JournalRecord]
    gaps: list[JournalGap]

    @property
    def last_seq(self) -> int:
        return self.records[-1].seq if self.records else 0

    @property
    def torn_tail(self) -> bool:
        """True when the only tail damage is the benign crash artifact."""
        return bool(self.gaps) and self.gaps[-1].reason == "torn-tail"

    def corrupt_gaps(self) -> list[JournalGap]:
        """Gaps that are real data loss (everything but a torn tail)."""
        return [gap for gap in self.gaps if gap.reason != "torn-tail"]

    def describe(self) -> str:
        if not self.gaps:
            return "journal clean: no gaps"
        lines = [f"journal gaps ({len(self.gaps)}):"]
        lines += [f"  - {gap.describe()}" for gap in self.gaps]
        return "\n".join(lines)


def scan_journal(directory: str | Path, after_seq: int = 0) -> JournalScan:
    """Scan every segment of a journal; records with ``seq > after_seq``.

    Gap classification is journal-wide: a gap that reaches the end of a
    *non-final* segment cannot be a torn tail (the writer had already
    rotated past it), so it is reported as ``"corrupt-record"`` with
    the next segment's first record as its resync point.
    """
    segments = list_segments(directory)
    records: list[JournalRecord] = []
    gaps: list[JournalGap] = []
    for index, segment in enumerate(segments):
        seg_records, seg_gaps = scan_segment(segment)
        final_segment = index == len(segments) - 1
        for gap in seg_gaps:
            if gap.reason == "torn-tail" and not final_segment:
                next_first = None
                for later in segments[index + 1 :]:
                    later_records, _ = scan_segment(later)
                    if later_records:
                        next_first = later_records[0].seq
                        break
                gap = JournalGap(
                    gap.segment,
                    gap.start_offset,
                    gap.end_offset,
                    "corrupt-record",
                    gap.last_seq_before,
                    next_first,
                )
            gaps.append(gap)
        records.extend(seg_records)
    _add_continuity_gaps(segments, records, gaps)
    if after_seq:
        records = [record for record in records if record.seq > after_seq]
    return JournalScan(records=records, gaps=gaps)


def _add_continuity_gaps(
    segments: list[Path],
    records: list[JournalRecord],
    gaps: list[JournalGap],
) -> None:
    """Report sequence holes that no byte-level gap explains.

    A non-final segment truncated *exactly* on a record boundary parses
    cleanly — every surviving record verifies, nothing is torn — yet
    its tail records are gone.  Journal-wide sequence continuity is the
    only witness: a jump from seq ``a`` to ``b > a + 1`` across a
    segment boundary with no covering gap means the bytes that held
    ``a+1..b-1`` were lost past the truncated end-of-file.
    """
    sizes = {path.name: path.stat().st_size for path in segments}
    for prev, nxt in zip(records, records[1:]):
        if nxt.seq <= prev.seq + 1:
            continue
        if any(
            (gap.last_seq_before or 0) <= prev.seq
            and (gap.first_seq_after is None or gap.first_seq_after >= nxt.seq)
            for gap in gaps
        ):
            continue
        start = prev.offset + prev.length
        end = max(sizes.get(prev.segment, start), start + 1)
        gaps.append(
            JournalGap(
                prev.segment, start, end, "corrupt-record", prev.seq, nxt.seq
            )
        )


def read_records(
    directory: str | Path, after_seq: int = 0
) -> Iterable[JournalRecord]:
    """Iterate verified records, firing the ``journal.replay`` point."""
    scan = scan_journal(directory, after_seq=after_seq)
    for record in scan.records:
        inject("journal.replay", context=record.payload)
        yield record


# ----------------------------------------------------------------------
# Writer
# ----------------------------------------------------------------------
class Journal:
    """Appending side of the write-ahead log.

    Parameters
    ----------
    directory:
        Segment directory (created if missing).  One journal per
        engine; a sharded cluster gives each shard its own directory.
    fsync:
        Durability policy, one of :data:`FSYNC_POLICIES` (see the
        module docstring for the trade-offs).
    fsync_interval:
        Max seconds between fsyncs under the ``interval`` policy.
    segment_bytes:
        Rotation threshold; a segment is closed once it exceeds this.
    registry:
        Metric registry for the ``journal/*`` series (the process
        global one is used otherwise).
    """

    def __init__(
        self,
        directory: str | Path,
        fsync: str = "interval",
        fsync_interval: float = 0.2,
        segment_bytes: int = 4 * 1024 * 1024,
        registry=None,
    ):
        if fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"fsync must be one of {FSYNC_POLICIES}, got {fsync!r}"
            )
        if fsync_interval <= 0:
            raise ValueError(f"fsync_interval must be positive, got {fsync_interval}")
        if segment_bytes <= 0:
            raise ValueError(f"segment_bytes must be positive, got {segment_bytes}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self.fsync_interval = float(fsync_interval)
        self.segment_bytes = int(segment_bytes)
        if registry is None:
            from repro import telemetry

            registry = telemetry.get_registry()
        self.registry = registry
        self._c_appends = registry.counter("journal/appends")
        self._c_bytes = registry.counter("journal/bytes_written")
        self._c_fsyncs = registry.counter("journal/fsyncs")
        self._c_rotations = registry.counter("journal/rotations")
        self._c_removed = registry.counter("journal/segments_removed")
        self._handle = None
        self._segment_path: Path | None = None
        self._segment_size = 0
        self._last_fsync = monotonic()
        self._closed = False
        self._open_tail()

    # -- startup -------------------------------------------------------
    def _open_tail(self) -> None:
        """Resume the newest segment, trimming a torn/corrupt tail."""
        segments = list_segments(self.directory)
        if not segments:
            self._next_seq = 1
            self._start_segment()
            return
        newest = segments[-1]
        records, gaps = scan_segment(newest)
        keep = records[-1].offset + records[-1].length if records else 0
        tail_damaged = bool(gaps) and gaps[-1].end_offset > keep
        if tail_damaged and newest.stat().st_size > keep:
            # Standard WAL reopen: the torn tail is the crash artifact;
            # drop it so fresh appends never interleave with garbage.
            # (Recovery must scan *before* the journal is reopened for
            # append if it wants to report the torn record.)
            with open(newest, "r+b") as handle:
                handle.truncate(keep)
        self._next_seq = records[-1].seq + 1 if records else _first_seq_of(newest)
        self._segment_path = newest
        self._handle = open(newest, "ab")
        self._segment_size = newest.stat().st_size

    def _start_segment(self) -> None:
        self._segment_path = self.directory / _segment_name(self._next_seq)
        self._handle = open(self._segment_path, "ab")
        self._segment_size = self._segment_path.stat().st_size

    # -- append path ---------------------------------------------------
    @property
    def last_seq(self) -> int:
        """Sequence number of the last appended record (0 when empty)."""
        return self._next_seq - 1

    def append_event(self, event) -> int:
        """Journal one stream event; returns its sequence number."""
        return self._append(encode_event(event))

    def append_observation(self, graph) -> int:
        """Journal one learner observation; returns its sequence number."""
        return self._append(encode_observation(graph))

    def _append(self, payload: bytes) -> int:
        if self._closed:
            raise ValueError(f"journal {self.directory} is closed")
        inject("journal.write", context=payload)
        if self._segment_size >= self.segment_bytes and self._segment_size > 0:
            self._rotate()
        seq = self._next_seq
        record = _frame(seq, payload)
        self._handle.write(record)
        self._next_seq += 1
        self._segment_size += len(record)
        self._c_appends.inc()
        self._c_bytes.inc(len(record))
        self._maybe_sync()
        return seq

    def _maybe_sync(self) -> None:
        if self.fsync == "always":
            self.sync()
        elif self.fsync == "interval":
            # Flush to the OS every append (survives process death);
            # fsync on the interval clock (bounds power-loss exposure).
            self._handle.flush()
            now = monotonic()
            if now - self._last_fsync >= self.fsync_interval:
                self._fsync(now)

    def _fsync(self, now: float | None = None) -> None:
        os.fsync(self._handle.fileno())
        self._last_fsync = monotonic() if now is None else now
        self._c_fsyncs.inc()

    def sync(self) -> None:
        """Force the buffered tail to stable storage."""
        if self._handle is not None and not self._handle.closed:
            self._handle.flush()
            self._fsync()

    def _rotate(self) -> None:
        # The finished segment must be durable before the writer moves
        # on — otherwise truncate_upto could delete the only copy of
        # records whose bytes never reached the disk.
        self._handle.flush()
        if self.fsync != "off":
            self._fsync()
        self._handle.close()
        self._start_segment()
        self._c_rotations.inc()

    # -- maintenance ---------------------------------------------------
    def truncate_upto(self, anchor_seq: int) -> int:
        """Delete whole segments at/behind a checkpoint anchor.

        A non-final segment covers ``[first, next_first - 1]`` (the
        names carry the bounds — no scan needed), so it can go once
        ``next_first - 1 <= anchor_seq``.  The active segment is never
        deleted.  Returns how many segments were removed.
        """
        segments = list_segments(self.directory)
        firsts = [_first_seq_of(path) for path in segments]
        removed = 0
        for path, next_first in zip(segments, firsts[1:]):
            if next_first - 1 <= anchor_seq and path != self._segment_path:
                path.unlink()
                removed += 1
        if removed:
            self._c_removed.inc(removed)
        return removed

    def stats(self) -> dict:
        """Operational snapshot: position, segment count, bytes on disk."""
        segments = list_segments(self.directory)
        return {
            "last_seq": self.last_seq,
            "segments": len(segments),
            "bytes": sum(path.stat().st_size for path in segments),
            "fsync": self.fsync,
        }

    def close(self) -> None:
        """Flush, fsync and close the active segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._handle is not None and not self._handle.closed:
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._handle.close()

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Journal({str(self.directory)!r}, fsync={self.fsync!r}, "
            f"last_seq={self.last_seq})"
        )
