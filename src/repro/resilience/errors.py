"""Typed failures raised by the resilience layer.

Every degraded path in the repo signals through one of these types, so
callers can distinguish "the data is bad" (:class:`IntegrityError`,
:class:`EventValidationError`) from "the system is protecting itself"
(:class:`CircuitOpenError`, :class:`DeadlineExceededError`) from "a
test injected this on purpose" (:class:`FaultInjected`).
"""

from __future__ import annotations


class IntegrityError(ValueError):
    """Persisted state (archive, checkpoint, cache entry) failed
    verification: corrupt, truncated, or checksum-mismatched.

    Subclasses :class:`ValueError` so pre-existing handlers written
    against the old untyped archive errors keep working.
    """


class CheckpointVersionError(IntegrityError):
    """A serving checkpoint was written by a different ``CODE_VERSION``.

    Session state layouts and learner optimizer state are only
    guaranteed bit-compatible within one code version, so
    :meth:`StreamingEngine.restore` refuses a mismatched checkpoint by
    default rather than best-effort loading it.  ``stored`` / ``current``
    carry the two versions for the operator.
    """

    def __init__(self, message: str, stored: str | None = None, current: str | None = None):
        super().__init__(message)
        self.stored = stored
        self.current = current


class FaultInjected(RuntimeError):
    """The deterministic fault harness fired at an injection point.

    Only ever raised while a :class:`~repro.resilience.faults.FaultPlan`
    is active; production code never constructs it.
    """


class CircuitOpenError(RuntimeError):
    """A circuit breaker rejected the call without attempting it."""


class DeadlineExceededError(TimeoutError):
    """A guarded call finished (or was abandoned) past its deadline."""


class EventValidationError(ValueError):
    """A stream event failed validation under the ``strict`` policy."""

    def __init__(self, message: str, violations: list[str] | None = None):
        super().__init__(message)
        self.violations = list(violations or [])
