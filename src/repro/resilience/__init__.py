"""Resilience layer: fault injection and the hardening it exercises.

The package has two halves that deliberately live together:

* **Harness** — :mod:`repro.resilience.faults` provides seeded,
  replayable :class:`FaultPlan`\\ s fired at named ``inject(...)`` points
  scattered through the codebase (no-ops unless a plan is active), plus
  file/feed corruption helpers.  :mod:`repro.resilience.chaos` (not
  imported here; pulled in lazily by the ``repro chaos`` CLI verb and
  the chaos tests) runs the scenario suite that proves the recovery
  paths work.
* **Hardening** — typed errors (:mod:`~repro.resilience.errors`), the
  shared :class:`RetryPolicy`, the serving-path
  :class:`CircuitBreaker`/deadline guard, and serve-side
  :class:`EventValidator` admission control.

:class:`EventValidator` is re-exported lazily (PEP 562): its module
imports :mod:`repro.serve`, which itself imports this package, and the
eager modules below must stay importable from inside that cycle.

See ``RELIABILITY.md`` for the failure-mode → detection → recovery
catalog.
"""

from repro.resilience.breaker import (
    BreakerStats,
    CircuitBreaker,
    Deadline,
    call_with_deadline,
)
from repro.resilience.errors import (
    CheckpointVersionError,
    CircuitOpenError,
    DeadlineExceededError,
    EventValidationError,
    FaultInjected,
    IntegrityError,
)
from repro.resilience.faults import (
    FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    activate,
    active,
    corrupt_file,
    enabled,
    inject,
    perturb_feed,
    truncate_file,
)
from repro.resilience.journal import (
    FSYNC_POLICIES,
    Journal,
    JournalGap,
    JournalRecord,
    JournalScan,
    list_segments,
    read_records,
    scan_journal,
    scan_segment,
)
from repro.resilience.retry import RetryPolicy

_LAZY = {"EventValidator", "VALIDATION_POLICIES"}


def __getattr__(name: str):
    if name in _LAZY:
        from repro.resilience import validation

        return getattr(validation, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "FAULT_KINDS",
    "FSYNC_POLICIES",
    "VALIDATION_POLICIES",
    "BreakerStats",
    "CheckpointVersionError",
    "CircuitBreaker",
    "CircuitOpenError",
    "Deadline",
    "DeadlineExceededError",
    "EventValidationError",
    "EventValidator",
    "FaultInjected",
    "FaultPlan",
    "FaultSpec",
    "IntegrityError",
    "Journal",
    "JournalGap",
    "JournalRecord",
    "JournalScan",
    "RetryPolicy",
    "activate",
    "active",
    "call_with_deadline",
    "corrupt_file",
    "enabled",
    "inject",
    "list_segments",
    "perturb_feed",
    "read_records",
    "scan_journal",
    "scan_segment",
    "truncate_file",
]
