"""Deterministic fault injection: seeded plans fired at named points.

Production code is sprinkled with cheap named hooks::

    from repro.resilience.faults import inject
    ...
    inject("serve.apply")

While no plan is active (the default, and the only state production
processes ever see) :func:`inject` is a single global load plus a
``None`` check — effectively compiled out.  Tests and the ``repro
chaos`` CLI activate a :class:`FaultPlan` for a region::

    plan = FaultPlan(seed=7).add("serve.apply", kind="raise", at=(3,))
    with activate(plan):
        engine.ingest_many(feed)          # 4th apply raises FaultInjected
    assert plan.injected == 1

Everything a plan does is a pure function of its seed and the sequence
of :func:`inject` calls, so a chaos scenario replays identically.

Besides the in-process hooks, this module carries the seeded
*state-corruption* helpers the chaos suite uses against on-disk and
on-wire artifacts: :func:`corrupt_file`, :func:`truncate_file` and
:func:`perturb_feed`.
"""

from __future__ import annotations

import contextlib
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.resilience.errors import FaultInjected

#: Supported fault kinds, in rough order of destructiveness.
FAULT_KINDS = ("raise", "timeout", "delay", "nan", "inf", "call")


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault: *where* it fires, *when*, and *what* it does.

    Parameters
    ----------
    point:
        Injection-point name (see RELIABILITY.md for the catalog).
    kind:
        One of :data:`FAULT_KINDS`:

        - ``"raise"`` — raise ``exception`` (default
          :class:`FaultInjected`);
        - ``"timeout"`` — raise :class:`TimeoutError`;
        - ``"delay"`` — sleep ``seconds`` (latency injection);
        - ``"nan"`` / ``"inf"`` — poison one seeded element of every
          array in the call's context (parameters, gradients);
        - ``"call"`` — invoke ``action(context)`` (escape hatch).
    at:
        Fire only on these 0-based call indices of the point.  ``None``
        fires on every call (subject to ``probability``/``times``).
    probability:
        Seeded per-call coin; ``None`` means always (when ``at`` allows).
    times:
        Stop after this many firings (``None`` = unlimited).
    """

    point: str
    kind: str = "raise"
    at: tuple[int, ...] | None = None
    probability: float | None = None
    times: int | None = None
    message: str = ""
    exception: type[BaseException] = FaultInjected
    seconds: float = 0.0
    action: Callable | None = None

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; choose from {FAULT_KINDS}")
        if self.probability is not None and not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {self.probability}")
        if self.times is not None and self.times < 1:
            raise ValueError(f"times must be >= 1, got {self.times}")
        if self.kind == "call" and self.action is None:
            raise ValueError("kind='call' needs an action callable")


@dataclass
class FiredFault:
    """Journal entry for one fault that actually fired."""

    point: str
    kind: str
    call_index: int


class FaultPlan:
    """A seeded, replayable set of :class:`FaultSpec` entries.

    The plan owns a private RNG (probability coins, poison positions),
    a per-point call counter and a journal of fired faults, so the same
    plan against the same call sequence injects the same faults.
    """

    def __init__(self, specs: Sequence[FaultSpec] = (), seed: int = 0):
        self.specs: list[FaultSpec] = list(specs)
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self._calls: dict[str, int] = {}
        self._fired_per_spec: dict[int, int] = {}
        self.journal: list[FiredFault] = []

    # -- construction --------------------------------------------------
    def add(self, point: str, kind: str = "raise", **kwargs) -> "FaultPlan":
        """Append a spec (builder style); returns ``self``."""
        self.specs.append(FaultSpec(point=point, kind=kind, **kwargs))
        return self

    # -- introspection -------------------------------------------------
    @property
    def injected(self) -> int:
        """Total faults fired so far."""
        return len(self.journal)

    def calls(self, point: str) -> int:
        """How many times ``point`` has been reached."""
        return self._calls.get(point, 0)

    def fired(self, point: str | None = None) -> int:
        """Faults fired at ``point`` (all points when ``None``)."""
        if point is None:
            return len(self.journal)
        return sum(1 for entry in self.journal if entry.point == point)

    # -- firing --------------------------------------------------------
    def fire(self, point: str, context=None) -> None:
        """Account one call of ``point`` and execute any due faults."""
        index = self._calls.get(point, 0)
        self._calls[point] = index + 1
        for spec_id, spec in enumerate(self.specs):
            if spec.point != point:
                continue
            if spec.at is not None and index not in spec.at:
                continue
            fired = self._fired_per_spec.get(spec_id, 0)
            if spec.times is not None and fired >= spec.times:
                continue
            if spec.probability is not None and self._rng.random() >= spec.probability:
                continue
            self._fired_per_spec[spec_id] = fired + 1
            self.journal.append(FiredFault(point=point, kind=spec.kind, call_index=index))
            _count_injected(point)
            self._execute(spec, point, context)

    def _execute(self, spec: FaultSpec, point: str, context) -> None:
        if spec.kind == "raise":
            raise spec.exception(spec.message or f"injected fault at {point!r}")
        if spec.kind == "timeout":
            raise TimeoutError(spec.message or f"injected timeout at {point!r}")
        if spec.kind == "delay":
            time.sleep(spec.seconds)
            return
        if spec.kind in ("nan", "inf"):
            value = float("nan") if spec.kind == "nan" else float("inf")
            for array in _context_arrays(context):
                if array.size:
                    flat = array.reshape(-1)
                    flat[int(self._rng.integers(flat.shape[0]))] = value
            return
        spec.action(context)


def _count_injected(point: str) -> None:
    """Record the firing on the active telemetry registry."""
    from repro import telemetry

    telemetry.get_registry().counter("resilience/faults_injected", point=point).inc()


def _context_arrays(context) -> list[np.ndarray]:
    """Resolve an injection context to the ndarrays it exposes.

    Accepts ``None``, an ndarray, anything with a ``.data`` ndarray
    (tensors, parameters), an iterable of those, or a zero-argument
    callable returning any of the above (evaluated lazily, only when a
    fault actually fires).
    """
    if context is None:
        return []
    if callable(context) and not isinstance(context, np.ndarray):
        context = context()
    if context is None:
        return []
    if isinstance(context, np.ndarray):
        return [context]
    data = getattr(context, "data", None)
    if isinstance(data, np.ndarray):
        return [data]
    if isinstance(context, Iterable):
        arrays: list[np.ndarray] = []
        for item in context:
            arrays.extend(_context_arrays(item))
        return arrays
    return []


# ----------------------------------------------------------------------
# Global activation
# ----------------------------------------------------------------------
_active: FaultPlan | None = None


def active() -> FaultPlan | None:
    """The plan currently receiving :func:`inject` calls (or ``None``)."""
    return _active


def enabled() -> bool:
    """Whether any fault plan is active."""
    return _active is not None


def inject(point: str, context=None) -> None:
    """Fire ``point`` on the active plan; a near-free no-op otherwise.

    ``context`` may be a zero-argument callable so hot paths pay
    nothing to describe their poisonable state unless a fault fires.
    """
    plan = _active
    if plan is None:
        return
    plan.fire(point, context)


@contextlib.contextmanager
def activate(plan: FaultPlan):
    """Make ``plan`` the active plan for the ``with`` region (reentrant:
    the previous plan, if any, is restored on exit)."""
    global _active
    previous = _active
    _active = plan
    try:
        yield plan
    finally:
        _active = previous


# ----------------------------------------------------------------------
# State-corruption helpers (on-disk artifacts)
# ----------------------------------------------------------------------
def corrupt_file(
    path: str | Path,
    rng: np.random.Generator | int = 0,
    nbytes: int = 1,
) -> list[int]:
    """Flip ``nbytes`` seeded random bytes of ``path`` in place.

    Each chosen byte is XORed with a random non-zero mask, so the file
    is guaranteed to differ at every returned offset.  Returns the
    corrupted offsets (sorted).
    """
    if isinstance(rng, (int, np.integer)):
        rng = np.random.default_rng(int(rng))
    path = Path(path)
    blob = bytearray(path.read_bytes())
    if not blob:
        raise ValueError(f"{path} is empty; nothing to corrupt")
    count = min(nbytes, len(blob))
    offsets = sorted(int(i) for i in rng.choice(len(blob), size=count, replace=False))
    for offset in offsets:
        blob[offset] ^= int(rng.integers(1, 256))
    path.write_bytes(bytes(blob))
    return offsets


def truncate_file(path: str | Path, keep_fraction: float = 0.5) -> int:
    """Truncate ``path`` to ``keep_fraction`` of its size; returns the
    new size in bytes (at least 1 so the file stays non-empty)."""
    if not 0.0 <= keep_fraction < 1.0:
        raise ValueError(f"keep_fraction must be in [0, 1), got {keep_fraction}")
    path = Path(path)
    size = path.stat().st_size
    keep = max(1, int(size * keep_fraction))
    with open(path, "rb+") as handle:
        handle.truncate(keep)
    return keep


# ----------------------------------------------------------------------
# Event-stream perturbation (on-wire artifacts)
# ----------------------------------------------------------------------
def perturb_feed(
    feed: Sequence,
    rng: np.random.Generator | int = 0,
    drop: float = 0.0,
    duplicate: float = 0.0,
    swap: float = 0.0,
) -> list:
    """A seeded, disorder-injected copy of an event feed.

    Per event: with probability ``drop`` it vanishes, with probability
    ``duplicate`` it appears twice.  Afterwards, a ``swap`` fraction of
    adjacent pairs is exchanged (local reordering — the shape real
    multi-source ingestion skew takes).  The input is untouched.
    """
    for name, p in (("drop", drop), ("duplicate", duplicate), ("swap", swap)):
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"{name} must be in [0, 1], got {p}")
    if isinstance(rng, (int, np.integer)):
        rng = np.random.default_rng(int(rng))
    out = []
    for event in feed:
        roll = rng.random()
        if roll < drop:
            continue
        out.append(event)
        if roll < drop + duplicate:
            out.append(event)
    for i in range(len(out) - 1):
        if rng.random() < swap:
            out[i], out[i + 1] = out[i + 1], out[i]
    return out
