"""Circuit breaker + deadline guard for the serving hot path.

A :class:`CircuitBreaker` tracks consecutive failures of a guarded
operation and, once a threshold is crossed, *opens*: further calls are
rejected instantly with :class:`CircuitOpenError` instead of hammering
a failing dependency.  After a cooldown it lets one probe call through
(*half-open*); success closes the circuit, failure re-opens it.

The :class:`Deadline` helper implements the cooperative flavour of
timeouts that fits a pure-Python, CPU-bound engine: the call is not
preempted, but a breach is detected the moment it returns, counted,
and surfaced as :class:`DeadlineExceededError` so callers (and the
breaker) treat the slow path as a failure.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from repro.resilience.errors import CircuitOpenError, DeadlineExceededError

#: Breaker states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


@dataclass
class BreakerStats:
    """Lifetime accounting for one breaker."""

    failures: int = 0
    successes: int = 0
    rejections: int = 0
    opens: int = 0


class CircuitBreaker:
    """Classic three-state (closed / open / half-open) circuit breaker.

    Parameters
    ----------
    failure_threshold:
        Consecutive failures that trip the circuit open.
    cooldown:
        Seconds the circuit stays open before admitting a probe call.
    clock:
        Injectable monotonic clock (tests drive it manually).
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        cooldown: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError(f"failure_threshold must be >= 1, got {failure_threshold}")
        if cooldown < 0:
            raise ValueError(f"cooldown must be >= 0, got {cooldown}")
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self._clock = clock
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self.stats = BreakerStats()

    @property
    def state(self) -> str:
        """Current state, advancing ``open`` → ``half_open`` lazily."""
        if self._state == OPEN and self._clock() - self._opened_at >= self.cooldown:
            self._state = HALF_OPEN
        return self._state

    def allow(self) -> bool:
        """Whether a call may proceed right now (counts rejections)."""
        state = self.state
        if state == OPEN:
            self.stats.rejections += 1
            return False
        return True

    def record_success(self) -> None:
        self.stats.successes += 1
        self._consecutive_failures = 0
        self._state = CLOSED

    def record_failure(self) -> None:
        self.stats.failures += 1
        self._consecutive_failures += 1
        if self._state == HALF_OPEN or self._consecutive_failures >= self.failure_threshold:
            if self._state != OPEN:
                self.stats.opens += 1
            self._state = OPEN
            self._opened_at = self._clock()

    def call(self, fn: Callable, *args, **kwargs):
        """Run ``fn`` under the breaker: reject when open, record the
        outcome otherwise."""
        if not self.allow():
            raise CircuitOpenError(
                f"circuit open after {self._consecutive_failures} consecutive failures"
            )
        try:
            result = fn(*args, **kwargs)
        except Exception:
            self.record_failure()
            raise
        self.record_success()
        return result


@dataclass
class Deadline:
    """A wall-clock budget for one operation (cooperative).

    ``expired()`` / ``remaining()`` let long loops poll; ``guard``-style
    wrapping happens in :func:`call_with_deadline`.
    """

    seconds: float
    clock: Callable[[], float] = time.monotonic
    started: float = field(default=0.0)

    def __post_init__(self):
        if self.seconds <= 0:
            raise ValueError(f"deadline must be positive, got {self.seconds}")
        if not self.started:
            self.started = self.clock()

    def elapsed(self) -> float:
        return self.clock() - self.started

    def remaining(self) -> float:
        return self.seconds - self.elapsed()

    def expired(self) -> bool:
        return self.remaining() <= 0.0


def call_with_deadline(
    fn: Callable,
    seconds: float,
    *args,
    clock: Callable[[], float] = time.monotonic,
    **kwargs,
):
    """Run ``fn`` and raise :class:`DeadlineExceededError` if it took
    longer than ``seconds``.

    The call is not interrupted mid-flight (pure-Python CPU work cannot
    be safely preempted); the breach is detected on return, which is
    enough for the breaker to treat the dependency as unhealthy and for
    telemetry to count the violation.  Returns ``(result, elapsed)``.
    """
    deadline = Deadline(seconds=seconds, clock=clock)
    result = fn(*args, **kwargs)
    elapsed = deadline.elapsed()
    if elapsed > seconds:
        raise DeadlineExceededError(
            f"call took {elapsed:.3f}s, exceeding the {seconds:.3f}s deadline"
        )
    return result, elapsed
