"""The :class:`Tensor` class: a numpy array with a reverse-mode gradient tape.

The design follows the classic define-by-run model: every differentiable
operation returns a new :class:`Tensor` holding references to its parents
and a closure that accumulates gradients into them.  Calling
:meth:`Tensor.backward` on a scalar output topologically sorts the tape
and runs the closures in reverse.

The engine is deliberately small but covers everything the TP-GNN models
need: broadcasting arithmetic, matrix products, reductions over axes,
gating nonlinearities, softmax, indexing/slicing, concatenation and
stacking (needed for building node-embedding matrices edge by edge).
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Iterable, Sequence

import numpy as np

_GRAD_STATE = threading.local()


def is_grad_enabled() -> bool:
    """Return whether operations record a gradient tape."""
    return getattr(_GRAD_STATE, "enabled", True)


@contextlib.contextmanager
def no_grad():
    """Context manager that disables tape construction.

    Used for evaluation loops, where building the graph would waste
    memory and time.  Mirrors ``torch.no_grad``.
    """
    previous = is_grad_enabled()
    _GRAD_STATE.enabled = False
    try:
        yield
    finally:
        _GRAD_STATE.enabled = previous


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` after numpy broadcasting.

    Gradients flowing into a broadcast operand must be summed over the
    broadcast dimensions so the accumulated gradient has the operand's
    original shape.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were 1 in the original shape.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value) -> np.ndarray:
    """Coerce scalars / lists / arrays to a float64 numpy array."""
    if isinstance(value, np.ndarray):
        if value.dtype != np.float64:
            return value.astype(np.float64)
        return value
    return np.asarray(value, dtype=np.float64)


class Tensor:
    """An n-dimensional array with reverse-mode automatic differentiation.

    Parameters
    ----------
    data:
        Anything convertible to a float64 numpy array.
    requires_grad:
        When True, operations involving this tensor are recorded so that
        :meth:`backward` can compute ``d(output)/d(self)`` into
        :attr:`grad`.
    name:
        Optional human-readable label used in error messages and
        debugging output.
    """

    __slots__ = ("data", "grad", "requires_grad", "name", "_backward", "_parents")

    def __init__(self, data, requires_grad: bool = False, name: str | None = None):
        self.data: np.ndarray = _as_array(data)
        self.requires_grad: bool = bool(requires_grad)
        self.grad: np.ndarray | None = None
        self.name = name
        self._backward: Callable[[], None] | None = None
        self._parents: tuple[Tensor, ...] = ()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def zeros(*shape: int, requires_grad: bool = False) -> "Tensor":
        """Return a tensor of zeros with the given shape."""
        return Tensor(np.zeros(shape), requires_grad=requires_grad)

    @staticmethod
    def ones(*shape: int, requires_grad: bool = False) -> "Tensor":
        """Return a tensor of ones with the given shape."""
        return Tensor(np.ones(shape), requires_grad=requires_grad)

    @staticmethod
    def from_op(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], Iterable[np.ndarray | None]],
    ) -> "Tensor":
        """Build an op result wired into the tape.

        ``backward`` receives the upstream gradient and must return one
        gradient array (or ``None``) per parent, already shaped like the
        corresponding parent.  Tape construction is skipped entirely when
        gradients are globally disabled or no parent requires them.
        """
        requires = is_grad_enabled() and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = tuple(parents)

            def _run() -> None:
                grads = backward(out.grad)
                for parent, grad in zip(out._parents, grads):
                    if grad is None or not parent.requires_grad:
                        continue
                    if parent.grad is None:
                        parent.grad = np.zeros_like(parent.data)
                    parent.grad += grad

            out._backward = _run
        return out

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        """Shape of the underlying array."""
        return self.data.shape

    @property
    def ndim(self) -> int:
        """Number of dimensions."""
        return self.data.ndim

    @property
    def size(self) -> int:
        """Total number of elements."""
        return self.data.size

    def numpy(self) -> np.ndarray:
        """Return the raw numpy array (no copy)."""
        return self.data

    def item(self) -> float:
        """Return the value of a one-element tensor as a Python float."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but cut from the tape."""
        return Tensor(self.data, requires_grad=False, name=self.name)

    def copy(self) -> "Tensor":
        """Return a detached deep copy of this tensor's data."""
        return Tensor(self.data.copy(), requires_grad=False, name=self.name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        flag = ", requires_grad=True" if self.requires_grad else ""
        label = f", name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.shape}{flag}{label})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------
    def backward(self, grad: np.ndarray | None = None) -> None:
        """Run reverse-mode differentiation from this tensor.

        Parameters
        ----------
        grad:
            Upstream gradient.  Defaults to 1.0, which is only valid for
            scalar outputs (e.g. a loss value).
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError(
                    "backward() without an explicit gradient requires a scalar output; "
                    f"got shape {self.shape}"
                )
            grad = np.ones_like(self.data)
        self.grad = _as_array(grad).reshape(self.data.shape)

        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        # Iterative DFS: edge sequences in TP-GNN produce tapes thousands of
        # nodes deep, which would overflow Python's recursion limit.
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward()

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    # ------------------------------------------------------------------
    # Operator overloads (implementations live in repro.tensor.ops)
    # ------------------------------------------------------------------
    def __add__(self, other):
        from repro.tensor import ops

        return ops.add(self, _ensure_tensor(other))

    def __radd__(self, other):
        return self.__add__(other)

    def __sub__(self, other):
        from repro.tensor import ops

        return ops.sub(self, _ensure_tensor(other))

    def __rsub__(self, other):
        from repro.tensor import ops

        return ops.sub(_ensure_tensor(other), self)

    def __mul__(self, other):
        from repro.tensor import ops

        return ops.mul(self, _ensure_tensor(other))

    def __rmul__(self, other):
        return self.__mul__(other)

    def __truediv__(self, other):
        from repro.tensor import ops

        return ops.div(self, _ensure_tensor(other))

    def __rtruediv__(self, other):
        from repro.tensor import ops

        return ops.div(_ensure_tensor(other), self)

    def __neg__(self):
        from repro.tensor import ops

        return ops.neg(self)

    def __pow__(self, exponent: float):
        from repro.tensor import ops

        return ops.power(self, float(exponent))

    def __matmul__(self, other):
        from repro.tensor import ops

        return ops.matmul(self, _ensure_tensor(other))

    def __getitem__(self, index):
        from repro.tensor import ops

        return ops.getitem(self, index)

    # ------------------------------------------------------------------
    # Method-style ops
    # ------------------------------------------------------------------
    def matmul(self, other) -> "Tensor":
        """Matrix product ``self @ other``."""
        return self.__matmul__(other)

    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Sum over ``axis`` (all elements when None)."""
        from repro.tensor import ops

        return ops.sum(self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Arithmetic mean over ``axis``."""
        from repro.tensor import ops

        return ops.mean(self, axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Maximum over ``axis``."""
        from repro.tensor import ops

        return ops.max(self, axis=axis, keepdims=keepdims)

    def reshape(self, *shape: int) -> "Tensor":
        """Return a reshaped view of this tensor."""
        from repro.tensor import ops

        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return ops.reshape(self, shape)

    def transpose(self, axes: Sequence[int] | None = None) -> "Tensor":
        """Permute axes (reverse them when ``axes`` is None)."""
        from repro.tensor import ops

        return ops.transpose(self, axes)

    @property
    def T(self) -> "Tensor":
        """Transpose of a 2-d tensor."""
        return self.transpose()

    def exp(self) -> "Tensor":
        """Elementwise exponential."""
        from repro.tensor import ops

        return ops.exp(self)

    def log(self) -> "Tensor":
        """Elementwise natural logarithm."""
        from repro.tensor import ops

        return ops.log(self)

    def sqrt(self) -> "Tensor":
        """Elementwise square root."""
        from repro.tensor import ops

        return ops.power(self, 0.5)

    def tanh(self) -> "Tensor":
        """Elementwise hyperbolic tangent."""
        from repro.tensor import ops

        return ops.tanh(self)

    def sigmoid(self) -> "Tensor":
        """Elementwise logistic sigmoid."""
        from repro.tensor import ops

        return ops.sigmoid(self)

    def relu(self) -> "Tensor":
        """Elementwise rectified linear unit."""
        from repro.tensor import ops

        return ops.relu(self)

    def sin(self) -> "Tensor":
        """Elementwise sine (used by Time2Vec)."""
        from repro.tensor import ops

        return ops.sin(self)

    def softmax(self, axis: int = -1) -> "Tensor":
        """Softmax along ``axis``."""
        from repro.tensor import ops

        return ops.softmax(self, axis=axis)

    def abs(self) -> "Tensor":
        """Elementwise absolute value."""
        from repro.tensor import ops

        return ops.absolute(self)

    def clip(self, low: float, high: float) -> "Tensor":
        """Clamp values into ``[low, high]`` (gradient is a pass-through mask)."""
        from repro.tensor import ops

        return ops.clip(self, low, high)


def _ensure_tensor(value) -> Tensor:
    """Wrap non-Tensor operands as constant tensors."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)
