"""Differentiable operations on :class:`~repro.tensor.tensor.Tensor`.

Each function computes a forward value with numpy and registers a
backward closure via :meth:`Tensor.from_op`.  All binary operations are
broadcasting-aware; gradients are reduced back to each operand's shape
with :func:`~repro.tensor.tensor._unbroadcast`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.tensor.tensor import Tensor, _ensure_tensor, _unbroadcast

# ----------------------------------------------------------------------
# Elementwise arithmetic
# ----------------------------------------------------------------------


def add(a: Tensor, b: Tensor) -> Tensor:
    """Elementwise addition with broadcasting."""
    data = a.data + b.data

    if data.shape == a.shape == b.shape:
        # No broadcasting happened: the gradient passes through as-is.
        def backward(grad):
            return (grad, grad)
    else:
        def backward(grad):
            return (_unbroadcast(grad, a.shape), _unbroadcast(grad, b.shape))

    return Tensor.from_op(data, (a, b), backward)


def sub(a: Tensor, b: Tensor) -> Tensor:
    """Elementwise subtraction with broadcasting."""
    data = a.data - b.data

    if data.shape == a.shape == b.shape:
        def backward(grad):
            return (grad, -grad)
    else:
        def backward(grad):
            return (_unbroadcast(grad, a.shape), _unbroadcast(-grad, b.shape))

    return Tensor.from_op(data, (a, b), backward)


def mul(a: Tensor, b: Tensor) -> Tensor:
    """Elementwise (Hadamard) product with broadcasting."""
    data = a.data * b.data

    if data.shape == a.shape == b.shape:
        def backward(grad):
            return (grad * b.data, grad * a.data)
    else:
        def backward(grad):
            return (
                _unbroadcast(grad * b.data, a.shape),
                _unbroadcast(grad * a.data, b.shape),
            )

    return Tensor.from_op(data, (a, b), backward)


def div(a: Tensor, b: Tensor) -> Tensor:
    """Elementwise division with broadcasting."""
    data = a.data / b.data

    def backward(grad):
        return (
            _unbroadcast(grad / b.data, a.shape),
            _unbroadcast(-grad * a.data / (b.data**2), b.shape),
        )

    return Tensor.from_op(data, (a, b), backward)


def neg(a: Tensor) -> Tensor:
    """Elementwise negation."""
    return Tensor.from_op(-a.data, (a,), lambda grad: (-grad,))


def power(a: Tensor, exponent: float) -> Tensor:
    """Elementwise power with a constant exponent."""
    data = a.data**exponent

    def backward(grad):
        return (grad * exponent * a.data ** (exponent - 1.0),)

    return Tensor.from_op(data, (a,), backward)


def absolute(a: Tensor) -> Tensor:
    """Elementwise absolute value (subgradient 0 at the origin)."""
    data = np.abs(a.data)

    def backward(grad):
        return (grad * np.sign(a.data),)

    return Tensor.from_op(data, (a,), backward)


def clip(a: Tensor, low: float, high: float) -> Tensor:
    """Clamp values; gradient passes through only inside the interval."""
    data = np.clip(a.data, low, high)

    def backward(grad):
        mask = (a.data >= low) & (a.data <= high)
        return (grad * mask,)

    return Tensor.from_op(data, (a,), backward)


# ----------------------------------------------------------------------
# Transcendental / activation functions
# ----------------------------------------------------------------------


def exp(a: Tensor) -> Tensor:
    """Elementwise exponential."""
    data = np.exp(a.data)

    def backward(grad):
        return (grad * data,)

    return Tensor.from_op(data, (a,), backward)


def log(a: Tensor) -> Tensor:
    """Elementwise natural logarithm."""
    data = np.log(a.data)

    def backward(grad):
        return (grad / a.data,)

    return Tensor.from_op(data, (a,), backward)


def sin(a: Tensor) -> Tensor:
    """Elementwise sine (Time2Vec's periodic component)."""
    data = np.sin(a.data)

    def backward(grad):
        return (grad * np.cos(a.data),)

    return Tensor.from_op(data, (a,), backward)


def tanh(a: Tensor) -> Tensor:
    """Elementwise hyperbolic tangent."""
    data = np.tanh(a.data)

    def backward(grad):
        return (grad * (1.0 - data**2),)

    return Tensor.from_op(data, (a,), backward)


def sigmoid(a: Tensor) -> Tensor:
    """Numerically stable logistic sigmoid."""
    # Stable piecewise formulation avoids overflow for large |x|; the
    # decay term is computed once and shared by both branches.
    data = _stable_sigmoid(a.data)

    def backward(grad):
        return (grad * data * (1.0 - data),)

    return Tensor.from_op(data, (a,), backward)


def relu(a: Tensor) -> Tensor:
    """Elementwise rectified linear unit."""
    mask = a.data > 0
    data = a.data * mask

    def backward(grad):
        return (grad * mask,)

    return Tensor.from_op(data, (a,), backward)


def leaky_relu(a: Tensor, negative_slope: float = 0.2) -> Tensor:
    """Leaky ReLU, used by the GAT baseline's attention scores."""
    mask = a.data > 0
    scale = np.where(mask, 1.0, negative_slope)
    data = a.data * scale

    def backward(grad):
        return (grad * scale,)

    return Tensor.from_op(data, (a,), backward)


def softmax(a: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = a.data - a.data.max(axis=axis, keepdims=True)
    exps = np.exp(shifted)
    data = exps / exps.sum(axis=axis, keepdims=True)

    def backward(grad):
        # dL/dx = s * (g - sum(g * s))
        dot = (grad * data).sum(axis=axis, keepdims=True)
        return (data * (grad - dot),)

    return Tensor.from_op(data, (a,), backward)


def log_softmax(a: Tensor, axis: int = -1) -> Tensor:
    """Log-softmax along ``axis`` (stable for cross-entropy losses)."""
    shifted = a.data - a.data.max(axis=axis, keepdims=True)
    log_norm = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    data = shifted - log_norm
    soft = np.exp(data)

    def backward(grad):
        return (grad - soft * grad.sum(axis=axis, keepdims=True),)

    return Tensor.from_op(data, (a,), backward)


# ----------------------------------------------------------------------
# Linear algebra
# ----------------------------------------------------------------------


def matmul(a: Tensor, b: Tensor) -> Tensor:
    """Matrix product supporting 1-d, 2-d and batched operands."""
    data = a.data @ b.data

    def backward(grad):
        a_data, b_data = a.data, b.data
        if a_data.ndim == 1 and b_data.ndim == 1:
            # Dot product: grad is a scalar.
            return (grad * b_data, grad * a_data)
        if a_data.ndim == 1:
            # (k,) @ (k, m) -> (m,)
            return (grad @ b_data.T, np.outer(a_data, grad))
        if b_data.ndim == 1:
            # (n, k) @ (k,) -> (n,)
            return (np.outer(grad, b_data), a_data.T @ grad)
        grad_a = grad @ np.swapaxes(b_data, -1, -2)
        grad_b = np.swapaxes(a_data, -1, -2) @ grad
        return (_unbroadcast(grad_a, a.shape), _unbroadcast(grad_b, b.shape))

    return Tensor.from_op(data, (a, b), backward)


# ----------------------------------------------------------------------
# Reductions
# ----------------------------------------------------------------------


def sum(a: Tensor, axis=None, keepdims: bool = False) -> Tensor:  # noqa: A001
    """Sum over ``axis`` (all elements when None)."""
    data = a.data.sum(axis=axis, keepdims=keepdims)

    def backward(grad):
        g = grad
        if axis is not None and not keepdims:
            g = np.expand_dims(g, axis=axis)
        return (np.broadcast_to(g, a.shape).copy(),)

    return Tensor.from_op(data, (a,), backward)


def mean(a: Tensor, axis=None, keepdims: bool = False) -> Tensor:
    """Arithmetic mean over ``axis``."""
    data = a.data.mean(axis=axis, keepdims=keepdims)
    if axis is None:
        count = a.data.size
    elif isinstance(axis, tuple):
        count = int(np.prod([a.shape[ax] for ax in axis]))
    else:
        count = a.shape[axis]

    def backward(grad):
        g = grad
        if axis is not None and not keepdims:
            g = np.expand_dims(g, axis=axis)
        return (np.broadcast_to(g, a.shape).copy() / count,)

    return Tensor.from_op(data, (a,), backward)


def max(a: Tensor, axis=None, keepdims: bool = False) -> Tensor:  # noqa: A001
    """Maximum over ``axis``; ties split the gradient equally."""
    data = a.data.max(axis=axis, keepdims=keepdims)

    def backward(grad):
        expanded = data if keepdims or axis is None else np.expand_dims(data, axis=axis)
        mask = (a.data == expanded).astype(np.float64)
        mask /= mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
        g = grad
        if axis is not None and not keepdims:
            g = np.expand_dims(g, axis=axis)
        return (mask * g,)

    return Tensor.from_op(data, (a,), backward)


# ----------------------------------------------------------------------
# Shape manipulation
# ----------------------------------------------------------------------


def reshape(a: Tensor, shape: tuple[int, ...]) -> Tensor:
    """Reshape without changing element order."""
    data = a.data.reshape(shape)

    def backward(grad):
        return (grad.reshape(a.shape),)

    return Tensor.from_op(data, (a,), backward)


def transpose(a: Tensor, axes: Sequence[int] | None = None) -> Tensor:
    """Permute axes (reverse them when ``axes`` is None)."""
    data = a.data.transpose(axes)

    def backward(grad):
        if axes is None:
            return (grad.transpose(),)
        inverse = np.argsort(axes)
        return (grad.transpose(inverse),)

    return Tensor.from_op(data, (a,), backward)


def getitem(a: Tensor, index) -> Tensor:
    """Basic and fancy indexing with scatter-add backward."""
    data = a.data[index]

    def backward(grad):
        out = np.zeros_like(a.data)
        np.add.at(out, index, grad)
        return (out,)

    return Tensor.from_op(data, (a,), backward)


def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along an existing axis."""
    tensors = [_ensure_tensor(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad):
        slices = []
        for i in range(len(tensors)):
            selector = [slice(None)] * grad.ndim
            selector[axis] = slice(offsets[i], offsets[i + 1])
            slices.append(grad[tuple(selector)])
        return tuple(slices)

    return Tensor.from_op(data, tuple(tensors), backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis."""
    tensors = [_ensure_tensor(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad):
        return tuple(np.take(grad, i, axis=axis) for i in range(len(tensors)))

    return Tensor.from_op(data, tuple(tensors), backward)


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Select from ``a`` where ``condition`` else ``b`` (condition is constant)."""
    a, b = _ensure_tensor(a), _ensure_tensor(b)
    cond = np.asarray(condition, dtype=bool)
    data = np.where(cond, a.data, b.data)

    def backward(grad):
        return (
            _unbroadcast(grad * cond, a.shape),
            _unbroadcast(grad * ~cond, b.shape),
        )

    return Tensor.from_op(data, (a, b), backward)


def embedding_lookup(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Row lookup ``weight[indices]`` with scatter-add backward.

    ``indices`` is a constant integer array; gradients accumulate into
    the selected rows of ``weight`` (duplicate indices add up, matching
    ``torch.nn.Embedding``).
    """
    idx = np.asarray(indices, dtype=np.int64)
    data = weight.data[idx]

    def backward(grad):
        out = np.zeros_like(weight.data)
        np.add.at(out, idx, grad)
        return (out,)

    return Tensor.from_op(data, (weight,), backward)


def index_rows(a: Tensor, indices: np.ndarray) -> Tensor:
    """Gather rows ``a[indices]`` with scatter-add backward.

    The wave-scheduled propagation engine's read kernel: one call pulls
    every source/target row of a wave out of the ``(n, q)`` node-state
    matrix.  ``indices`` is a constant integer array; duplicate indices
    accumulate gradient into the same row.
    """
    idx = np.asarray(indices, dtype=np.int64)
    data = a.data[idx]

    def backward(grad):
        out = np.zeros_like(a.data)
        np.add.at(out, idx, grad)
        return (out,)

    return Tensor.from_op(data, (a,), backward)


def scatter_rows(a: Tensor, indices: np.ndarray, rows: Tensor) -> Tensor:
    """Out-of-place row write: a copy of ``a`` with ``result[indices] = rows``.

    The wave-scheduled propagation engine's write kernel.  ``indices``
    must be unique — the wave scheduler guarantees no two edges of a
    wave write the same destination, and duplicate writes would make
    the backward pass ill-defined (last-write-wins has no gradient for
    the overwritten rows).

    Backward: the written rows' upstream gradient flows to ``rows``;
    the remaining rows' gradient flows through to ``a``.
    """
    idx = np.asarray(indices, dtype=np.int64)
    if idx.size != np.unique(idx).size:
        raise ValueError("scatter_rows requires unique row indices (got duplicates)")
    rows = _ensure_tensor(rows)
    data = a.data.copy()
    data[idx] = rows.data

    def backward(grad):
        grad_a = grad.copy()
        grad_a[idx] = 0.0
        return (grad_a, grad[idx].reshape(rows.shape))

    return Tensor.from_op(data, (a, rows), backward)


def segment_sum(a: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Sum rows of ``a`` into ``num_segments`` buckets given by ``segment_ids``.

    ``segment_ids`` is a constant ``(m,)`` integer array; row ``i`` of
    ``a`` is added into output row ``segment_ids[i]``.  Backward is a
    row gather of the upstream gradient.
    """
    ids = np.asarray(segment_ids, dtype=np.int64)
    out = np.zeros((num_segments,) + a.shape[1:], dtype=a.data.dtype)
    np.add.at(out, ids, a.data)

    def backward(grad):
        return (grad[ids],)

    return Tensor.from_op(out, (a,), backward)


def segment_mean(a: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Mean of the rows of ``a`` per segment (empty segments stay zero).

    The batched counterpart of per-graph ``rows.mean(axis=0)``: the
    mega-batched readout pools every member's node rows with one call
    using the per-graph segment ids.  Backward gathers the upstream row
    gradient scaled by ``1 / segment_size``.
    """
    ids = np.asarray(segment_ids, dtype=np.int64)
    counts = np.bincount(ids, minlength=num_segments).astype(np.float64)
    scale = (1.0 / np.maximum(counts, 1.0)).reshape(
        (num_segments,) + (1,) * (a.data.ndim - 1)
    )
    out = np.zeros((num_segments,) + a.shape[1:], dtype=a.data.dtype)
    np.add.at(out, ids, a.data)
    out *= scale

    def backward(grad):
        return ((grad * scale)[ids],)

    return Tensor.from_op(out, (a,), backward)


def gru_sequence(
    sequence: Tensor,
    h0: Tensor,
    weight_ih: Tensor,
    weight_hh: Tensor,
    bias: Tensor,
) -> Tensor:
    """Run a full GRU scan ``(steps, batch, in) -> (steps, batch, hidden)``
    as ONE autograd node.

    Computes exactly the :class:`repro.nn.GRUCell` recurrence

        z = sigmoid(x W_z + h U_z + b_z)
        r = sigmoid(x W_r + h U_r + b_r)
        n = tanh(x W_n + (r * h) U_n + b_n)
        h' = z * h + (1 - z) * n

    with the input projection ``x W + b`` batched over all steps and the
    backward pass as a hand-written BPTT loop.  Replacing the ~20 tape
    nodes per step of the op-by-op cell with a single node is what makes
    the global extractor's per-edge GRU affordable on long sequences.

    Gate layout matches ``GRUCell``: columns ``[z | r | n]`` in the
    fused ``(·, 3H)`` weight matrices.
    """
    steps, batch, in_size = sequence.shape
    hidden = weight_hh.shape[0]
    H = hidden
    x = sequence.data
    W, U, b = weight_ih.data, weight_hh.data, bias.data

    # Input projection for every step at once.
    gates_x = (x.reshape(steps * batch, in_size) @ W + b).reshape(steps, batch, 3 * H)

    h = h0.data
    outputs = np.empty((steps, batch, H))
    # Saved activations for BPTT.
    h_prev = np.empty((steps, batch, H))
    z_all = np.empty((steps, batch, H))
    r_all = np.empty((steps, batch, H))
    n_all = np.empty((steps, batch, H))
    ghn_all = np.empty((steps, batch, H))
    for t in range(steps):
        gh = h @ U
        gx = gates_x[t]
        z = _stable_sigmoid(gx[:, 0:H] + gh[:, 0:H])
        r = _stable_sigmoid(gx[:, H : 2 * H] + gh[:, H : 2 * H])
        ghn = gh[:, 2 * H : 3 * H]
        n = np.tanh(gx[:, 2 * H : 3 * H] + r * ghn)
        h_prev[t] = h
        z_all[t], r_all[t], n_all[t], ghn_all[t] = z, r, n, ghn
        h = z * h + (1.0 - z) * n
        outputs[t] = h

    def backward(grad):
        d_gx = np.empty((steps, batch, 3 * H))
        dU = np.zeros_like(U)
        carry = np.zeros((batch, H))
        for t in range(steps - 1, -1, -1):
            dh = grad[t] + carry
            z, r, n, ghn, hp = z_all[t], r_all[t], n_all[t], ghn_all[t], h_prev[t]
            dz = dh * (hp - n)
            dn_pre = dh * (1.0 - z) * (1.0 - n**2)
            dr = dn_pre * ghn
            dghn = dn_pre * r
            dz_pre = dz * z * (1.0 - z)
            dr_pre = dr * r * (1.0 - r)
            d_gx[t, :, 0:H] = dz_pre
            d_gx[t, :, H : 2 * H] = dr_pre
            d_gx[t, :, 2 * H : 3 * H] = dn_pre
            d_gh = np.concatenate([dz_pre, dr_pre, dghn], axis=1)
            dU += hp.T @ d_gh
            carry = dh * z + d_gh @ U.T
        d_gx_flat = d_gx.reshape(steps * batch, 3 * H)
        x_flat = x.reshape(steps * batch, in_size)
        return (
            (d_gx_flat @ W.T).reshape(steps, batch, in_size),
            carry,
            x_flat.T @ d_gx_flat,
            dU,
            d_gx_flat.sum(axis=0),
        )

    return Tensor.from_op(
        outputs, (sequence, h0, weight_ih, weight_hh, bias), backward
    )


def _stable_sigmoid(x: np.ndarray) -> np.ndarray:
    """Raw-array version of :func:`sigmoid`'s stable formulation."""
    decay = np.exp(-np.abs(x))
    norm = 1.0 + decay
    return np.where(x >= 0, 1.0 / norm, decay / norm)


def dropout(a: Tensor, rate: float, rng: np.random.Generator) -> Tensor:
    """Inverted dropout: zero a fraction ``rate`` and rescale survivors."""
    if rate <= 0.0:
        return a
    keep = 1.0 - rate
    mask = (rng.random(a.shape) < keep) / keep

    def backward(grad):
        return (grad * mask,)

    return Tensor.from_op(a.data * mask, (a,), backward)
