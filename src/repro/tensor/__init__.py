"""Reverse-mode automatic differentiation over numpy arrays.

This package is the deep-learning substrate of the TP-GNN reproduction.
The original paper is implemented on PyTorch; since no deep-learning
framework is available in this environment, ``repro.tensor`` provides a
minimal but complete vectorised autograd engine:

* :class:`~repro.tensor.tensor.Tensor` — an n-d array with a gradient
  tape, supporting broadcasting-aware arithmetic, matrix products,
  reductions, activations, indexing, concatenation and stacking.
* :func:`~repro.tensor.tensor.no_grad` — context manager disabling tape
  construction (used during evaluation).
* :mod:`~repro.tensor.gradcheck` — central-difference gradient checking
  used heavily by the test suite.

Everything downstream (``repro.nn``, ``repro.core``, the baselines) is
written exclusively against this API.
"""

from repro.tensor.tensor import Tensor, no_grad, is_grad_enabled
from repro.tensor import ops
from repro.tensor.gradcheck import numerical_gradient, check_gradients

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "ops",
    "numerical_gradient",
    "check_gradients",
]
