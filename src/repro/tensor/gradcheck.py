"""Numerical gradient checking for the autograd engine.

These utilities are the correctness backbone of the substrate's test
suite: every op and every layer is validated against central-difference
numerical derivatives.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.tensor.tensor import Tensor


def numerical_gradient(
    func: Callable[[], Tensor],
    tensor: Tensor,
    epsilon: float = 1e-6,
) -> np.ndarray:
    """Estimate ``d func() / d tensor`` by central differences.

    ``func`` must be a zero-argument callable returning a scalar Tensor
    and reading ``tensor.data`` afresh on each call (i.e. the forward
    pass must be re-run inside ``func``).
    """
    grad = np.zeros_like(tensor.data)
    flat = tensor.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + epsilon
        upper = func().item()
        flat[i] = original - epsilon
        lower = func().item()
        flat[i] = original
        grad_flat[i] = (upper - lower) / (2.0 * epsilon)
    return grad


def check_gradients(
    func: Callable[[], Tensor],
    tensors: Sequence[Tensor],
    epsilon: float = 1e-6,
    atol: float = 1e-4,
    rtol: float = 1e-4,
) -> None:
    """Assert analytic gradients of ``func`` match numerical ones.

    Raises ``AssertionError`` with a descriptive message on mismatch.
    """
    for tensor in tensors:
        tensor.zero_grad()
    output = func()
    output.backward()
    for i, tensor in enumerate(tensors):
        expected = numerical_gradient(func, tensor, epsilon=epsilon)
        actual = tensor.grad
        if actual is None:
            raise AssertionError(f"tensor {i} ({tensor.name or 'unnamed'}) received no gradient")
        if not np.allclose(actual, expected, atol=atol, rtol=rtol):
            worst = np.max(np.abs(actual - expected))
            raise AssertionError(
                f"gradient mismatch for tensor {i} ({tensor.name or 'unnamed'}): "
                f"max abs error {worst:.3e}"
            )
