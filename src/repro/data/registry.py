"""Dataset registry: one entry point for the five evaluation datasets.

``make_dataset`` builds any of the paper's datasets at a configurable
``scale``: 1.0 targets the per-graph sizes of Table I; smaller values
shrink graphs proportionally for CPU-scale experiments (the graph
*count* is a separate parameter, since the paper's 10^5-10^6 graphs are
far beyond CPU training budgets).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.data.forum_java import ForumJavaConfig, generate_forum_java
from repro.data.hdfs import HDFSConfig, generate_hdfs
from repro.data.trajectory import BRIGHTKITE, FOURSQUARE, GOWALLA, generate_trajectories
from repro.graph.dataset import GraphDataset

DATASET_NAMES = ("Forum-java", "HDFS", "Gowalla", "FourSquare", "Brightkite")

#: Graph counts of the real datasets (Table I), for reference/reporting.
PAPER_GRAPH_COUNTS = {
    "Forum-java": 172_443,
    "HDFS": 130_344,
    "Gowalla": 105_862,
    "FourSquare": 347_848,
    "Brightkite": 44_693,
}

#: Average nodes / edges per graph in the paper (Table I).
PAPER_SIZES = {
    "Forum-java": (27, 30),
    "HDFS": (12, 31),
    "Gowalla": (72, 117),
    "FourSquare": (61, 135),
    "Brightkite": (46, 188),
}


def _forum_java_factory(num_graphs: int, seed: int, scale: float) -> GraphDataset:
    # repeat_stages tunes average session length towards 27 nodes at scale 1.
    config = ForumJavaConfig(repeat_stages=max(1, int(round(30 * scale))))
    return generate_forum_java(num_graphs, seed=seed, config=config)


def _hdfs_factory(num_graphs: int, seed: int, scale: float) -> GraphDataset:
    config = HDFSConfig(
        replicas=max(2, int(round(3 * scale))),
        extra_verifies=max(1, int(round(2 * scale))),
        report_edges=max(2, int(round(14 * scale))),
    )
    return generate_hdfs(num_graphs, seed=seed, config=config)


def _trajectory_factory(profile):
    def factory(num_graphs: int, seed: int, scale: float) -> GraphDataset:
        return generate_trajectories(profile.scaled(scale), num_graphs, seed=seed)

    return factory


_FACTORIES: dict[str, Callable[[int, int, float], GraphDataset]] = {
    "Forum-java": _forum_java_factory,
    "HDFS": _hdfs_factory,
    "Gowalla": _trajectory_factory(GOWALLA),
    "FourSquare": _trajectory_factory(FOURSQUARE),
    "Brightkite": _trajectory_factory(BRIGHTKITE),
}


def make_dataset(
    name: str, num_graphs: int, seed: int = 0, scale: float = 1.0
) -> GraphDataset:
    """Build a dataset by its paper name.

    Parameters
    ----------
    name:
        One of :data:`DATASET_NAMES`.
    num_graphs:
        Number of dynamic networks to generate.
    seed:
        Master seed; generation is deterministic given (name, seed,
        num_graphs, scale).
    scale:
        Per-graph size multiplier relative to Table I (1.0 = paper-size
        graphs; experiments default to smaller values on CPU).
    """
    if name not in _FACTORIES:
        raise KeyError(f"unknown dataset {name!r}; choose from {DATASET_NAMES}")
    if num_graphs <= 0:
        raise ValueError(f"num_graphs must be positive, got {num_graphs}")
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    return _FACTORIES[name](num_graphs, seed, scale)


def make_all_datasets(
    num_graphs: int, seed: int = 0, scale: float = 1.0
) -> dict[str, GraphDataset]:
    """Build all five datasets with per-dataset derived seeds."""
    seeds = np.random.SeedSequence(seed).spawn(len(DATASET_NAMES))
    return {
        name: make_dataset(name, num_graphs, seed=int(sub.generate_state(1)[0] % 2**31), scale=scale)
        for name, sub in zip(DATASET_NAMES, seeds)
    }
