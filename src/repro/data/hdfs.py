"""Synthetic HDFS dataset (paper Sec. V-A).

The original HDFS benchmark parses console logs of a Hadoop cluster
into per-block session networks, with anomalies labelled by domain
experts.  This generator reproduces the block lifecycle the real logs
record — allocate, pipeline replication, write completion, verification
and deletion — and injects the anomaly patterns that dominate the real
label set:

* ``replication_failure`` — a replica never acknowledges; the namenode
  loops on timeout/retry events.
* ``premature_delete``    — the block is deleted before its write
  completes (an ordering anomaly: the events all occur, out of order).
* ``stale_verify``        — verification fires against a replica that
  was never received.
* ``duplicate_allocate``  — the same block is allocated twice,
  producing a forked lifecycle.

Node features (3-dim, label-coded as in the paper): log level, source
module, thread id.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.session import SessionBuilder
from repro.graph.ctdn import CTDN
from repro.graph.dataset import GraphDataset
from repro.graph.store import EventStore

ANOMALY_TYPES = (
    "replication_failure",
    "premature_delete",
    "stale_verify",
    "duplicate_allocate",
)

# Event templates: (level, module). Levels: 0 INFO, 1 WARN, 2 ERROR.
# Modules: 0 namenode, 1 datanode, 2 fsnamesystem, 3 blockscanner.
_EVENTS = {
    "ALLOCATE": (0, 0),
    "ADD_STORED": (0, 2),
    "RECEIVING": (0, 1),
    "RECEIVED": (0, 1),
    "WRITE_COMPLETE": (0, 2),
    "VERIFY": (0, 3),
    "DELETE": (0, 0),
    "TIMEOUT": (1, 0),
    "RETRY": (1, 1),
    "ERROR": (2, 1),
}

_NUM_LEVELS = 3
_NUM_MODULES = 4
_NUM_THREADS = 8


@dataclass(frozen=True)
class HDFSConfig:
    """Knobs for the HDFS generator (defaults track Table I: 12 nodes, 31 edges)."""

    replicas: int = 3
    extra_verifies: int = 2
    report_edges: int = 14
    negative_ratio: float = 0.298


def _features(name: str, rng: np.random.Generator) -> np.ndarray:
    """Label-coded (level, module, thread) features, normalised to [0, 1]."""
    level, module = _EVENTS[name]
    thread = int(rng.integers(0, _NUM_THREADS))
    return np.array(
        [
            level / (_NUM_LEVELS - 1),
            module / (_NUM_MODULES - 1),
            thread / (_NUM_THREADS - 1),
        ]
    )


def _block_lifecycle(
    rng: np.random.Generator, config: HDFSConfig, graph_id: str
) -> tuple[SessionBuilder, dict[str, int | list[int]]]:
    """Emit one normal block lifecycle; returns builder + key event ids."""
    builder = SessionBuilder(feature_dim=3, graph_id=graph_id)
    allocate = builder.add_event(_features("ALLOCATE", rng))
    keys: dict[str, int | list[int]] = {"allocate": allocate}

    received: list[int] = []
    previous = allocate
    for _ in range(config.replicas):
        receiving = builder.follow(previous, _features("RECEIVING", rng), float(rng.exponential(0.5)) + 0.05)
        done = builder.follow(receiving, _features("RECEIVED", rng), float(rng.exponential(0.8)) + 0.05)
        stored = builder.follow(done, _features("ADD_STORED", rng), 0.1)
        received.append(done)
        previous = stored
    keys["received"] = received

    complete = builder.follow(previous, _features("WRITE_COMPLETE", rng), float(rng.exponential(0.5)) + 0.05)
    keys["complete"] = complete
    previous = complete
    for _ in range(int(rng.integers(1, config.extra_verifies + 1))):
        previous = builder.follow(previous, _features("VERIFY", rng), float(rng.exponential(2.0)) + 0.2)
        # Replicas report back to the verifier.
        for replica in received:
            if rng.random() < 0.5:
                builder.add_edge(replica, previous)
    delete = builder.follow(previous, _features("DELETE", rng), float(rng.exponential(3.0)) + 0.5)
    keys["delete"] = delete
    # Periodic datanode -> namenode status reports: extra edges between
    # existing events over the session lifetime.  The real HDFS sessions
    # average far more edges (31) than events (12) for exactly this
    # reason — blocks are chatty.
    event_count = builder.num_nodes
    for _ in range(config.report_edges):
        reporter = int(rng.integers(1, event_count))
        sink = int(rng.integers(0, event_count))
        if reporter == sink:
            continue
        builder.advance(float(rng.exponential(0.3)) + 0.05)
        builder.add_edge(reporter, sink)
    return builder, keys


def _inject_replication_failure(builder: SessionBuilder, rng: np.random.Generator) -> None:
    """A replica times out; the namenode loops on retries."""
    anchor = int(rng.integers(1, builder.num_nodes))
    timeout = builder.follow(anchor, _features("TIMEOUT", rng), 0.3)
    previous = timeout
    for _ in range(int(rng.integers(3, 6))):
        retry = builder.follow(previous, _features("RETRY", rng), 0.1)
        builder.advance(0.05)
        builder.add_edge(retry, timeout)
        previous = retry
    builder.follow(previous, _features("ERROR", rng), 0.1)


def _apply_premature_delete(graph: CTDN, keys: dict, rng: np.random.Generator) -> CTDN:
    """Move the DELETE event before WRITE_COMPLETE (pure ordering anomaly)."""
    del rng
    store = graph.store
    complete_time = float(store.t[np.flatnonzero(store.dst == keys["complete"])[0]])
    t = np.where(store.dst == keys["delete"], max(0.01, complete_time - 0.5), store.t)
    rewritten = EventStore(store.src, store.dst, t, graph.num_nodes, validate=False)
    return graph.with_edges(rewritten, label=0)


def _apply_stale_verify(graph: CTDN, keys: dict, rng: np.random.Generator) -> CTDN:
    """A verify event references a replica that never reported RECEIVED."""
    received = list(keys["received"])
    if not received:
        raise ValueError("lifecycle has no replicas")
    victim = int(rng.choice(received))
    # Drop the replica's RECEIVED report edges and verify late against it.
    store = graph.store
    keep = store.src != victim
    stale = EventStore(
        np.append(store.src[keep], victim),
        np.append(store.dst[keep], keys["delete"]),
        np.append(store.t[keep], float(store.t.max()) + 1.0),
        graph.num_nodes,
        validate=False,
    )
    return graph.with_edges(stale, label=0)


def _apply_duplicate_allocate(
    builder: SessionBuilder, keys: dict, rng: np.random.Generator
) -> None:
    """The block is allocated twice, forking the lifecycle."""
    duplicate = builder.follow(keys["allocate"], _features("ALLOCATE", rng), 0.2)
    receiving = builder.follow(duplicate, _features("RECEIVING", rng), 0.2)
    builder.follow(receiving, _features("ERROR", rng), 0.2)


def generate_hdfs(
    num_graphs: int,
    seed: int = 0,
    config: HDFSConfig | None = None,
) -> GraphDataset:
    """Generate an HDFS-profile dataset of block-session networks."""
    config = config or HDFSConfig()
    rng = np.random.default_rng(seed)
    graphs: list[CTDN] = []
    for index in range(num_graphs):
        graph_id = f"hdfs/{index}"
        builder, keys = _block_lifecycle(rng, config, graph_id)
        if rng.random() >= config.negative_ratio:
            graphs.append(builder.build(label=1))
            continue
        anomaly = ANOMALY_TYPES[int(rng.integers(0, len(ANOMALY_TYPES)))]
        if anomaly == "replication_failure":
            _inject_replication_failure(builder, rng)
            graphs.append(builder.build(label=0))
        elif anomaly == "duplicate_allocate":
            _apply_duplicate_allocate(builder, keys, rng)
            graphs.append(builder.build(label=0))
        elif anomaly == "premature_delete":
            graphs.append(_apply_premature_delete(builder.build(label=0), keys, rng))
        else:
            graphs.append(_apply_stale_verify(builder.build(label=0), keys, rng))
    return GraphDataset(graphs, name="HDFS")
