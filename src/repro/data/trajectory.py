"""Synthetic user-trajectory datasets (Brightkite / Gowalla / FourSquare).

The paper builds per-user dynamic networks from public check-in
datasets: nodes are POIs (features: longitude, latitude, country id),
edges are movements between consecutive check-ins.  Positives are real
users; negatives are synthesised with the paper's two samplers
(structural rewiring / temporal shuffling — see
:mod:`repro.data.negative_sampling`).

Offline, we generate the positives with a latent-mobility model that
matches the statistical profile of each dataset (Table I): every user
has a small set of anchor POIs (home, work, leisure) inside a home
country, revisits anchors with high probability (producing the heavy
edge/node ratio of Brightkite), and occasionally explores new POIs with
distance decay.  Negatives then come from exactly the two samplers the
paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.negative_sampling import structural_negative, temporal_negative
from repro.graph.ctdn import CTDN
from repro.graph.dataset import GraphDataset
from repro.graph.store import EventStore


@dataclass(frozen=True)
class TrajectoryProfile:
    """Statistical profile of one check-in dataset.

    ``checkins`` controls the number of movements (edges); ``poi_pool``
    the number of distinct POIs a user can touch (nodes).  The ratio of
    the two reproduces each dataset's revisit intensity.
    """

    name: str
    poi_pool: int
    checkins: int
    anchors: int = 3
    return_probability: float = 0.6
    negative_ratio: float = 0.3
    num_countries: int = 8

    def scaled(self, scale: float) -> "TrajectoryProfile":
        """Shrink the profile for CPU-scale experiments (keeps ratios)."""
        return TrajectoryProfile(
            name=self.name,
            poi_pool=max(5, int(round(self.poi_pool * scale))),
            checkins=max(6, int(round(self.checkins * scale))),
            anchors=self.anchors,
            return_probability=self.return_probability,
            negative_ratio=self.negative_ratio,
            num_countries=self.num_countries,
        )


# Table I targets avg nodes/edges of 46/188, 72/117 and 61/135; POI pools
# are larger than the node targets because only visited POIs survive
# compaction (the revisit dynamics leave part of the pool untouched).
BRIGHTKITE = TrajectoryProfile("Brightkite", poi_pool=90, checkins=188, return_probability=0.74)
GOWALLA = TrajectoryProfile("Gowalla", poi_pool=140, checkins=117, return_probability=0.38)
FOURSQUARE = TrajectoryProfile("FourSquare", poi_pool=98, checkins=135, return_probability=0.55)

PROFILES = {p.name: p for p in (BRIGHTKITE, GOWALLA, FOURSQUARE)}


def _poi_map(profile: TrajectoryProfile, rng: np.random.Generator) -> np.ndarray:
    """POI features (lon, lat, country id), clustered around a home country.

    POIs are placed in Gaussian clusters; a minority lie in foreign
    countries to model travel.
    """
    country = int(rng.integers(0, profile.num_countries))
    centre = rng.uniform(-1.0, 1.0, size=2)
    features = np.zeros((profile.poi_pool, 3))
    for poi in range(profile.poi_pool):
        travelling = rng.random() < 0.1
        poi_country = int(rng.integers(0, profile.num_countries)) if travelling else country
        offset = rng.normal(0.0, 0.5 if travelling else 0.15, size=2)
        features[poi, 0:2] = centre + offset + (poi_country - country) * 0.5
        features[poi, 2] = poi_country / max(1, profile.num_countries - 1)
    return features


def _user_trajectory(
    profile: TrajectoryProfile, rng: np.random.Generator, graph_id: str
) -> CTDN:
    """Simulate one user's check-in sequence into a CTDN."""
    features = _poi_map(profile, rng)
    anchors = rng.choice(profile.poi_pool, size=min(profile.anchors, profile.poi_pool), replace=False)
    anchors = [int(a) for a in anchors]
    current = anchors[0]
    clock = 0.0
    src: list[int] = []
    dst: list[int] = []
    t: list[float] = []
    visited = {current}
    for _ in range(profile.checkins):
        # Day/night rhythm: bursts of short gaps with occasional long ones.
        clock += float(rng.exponential(1.0)) + 0.1
        if rng.random() < 0.15:
            clock += float(rng.exponential(8.0))
        if rng.random() < profile.return_probability:
            candidates = [a for a in anchors if a != current] or anchors
            nxt = int(candidates[int(rng.integers(0, len(candidates)))])
        else:
            # Distance-decay exploration: prefer nearby, *novel* POIs —
            # real check-in exploration overwhelmingly discovers new
            # places (returns are modelled by the anchor branch above).
            deltas = features[:, 0:2] - features[current, 0:2]
            distance = np.sqrt((deltas**2).sum(axis=1))
            weights = np.exp(-2.0 * distance)
            for seen in visited:
                weights[seen] *= 0.05
            weights[current] = 0.0
            weights /= weights.sum()
            nxt = int(rng.choice(profile.poi_pool, p=weights))
        src.append(current)
        dst.append(nxt)
        t.append(clock)
        visited.add(nxt)
        current = nxt
    store = EventStore(
        np.asarray(src, dtype=np.int64),
        np.asarray(dst, dtype=np.int64),
        np.asarray(t, dtype=np.float64),
        num_nodes=profile.poi_pool,
    )
    return CTDN.from_store(profile.poi_pool, features, store, label=1, graph_id=graph_id)


def _compact(graph: CTDN) -> CTDN:
    """Drop never-visited POIs so node counts reflect actual visits."""
    store = graph.store
    used = np.unique(np.concatenate([store.src, store.dst]))
    lookup = np.full(graph.num_nodes, -1, dtype=np.int64)
    lookup[used] = np.arange(used.shape[0], dtype=np.int64)
    compacted = EventStore(
        lookup[store.src], lookup[store.dst], store.t,
        num_nodes=int(used.shape[0]), validate=False,
    )
    return CTDN.from_store(
        int(used.shape[0]), graph.features[used], compacted,
        label=graph.label, graph_id=graph.graph_id,
    )


def generate_trajectories(
    profile: TrajectoryProfile,
    num_graphs: int,
    seed: int = 0,
    min_checkins: int = 3,
) -> GraphDataset:
    """Generate a trajectory dataset under ``profile``.

    Positives come from the mobility simulator; negatives apply the
    paper's structural or temporal sampler (50/50) to fresh positives.
    Graphs with fewer than ``min_checkins`` records are filtered out, as
    in the paper's preprocessing.
    """
    rng = np.random.default_rng(seed)
    graphs: list[CTDN] = []
    while len(graphs) < num_graphs:
        graph_id = f"{profile.name.lower()}/{len(graphs)}"
        positive = _compact(_user_trajectory(profile, rng, graph_id))
        if positive.num_edges < min_checkins:
            continue
        if rng.random() >= profile.negative_ratio:
            graphs.append(positive)
            continue
        try:
            if rng.random() < 0.5:
                graphs.append(structural_negative(positive, rng))
            else:
                graphs.append(temporal_negative(positive, rng))
        except (ValueError, RuntimeError):
            # Degenerate trajectory (too small / constant time): keep the
            # positive instead and continue.
            graphs.append(positive)
    return GraphDataset(graphs, name=profile.name)
