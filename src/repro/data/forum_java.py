"""Synthetic Forum-java dataset (paper Sec. V-A).

The original dataset parses the logs of an open-source Java forum
system into 172k dynamic session networks; negatives come from running
four fault-injected versions of the system.  That system and its logs
are unavailable offline, so this module generates sessions from a
probabilistic workflow automaton that models the same forum scenarios
(view thread, post message, login, search) and injects four fault types
mirroring real industrial failure modes:

* ``crash_cascade`` — an exception interrupts the workflow and spawns a
  cascade of error-handling events before the session dies.
* ``retry_storm``  — a flaky downstream call is retried in a rapid
  burst, producing repeated edges in quick succession.
* ``ordering_fault`` — two workflow stages execute in the wrong order;
  the session topology is unchanged but the edge sequence differs
  (the Fig. 1 situation: only temporal information separates classes).
* ``dropped_dependency`` — a mandatory stage is silently skipped and
  its neighbours are wired around it.

Node features (3-dim, as in Table I): normalised event-type code,
log-scaled duration, exception flag.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.session import SessionBuilder
from repro.graph.ctdn import CTDN
from repro.graph.dataset import GraphDataset
from repro.graph.store import EventStore

FAULT_TYPES = ("crash_cascade", "retry_storm", "ordering_fault", "dropped_dependency")

# Event templates: (type code, mean duration ms). The automaton's
# scenarios are stage lists over these templates.
_EVENTS = {
    "REQUEST": (0, 2.0),
    "AUTH": (1, 8.0),
    "SESSION_LOAD": (2, 5.0),
    "DB_QUERY": (3, 20.0),
    "CACHE_LOOKUP": (4, 1.5),
    "VALIDATE": (5, 3.0),
    "DB_WRITE": (6, 25.0),
    "INDEX_UPDATE": (7, 12.0),
    "NOTIFY": (8, 6.0),
    "RENDER": (9, 15.0),
    "RESPONSE": (10, 2.0),
    "EXCEPTION": (11, 1.0),
    "RETRY": (12, 4.0),
    "ROLLBACK": (13, 18.0),
}

_SCENARIOS = {
    "view_thread": ["REQUEST", "AUTH", "SESSION_LOAD", "CACHE_LOOKUP", "DB_QUERY", "RENDER", "RESPONSE"],
    "post_message": ["REQUEST", "AUTH", "SESSION_LOAD", "VALIDATE", "DB_WRITE", "INDEX_UPDATE", "NOTIFY", "RESPONSE"],
    "login": ["REQUEST", "VALIDATE", "AUTH", "SESSION_LOAD", "DB_QUERY", "RESPONSE"],
    "search": ["REQUEST", "AUTH", "CACHE_LOOKUP", "DB_QUERY", "DB_QUERY", "RENDER", "RESPONSE"],
}


@dataclass(frozen=True)
class ForumJavaConfig:
    """Knobs for the Forum-java generator.

    ``repeat_stages`` pads sessions with extra mid-workflow activity so
    average node/edge counts can be steered towards Table I's 27/30.
    """

    repeat_stages: int = 3
    negative_ratio: float = 0.325
    feature_noise: float = 0.05


def _event_features(name: str, rng: np.random.Generator, noise: float, exception: bool = False) -> np.ndarray:
    """3-dim feature vector: type code (normalised), log-duration, exception flag."""
    code, duration = _EVENTS[name]
    observed = duration * float(np.exp(rng.normal(0.0, 0.3)))
    return np.array(
        [
            code / (len(_EVENTS) - 1) + rng.normal(0.0, noise),
            np.log1p(observed) / 5.0,
            1.0 if exception else 0.0,
        ]
    )


def _positive_session(rng: np.random.Generator, config: ForumJavaConfig, graph_id: str) -> SessionBuilder:
    """Run one normal workflow through the automaton."""
    scenario = list(_SCENARIOS[rng.choice(sorted(_SCENARIOS))])
    # Pad with extra read activity to reach realistic session lengths.
    for _ in range(int(rng.integers(0, config.repeat_stages + 1))):
        insert_at = int(rng.integers(3, len(scenario) - 1))
        scenario.insert(insert_at, "DB_QUERY" if rng.random() < 0.6 else "CACHE_LOOKUP")

    builder = SessionBuilder(feature_dim=3, graph_id=graph_id)
    previous = builder.add_event(_event_features(scenario[0], rng, config.feature_noise))
    for name in scenario[1:]:
        gap = float(rng.exponential(1.0)) + 0.05
        node = builder.follow(previous, _event_features(name, rng, config.feature_noise), gap)
        # Occasional fan-out: an async side event (audit log, metrics).
        if rng.random() < 0.25:
            side = builder.follow(node, _event_features("NOTIFY", rng, config.feature_noise), 0.1)
            del side  # the side branch terminates here
        previous = node
    return builder


def _inject_crash_cascade(builder: SessionBuilder, rng: np.random.Generator, config: ForumJavaConfig) -> None:
    """Append an exception followed by a rollback cascade."""
    anchor = int(rng.integers(builder.num_nodes // 2, builder.num_nodes))
    exc = builder.follow(anchor, _event_features("EXCEPTION", rng, config.feature_noise, exception=True), 0.2)
    cascade_length = int(rng.integers(2, 5))
    previous = exc
    for _ in range(cascade_length):
        name = "ROLLBACK" if rng.random() < 0.5 else "EXCEPTION"
        previous = builder.follow(
            previous, _event_features(name, rng, config.feature_noise, exception=True), 0.1
        )


def _inject_retry_storm(builder: SessionBuilder, rng: np.random.Generator, config: ForumJavaConfig) -> None:
    """Burst of retries bouncing between a caller and a flaky callee."""
    caller = int(rng.integers(1, builder.num_nodes))
    callee = builder.follow(caller, _event_features("RETRY", rng, config.feature_noise), 0.05)
    for _ in range(int(rng.integers(3, 7))):
        builder.advance(0.02)
        builder.add_edge(callee, caller)
        builder.advance(0.02)
        builder.add_edge(caller, callee)


def _apply_ordering_fault(graph: CTDN, rng: np.random.Generator) -> CTDN:
    """Reverse a contiguous block of the event sequence (topology unchanged).

    Models a scheduler/dispatch bug where a whole stage of the workflow
    executes out of order: the edges keep their endpoints and the
    session keeps its timestamp multiset, but a contiguous 30-60% block
    of the edge sequence runs backwards.  Purely temporal — a time-blind
    model sees an identical graph.
    """
    if graph.num_edges < 4:
        raise ValueError("session too short for an ordering fault")
    chronological = graph.store.chronological()
    m = chronological.num_events
    block = max(3, int(round(m * float(rng.uniform(0.3, 0.6)))))
    start = int(rng.integers(0, m - block + 1))
    src = chronological.src.copy()
    dst = chronological.dst.copy()
    src[start : start + block] = src[start : start + block][::-1]
    dst[start : start + block] = dst[start : start + block][::-1]
    store = EventStore(src, dst, chronological.t, graph.num_nodes, validate=False)
    return graph.with_edges(store, label=0)


def _apply_dropped_dependency(graph: CTDN, rng: np.random.Generator) -> CTDN:
    """Bypass one mid-session event: its in/out edges collapse to a shortcut."""
    candidates = np.flatnonzero((graph.in_degree() == 1) & (graph.out_degree() >= 1))
    if candidates.size == 0:
        raise ValueError("no bypassable event found")
    victim = int(rng.choice(candidates))
    src = graph.store.src
    dst = graph.store.dst
    # The victim's unique incoming edge supplies the bypass source.
    incoming_src = int(src[np.flatnonzero(dst == victim)[0]])
    keep = dst != victim
    store = EventStore(
        np.where(src == victim, incoming_src, src)[keep],
        dst[keep],
        graph.store.t[keep],
        graph.num_nodes,
        validate=False,
    )
    return graph.with_edges(store, label=0)


def generate_forum_java(
    num_graphs: int,
    seed: int = 0,
    config: ForumJavaConfig | None = None,
) -> GraphDataset:
    """Generate a Forum-java-profile dataset.

    Parameters
    ----------
    num_graphs:
        Total number of session networks (positives + negatives).
    seed:
        Master seed; the dataset is fully deterministic given it.
    config:
        Generator knobs; defaults follow Table I statistics.
    """
    config = config or ForumJavaConfig()
    rng = np.random.default_rng(seed)
    graphs: list[CTDN] = []
    for index in range(num_graphs):
        graph_id = f"forum-java/{index}"
        negative = rng.random() < config.negative_ratio
        builder = _positive_session(rng, config, graph_id)
        if not negative:
            graphs.append(builder.build(label=1))
            continue
        fault = FAULT_TYPES[int(rng.integers(0, len(FAULT_TYPES)))]
        if fault == "crash_cascade":
            _inject_crash_cascade(builder, rng, config)
            graphs.append(builder.build(label=0))
        elif fault == "retry_storm":
            _inject_retry_storm(builder, rng, config)
            graphs.append(builder.build(label=0))
        elif fault == "ordering_fault":
            graphs.append(_apply_ordering_fault(builder.build(label=0), rng))
        else:
            try:
                graphs.append(_apply_dropped_dependency(builder.build(label=0), rng))
            except ValueError:
                # Rare degenerate session: fall back to an ordering fault.
                graphs.append(_apply_ordering_fault(builder.build(label=0), rng))
    return GraphDataset(graphs, name="Forum-java")
