"""Dataset generators and negative samplers for the five evaluation datasets."""

from repro.data.forum_java import FAULT_TYPES, ForumJavaConfig, generate_forum_java
from repro.data.hdfs import ANOMALY_TYPES, HDFSConfig, generate_hdfs
from repro.data.negative_sampling import structural_negative, temporal_negative
from repro.data.registry import (
    DATASET_NAMES,
    PAPER_GRAPH_COUNTS,
    PAPER_SIZES,
    make_all_datasets,
    make_dataset,
)
from repro.data.session import SessionBuilder
from repro.data.trajectory import (
    BRIGHTKITE,
    FOURSQUARE,
    GOWALLA,
    PROFILES,
    TrajectoryProfile,
    generate_trajectories,
)

__all__ = [
    "FAULT_TYPES",
    "ForumJavaConfig",
    "generate_forum_java",
    "ANOMALY_TYPES",
    "HDFSConfig",
    "generate_hdfs",
    "structural_negative",
    "temporal_negative",
    "DATASET_NAMES",
    "PAPER_GRAPH_COUNTS",
    "PAPER_SIZES",
    "make_dataset",
    "make_all_datasets",
    "SessionBuilder",
    "TrajectoryProfile",
    "BRIGHTKITE",
    "GOWALLA",
    "FOURSQUARE",
    "PROFILES",
    "generate_trajectories",
]
