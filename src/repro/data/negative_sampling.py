"""The paper's two negative-sample generators (Sec. V-A).

For the public datasets (HDFS, Gowalla, Brightkite, FourSquare) the
paper synthesises negatives from positives in two ways:

1. **Structural** ("context-dependent" sampling, Cai et al. 2021):
   randomly pick a small number of edges and replace one endpoint,
   keeping the replacement only if the resulting edge does not occur in
   the normal graph.
2. **Temporal**: randomly shuffle the edge establishment order, so the
   negative has identical topology and features but a different
   evolution sequence — exactly the Fig. 1 situation that motivates
   temporal propagation.
"""

from __future__ import annotations

import numpy as np

from repro.graph.ctdn import CTDN
from repro.graph.edge import TemporalEdge


def structural_negative(
    graph: CTDN,
    rng: np.random.Generator,
    fraction: float = 0.2,
    min_edges: int = 1,
    max_attempts: int = 50,
) -> CTDN:
    """Rewire a fraction of edges to endpoints never used by the positive.

    For each selected edge ``(u, v, t)`` one endpoint is replaced with a
    random node; candidates that produce an edge already present in the
    positive graph are rejected (the paper deletes such candidates), so
    every kept rewiring is genuinely anomalous.

    Returns a new CTDN labelled 0.
    """
    if graph.num_edges == 0:
        raise ValueError("cannot build a structural negative from an empty graph")
    if graph.num_nodes < 3:
        raise ValueError("structural negatives need at least 3 nodes to rewire")
    normal_pairs = {(e.src, e.dst) for e in graph.edges}
    edges = list(graph.edges)
    count = max(min_edges, int(round(fraction * len(edges))))
    picked = rng.choice(len(edges), size=min(count, len(edges)), replace=False)
    changed = 0
    for index in picked:
        edge = edges[index]
        for _ in range(max_attempts):
            replace_dst = rng.random() < 0.5
            candidate_node = int(rng.integers(0, graph.num_nodes))
            if replace_dst:
                new_edge = TemporalEdge(edge.src, candidate_node, edge.time)
            else:
                new_edge = TemporalEdge(candidate_node, edge.dst, edge.time)
            if new_edge.src == new_edge.dst:
                continue
            if (new_edge.src, new_edge.dst) in normal_pairs:
                continue
            edges[index] = new_edge
            changed += 1
            break
    if changed == 0:
        raise RuntimeError(
            "failed to rewire any edge; the graph may be (nearly) complete"
        )
    return graph.with_edges(edges, label=0)


def temporal_negative(
    graph: CTDN, rng: np.random.Generator, max_attempts: int = 50
) -> CTDN:
    """Shuffle edge establishment order, keeping topology and features.

    The multiset of timestamps is preserved but reassigned to edges by a
    random permutation, producing a negative that differs from the
    positive only in its temporal evolution.  Retries until the order of
    at least one distinct-time pair actually changes.
    """
    if graph.num_edges < 2:
        raise ValueError("temporal negatives need at least 2 edges to permute")
    edges = graph.edges_sorted()
    times = [e.time for e in edges]
    if len(set(times)) < 2:
        raise ValueError("all edges share one timestamp; shuffling cannot change the order")
    for _ in range(max_attempts):
        order = rng.permutation(len(edges))
        shuffled = [
            TemporalEdge(edges[int(i)].src, edges[int(i)].dst, times[pos])
            for pos, i in enumerate(order)
        ]
        if _order_changed(edges, shuffled):
            return graph.with_edges(shuffled, label=0)
    raise RuntimeError("failed to produce a changed edge order")


def _order_changed(original: list[TemporalEdge], shuffled: list[TemporalEdge]) -> bool:
    """True when the chronological (src, dst) sequence differs."""
    key = lambda e: (e.time, e.src, e.dst)  # noqa: E731
    seq_a = [(e.src, e.dst) for e in sorted(original, key=key)]
    seq_b = [(e.src, e.dst) for e in sorted(shuffled, key=key)]
    return seq_a != seq_b
