"""The paper's two negative-sample generators (Sec. V-A).

For the public datasets (HDFS, Gowalla, Brightkite, FourSquare) the
paper synthesises negatives from positives in two ways:

1. **Structural** ("context-dependent" sampling, Cai et al. 2021):
   randomly pick a small number of edges and replace one endpoint,
   keeping the replacement only if the resulting edge does not occur in
   the normal graph.
2. **Temporal**: randomly shuffle the edge establishment order, so the
   negative has identical topology and features but a different
   evolution sequence — exactly the Fig. 1 situation that motivates
   temporal propagation.

Both samplers operate on the graph's event-store columns directly; the
returned negatives are fresh stores sharing nothing mutable with the
positive.
"""

from __future__ import annotations

import numpy as np

from repro.graph.ctdn import CTDN
from repro.graph.store import EventStore


def structural_negative(
    graph: CTDN,
    rng: np.random.Generator,
    fraction: float = 0.2,
    min_edges: int = 1,
    max_attempts: int = 50,
) -> CTDN:
    """Rewire a fraction of edges to endpoints never used by the positive.

    For each selected edge ``(u, v, t)`` one endpoint is replaced with a
    random node; candidates that produce an edge already present in the
    positive graph — or already produced by an *earlier rewiring in this
    call* — are rejected (the paper deletes such candidates), so every
    kept rewiring is a genuinely anomalous, unique pair.

    Returns a new CTDN labelled 0.
    """
    if graph.num_edges == 0:
        raise ValueError("cannot build a structural negative from an empty graph")
    if graph.num_nodes < 3:
        raise ValueError("structural negatives need at least 3 nodes to rewire")
    src = graph.store.src.copy()
    dst = graph.store.dst.copy()
    # Rejection set: the positive's pairs plus every pair this call has
    # already produced — without the latter, two rewirings could land on
    # the same "anomalous" pair and the negative would contain an exact
    # duplicate anomaly.
    forbidden = set(zip(src.tolist(), dst.tolist()))
    count = max(min_edges, int(round(fraction * graph.num_edges)))
    picked = rng.choice(graph.num_edges, size=min(count, graph.num_edges), replace=False)
    changed = 0
    for index in picked.tolist():
        for _ in range(max_attempts):
            replace_dst = rng.random() < 0.5
            candidate_node = int(rng.integers(0, graph.num_nodes))
            if replace_dst:
                pair = (int(src[index]), candidate_node)
            else:
                pair = (candidate_node, int(dst[index]))
            if pair[0] == pair[1]:
                continue
            if pair in forbidden:
                continue
            src[index], dst[index] = pair
            forbidden.add(pair)
            changed += 1
            break
    if changed == 0:
        raise RuntimeError(
            "failed to rewire any edge; the graph may be (nearly) complete"
        )
    rewired = EventStore(src, dst, graph.store.t, graph.num_nodes, validate=False)
    return graph.with_edges(rewired, label=0)


def temporal_negative(
    graph: CTDN, rng: np.random.Generator, max_attempts: int = 50
) -> CTDN:
    """Shuffle edge establishment order, keeping topology and features.

    The multiset of timestamps is preserved but reassigned to edges by a
    random permutation, producing a negative that differs from the
    positive only in its temporal evolution.  Retries until the order of
    at least one distinct-time pair actually changes.

    Degenerate graphs where *no* permutation can change the order are
    rejected up front with :class:`ValueError`: a single shared
    timestamp, or a single repeated ``(src, dst)`` pair.
    """
    if graph.num_edges < 2:
        raise ValueError("temporal negatives need at least 2 edges to permute")
    chronological = graph.store.chronological()
    src = chronological.src
    dst = chronological.dst
    times = chronological.t
    if np.unique(times).size < 2:
        raise ValueError("all edges share one timestamp; shuffling cannot change the order")
    if bool(np.all((src == src[0]) & (dst == dst[0]))):
        raise ValueError(
            "all edges share one (src, dst) pair; shuffling cannot change the order"
        )
    for _ in range(max_attempts):
        order = rng.permutation(graph.num_edges)
        shuffled_src = src[order]
        shuffled_dst = dst[order]
        if _order_changed(src, dst, shuffled_src, shuffled_dst, times):
            shuffled = EventStore(
                shuffled_src, shuffled_dst, times, graph.num_nodes,
                validate=False, chronological=True,
            )
            return graph.with_edges(shuffled, label=0)
    raise RuntimeError("failed to produce a changed edge order")


def _order_changed(
    src_a: np.ndarray,
    dst_a: np.ndarray,
    src_b: np.ndarray,
    dst_b: np.ndarray,
    times: np.ndarray,
) -> bool:
    """True when the chronological (src, dst) sequences genuinely differ.

    Both orderings are reduced to a canonical form — sorted by
    ``(time, src, dst)`` — so permutations *within* a timestamp tie (or
    among identical edges) don't count as a change.
    """
    canon_a = np.lexsort((dst_a, src_a, times))
    canon_b = np.lexsort((dst_b, src_b, times))
    return not (
        np.array_equal(src_a[canon_a], src_b[canon_b])
        and np.array_equal(dst_a[canon_a], dst_b[canon_b])
    )
