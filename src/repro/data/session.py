"""Session-building utilities shared by the log dataset generators.

A *session* is an ordered stream of events; each event instance becomes
one node of the resulting CTDN, and each causal "event b follows event
a" relation becomes a temporal edge ``a -> b``.  The Forum-java and
HDFS generators both assemble sessions through :class:`SessionBuilder`.

The builder accumulates edges as three parallel scalar columns
(``src``/``dst``/``t``) rather than per-edge objects, so
:meth:`SessionBuilder.build` finalises straight into an
:class:`~repro.graph.store.EventStore` without ever materialising a
:class:`TemporalEdge` list — the generator hot path allocates one numpy
array per column per session, not one tuple per event.
"""

from __future__ import annotations

import numpy as np

from repro.graph.ctdn import CTDN
from repro.graph.store import EventStore


class SessionBuilder:
    """Incrementally build a log-session CTDN.

    Nodes carry a fixed-width feature vector; edges are added between
    previously created nodes with strictly tracked timestamps.
    """

    def __init__(self, feature_dim: int, graph_id: str | None = None):
        self.feature_dim = feature_dim
        self.graph_id = graph_id
        self._features: list[np.ndarray] = []
        self._src: list[int] = []
        self._dst: list[int] = []
        self._t: list[float] = []
        self._clock = 0.0

    @property
    def num_nodes(self) -> int:
        """Nodes created so far."""
        return len(self._features)

    @property
    def num_edges(self) -> int:
        """Edges created so far."""
        return len(self._src)

    @property
    def clock(self) -> float:
        """Current session time."""
        return self._clock

    def advance(self, delta: float) -> float:
        """Move the session clock forward and return the new time."""
        if delta < 0:
            raise ValueError(f"cannot move time backwards (delta={delta})")
        self._clock += delta
        return self._clock

    def add_event(self, features) -> int:
        """Create an event node; returns its id."""
        vector = np.asarray(features, dtype=np.float64)
        if vector.shape != (self.feature_dim,):
            raise ValueError(
                f"event features must have shape ({self.feature_dim},), got {vector.shape}"
            )
        self._features.append(vector)
        return len(self._features) - 1

    def add_edge(self, src: int, dst: int, time: float | None = None) -> None:
        """Connect two events at ``time`` (defaults to the current clock)."""
        self._src.append(src)
        self._dst.append(dst)
        self._t.append(self._clock if time is None else time)

    def follow(self, src: int, features, gap: float) -> int:
        """Emit a new event ``gap`` after the clock, linked from ``src``."""
        self.advance(gap)
        node = self.add_event(features)
        self.add_edge(src, node)
        return node

    def build(self, label: int) -> CTDN:
        """Finalise into a labelled CTDN.

        The accumulated columns become the graph's
        :class:`~repro.graph.store.EventStore` directly; the feature
        rows are stacked into the ``(n, q)`` matrix.
        """
        if not self._features:
            raise ValueError("session has no events")
        num_nodes = len(self._features)
        store = EventStore(
            np.asarray(self._src, dtype=np.int64),
            np.asarray(self._dst, dtype=np.int64),
            np.asarray(self._t, dtype=np.float64),
            num_nodes=num_nodes,
        )
        return CTDN.from_store(
            num_nodes,
            np.stack(self._features, axis=0),
            store,
            label=label,
            graph_id=self.graph_id,
        )
