"""Session-building utilities shared by the log dataset generators.

A *session* is an ordered stream of events; each event instance becomes
one node of the resulting CTDN, and each causal "event b follows event
a" relation becomes a temporal edge ``a -> b``.  The Forum-java and
HDFS generators both assemble sessions through :class:`SessionBuilder`.

The builder accumulates edges as three parallel scalar columns
(``src``/``dst``/``t``).  Each column is a :class:`_ScalarColumn` — a
list of fixed-capacity numpy chunks appended to in place, doubling the
chunk size as the session grows — so per-edge cost is one scalar store
into a preallocated array, not a Python-list append of a boxed object.
:meth:`SessionBuilder.build` finalises the chunks straight into an
:class:`~repro.graph.store.EventStore` without ever materialising a
:class:`TemporalEdge` list.
"""

from __future__ import annotations

import numpy as np

from repro.graph.ctdn import CTDN
from repro.graph.store import EventStore

#: Initial per-column chunk capacity; doubles on every spill.  Most
#: generated sessions fit entirely in the first chunk.
_CHUNK = 64


class _ScalarColumn:
    """A growable scalar column built from doubling numpy chunks.

    ``append`` writes into the current chunk's next free slot; when the
    chunk fills, it is sealed and a chunk of twice the capacity is
    allocated (amortised O(1) per append, O(log n) allocations total).
    ``materialize`` concatenates the sealed chunks and the live head
    into one contiguous array.
    """

    __slots__ = ("_dtype", "_sealed", "_head", "_fill")

    def __init__(self, dtype, capacity: int = _CHUNK):
        self._dtype = dtype
        self._sealed: list[np.ndarray] = []
        self._head = np.empty(capacity, dtype=dtype)
        self._fill = 0

    def __len__(self) -> int:
        return sum(chunk.shape[0] for chunk in self._sealed) + self._fill

    def append(self, value) -> None:
        if self._fill == self._head.shape[0]:
            self._sealed.append(self._head)
            self._head = np.empty(2 * self._head.shape[0], dtype=self._dtype)
            self._fill = 0
        self._head[self._fill] = value
        self._fill += 1

    def materialize(self) -> np.ndarray:
        parts = self._sealed + [self._head[: self._fill]]
        if len(parts) == 1:
            return parts[0].copy()
        return np.concatenate(parts)


class SessionBuilder:
    """Incrementally build a log-session CTDN.

    Nodes carry a fixed-width feature vector; edges are added between
    previously created nodes with strictly tracked timestamps.
    """

    def __init__(self, feature_dim: int, graph_id: str | None = None):
        self.feature_dim = feature_dim
        self.graph_id = graph_id
        self._features: list[np.ndarray] = []
        self._src = _ScalarColumn(np.int64)
        self._dst = _ScalarColumn(np.int64)
        self._t = _ScalarColumn(np.float64)
        self._clock = 0.0

    @property
    def num_nodes(self) -> int:
        """Nodes created so far."""
        return len(self._features)

    @property
    def num_edges(self) -> int:
        """Edges created so far."""
        return len(self._src)

    @property
    def clock(self) -> float:
        """Current session time."""
        return self._clock

    def advance(self, delta: float) -> float:
        """Move the session clock forward and return the new time."""
        if delta < 0:
            raise ValueError(f"cannot move time backwards (delta={delta})")
        self._clock += delta
        return self._clock

    def add_event(self, features) -> int:
        """Create an event node; returns its id."""
        vector = np.asarray(features, dtype=np.float64)
        if vector.shape != (self.feature_dim,):
            raise ValueError(
                f"event features must have shape ({self.feature_dim},), got {vector.shape}"
            )
        self._features.append(vector)
        return len(self._features) - 1

    def add_edge(self, src: int, dst: int, time: float | None = None) -> None:
        """Connect two events at ``time`` (defaults to the current clock)."""
        self._src.append(src)
        self._dst.append(dst)
        self._t.append(self._clock if time is None else time)

    def follow(self, src: int, features, gap: float) -> int:
        """Emit a new event ``gap`` after the clock, linked from ``src``."""
        self.advance(gap)
        node = self.add_event(features)
        self.add_edge(src, node)
        return node

    def build(self, label: int) -> CTDN:
        """Finalise into a labelled CTDN.

        The accumulated columns become the graph's
        :class:`~repro.graph.store.EventStore` directly; the feature
        rows are stacked into the ``(n, q)`` matrix.
        """
        if not self._features:
            raise ValueError("session has no events")
        num_nodes = len(self._features)
        store = EventStore(
            self._src.materialize(),
            self._dst.materialize(),
            self._t.materialize(),
            num_nodes=num_nodes,
        )
        return CTDN.from_store(
            num_nodes,
            np.stack(self._features, axis=0),
            store,
            label=label,
            graph_id=self.graph_id,
        )
