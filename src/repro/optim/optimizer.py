"""Optimiser base class and gradient utilities."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Base class holding a parameter list and the step/zero protocol."""

    def __init__(self, parameters: Iterable[Parameter]):
        self.parameters: list[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")

    def zero_grad(self) -> None:
        """Clear accumulated gradients on every managed parameter."""
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        """Apply one update; must be overridden."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Array-valued optimiser state, keyed by slot name.

        The base optimiser is stateless; subclasses with per-parameter
        slots (momentum buffers, Adam moments) override this so training
        checkpoints can round-trip the full optimiser, not just the
        model weights.  Returned arrays are copies.
        """
        return {}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore state produced by :meth:`state_dict`.

        Keys and shapes must match exactly — a checkpoint written for a
        different parameter list must not load silently.
        """
        _check_state_keys(self.state_dict(), state)


def _check_state_keys(
    own: dict[str, np.ndarray], state: dict[str, np.ndarray]
) -> None:
    """Validate ``state`` against the optimiser's current slot layout."""
    missing = set(own) - set(state)
    unexpected = set(state) - set(own)
    if missing or unexpected:
        raise KeyError(
            "optimizer state mismatch: "
            f"missing={sorted(missing)}, unexpected={sorted(unexpected)}"
        )
    for name, values in state.items():
        if np.shape(own[name]) != np.shape(values):
            raise ValueError(
                f"shape mismatch for optimizer slot {name!r}: "
                f"{np.shape(own[name])} vs {np.shape(values)}"
            )


def clip_grad_norm(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm.  Parameters without gradients are
    skipped.  Used to keep BPTT through long edge sequences stable.

    A non-finite norm (any NaN/inf gradient) is returned *unscaled* and
    the gradients are left untouched: scaling by ``max_norm / nan``
    would only spread the poison, and the caller needs the non-finite
    norm as a signal to discard the batch before it corrupts optimiser
    moments.
    """
    params = [p for p in parameters if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad**2).sum()) for p in params)))
    if not np.isfinite(total):
        return total
    if total > max_norm and total > 0.0:
        scale = max_norm / total
        for param in params:
            param.grad *= scale
    return total
