"""Optimiser base class and gradient utilities."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Base class holding a parameter list and the step/zero protocol."""

    def __init__(self, parameters: Iterable[Parameter]):
        self.parameters: list[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")

    def zero_grad(self) -> None:
        """Clear accumulated gradients on every managed parameter."""
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        """Apply one update; must be overridden."""
        raise NotImplementedError


def clip_grad_norm(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm.  Parameters without gradients are
    skipped.  Used to keep BPTT through long edge sequences stable.
    """
    params = [p for p in parameters if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad**2).sum()) for p in params)))
    if total > max_norm and total > 0.0:
        scale = max_norm / total
        for param in params:
            param.grad *= scale
    return total
