"""Stochastic gradient descent with optional momentum."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.nn.module import Parameter
from repro.optim.optimizer import Optimizer


class SGD(Optimizer):
    """Plain SGD: ``p -= lr * (grad + weight_decay * p)`` with momentum."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        """Apply one SGD update to every parameter with a gradient."""
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            param.data -= self.lr * grad

    def state_dict(self) -> dict[str, np.ndarray]:
        """Momentum buffers, one per managed parameter."""
        return {
            f"velocity.{index}": velocity.copy()
            for index, velocity in enumerate(self._velocity)
        }

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore momentum buffers written by :meth:`state_dict`."""
        super().load_state_dict(state)
        for index in range(len(self.parameters)):
            self._velocity[index][...] = state[f"velocity.{index}"]
