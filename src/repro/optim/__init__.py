"""Gradient-based optimisers for :mod:`repro.nn` modules."""

from repro.optim.optimizer import Optimizer, clip_grad_norm
from repro.optim.sgd import SGD
from repro.optim.adam import Adam, AdamW

__all__ = ["Optimizer", "clip_grad_norm", "SGD", "Adam", "AdamW"]
