"""Adam and AdamW optimisers.

The paper trains every model with Adam at learning rate 1e-3; this is
the default across the reproduction's experiments.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.nn.module import Parameter
from repro.optim.optimizer import Optimizer


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        """Apply one Adam update to every parameter with a gradient."""
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_dict(self) -> dict[str, np.ndarray]:
        """First/second moments plus the bias-correction step count."""
        state: dict[str, np.ndarray] = {
            "step_count": np.asarray(self._step_count, dtype=np.int64)
        }
        for index, (m, v) in enumerate(zip(self._m, self._v)):
            state[f"m.{index}"] = m.copy()
            state[f"v.{index}"] = v.copy()
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore moments and step count written by :meth:`state_dict`."""
        super().load_state_dict(state)
        self._step_count = int(state["step_count"])
        for index in range(len(self.parameters)):
            self._m[index][...] = state[f"m.{index}"]
            self._v[index][...] = state[f"v.{index}"]


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter, 2019)."""

    def step(self) -> None:
        """Adam update plus decoupled decay ``p -= lr * wd * p``."""
        decay = self.weight_decay
        self.weight_decay = 0.0
        try:
            if decay:
                for param in self.parameters:
                    if param.grad is not None:
                        param.data -= self.lr * decay * param.data
            super().step()
        finally:
            self.weight_decay = decay
