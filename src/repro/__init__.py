"""repro — a from-scratch reproduction of TP-GNN (ICDE 2024).

TP-GNN is a continuous dynamic graph neural network for graph
classification.  This package implements the full system on a numpy
autograd substrate:

* :mod:`repro.tensor` / :mod:`repro.nn` / :mod:`repro.optim` — the
  deep-learning substrate (reverse-mode autograd, layers, optimisers).
* :mod:`repro.graph` — continuous-time dynamic networks, snapshots,
  temporal reachability.
* :mod:`repro.data` — generators for the five evaluation datasets and
  the paper's two negative samplers.
* :mod:`repro.core` — temporal propagation, the global temporal
  embedding extractor, and the TP-GNN model.
* :mod:`repro.baselines` — the twelve Table II baselines and the
  Table III ``+G`` wrappers.
* :mod:`repro.training` — trainer, metrics, evaluation protocol.
* :mod:`repro.experiments` — one harness module per table/figure.
* :mod:`repro.serve` — streaming online inference: incremental
  per-session temporal state, O(1) predictions per event.
* :mod:`repro.telemetry` — unified observability: metric registry,
  hierarchical span tracer, op-level autograd profiler.

Quickstart
----------
>>> from repro.data import make_dataset
>>> from repro.core import TPGNN
>>> from repro.training import TrainConfig, train_model, evaluate
>>> data = make_dataset("Forum-java", num_graphs=60, seed=0, scale=0.2)
>>> train, test = data.split(0.3)
>>> model = TPGNN(in_features=data.feature_dim, updater="sum", seed=0)
>>> _ = train_model(model, train, TrainConfig(epochs=5))
>>> metrics = evaluate(model, test)
"""

__version__ = "1.0.0"

from repro import (
    baselines,
    core,
    data,
    experiments,
    graph,
    nn,
    optim,
    serve,
    telemetry,
    tensor,
    training,
)

__all__ = [
    "__version__",
    "tensor",
    "nn",
    "optim",
    "graph",
    "data",
    "core",
    "baselines",
    "training",
    "experiments",
    "serve",
    "telemetry",
]
