"""Global Temporal Embedding Extractor (paper Sec. IV-C, Eqs. 7-10).

Converts the local node embedding matrix ``H`` into edge embeddings
(one per temporal edge, in chronological order) and runs a GRU along
the sequence; the final hidden state is the graph embedding ``g``.
This is how TP-GNN learns the *network evolution process* from the
global edge ordering — the paper's answer to limitation 3.
"""

from __future__ import annotations

import numpy as np

from repro.core.edge_agg import EDGE_AGGREGATORS, edge_dim
from repro.graph.ctdn import CTDN
from repro.graph.edge import TemporalEdge
from repro.nn import GRU, Module
from repro.tensor import Tensor, ops


class GlobalTemporalExtractor(Module):
    """GRU over the chronological edge-embedding sequence.

    Parameters
    ----------
    node_dim:
        Width ``k`` of the local node embeddings (propagation output).
    hidden_size:
        GRU hidden width ``d`` — the graph-embedding dimensionality.
    aggregator:
        One of the six EdgeAgg methods; the paper uses ``"average"``.
    rng:
        Generator for parameter initialisation.
    """

    def __init__(
        self,
        node_dim: int,
        hidden_size: int = 32,
        aggregator: str = "average",
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if aggregator not in EDGE_AGGREGATORS:
            raise KeyError(
                f"unknown EdgeAgg method {aggregator!r}; choose from {sorted(EDGE_AGGREGATORS)}"
            )
        self.node_dim = node_dim
        self.hidden_size = hidden_size
        self.aggregator_name = aggregator
        self._aggregate = EDGE_AGGREGATORS[aggregator]
        self.gru = GRU(edge_dim(aggregator, node_dim), hidden_size, rng=rng)

    def edge_embeddings(
        self, node_embeddings: Tensor, edges: list[TemporalEdge]
    ) -> Tensor:
        """Local edge embedding matrix ``S_loc`` of shape (m, k).

        Row ``i`` aggregates the embeddings of the endpoints of the
        ``i``-th edge in the given (chronological) order.
        """
        if not edges:
            raise ValueError("cannot embed a graph with no edges")
        src = np.array([e.src for e in edges], dtype=np.int64)
        dst = np.array([e.dst for e in edges], dtype=np.int64)
        if self.aggregator_name == "average":
            # Fast path for the paper's default: one fancy-indexing op.
            return (node_embeddings[src] + node_embeddings[dst]) * 0.5
        rows = [
            self._aggregate(node_embeddings[int(u)], node_embeddings[int(v)])
            for u, v in zip(src, dst)
        ]
        return ops.stack(rows, axis=0)

    def forward(
        self,
        node_embeddings: Tensor,
        graph: CTDN,
        rng: np.random.Generator | None = None,
    ) -> Tensor:
        """Return the graph embedding ``g`` of shape (hidden_size,).

        Edges are fed to the GRU in chronological order (ties shuffled
        when ``rng`` is provided, mirroring training-time tie handling);
        the final hidden state carries the full evolution history.
        """
        edges = graph.edges_sorted(rng=rng)
        sequence = self.edge_embeddings(node_embeddings, edges)
        _, final_hidden = self.gru(sequence.reshape(len(edges), 1, sequence.shape[1]))
        return final_hidden.reshape(self.hidden_size)
