"""Global Temporal Embedding Extractor (paper Sec. IV-C, Eqs. 7-10).

Converts the local node embedding matrix ``H`` into edge embeddings
(one per temporal edge, in chronological order) and runs a GRU along
the sequence; the final hidden state is the graph embedding ``g``.
This is how TP-GNN learns the *network evolution process* from the
global edge ordering — the paper's answer to limitation 3.

The GRU is a recurrence over the edge sequence, so the extractor also
exposes an incremental API (:meth:`GlobalTemporalExtractor.init_state`,
:meth:`GlobalTemporalExtractor.step`) used by the online-serving engine
in :mod:`repro.serve`; the batch :meth:`forward` is a fold of
:meth:`step` over the chronological edge embeddings, keeping streaming
and batch inference on one code path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.edge_agg import EDGE_AGGREGATORS, edge_dim
from repro.graph.ctdn import CTDN
from repro.graph.edge import TemporalEdge
from repro.graph.plan import PropagationPlan
from repro.nn import GRU, Module
from repro.tensor import Tensor, ops


@dataclass
class ExtractorState:
    """Live GRU hidden state of one session's evolution sequence."""

    hidden: Tensor  # (1, hidden_size)
    steps: int = 0


class GlobalTemporalExtractor(Module):
    """GRU over the chronological edge-embedding sequence.

    Parameters
    ----------
    node_dim:
        Width ``k`` of the local node embeddings (propagation output).
    hidden_size:
        GRU hidden width ``d`` — the graph-embedding dimensionality.
    aggregator:
        One of the six EdgeAgg methods; the paper uses ``"average"``.
    rng:
        Generator for parameter initialisation.
    """

    def __init__(
        self,
        node_dim: int,
        hidden_size: int = 32,
        aggregator: str = "average",
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if aggregator not in EDGE_AGGREGATORS:
            raise KeyError(
                f"unknown EdgeAgg method {aggregator!r}; choose from {sorted(EDGE_AGGREGATORS)}"
            )
        self.node_dim = node_dim
        self.hidden_size = hidden_size
        self.aggregator_name = aggregator
        self._aggregate = EDGE_AGGREGATORS[aggregator]
        self.gru = GRU(edge_dim(aggregator, node_dim), hidden_size, rng=rng)

    def edge_embeddings(
        self, node_embeddings: Tensor, edges: list[TemporalEdge]
    ) -> Tensor:
        """Local edge embedding matrix ``S_loc`` of shape (m, k).

        Row ``i`` aggregates the embeddings of the endpoints of the
        ``i``-th edge in the given (chronological) order.
        """
        if not edges:
            raise ValueError("cannot embed a graph with no edges")
        src = np.array([e.src for e in edges], dtype=np.int64)
        dst = np.array([e.dst for e in edges], dtype=np.int64)
        return self._edge_matrix(node_embeddings, src, dst)

    def _edge_matrix(
        self, node_embeddings: Tensor, src: np.ndarray, dst: np.ndarray
    ) -> Tensor:
        """Aggregate endpoint rows given the endpoint index arrays."""
        if self.aggregator_name == "average":
            # Fast path for the paper's default: two row gathers.
            return (
                ops.index_rows(node_embeddings, src) + ops.index_rows(node_embeddings, dst)
            ) * 0.5
        rows = [
            self._aggregate(node_embeddings[int(u)], node_embeddings[int(v)])
            for u, v in zip(src, dst)
        ]
        return ops.stack(rows, axis=0)

    # ------------------------------------------------------------------
    # Incremental (streaming) API
    # ------------------------------------------------------------------
    def init_state(self) -> ExtractorState:
        """Fresh per-session GRU state (zero hidden, no edges seen)."""
        return ExtractorState(hidden=Tensor(np.zeros((1, self.hidden_size))))

    def edge_embedding(self, src_embedding: Tensor, dst_embedding: Tensor) -> Tensor:
        """Single-edge view of :meth:`edge_embeddings` — shape ``(1, k)``.

        Aggregates the two endpoint embeddings (each ``(k,)``) with the
        configured EdgeAgg method; same math as the batch path.
        """
        if self.aggregator_name == "average":
            row = (src_embedding + dst_embedding) * 0.5
        else:
            row = self._aggregate(src_embedding, dst_embedding)
        return row.reshape(1, row.shape[-1])

    def step(self, state: ExtractorState, edge_embedding: Tensor) -> None:
        """Advance the session GRU by one ``(1, k)`` edge embedding."""
        state.hidden = self.gru.cell(edge_embedding, state.hidden)
        state.steps += 1

    def graph_embedding(self, state: ExtractorState) -> Tensor:
        """The current graph embedding ``g`` of shape ``(hidden_size,)``."""
        return state.hidden.reshape(self.hidden_size)

    def snapshot_state(self, state: ExtractorState) -> dict[str, np.ndarray]:
        """Checkpointable array form of ``state``."""
        return {
            "hidden": state.hidden.data.copy(),
            "steps": np.array([state.steps], dtype=np.int64),
        }

    def restore_state(self, arrays: dict[str, np.ndarray]) -> ExtractorState:
        """Rebuild a state from :meth:`snapshot_state` output."""
        return ExtractorState(
            hidden=Tensor(arrays["hidden"].copy()), steps=int(arrays["steps"][0])
        )

    def forward(
        self,
        node_embeddings: Tensor,
        graph: CTDN,
        rng: np.random.Generator | None = None,
        plan: PropagationPlan | None = None,
    ) -> Tensor:
        """Return the graph embedding ``g`` of shape (hidden_size,).

        Edges are fed to the GRU in chronological order (ties shuffled
        when ``rng`` is provided, mirroring training-time tie handling;
        pass ``plan`` to reuse an already-built order — the model does
        so to keep propagation and extraction on one evolution
        sequence).  The scan runs through the fused
        :func:`~repro.tensor.ops.gru_sequence` kernel, which matches
        folding :meth:`step` — the streaming engine's recurrence — to
        machine precision.
        """
        if plan is None:
            plan = graph.propagation_plan(rng=rng)
        if plan.num_edges == 0:
            raise ValueError("cannot embed a graph with no edges")
        sequence = self._edge_matrix(node_embeddings, plan.src, plan.dst)
        _, final = self.gru(sequence)
        return final.reshape(self.hidden_size)

    def forward_mega(self, node_embeddings: Tensor, mega) -> Tensor:
        """Graph embeddings of a whole minibatch — shape ``(B, hidden_size)``.

        One fused :func:`~repro.tensor.ops.gru_sequence` scan over the
        end-padded ``(T, B, k)`` edge-embedding grid replaces ``B``
        per-graph scans.  Each member's real edges are a prefix of its
        column and its embedding is read at step ``length - 1``; pad
        slots beyond that carry exactly zero gradient (the BPTT carry is
        zero past the last read step), so the batched scan matches the
        per-graph scans to machine precision.
        """
        index, lengths = mega.padded_sequence_index()
        if np.any(lengths == 0):
            raise ValueError("cannot embed a graph with no edges")
        sequence = self._edge_matrix(node_embeddings, mega.chrono_src, mega.chrono_dst)
        batch = mega.num_members
        steps = int(lengths.max())
        grid = ops.index_rows(sequence, index).reshape(
            steps, batch, sequence.shape[1]
        )
        outputs, _ = self.gru(grid)
        return outputs[(lengths - 1, np.arange(batch))]
