"""Unsupervised TP-GNN (the paper's stated future-work direction).

The conclusion of the paper lists "a suitable unsupervised model for
the graph classification task" as future work.  This module implements
the natural construction on top of the TP-GNN machinery:

1. run temporal propagation to obtain order-aware node embeddings,
2. roll the extractor GRU along the chronological edge-embedding
   sequence and train a head to **predict the next edge embedding**
   (a self-supervised pretext task that only needs positive graphs),
3. score a graph by its mean next-edge prediction error — anomalous
   evolution (wrong order, rewired movements, fault cascades) is
   exactly what the one-step predictor fails to anticipate,
4. calibrate a decision threshold as a quantile of the training
   scores.

The detector never sees labels; it trains on (presumed-normal) graphs
only, the standard unsupervised-anomaly-detection protocol.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.core.extractor import GlobalTemporalExtractor
from repro.core.propagation import TemporalPropagationGRU, TemporalPropagationSum
from repro.graph.ctdn import CTDN
from repro.graph.megaplan import mega_plan
from repro.nn import Linear, Module
from repro.optim import Adam, clip_grad_norm
from repro.tensor import Tensor, no_grad, ops


class UnsupervisedTPGNN(Module):
    """Self-supervised next-edge predictor over temporal propagation.

    Parameters
    ----------
    in_features:
        Raw node feature dimensionality.
    updater:
        Temporal propagation updater, ``"sum"`` or ``"gru"``.
    hidden_size:
        Node-embedding and GRU hidden width.
    time_dim:
        Time2Vec dimensionality.
    quantile:
        Training-score quantile used as the anomaly threshold; scores
        above it are flagged anomalous (predicted label 0).
    seed:
        Parameter initialisation seed.
    """

    def __init__(
        self,
        in_features: int,
        updater: str = "gru",
        hidden_size: int = 16,
        time_dim: int = 4,
        quantile: float = 0.95,
        seed: int = 0,
    ):
        super().__init__()
        if not 0.5 < quantile <= 1.0:
            raise ValueError(f"quantile must be in (0.5, 1], got {quantile}")
        rng = np.random.default_rng(seed)
        if updater == "sum":
            self.propagation = TemporalPropagationSum(in_features, hidden_size, time_dim=time_dim, rng=rng)
        elif updater == "gru":
            self.propagation = TemporalPropagationGRU(in_features, hidden_size, time_dim=time_dim, rng=rng)
        else:
            raise KeyError(f"unknown updater {updater!r}; choose 'sum' or 'gru'")
        edge_width = self.propagation.output_dim
        self.extractor = GlobalTemporalExtractor(edge_width, hidden_size=hidden_size, rng=rng)
        self.predictor = Linear(hidden_size, edge_width, rng=rng)
        self.quantile = quantile
        self.threshold: float | None = None

    # ------------------------------------------------------------------
    # Pretext objective
    # ------------------------------------------------------------------
    def prediction_loss(self, graph: CTDN, rng: np.random.Generator | None = None) -> Tensor:
        """Mean squared next-edge prediction error (differentiable).

        The GRU state after edge ``i`` predicts the embedding of edge
        ``i+1``; graphs with a single edge have no transition and score 0.
        """
        if graph.num_edges == 0:
            raise ValueError("cannot score a graph with no edges")
        plan = graph.propagation_plan(rng=rng)
        node_embeddings = self.propagation(graph, plan=plan)
        sequence = self.extractor._edge_matrix(node_embeddings, plan.src, plan.dst)
        num_edges = plan.num_edges
        if num_edges < 2:
            return Tensor(np.zeros(1), requires_grad=False).sum()
        states, _ = self.extractor.gru(
            sequence.reshape(num_edges, 1, sequence.shape[1])
        )
        states = states.reshape(num_edges, self.extractor.hidden_size)
        predicted = self.predictor(states[: num_edges - 1])
        target = sequence[1:].detach()
        difference = predicted - target
        return (difference * difference).mean()

    def prediction_loss_batch(
        self, graphs: list[CTDN], rng: np.random.Generator | None = None
    ) -> Tensor:
        """Per-graph pretext losses for a minibatch — shape ``(B,)``.

        One mega-batched propagation pass and one fused GRU scan over
        the end-padded edge grid replace ``B`` :meth:`prediction_loss`
        calls; entry ``b`` equals ``prediction_loss(graphs[b])`` to
        machine precision (single-edge members score 0, as per graph).
        """
        mega = mega_plan(graphs, rng=rng)
        if np.any(mega.member_edge_counts == 0):
            raise ValueError("cannot score a graph with no edges")
        node_embeddings = self.propagation(mega)
        sequence = self.extractor._edge_matrix(
            node_embeddings, mega.chrono_src, mega.chrono_dst
        )
        index, lengths = mega.padded_sequence_index()
        steps = int(lengths.max())
        grid = ops.index_rows(sequence, index).reshape(
            steps, mega.num_members, sequence.shape[1]
        )
        states, _ = self.extractor.gru(grid)
        losses = []
        for b in range(mega.num_members):
            m = int(lengths[b])
            if m < 2:
                losses.append(Tensor(np.zeros(1), requires_grad=False).sum())
                continue
            predicted = self.predictor(states[(slice(0, m - 1), b)])
            start = int(mega.edge_offsets[b])
            target = sequence[start + 1 : start + m].detach()
            difference = predicted - target
            losses.append((difference * difference).mean())
        return ops.stack(losses, axis=0)

    # ------------------------------------------------------------------
    # Fit / score / predict
    # ------------------------------------------------------------------
    def fit(
        self,
        graphs: Iterable[CTDN],
        epochs: int = 10,
        learning_rate: float = 1e-2,
        grad_clip: float = 5.0,
        seed: int = 0,
    ) -> list[float]:
        """Train the pretext task on (presumed-normal) graphs.

        Returns the per-epoch mean losses and calibrates
        :attr:`threshold` from the final training scores.
        """
        graphs = [g for g in graphs if g.num_edges >= 2]
        if not graphs:
            raise ValueError("fit needs at least one graph with >= 2 edges")
        optimizer = Adam(self.parameters(), lr=learning_rate)
        rng = np.random.default_rng(seed)
        losses = []
        for _ in range(epochs):
            epoch_loss = 0.0
            for index in rng.permutation(len(graphs)):
                optimizer.zero_grad()
                loss = self.prediction_loss(graphs[int(index)], rng=rng)
                loss.backward()
                clip_grad_norm(self.parameters(), grad_clip)
                optimizer.step()
                epoch_loss += loss.item()
            losses.append(epoch_loss / len(graphs))
        scores = [self.score(graph) for graph in graphs]
        self.threshold = float(np.quantile(scores, self.quantile))
        return losses

    def score(self, graph: CTDN) -> float:
        """Anomaly score: mean next-edge prediction error (higher = worse)."""
        with no_grad():
            return float(self.prediction_loss(graph).item())

    def predict(self, graph: CTDN) -> int:
        """Label prediction: 1 (normal) if the score is under the threshold."""
        if self.threshold is None:
            raise RuntimeError("call fit() before predict(); the threshold is uncalibrated")
        return int(self.score(graph) <= self.threshold)
