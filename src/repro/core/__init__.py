"""TP-GNN core: the paper's primary contribution.

* :class:`TPGNN` — the end-to-end model (SUM or GRU updater).
* :class:`TemporalPropagationSum` / :class:`TemporalPropagationGRU` —
  the temporal propagation message passing (Algorithm 1).
* :class:`GlobalTemporalExtractor` — GRU over the chronological edge
  sequence (Eqs. 7-10).
* Ablation variants for the Fig. 3/4 studies.
"""

from repro.core.base import GraphClassifierBase, MeanReadout
from repro.core.edge_agg import EDGE_AGGREGATORS, edge_dim
from repro.core.propagation import (
    RandomAggregation,
    TemporalPropagationBase,
    TemporalPropagationGRU,
    TemporalPropagationSum,
)
from repro.core.extractor import GlobalTemporalExtractor
from repro.core.unsupervised import UnsupervisedTPGNN
from repro.core.transformer_extractor import (
    GlobalTemporalTransformer,
    make_tpgnn_with_extractor,
)
from repro.core.model import TPGNN, UPDATERS
from repro.core.ablation import (
    ABLATION_VARIANTS,
    TPGNNRandVariant,
    TPGNNTempVariant,
    TPGNNTime2VecVariant,
    TPGNNWithoutTemporalPropagation,
    make_ablation_variant,
)

__all__ = [
    "GraphClassifierBase",
    "MeanReadout",
    "EDGE_AGGREGATORS",
    "edge_dim",
    "TemporalPropagationBase",
    "TemporalPropagationSum",
    "TemporalPropagationGRU",
    "RandomAggregation",
    "GlobalTemporalExtractor",
    "GlobalTemporalTransformer",
    "make_tpgnn_with_extractor",
    "UnsupervisedTPGNN",
    "TPGNN",
    "UPDATERS",
    "ABLATION_VARIANTS",
    "TPGNNRandVariant",
    "TPGNNTempVariant",
    "TPGNNTime2VecVariant",
    "TPGNNWithoutTemporalPropagation",
    "make_ablation_variant",
]
