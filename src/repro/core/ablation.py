"""Ablation variants of TP-GNN (paper Sec. V-F, Figs. 3-4).

Four variants isolate the contribution of each component:

* ``rand`` — random neighbour aggregation instead of temporal
  propagation, mean pooling instead of the global extractor.
* ``w/o tem`` — no temporal propagation: initial encoded features go
  straight into the global extractor.
* ``temp`` — temporal propagation **without** the time embedding
  ``f(t)``, mean pooling readout.
* ``time2Vec`` — full temporal propagation (with ``f(t)``), mean
  pooling readout (i.e. only the global extractor is removed).

All variants share :class:`~repro.core.base.GraphClassifierBase`, so
the experiment harness trains them identically to the full model.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import GraphClassifierBase, MeanReadout
from repro.core.extractor import GlobalTemporalExtractor
from repro.core.propagation import (
    RandomAggregation,
    TemporalPropagationGRU,
    TemporalPropagationSum,
)
from repro.graph.ctdn import CTDN
from repro.graph.megaplan import mega_plan
from repro.nn import FeatureEncoder
from repro.tensor import Tensor

ABLATION_VARIANTS = ("rand", "w/o tem", "temp", "time2Vec", "full")


class TPGNNRandVariant(GraphClassifierBase):
    """``rand``: random aggregation + mean pooling (no time at all)."""

    def __init__(self, in_features: int, hidden_size: int = 32, seed: int = 0):
        rng = np.random.default_rng(seed)
        propagation = RandomAggregation(in_features, hidden_size, rng=rng)
        super().__init__(embedding_dim=propagation.output_dim, rng=rng)
        self.propagation = propagation
        self.readout = MeanReadout()
        self._sampler = np.random.default_rng(seed + 1)

    def embed(self, graph: CTDN, rng: np.random.Generator | None = None) -> Tensor:
        """Mean-pool randomly aggregated node embeddings."""
        sampler = rng if rng is not None else self._sampler
        return self.readout(self.propagation(graph, rng=sampler))


class TPGNNWithoutTemporalPropagation(GraphClassifierBase):
    """``w/o tem``: encoded initial features -> global extractor only."""

    def __init__(
        self,
        in_features: int,
        hidden_size: int = 32,
        gru_hidden_size: int = 32,
        seed: int = 0,
    ):
        rng = np.random.default_rng(seed)
        super().__init__(embedding_dim=gru_hidden_size, rng=rng)
        self.encoder = FeatureEncoder(in_features, hidden_size, rng=rng)
        self.extractor = GlobalTemporalExtractor(
            node_dim=hidden_size, hidden_size=gru_hidden_size, rng=rng
        )

    SUPPORTS_MEGABATCH = True

    def embed(self, graph: CTDN, rng: np.random.Generator | None = None) -> Tensor:
        """Feed raw (encoded) node features through the edge-sequence GRU."""
        if graph.num_edges == 0:
            raise ValueError("variant requires at least one temporal edge per graph")
        plan = graph.propagation_plan(rng=rng)
        encoded = self.encoder(Tensor(graph.features)).tanh()
        return self.extractor(encoded, graph, plan=plan)

    def embed_batch(
        self, graphs: list[CTDN], rng: np.random.Generator | None = None
    ) -> Tensor:
        """Batched variant: one encode + one fused extractor scan."""
        mega = mega_plan(graphs, rng=rng)
        if np.any(mega.member_edge_counts == 0):
            raise ValueError("variant requires at least one temporal edge per graph")
        encoded = self.encoder(Tensor(mega.features)).tanh()
        return self.extractor.forward_mega(encoded, mega)


class TPGNNTempVariant(GraphClassifierBase):
    """``temp``: propagation without ``f(t)``, mean pooling readout."""

    def __init__(self, in_features: int, updater: str = "sum", hidden_size: int = 32, seed: int = 0):
        rng = np.random.default_rng(seed)
        cls = TemporalPropagationSum if updater == "sum" else TemporalPropagationGRU
        propagation = cls(in_features, hidden_size, time_dim=0, rng=rng)
        super().__init__(embedding_dim=propagation.output_dim, rng=rng)
        self.propagation = propagation
        self.readout = MeanReadout()

    SUPPORTS_MEGABATCH = True

    def embed(self, graph: CTDN, rng: np.random.Generator | None = None) -> Tensor:
        """Mean-pool time-blind temporal-propagation embeddings."""
        return self.readout(self.propagation(graph, rng=rng))

    def embed_batch(
        self, graphs: list[CTDN], rng: np.random.Generator | None = None
    ) -> Tensor:
        """Batched variant: merged-wave propagation + segment-mean readout."""
        mega = mega_plan(graphs, rng=rng)
        return self.readout.forward_mega(self.propagation(mega), mega)


class TPGNNTime2VecVariant(GraphClassifierBase):
    """``time2Vec``: full propagation with ``f(t)``, mean pooling readout."""

    def __init__(
        self,
        in_features: int,
        updater: str = "sum",
        hidden_size: int = 32,
        time_dim: int = 6,
        seed: int = 0,
    ):
        rng = np.random.default_rng(seed)
        cls = TemporalPropagationSum if updater == "sum" else TemporalPropagationGRU
        propagation = cls(in_features, hidden_size, time_dim=time_dim, rng=rng)
        super().__init__(embedding_dim=propagation.output_dim, rng=rng)
        self.propagation = propagation
        self.readout = MeanReadout()

    SUPPORTS_MEGABATCH = True

    def embed(self, graph: CTDN, rng: np.random.Generator | None = None) -> Tensor:
        """Mean-pool full temporal-propagation embeddings."""
        return self.readout(self.propagation(graph, rng=rng))

    def embed_batch(
        self, graphs: list[CTDN], rng: np.random.Generator | None = None
    ) -> Tensor:
        """Batched variant: merged-wave propagation + segment-mean readout."""
        mega = mega_plan(graphs, rng=rng)
        return self.readout.forward_mega(self.propagation(mega), mega)


def make_ablation_variant(
    variant: str,
    in_features: int,
    updater: str = "sum",
    hidden_size: int = 32,
    gru_hidden_size: int = 32,
    time_dim: int = 6,
    seed: int = 0,
) -> GraphClassifierBase:
    """Factory for the Fig. 3/4 model variants (including ``full``)."""
    if variant == "rand":
        return TPGNNRandVariant(in_features, hidden_size=hidden_size, seed=seed)
    if variant == "w/o tem":
        return TPGNNWithoutTemporalPropagation(
            in_features, hidden_size=hidden_size, gru_hidden_size=gru_hidden_size, seed=seed
        )
    if variant == "temp":
        return TPGNNTempVariant(in_features, updater=updater, hidden_size=hidden_size, seed=seed)
    if variant == "time2Vec":
        return TPGNNTime2VecVariant(
            in_features, updater=updater, hidden_size=hidden_size, time_dim=time_dim, seed=seed
        )
    if variant == "full":
        from repro.core.model import TPGNN

        return TPGNN(
            in_features,
            updater=updater,
            hidden_size=hidden_size,
            gru_hidden_size=gru_hidden_size,
            time_dim=time_dim,
            seed=seed,
        )
    raise KeyError(f"unknown ablation variant {variant!r}; choose from {ABLATION_VARIANTS}")
