"""Shared interface for all graph classifiers in the reproduction.

Every model — TP-GNN, its ablation variants, and all twelve baselines —
implements :class:`GraphClassifierBase`: a single-graph forward that
returns a raw logit, plus an ``embed`` method exposing the graph
embedding ``g`` (used by the Table III ``+G`` wrappers and the case
study).  The trainer in :mod:`repro.training` works against this
interface only.
"""

from __future__ import annotations

import numpy as np

from repro.graph.ctdn import CTDN
from repro.nn import Linear, Module
from repro.tensor import Tensor, ops


class MeanReadout(Module):
    """Mean graph pooling (Wu et al., 2021).

    The paper equips every node/edge-level baseline with this readout to
    obtain graph representations, and uses it in the ablation variants
    that drop the global temporal embedding extractor.
    """

    def forward(self, node_embeddings: Tensor) -> Tensor:
        """Average node embeddings into a single graph vector."""
        return node_embeddings.mean(axis=0)

    def forward_mega(self, node_embeddings: Tensor, mega) -> Tensor:
        """Per-member mean pooling of a packed ``(Σn, k)`` matrix → ``(B, k)``.

        One :func:`~repro.tensor.ops.segment_mean` over the mega-plan's
        per-node member ids replaces ``B`` per-graph means.
        """
        return ops.segment_mean(
            node_embeddings, mega.member_node_ids, mega.num_members
        )


class GraphClassifierBase(Module):
    """A binary dynamic-graph classifier.

    Subclasses implement :meth:`embed` producing the graph embedding;
    the shared classifier head (paper Eq. 11: ``sigmoid(W g + b)``,
    returned here as the raw logit) lives in this base class.

    Parameters
    ----------
    embedding_dim:
        Width of the graph embedding produced by :meth:`embed`.
    rng:
        Generator for the classifier head initialisation.
    """

    #: True when :meth:`embed_batch` packs a whole minibatch into one
    #: block-diagonal mega-plan (see :mod:`repro.graph.megaplan`); the
    #: trainer folds its accumulate-then-average loop into a single
    #: batched forward/backward for such models.
    SUPPORTS_MEGABATCH = False

    def __init__(self, embedding_dim: int, rng: np.random.Generator | None = None):
        super().__init__()
        self.embedding_dim = embedding_dim
        self.classifier = Linear(embedding_dim, 1, rng=rng)

    def embed(self, graph: CTDN, rng: np.random.Generator | None = None) -> Tensor:
        """Return the graph embedding ``g`` (shape ``(embedding_dim,)``)."""
        raise NotImplementedError

    def embed_batch(
        self, graphs: list[CTDN], rng: np.random.Generator | None = None
    ) -> Tensor:
        """Graph embeddings of a minibatch — shape ``(B, embedding_dim)``.

        Mega-batch-capable subclasses (``SUPPORTS_MEGABATCH = True``)
        override this with a single block-diagonal pass equivalent to
        ``B`` calls of :meth:`embed` (including rng-stream consumption,
        so tie shuffling stays bit-compatible with the per-graph path).
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement mega-batched embedding"
        )

    def forward_batch(
        self, graphs: list[CTDN], rng: np.random.Generator | None = None
    ) -> Tensor:
        """Raw logits for a minibatch of graphs — shape ``(B,)``."""
        return self.logits(self.embed_batch(graphs, rng=rng))

    def logit(self, embedding: Tensor) -> Tensor:
        """Classifier head on one graph embedding ``g`` — shape ``(1,)``.

        Shared by the batch :meth:`forward` and the streaming engine,
        so online and replay scoring apply the identical head.
        """
        return self.classifier(embedding.reshape(1, self.embedding_dim)).reshape(1)

    def logits(self, embeddings: Tensor) -> Tensor:
        """Micro-batched head: ``(b, d)`` embeddings → ``(b,)`` logits.

        One matmul pass over many graph embeddings — the serving
        engine's grouped read path.
        """
        return self.classifier(embeddings.reshape(-1, self.embedding_dim)).reshape(
            embeddings.shape[0] if embeddings.ndim == 2 else 1
        )

    def forward(self, graph: CTDN, rng: np.random.Generator | None = None) -> Tensor:
        """Return the raw classification logit for ``graph`` (scalar tensor)."""
        return self.logit(self.embed(graph, rng=rng))

    def predict_proba(self, graph: CTDN) -> float:
        """Probability that ``graph`` is positive (label 1)."""
        from repro.tensor import no_grad

        with no_grad():
            logit = self.forward(graph)
        return float(1.0 / (1.0 + np.exp(-logit.item())))

    def predict(self, graph: CTDN, threshold: float = 0.5) -> int:
        """Hard label prediction at the given probability threshold."""
        return int(self.predict_proba(graph) >= threshold)
