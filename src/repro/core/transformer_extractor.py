"""Transformer-based global temporal extractor (paper Sec. IV-C note).

The paper remarks that the extractor's GRU "can be replaced by other
sequential models according to the characteristics of a dataset — for
instance, one can choose Transformer for large dynamic graphs to
capture longer dependencies".  This module implements that variant: a
single-block transformer encoder with learnable positional encodings
over the chronological edge-embedding sequence, mean-pooled into the
graph embedding.

Use it by passing ``extractor="transformer"`` to
:func:`make_tpgnn_with_extractor`, or construct it directly and wire it
into a custom model; `benchmarks/test_ablation_design_choices.py`'s
sibling bench compares it against the GRU extractor.
"""

from __future__ import annotations

import numpy as np

from repro.core.edge_agg import EDGE_AGGREGATORS, edge_dim
from repro.graph.ctdn import CTDN
from repro.nn import LayerNorm, Linear, Module, MultiHeadAttention
from repro.nn.module import Parameter
from repro.tensor import Tensor, ops


class GlobalTemporalTransformer(Module):
    """Transformer encoder over the chronological edge sequence.

    Parameters
    ----------
    node_dim:
        Width of the local node embeddings.
    hidden_size:
        Model width (graph embedding dimensionality).
    num_heads:
        Attention heads in the encoder block.
    max_edges:
        Capacity of the learnable positional table; sequences longer
        than this share the final position embedding.
    aggregator:
        EdgeAgg operator converting node to edge embeddings.
    """

    def __init__(
        self,
        node_dim: int,
        hidden_size: int = 32,
        num_heads: int = 2,
        max_edges: int = 512,
        aggregator: str = "average",
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if aggregator not in EDGE_AGGREGATORS:
            raise KeyError(
                f"unknown EdgeAgg method {aggregator!r}; choose from {sorted(EDGE_AGGREGATORS)}"
            )
        rng = rng if rng is not None else np.random.default_rng(0)
        self.node_dim = node_dim
        self.hidden_size = hidden_size
        self.max_edges = max_edges
        self.aggregator_name = aggregator
        self._aggregate = EDGE_AGGREGATORS[aggregator]
        self.input_proj = Linear(edge_dim(aggregator, node_dim), hidden_size, rng=rng)
        self.positions = Parameter(
            rng.normal(0.0, 0.02, size=(max_edges, hidden_size)), name="positions"
        )
        self.attention = MultiHeadAttention(hidden_size, num_heads, rng=rng)
        self.norm1 = LayerNorm(hidden_size)
        self.ffn1 = Linear(hidden_size, 2 * hidden_size, rng=rng)
        self.ffn2 = Linear(2 * hidden_size, hidden_size, rng=rng)
        self.norm2 = LayerNorm(hidden_size)

    def forward(
        self,
        node_embeddings: Tensor,
        graph: CTDN,
        rng: np.random.Generator | None = None,
        plan=None,
    ) -> Tensor:
        """Return the graph embedding ``g`` of shape (hidden_size,).

        Unlike the GRU extractor, order enters through the positional
        encodings; the attention itself sees the whole sequence at once,
        which is the "longer dependencies" benefit the paper alludes to.
        ``plan`` reuses an already-built chronological order, as in
        :meth:`GlobalTemporalExtractor.forward`.
        """
        if plan is None:
            plan = graph.propagation_plan(rng=rng)
        if plan.num_edges == 0:
            raise ValueError("cannot embed a graph with no edges")
        src, dst = plan.src, plan.dst
        if self.aggregator_name == "average":
            sequence = (
                ops.index_rows(node_embeddings, src) + ops.index_rows(node_embeddings, dst)
            ) * 0.5
        else:
            rows = [
                self._aggregate(node_embeddings[int(u)], node_embeddings[int(v)])
                for u, v in zip(src, dst)
            ]
            sequence = ops.stack(rows, axis=0)
        tokens = self.input_proj(sequence)
        indices = np.minimum(np.arange(plan.num_edges), self.max_edges - 1)
        tokens = tokens + ops.embedding_lookup(self.positions, indices)
        attended = self.norm1(tokens + self.attention(tokens, tokens, tokens))
        encoded = self.norm2(attended + self.ffn2(ops.relu(self.ffn1(attended))))
        return encoded.mean(axis=0)

    def forward_mega(self, node_embeddings: Tensor, mega) -> Tensor:
        """Graph embeddings of a mega-batched minibatch — ``(B, hidden_size)``.

        Attention mixes every position of a sequence, so members are
        encoded one at a time over their node-row slice of the packed
        matrix (each member's plan holds local node ids, matching the
        slice); the expensive merged-wave propagation pass is still
        shared across the batch.
        """
        rows = []
        for b, plan in enumerate(mega.member_plans):
            member_rows = node_embeddings[mega.member_node_slice(b)]
            rows.append(self.forward(member_rows, None, plan=plan))
        return ops.stack(rows, axis=0)


def make_tpgnn_with_extractor(
    in_features: int,
    extractor: str = "gru",
    updater: str = "sum",
    hidden_size: int = 32,
    gru_hidden_size: int = 32,
    time_dim: int = 6,
    seed: int = 0,
):
    """Build a TP-GNN with either the GRU or the Transformer extractor.

    ``extractor="gru"`` returns the stock :class:`~repro.core.model.TPGNN`;
    ``extractor="transformer"`` swaps in
    :class:`GlobalTemporalTransformer` (same interface, same training
    loop).
    """
    from repro.core.model import TPGNN

    model = TPGNN(
        in_features,
        updater=updater,
        hidden_size=hidden_size,
        gru_hidden_size=gru_hidden_size,
        time_dim=time_dim,
        seed=seed,
    )
    if extractor == "gru":
        return model
    if extractor != "transformer":
        raise KeyError(f"unknown extractor {extractor!r}; choose 'gru' or 'transformer'")
    model.extractor = GlobalTemporalTransformer(
        node_dim=model.propagation.output_dim,
        hidden_size=gru_hidden_size,
        rng=np.random.default_rng(seed + 17),
    )
    return model
