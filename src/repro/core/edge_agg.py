"""EdgeAgg: converting node embeddings to edge embeddings.

The paper adopts the *Average* method among the six EdgeAgg operators
introduced by Qu et al. (WWW 2020): Average, Hadamard, Weighted-L1,
Weighted-L2, Activation, Concatenation.  All six are implemented so the
choice can be ablated (see ``benchmarks/test_ablation_edge_agg.py``).
"""

from __future__ import annotations

from typing import Callable

from repro.tensor import Tensor, ops

EdgeAggFn = Callable[[Tensor, Tensor], Tensor]


def average(h_u: Tensor, h_v: Tensor) -> Tensor:
    """Mean of the endpoint embeddings (the paper's default)."""
    return (h_u + h_v) * 0.5


def hadamard(h_u: Tensor, h_v: Tensor) -> Tensor:
    """Elementwise product of the endpoints."""
    return h_u * h_v


def weighted_l1(h_u: Tensor, h_v: Tensor) -> Tensor:
    """Elementwise absolute difference."""
    return ops.absolute(h_u - h_v)


def weighted_l2(h_u: Tensor, h_v: Tensor) -> Tensor:
    """Elementwise squared difference."""
    diff = h_u - h_v
    return diff * diff


def activation(h_u: Tensor, h_v: Tensor) -> Tensor:
    """Nonlinear blend ``tanh(h_u + h_v)``."""
    return ops.tanh(h_u + h_v)


def concatenation(h_u: Tensor, h_v: Tensor) -> Tensor:
    """Concatenate endpoints (doubles the edge-embedding width)."""
    return ops.concat([h_u, h_v], axis=0)


EDGE_AGGREGATORS: dict[str, EdgeAggFn] = {
    "average": average,
    "hadamard": hadamard,
    "weighted_l1": weighted_l1,
    "weighted_l2": weighted_l2,
    "activation": activation,
    "concatenation": concatenation,
}


def edge_dim(aggregator: str, node_dim: int) -> int:
    """Edge-embedding width produced by ``aggregator`` on ``node_dim`` inputs."""
    if aggregator not in EDGE_AGGREGATORS:
        raise KeyError(f"unknown EdgeAgg method {aggregator!r}; choose from {sorted(EDGE_AGGREGATORS)}")
    return 2 * node_dim if aggregator == "concatenation" else node_dim
