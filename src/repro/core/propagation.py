"""Temporal propagation — the paper's message-passing mechanism (Sec. IV-B).

Temporal propagation walks the edge list in chronological order and
pushes information along each edge from source to target, so a node's
embedding aggregates exactly its *influential nodes* (Definition 4,
Theorem 1).  Two updaters are provided, matching Algorithm 1:

* **SUM** — ``X(v) += X(u)`` plus an additive time-embedding memory
  ``M(v) += f(t)``; output is ``tanh(X ⊕ M)``.
* **GRU** — ``h(v) = GRU(h(v), [h(u) ⊕ f(t)])``; output is ``tanh(H)``.

Both touch each edge exactly once (O(m) updates), which the test suite
asserts via :attr:`TemporalPropagationBase.last_update_count`.

Both updaters are *recurrences over the edge sequence*, so each exposes
an incremental API used by the online-serving engine
(:mod:`repro.serve`):

* :meth:`~TemporalPropagationBase.init_state` — per-session state from
  the raw node features;
* :meth:`~TemporalPropagationBase.step` — advance the state by one
  :class:`~repro.graph.edge.TemporalEdge` in O(1);
* :meth:`~TemporalPropagationBase.finalize` — the node embedding matrix
  ``H`` for the edges consumed so far;
* :meth:`~TemporalPropagationBase.snapshot_state` /
  :meth:`~TemporalPropagationBase.restore_state` — checkpointable
  array form of the state.

The batch :meth:`forward` is literally a fold of :meth:`step` over the
chronological edge list, so streaming and batch inference share one
code path and agree to machine precision.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.ctdn import CTDN
from repro.graph.edge import TemporalEdge
from repro.nn import FeatureEncoder, GRUCell, Module, Time2Vec
from repro.tensor import Tensor, ops


@dataclass
class PropagationState:
    """Per-session propagation state shared by both updaters.

    ``node_state`` holds one tensor per node (the updater defines its
    shape); ``origin`` is the session's first edge time (time encoding
    is session-relative, see :meth:`TemporalPropagationBase._encode_time`)
    and ``updates`` counts the edges consumed.
    """

    node_state: list[Tensor]
    origin: float | None = None
    updates: int = 0

    @property
    def num_nodes(self) -> int:
        """Number of nodes tracked by this state."""
        return len(self.node_state)


@dataclass
class SumPropagationState(PropagationState):
    """SUM-updater state: encoded features plus additive time memory."""

    time_state: list[Tensor | None] = field(default_factory=list)


@dataclass
class GruPropagationState(PropagationState):
    """GRU-updater state: one ``(1, hidden)`` GRU hidden row per node."""


class TemporalPropagationBase(Module):
    """Shared plumbing of the SUM and GRU updaters.

    Parameters
    ----------
    in_features:
        Raw node feature dimensionality ``q_raw``.
    hidden_size:
        Width ``q`` of the encoded node features (paper Eq. 1).
    time_dim:
        Time-embedding width ``d_t`` (paper Eq. 2).  Set to 0 to drop
        time encoding entirely (the ``temp`` ablation variant).
    rng:
        Generator for parameter initialisation.
    """

    def __init__(
        self,
        in_features: int,
        hidden_size: int,
        time_dim: int = 6,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_features = in_features
        self.hidden_size = hidden_size
        self.time_dim = time_dim
        self.encoder = FeatureEncoder(in_features, hidden_size, rng=rng)
        self.time_encoder = Time2Vec(time_dim, rng=rng) if time_dim > 0 else None
        self.last_update_count = 0

    @property
    def output_dim(self) -> int:
        """Width ``k`` of the local node embedding produced by forward."""
        raise NotImplementedError

    def _ordered_edges(
        self, graph: CTDN, rng: np.random.Generator | None
    ) -> list[TemporalEdge]:
        """Chronological edges, optionally shuffling timestamp ties."""
        return graph.edges_sorted(rng=rng)

    def _encode_time(self, time: float, origin: float = 0.0) -> Tensor:
        """Time embedding ``f(t - origin)`` as a ``(1, d_t)`` tensor.

        ``origin`` is the graph's first edge time: encoding session-
        relative times lets one set of Time2Vec frequencies generalise
        across graphs whose absolute clocks differ by orders of
        magnitude (every graph in a dataset is an independent session).
        """
        assert self.time_encoder is not None
        return self.time_encoder(np.array([time - origin]))

    # ------------------------------------------------------------------
    # Incremental (streaming) API
    # ------------------------------------------------------------------
    def init_state(self, features: np.ndarray) -> PropagationState:
        """Fresh per-session state from a ``(n, q_raw)`` feature matrix."""
        raise NotImplementedError

    def add_nodes(self, state: PropagationState, features: np.ndarray) -> None:
        """Append newly-observed nodes (rows of raw features) to ``state``."""
        raise NotImplementedError

    def set_node(self, state: PropagationState, node: int, features: np.ndarray) -> None:
        """(Re-)materialize one node's state from its raw features.

        Used by the streaming engine when a node's features arrive
        after its index was reserved by a placeholder row.
        """
        raise NotImplementedError

    def step(self, state: PropagationState, edge: TemporalEdge) -> None:
        """Advance ``state`` by one temporal edge — O(1) work."""
        raise NotImplementedError

    def node_embedding(self, state: PropagationState, node: int) -> Tensor:
        """Embedding of a single node under the current state (shape ``(k,)``)."""
        raise NotImplementedError

    def finalize(self, state: PropagationState) -> Tensor:
        """Node embedding matrix ``H`` of shape ``(n, k)`` for ``state``."""
        raise NotImplementedError

    def snapshot_state(self, state: PropagationState) -> dict[str, np.ndarray]:
        """Checkpointable array form of ``state`` (see :meth:`restore_state`)."""
        raise NotImplementedError

    def restore_state(self, arrays: dict[str, np.ndarray]) -> PropagationState:
        """Rebuild a state from :meth:`snapshot_state` output."""
        raise NotImplementedError

    def _encode_features(self, features: np.ndarray) -> Tensor:
        """Encode raw features into the hidden space (paper Eq. 1)."""
        features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        if features.shape[1] != self.in_features:
            raise ValueError(
                f"expected features of width {self.in_features}, got {features.shape[1]}"
            )
        return self.encoder(Tensor(features))

    def _common_snapshot(self, state: PropagationState) -> dict[str, np.ndarray]:
        """Origin/update-count arrays shared by both updaters."""
        has_origin = state.origin is not None
        return {
            "origin": np.array([state.origin if has_origin else 0.0, float(has_origin)]),
            "updates": np.array([state.updates], dtype=np.int64),
        }

    @staticmethod
    def _restore_common(arrays: dict[str, np.ndarray]) -> tuple[float | None, int]:
        """Invert :meth:`_common_snapshot`."""
        origin_value, has_origin = arrays["origin"]
        origin = float(origin_value) if has_origin else None
        return origin, int(arrays["updates"][0])


class TemporalPropagationSum(TemporalPropagationBase):
    """The SUM updater (Algorithm 1, Eqs. 3-5).

    Maintains an encoded feature vector and an additive temporal memory
    per node; each edge adds the source's features into the target and
    the edge-time embedding into the target's memory.

    Stability note: Eq. 3's literal update ``X(v) := X(u) + X(v)`` grows
    exponentially along revisit chains (a node updated k times through a
    cycle accumulates ~2^k of its own signal), which saturates the final
    ``tanh`` into a pure sign pattern on edge-dense graphs such as
    Brightkite and kills the gradient.  Three stabilizers are offered:

    * ``"bounded"`` (default) — ``X(v) := tanh(X(u) + X(v))``: the sum
      is squashed after every update, so magnitudes stay in (-1, 1)
      while strong signals (e.g. an exception flag) persist instead of
      being averaged away.
    * ``"average"`` — ``X(v) := (X(u) + X(v)) / 2``: a running average.
    * ``"none"`` — the verbatim Eq. 3.

    All three preserve the information-flow semantics and Theorem 1
    (influential ⇔ not independent): the source always enters the
    target with non-zero weight, in chronological order.
    """

    STABILIZERS = ("bounded", "average", "none")

    def __init__(
        self,
        in_features: int,
        hidden_size: int,
        time_dim: int = 6,
        stabilizer: str = "bounded",
        rng: np.random.Generator | None = None,
    ):
        super().__init__(in_features, hidden_size, time_dim=time_dim, rng=rng)
        if stabilizer not in self.STABILIZERS:
            raise KeyError(
                f"unknown stabilizer {stabilizer!r}; choose from {self.STABILIZERS}"
            )
        self.stabilizer = stabilizer

    @property
    def output_dim(self) -> int:
        """Encoded features concatenated with the temporal memory."""
        return self.hidden_size + self.time_dim

    # ------------------------------------------------------------------
    # Incremental API
    # ------------------------------------------------------------------
    def init_state(self, features: np.ndarray) -> SumPropagationState:
        """Fresh SUM state: encoded features, empty time memories."""
        encoded = self._encode_features(features)
        n = encoded.shape[0]
        return SumPropagationState(
            node_state=[encoded[i] for i in range(n)],
            time_state=[None] * n,
        )

    def add_nodes(self, state: SumPropagationState, features: np.ndarray) -> None:
        """Append newly-observed nodes to a SUM state."""
        encoded = self._encode_features(features)
        for i in range(encoded.shape[0]):
            state.node_state.append(encoded[i])
            state.time_state.append(None)

    def set_node(self, state: SumPropagationState, node: int, features: np.ndarray) -> None:
        """Overwrite one node's SUM state with freshly-encoded features."""
        encoded = self._encode_features(features)
        state.node_state[node] = encoded[0]
        state.time_state[node] = None

    def step(self, state: SumPropagationState, edge: TemporalEdge) -> None:
        """One SUM update (Eqs. 3-4) along ``edge``."""
        if state.origin is None:
            state.origin = edge.time
        merged = state.node_state[edge.src] + state.node_state[edge.dst]
        if self.stabilizer == "bounded":
            merged = ops.tanh(merged)
        elif self.stabilizer == "average":
            merged = merged * 0.5
        state.node_state[edge.dst] = merged
        if self.time_encoder is not None:
            # Eq. 4 verbatim: the temporal memory is a plain running
            # sum of time embeddings.  Unlike the feature update it
            # only grows linearly with in-degree, so it needs no
            # stabilisation — and the raw sum is the per-node
            # arrival-time signature that separates shuffled orders.
            f_t = self._encode_time(edge.time, state.origin).reshape(self.time_dim)
            previous = state.time_state[edge.dst]
            state.time_state[edge.dst] = f_t if previous is None else f_t + previous
        state.updates += 1

    def node_embedding(self, state: SumPropagationState, node: int) -> Tensor:
        """Single-node view of :meth:`finalize` (same math, shape ``(k,)``)."""
        features = state.node_state[node]
        if self.time_encoder is None:
            return ops.tanh(features)
        memory = state.time_state[node]
        if memory is None:
            memory = Tensor(np.zeros(self.time_dim))
        return ops.tanh(ops.concat([features, memory], axis=0))

    def finalize(self, state: SumPropagationState) -> Tensor:
        """Node embedding matrix ``tanh(X ⊕ M)`` of shape ``(n, k)``."""
        feature_matrix = ops.stack(state.node_state, axis=0)
        if self.time_encoder is None:
            return ops.tanh(feature_matrix)
        zero_memory = Tensor(np.zeros(self.time_dim))
        memory_rows = [
            row if row is not None else zero_memory for row in state.time_state
        ]
        memory_matrix = ops.stack(memory_rows, axis=0)
        return ops.tanh(ops.concat([feature_matrix, memory_matrix], axis=1))

    def snapshot_state(self, state: SumPropagationState) -> dict[str, np.ndarray]:
        """Arrays capturing the full SUM state."""
        arrays = self._common_snapshot(state)
        arrays["node_state"] = np.stack(
            [row.data for row in state.node_state], axis=0
        ) if state.node_state else np.zeros((0, self.hidden_size))
        time_dim = max(self.time_dim, 1)
        memory = np.zeros((state.num_nodes, time_dim))
        mask = np.zeros(state.num_nodes, dtype=np.int64)
        for i, row in enumerate(state.time_state):
            if row is not None:
                memory[i] = row.data
                mask[i] = 1
        arrays["time_state"] = memory
        arrays["time_mask"] = mask
        return arrays

    def restore_state(self, arrays: dict[str, np.ndarray]) -> SumPropagationState:
        """Rebuild a SUM state from :meth:`snapshot_state` arrays."""
        origin, updates = self._restore_common(arrays)
        node_state = [Tensor(row.copy()) for row in arrays["node_state"]]
        time_state: list[Tensor | None] = [
            Tensor(row[: self.time_dim].copy()) if flag else None
            for row, flag in zip(arrays["time_state"], arrays["time_mask"])
        ]
        return SumPropagationState(
            node_state=node_state, origin=origin, updates=updates, time_state=time_state
        )

    def forward(self, graph: CTDN, rng: np.random.Generator | None = None) -> Tensor:
        """Compute the local node embedding matrix ``H`` of shape (n, k).

        A fold of :meth:`step` over the chronological edge list — the
        same recurrence the streaming engine advances one event at a
        time.

        Parameters
        ----------
        graph:
            The dynamic network to embed.
        rng:
            When given, edges sharing a timestamp are shuffled (the
            paper applies this during training).
        """
        state = self.init_state(graph.features)
        for edge in self._ordered_edges(graph, rng):
            self.step(state, edge)
        self.last_update_count = state.updates
        return self.finalize(state)


class TemporalPropagationGRU(TemporalPropagationBase):
    """The GRU updater (Algorithm 1, Eq. 6).

    Each edge gates the concatenation of the source embedding and the
    edge-time embedding into the target's hidden state, letting the
    model selectively retain information from influential nodes across
    long interaction sequences.
    """

    def __init__(
        self,
        in_features: int,
        hidden_size: int,
        time_dim: int = 6,
        rng: np.random.Generator | None = None,
    ):
        super().__init__(in_features, hidden_size, time_dim=time_dim, rng=rng)
        rng_cell = rng if rng is not None else np.random.default_rng(0)
        self.cell = GRUCell(hidden_size + time_dim, hidden_size, rng=rng_cell)

    @property
    def output_dim(self) -> int:
        """The GRU hidden width ``q``."""
        return self.hidden_size

    # ------------------------------------------------------------------
    # Incremental API
    # ------------------------------------------------------------------
    def init_state(self, features: np.ndarray) -> GruPropagationState:
        """Fresh GRU state: one encoded ``(1, q)`` row per node."""
        encoded = self._encode_features(features)
        n = encoded.shape[0]
        return GruPropagationState(
            node_state=[encoded[i].reshape(1, self.hidden_size) for i in range(n)]
        )

    def add_nodes(self, state: GruPropagationState, features: np.ndarray) -> None:
        """Append newly-observed nodes to a GRU state."""
        encoded = self._encode_features(features)
        for i in range(encoded.shape[0]):
            state.node_state.append(encoded[i].reshape(1, self.hidden_size))

    def set_node(self, state: GruPropagationState, node: int, features: np.ndarray) -> None:
        """Overwrite one node's GRU state with freshly-encoded features."""
        encoded = self._encode_features(features)
        state.node_state[node] = encoded[0].reshape(1, self.hidden_size)

    def step(self, state: GruPropagationState, edge: TemporalEdge) -> None:
        """One GRU update (Eq. 6) along ``edge``."""
        if state.origin is None:
            state.origin = edge.time
        if self.time_encoder is not None:
            message = ops.concat(
                [state.node_state[edge.src], self._encode_time(edge.time, state.origin)],
                axis=1,
            )
        else:
            message = state.node_state[edge.src]
        state.node_state[edge.dst] = self.cell(message, state.node_state[edge.dst])
        state.updates += 1

    def node_embedding(self, state: GruPropagationState, node: int) -> Tensor:
        """Single-node view of :meth:`finalize` (shape ``(q,)``)."""
        return ops.tanh(state.node_state[node].reshape(self.hidden_size))

    def finalize(self, state: GruPropagationState) -> Tensor:
        """Node embedding matrix ``tanh(H)`` of shape ``(n, q)``."""
        rows = [row.reshape(self.hidden_size) for row in state.node_state]
        return ops.tanh(ops.stack(rows, axis=0))

    def snapshot_state(self, state: GruPropagationState) -> dict[str, np.ndarray]:
        """Arrays capturing the full GRU state."""
        arrays = self._common_snapshot(state)
        arrays["node_state"] = np.stack(
            [row.data.reshape(self.hidden_size) for row in state.node_state], axis=0
        ) if state.node_state else np.zeros((0, self.hidden_size))
        return arrays

    def restore_state(self, arrays: dict[str, np.ndarray]) -> GruPropagationState:
        """Rebuild a GRU state from :meth:`snapshot_state` arrays."""
        origin, updates = self._restore_common(arrays)
        node_state = [
            Tensor(row.copy().reshape(1, self.hidden_size))
            for row in arrays["node_state"]
        ]
        return GruPropagationState(node_state=node_state, origin=origin, updates=updates)

    def forward(self, graph: CTDN, rng: np.random.Generator | None = None) -> Tensor:
        """Compute the local node embedding matrix ``H`` of shape (n, q).

        Like the SUM updater, this is a fold of :meth:`step` over the
        chronological edges.
        """
        state = self.init_state(graph.features)
        for edge in self._ordered_edges(graph, rng):
            self.step(state, edge)
        self.last_update_count = state.updates
        return self.finalize(state)


class RandomAggregation(TemporalPropagationBase):
    """The ``rand`` ablation: time-blind random-neighbour aggregation.

    Ignores edge timestamps entirely; every node sums the encoded
    features of a random subset of its (undirected) neighbours.  Used by
    the Fig. 3/4 ablation studies as the degenerate message-passing
    reference.  Not a recurrence over the edge sequence, so it has no
    incremental API.
    """

    def __init__(
        self,
        in_features: int,
        hidden_size: int,
        num_samples: int = 3,
        rng: np.random.Generator | None = None,
    ):
        super().__init__(in_features, hidden_size, time_dim=0, rng=rng)
        self.num_samples = num_samples

    @property
    def output_dim(self) -> int:
        """Width of the encoded node features."""
        return self.hidden_size

    def forward(self, graph: CTDN, rng: np.random.Generator | None = None) -> Tensor:
        """Aggregate random neighbours, disregarding time."""
        sampler = rng if rng is not None else np.random.default_rng(0)
        encoded = self.encoder(Tensor(graph.features))
        neighbours: list[set[int]] = [set() for _ in range(graph.num_nodes)]
        for edge in graph.edges:
            neighbours[edge.src].add(edge.dst)
            neighbours[edge.dst].add(edge.src)
        rows = []
        self.last_update_count = 0
        for node in range(graph.num_nodes):
            candidates = sorted(neighbours[node])
            state = encoded[node]
            if candidates:
                count = min(self.num_samples, len(candidates))
                picked = sampler.choice(len(candidates), size=count, replace=False)
                for index in picked:
                    state = state + encoded[candidates[int(index)]]
                    self.last_update_count += 1
            rows.append(state)
        return ops.tanh(ops.stack(rows, axis=0))
