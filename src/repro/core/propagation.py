"""Temporal propagation — the paper's message-passing mechanism (Sec. IV-B).

Temporal propagation walks the edge list in chronological order and
pushes information along each edge from source to target, so a node's
embedding aggregates exactly its *influential nodes* (Definition 4,
Theorem 1).  Two updaters are provided, matching Algorithm 1:

* **SUM** — ``X(v) += X(u)`` plus an additive time-embedding memory
  ``M(v) += f(t)``; output is ``tanh(X ⊕ M)``.
* **GRU** — ``h(v) = GRU(h(v), [h(u) ⊕ f(t)])``; output is ``tanh(H)``.

Both touch each edge exactly once (O(m) updates), which the test suite
asserts via :attr:`TemporalPropagationBase.last_update_count`.

Two execution engines share the recurrence:

* ``"wave"`` (default) — the edge list is partitioned into *waves*
  (see :mod:`repro.graph.plan`): maximal chronological runs in which no
  edge reads a node row written earlier in the same wave and no two
  edges write the same target.  Each wave executes as one batched
  gather → update → scatter kernel over the ``(n, q)`` node-state
  matrix, with all edge-time embeddings computed in a single Time2Vec
  call up front.  Within a wave every edge sees exactly the states the
  per-edge recurrence would have shown it, so the result matches the
  fold to machine precision (property-tested).
* ``"per-edge"`` — the literal fold of :meth:`step` over the
  chronological edges: the reference semantics and the streaming path.

Both updaters are *recurrences over the edge sequence*, so each exposes
an incremental API used by the online-serving engine
(:mod:`repro.serve`):

* :meth:`~TemporalPropagationBase.init_state` — per-session state from
  the raw node features;
* :meth:`~TemporalPropagationBase.step` — advance the state by one
  :class:`~repro.graph.edge.TemporalEdge` in O(1);
* :meth:`~TemporalPropagationBase.finalize` — the node embedding matrix
  ``H`` for the edges consumed so far;
* :meth:`~TemporalPropagationBase.snapshot_state` /
  :meth:`~TemporalPropagationBase.restore_state` — checkpointable
  array form of the state.

State lives in a single ``(n, q)`` matrix tensor per session (not one
tensor per node): reads are row gathers, writes are in-place row
assignments when no tape is recording and functional
:func:`~repro.tensor.ops.scatter_rows` nodes when gradients are needed.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass

import numpy as np

from repro.graph.ctdn import CTDN
from repro.graph.edge import TemporalEdge
from repro.graph.megaplan import MegaPlan
from repro.graph.plan import PropagationPlan
from repro.nn import FeatureEncoder, GRUCell, Module, Time2Vec
from repro.resilience.faults import inject
from repro.tensor import Tensor, ops

_log = logging.getLogger("repro.resilience")


@dataclass
class PropagationState:
    """Per-session propagation state shared by both updaters.

    ``node_state`` is the ``(n, q)`` node-state matrix (the updater
    defines its width); ``origin`` is the session's first edge time
    (time encoding is session-relative, see
    :meth:`TemporalPropagationBase._encode_time`) and ``updates``
    counts the edges consumed.
    """

    node_state: Tensor
    origin: float | None = None
    updates: int = 0

    @property
    def num_nodes(self) -> int:
        """Number of nodes tracked by this state."""
        return int(self.node_state.shape[0])


@dataclass
class SumPropagationState(PropagationState):
    """SUM-updater state: encoded features plus additive time memory.

    ``time_state`` is the ``(n, d_t)`` temporal-memory matrix (``None``
    when the updater has no time encoder); ``time_touched`` marks which
    rows have absorbed at least one time embedding.  Untouched rows are
    exactly zero, so the memory matrix needs no masking in the forward
    math — the flag only preserves the checkpoint format.
    """

    time_state: Tensor | None = None
    time_touched: np.ndarray | None = None


@dataclass
class GruPropagationState(PropagationState):
    """GRU-updater state: the ``(n, hidden)`` GRU hidden-state matrix."""


class TemporalPropagationBase(Module):
    """Shared plumbing of the SUM and GRU updaters.

    Parameters
    ----------
    in_features:
        Raw node feature dimensionality ``q_raw``.
    hidden_size:
        Width ``q`` of the encoded node features (paper Eq. 1).
    time_dim:
        Time-embedding width ``d_t`` (paper Eq. 2).  Set to 0 to drop
        time encoding entirely (the ``temp`` ablation variant).
    rng:
        Generator for parameter initialisation.
    """

    ENGINES = ("wave", "per-edge")

    def __init__(
        self,
        in_features: int,
        hidden_size: int,
        time_dim: int = 6,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_features = in_features
        self.hidden_size = hidden_size
        self.time_dim = time_dim
        self.encoder = FeatureEncoder(in_features, hidden_size, rng=rng)
        self.time_encoder = Time2Vec(time_dim, rng=rng) if time_dim > 0 else None
        self.last_update_count = 0
        self.engine = "wave"
        #: True when the most recent :meth:`forward` had to abandon the
        #: wave engine (or plan construction) and replay per edge.
        self.fallback = False

    @property
    def output_dim(self) -> int:
        """Width ``k`` of the local node embedding produced by forward."""
        raise NotImplementedError

    def _ordered_edges(
        self, graph: CTDN, rng: np.random.Generator | None
    ) -> list[TemporalEdge]:
        """Chronological edges, optionally shuffling timestamp ties."""
        return graph.edges_sorted(rng=rng)

    def _encode_time(self, time: float, origin: float = 0.0) -> Tensor:
        """Time embedding ``f(t - origin)`` as a ``(1, d_t)`` tensor.

        ``origin`` is the graph's first edge time: encoding session-
        relative times lets one set of Time2Vec frequencies generalise
        across graphs whose absolute clocks differ by orders of
        magnitude (every graph in a dataset is an independent session).
        """
        assert self.time_encoder is not None
        return self.time_encoder(np.array([time - origin]))

    # ------------------------------------------------------------------
    # Incremental (streaming) API
    # ------------------------------------------------------------------
    def init_state(self, features: np.ndarray) -> PropagationState:
        """Fresh per-session state from a ``(n, q_raw)`` feature matrix."""
        raise NotImplementedError

    def add_nodes(self, state: PropagationState, features: np.ndarray) -> None:
        """Append newly-observed nodes (rows of raw features) to ``state``."""
        raise NotImplementedError

    def set_node(self, state: PropagationState, node: int, features: np.ndarray) -> None:
        """(Re-)materialize one node's state from its raw features.

        Used by the streaming engine when a node's features arrive
        after its index was reserved by a placeholder row.
        """
        raise NotImplementedError

    def step(self, state: PropagationState, edge: TemporalEdge) -> None:
        """Advance ``state`` by one temporal edge — O(1) work."""
        raise NotImplementedError

    def node_embedding(self, state: PropagationState, node: int) -> Tensor:
        """Embedding of a single node under the current state (shape ``(k,)``)."""
        raise NotImplementedError

    def finalize(self, state: PropagationState) -> Tensor:
        """Node embedding matrix ``H`` of shape ``(n, k)`` for ``state``."""
        raise NotImplementedError

    def snapshot_state(self, state: PropagationState) -> dict[str, np.ndarray]:
        """Checkpointable array form of ``state`` (see :meth:`restore_state`)."""
        raise NotImplementedError

    def restore_state(self, arrays: dict[str, np.ndarray]) -> PropagationState:
        """Rebuild a state from :meth:`snapshot_state` output."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Batch engines
    # ------------------------------------------------------------------
    def _run_waves(self, state: PropagationState, plan: PropagationPlan) -> None:
        """Advance ``state`` by every edge of ``plan``, one wave at a time."""
        raise NotImplementedError

    def forward(
        self,
        graph: CTDN | MegaPlan,
        rng: np.random.Generator | None = None,
        plan: PropagationPlan | None = None,
        engine: str | None = None,
    ) -> Tensor:
        """Compute the local node embedding matrix ``H`` of shape ``(n, k)``.

        Parameters
        ----------
        graph:
            The dynamic network to embed — or a
            :class:`~repro.graph.megaplan.MegaPlan` packing a whole
            minibatch, which dispatches to :meth:`forward_mega` and
            returns the packed ``(Σn, k)`` matrix.
        rng:
            When given, edges sharing a timestamp are shuffled (the
            paper applies this during training).  Ignored when ``plan``
            is supplied.
        plan:
            Pre-built execution plan; by default the graph's cached
            :meth:`~repro.graph.ctdn.CTDN.propagation_plan` is used.
        engine:
            ``"wave"`` for the batched kernels, ``"per-edge"`` for the
            reference fold of :meth:`step`.  Defaults to
            :attr:`engine` (``"wave"``).

        Degraded mode
        -------------
        The per-edge fold is the reference semantics, so it doubles as
        the recovery path: if plan construction fails, the chronological
        edge list is folded directly; if the wave kernel fails mid-run,
        the state is re-initialised and the plan's edge order replayed
        per edge (identical order ⇒ identical result).  Either fallback
        sets :attr:`fallback`, logs a warning, and bumps the
        ``resilience/fallback_engine_activations`` telemetry counter.
        """
        if isinstance(graph, MegaPlan):
            return self.forward_mega(graph, engine=engine)
        engine = engine if engine is not None else self.engine
        if engine not in self.ENGINES:
            raise KeyError(f"unknown engine {engine!r}; choose from {self.ENGINES}")
        self.fallback = False
        if plan is None:
            try:
                plan = graph.propagation_plan(rng=rng)
            except Exception as error:
                self._activate_fallback("plan", error)
                state = self.init_state(graph.features)
                for edge in self._ordered_edges(graph, rng):
                    self.step(state, edge)
                self.last_update_count = state.updates
                return self.finalize(state)
        state = self.init_state(graph.features)
        if engine == "per-edge":
            for edge in plan.edges():
                self.step(state, edge)
        else:
            try:
                inject("propagation.wave")
                self._run_waves(state, plan)
            except Exception as error:
                self._activate_fallback("wave", error)
                state = self.init_state(graph.features)
                for edge in plan.edges():
                    self.step(state, edge)
        self.last_update_count = state.updates
        return self.finalize(state)

    def forward_mega(self, mega: MegaPlan, engine: str | None = None) -> Tensor:
        """Node embeddings of a whole minibatch — one packed ``(Σn, k)`` matrix.

        Executes the block-diagonal plan over one shared state matrix:
        each merged wave is a single gather → update → scatter kernel
        covering wave ``k`` of every member graph.  Members are
        node-disjoint, so the result rows equal the per-graph
        :meth:`forward` outputs exactly (slice with
        :meth:`~repro.graph.megaplan.MegaPlan.member_node_slice`).

        Mega-plan times are session-relative per member, so the state
        runs with origin 0 — Time2Vec sees the same ``t - origin``
        inputs as the per-graph path.  The wave-failure fallback replays
        the merged order per edge, mirroring :meth:`forward`'s degraded
        mode.
        """
        engine = engine if engine is not None else self.engine
        if engine not in self.ENGINES:
            raise KeyError(f"unknown engine {engine!r}; choose from {self.ENGINES}")
        self.fallback = False
        state = self.init_state(mega.features)
        state.origin = 0.0
        if engine == "per-edge":
            for edge in mega.edges():
                self.step(state, edge)
        else:
            try:
                inject("propagation.wave")
                self._run_waves(state, mega)
            except Exception as error:
                self._activate_fallback("wave", error)
                state = self.init_state(mega.features)
                state.origin = 0.0
                for edge in mega.edges():
                    self.step(state, edge)
        self.last_update_count = state.updates
        return self.finalize(state)

    def _activate_fallback(self, stage: str, error: BaseException) -> None:
        """Record a wave→per-edge engine downgrade (log + telemetry)."""
        self.fallback = True
        _log.warning(
            "%s failed (%s: %s); falling back to per-edge propagation",
            "plan construction" if stage == "plan" else "wave kernel",
            type(error).__name__,
            error,
        )
        from repro import telemetry

        telemetry.get_registry().counter(
            "resilience/fallback_engine_activations", stage=stage
        ).inc()

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def _encode_features(self, features: np.ndarray) -> Tensor:
        """Encode raw features into the hidden space (paper Eq. 1)."""
        features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        if features.shape[1] != self.in_features:
            raise ValueError(
                f"expected features of width {self.in_features}, got {features.shape[1]}"
            )
        return self.encoder(Tensor(features))

    @staticmethod
    def _write_rows(matrix: Tensor, indices, rows: Tensor) -> Tensor:
        """Overwrite ``matrix[indices]`` with ``rows``, preserving gradients.

        On the tape (training / gradient checks) this is a functional
        :func:`~repro.tensor.ops.scatter_rows` node; off the tape
        (serving, ``no_grad`` inference) it mutates the backing array
        in place — O(rows) instead of O(n).
        """
        if matrix.requires_grad or rows.requires_grad:
            idx = np.atleast_1d(np.asarray(indices, dtype=np.int64))
            return ops.scatter_rows(
                matrix, idx, rows.reshape(idx.shape[0], matrix.shape[1])
            )
        matrix.data[indices] = rows.data
        return matrix

    def _batched_time_encodings(self, plan: PropagationPlan, origin: float) -> Tensor | None:
        """All edge-time embeddings of ``plan`` in one Time2Vec call.

        Time2Vec is purely elementwise, so the ``(m, d_t)`` batch is
        bit-identical to ``m`` scalar calls — each wave slices its rows.
        """
        if self.time_encoder is None:
            return None
        return self.time_encoder(plan.times - origin)

    def _common_snapshot(self, state: PropagationState) -> dict[str, np.ndarray]:
        """Origin/update-count arrays shared by both updaters."""
        has_origin = state.origin is not None
        return {
            "origin": np.array([state.origin if has_origin else 0.0, float(has_origin)]),
            "updates": np.array([state.updates], dtype=np.int64),
        }

    @staticmethod
    def _restore_common(arrays: dict[str, np.ndarray]) -> tuple[float | None, int]:
        """Invert :meth:`_common_snapshot`."""
        origin_value, has_origin = arrays["origin"]
        origin = float(origin_value) if has_origin else None
        return origin, int(arrays["updates"][0])


class TemporalPropagationSum(TemporalPropagationBase):
    """The SUM updater (Algorithm 1, Eqs. 3-5).

    Maintains an encoded feature vector and an additive temporal memory
    per node; each edge adds the source's features into the target and
    the edge-time embedding into the target's memory.

    Stability note: Eq. 3's literal update ``X(v) := X(u) + X(v)`` grows
    exponentially along revisit chains (a node updated k times through a
    cycle accumulates ~2^k of its own signal), which saturates the final
    ``tanh`` into a pure sign pattern on edge-dense graphs such as
    Brightkite and kills the gradient.  Three stabilizers are offered:

    * ``"bounded"`` (default) — ``X(v) := tanh(X(u) + X(v))``: the sum
      is squashed after every update, so magnitudes stay in (-1, 1)
      while strong signals (e.g. an exception flag) persist instead of
      being averaged away.
    * ``"average"`` — ``X(v) := (X(u) + X(v)) / 2``: a running average.
    * ``"none"`` — the verbatim Eq. 3.

    All three preserve the information-flow semantics and Theorem 1
    (influential ⇔ not independent): the source always enters the
    target with non-zero weight, in chronological order.
    """

    STABILIZERS = ("bounded", "average", "none")

    def __init__(
        self,
        in_features: int,
        hidden_size: int,
        time_dim: int = 6,
        stabilizer: str = "bounded",
        rng: np.random.Generator | None = None,
    ):
        super().__init__(in_features, hidden_size, time_dim=time_dim, rng=rng)
        if stabilizer not in self.STABILIZERS:
            raise KeyError(
                f"unknown stabilizer {stabilizer!r}; choose from {self.STABILIZERS}"
            )
        self.stabilizer = stabilizer

    @property
    def output_dim(self) -> int:
        """Encoded features concatenated with the temporal memory."""
        return self.hidden_size + self.time_dim

    def _stabilize(self, merged: Tensor) -> Tensor:
        """Apply the configured stabilizer to a merged feature update."""
        if self.stabilizer == "bounded":
            return ops.tanh(merged)
        if self.stabilizer == "average":
            return merged * 0.5
        return merged

    # ------------------------------------------------------------------
    # Incremental API
    # ------------------------------------------------------------------
    def init_state(self, features: np.ndarray) -> SumPropagationState:
        """Fresh SUM state: encoded features, all-zero time memories."""
        encoded = self._encode_features(features)
        n = encoded.shape[0]
        time_state = (
            Tensor(np.zeros((n, self.time_dim))) if self.time_encoder is not None else None
        )
        return SumPropagationState(
            node_state=encoded,
            time_state=time_state,
            time_touched=np.zeros(n, dtype=bool),
        )

    def add_nodes(self, state: SumPropagationState, features: np.ndarray) -> None:
        """Append newly-observed nodes to a SUM state."""
        encoded = self._encode_features(features)
        added = encoded.shape[0]
        state.node_state = ops.concat([state.node_state, encoded], axis=0)
        if state.time_state is not None:
            state.time_state = ops.concat(
                [state.time_state, Tensor(np.zeros((added, self.time_dim)))], axis=0
            )
        state.time_touched = np.concatenate(
            [state.time_touched, np.zeros(added, dtype=bool)]
        )

    def set_node(self, state: SumPropagationState, node: int, features: np.ndarray) -> None:
        """Overwrite one node's SUM state with freshly-encoded features."""
        encoded = self._encode_features(features)
        state.node_state = self._write_rows(state.node_state, node, encoded[0])
        if state.time_state is not None:
            state.time_state = self._write_rows(
                state.time_state, node, Tensor(np.zeros(self.time_dim))
            )
        state.time_touched[node] = False

    def step(self, state: SumPropagationState, edge: TemporalEdge) -> None:
        """One SUM update (Eqs. 3-4) along ``edge``."""
        if state.origin is None:
            state.origin = edge.time
        merged = self._stabilize(state.node_state[edge.src] + state.node_state[edge.dst])
        state.node_state = self._write_rows(state.node_state, edge.dst, merged)
        if self.time_encoder is not None:
            # Eq. 4 verbatim: the temporal memory is a plain running
            # sum of time embeddings.  Unlike the feature update it
            # only grows linearly with in-degree, so it needs no
            # stabilisation — and the raw sum is the per-node
            # arrival-time signature that separates shuffled orders.
            f_t = self._encode_time(edge.time, state.origin).reshape(self.time_dim)
            state.time_state = self._write_rows(
                state.time_state, edge.dst, f_t + state.time_state[edge.dst]
            )
            state.time_touched[edge.dst] = True
        state.updates += 1

    def _run_waves(self, state: SumPropagationState, plan: PropagationPlan) -> None:
        """Batched SUM kernel: gather both endpoints, merge, scatter."""
        if plan.num_edges == 0:
            return
        if state.origin is None:
            state.origin = float(plan.times[0])
        encodings = self._batched_time_encodings(plan, state.origin)
        features = state.node_state
        memory = state.time_state
        for start, end in plan.waves():
            src = plan.src[start:end]
            dst = plan.dst[start:end]
            merged = self._stabilize(
                ops.index_rows(features, src) + ops.index_rows(features, dst)
            )
            features = self._write_rows(features, dst, merged)
            if encodings is not None:
                memory = self._write_rows(
                    memory, dst, encodings[start:end] + ops.index_rows(memory, dst)
                )
        state.node_state = features
        if encodings is not None:
            state.time_state = memory
            state.time_touched[plan.dst] = True
        state.updates += plan.num_edges

    def node_embedding(self, state: SumPropagationState, node: int) -> Tensor:
        """Single-node view of :meth:`finalize` (same math, shape ``(k,)``)."""
        features = state.node_state[node]
        if self.time_encoder is None:
            return ops.tanh(features)
        return ops.tanh(ops.concat([features, state.time_state[node]], axis=0))

    def finalize(self, state: SumPropagationState) -> Tensor:
        """Node embedding matrix ``tanh(X ⊕ M)`` of shape ``(n, k)``."""
        if self.time_encoder is None:
            return ops.tanh(state.node_state)
        return ops.tanh(ops.concat([state.node_state, state.time_state], axis=1))

    def snapshot_state(self, state: SumPropagationState) -> dict[str, np.ndarray]:
        """Arrays capturing the full SUM state."""
        arrays = self._common_snapshot(state)
        arrays["node_state"] = state.node_state.data.copy()
        memory = np.zeros((state.num_nodes, max(self.time_dim, 1)))
        if state.time_state is not None:
            memory[:, : self.time_dim] = state.time_state.data
        arrays["time_state"] = memory
        arrays["time_mask"] = state.time_touched.astype(np.int64)
        return arrays

    def restore_state(self, arrays: dict[str, np.ndarray]) -> SumPropagationState:
        """Rebuild a SUM state from :meth:`snapshot_state` arrays."""
        origin, updates = self._restore_common(arrays)
        mask = arrays["time_mask"].astype(bool)
        time_state = None
        if self.time_encoder is not None:
            memory = arrays["time_state"][:, : self.time_dim].copy()
            memory[~mask] = 0.0
            time_state = Tensor(memory)
        return SumPropagationState(
            node_state=Tensor(arrays["node_state"].copy()),
            origin=origin,
            updates=updates,
            time_state=time_state,
            time_touched=mask.copy(),
        )


class TemporalPropagationGRU(TemporalPropagationBase):
    """The GRU updater (Algorithm 1, Eq. 6).

    Each edge gates the concatenation of the source embedding and the
    edge-time embedding into the target's hidden state, letting the
    model selectively retain information from influential nodes across
    long interaction sequences.  The wave engine feeds a whole wave of
    messages through :class:`~repro.nn.GRUCell` as one batch.
    """

    def __init__(
        self,
        in_features: int,
        hidden_size: int,
        time_dim: int = 6,
        rng: np.random.Generator | None = None,
    ):
        super().__init__(in_features, hidden_size, time_dim=time_dim, rng=rng)
        rng_cell = rng if rng is not None else np.random.default_rng(0)
        self.cell = GRUCell(hidden_size + time_dim, hidden_size, rng=rng_cell)

    @property
    def output_dim(self) -> int:
        """The GRU hidden width ``q``."""
        return self.hidden_size

    # ------------------------------------------------------------------
    # Incremental API
    # ------------------------------------------------------------------
    def init_state(self, features: np.ndarray) -> GruPropagationState:
        """Fresh GRU state: the encoded ``(n, q)`` feature matrix."""
        return GruPropagationState(node_state=self._encode_features(features))

    def add_nodes(self, state: GruPropagationState, features: np.ndarray) -> None:
        """Append newly-observed nodes to a GRU state."""
        encoded = self._encode_features(features)
        state.node_state = ops.concat([state.node_state, encoded], axis=0)

    def set_node(self, state: GruPropagationState, node: int, features: np.ndarray) -> None:
        """Overwrite one node's GRU state with freshly-encoded features."""
        encoded = self._encode_features(features)
        state.node_state = self._write_rows(state.node_state, node, encoded[0])

    def step(self, state: GruPropagationState, edge: TemporalEdge) -> None:
        """One GRU update (Eq. 6) along ``edge``."""
        if state.origin is None:
            state.origin = edge.time
        source = state.node_state[edge.src].reshape(1, self.hidden_size)
        if self.time_encoder is not None:
            message = ops.concat(
                [source, self._encode_time(edge.time, state.origin)], axis=1
            )
        else:
            message = source
        target = state.node_state[edge.dst].reshape(1, self.hidden_size)
        state.node_state = self._write_rows(
            state.node_state, edge.dst, self.cell(message, target)
        )
        state.updates += 1

    def _run_waves(self, state: GruPropagationState, plan: PropagationPlan) -> None:
        """Batched GRU kernel: one cell invocation per wave."""
        if plan.num_edges == 0:
            return
        if state.origin is None:
            state.origin = float(plan.times[0])
        encodings = self._batched_time_encodings(plan, state.origin)
        hidden = state.node_state
        for start, end in plan.waves():
            message = ops.index_rows(hidden, plan.src[start:end])
            if encodings is not None:
                message = ops.concat([message, encodings[start:end]], axis=1)
            target = ops.index_rows(hidden, plan.dst[start:end])
            hidden = self._write_rows(
                hidden, plan.dst[start:end], self.cell(message, target)
            )
        state.node_state = hidden
        state.updates += plan.num_edges

    def node_embedding(self, state: GruPropagationState, node: int) -> Tensor:
        """Single-node view of :meth:`finalize` (shape ``(q,)``)."""
        return ops.tanh(state.node_state[node])

    def finalize(self, state: GruPropagationState) -> Tensor:
        """Node embedding matrix ``tanh(H)`` of shape ``(n, q)``."""
        return ops.tanh(state.node_state)

    def snapshot_state(self, state: GruPropagationState) -> dict[str, np.ndarray]:
        """Arrays capturing the full GRU state."""
        arrays = self._common_snapshot(state)
        arrays["node_state"] = state.node_state.data.copy()
        return arrays

    def restore_state(self, arrays: dict[str, np.ndarray]) -> GruPropagationState:
        """Rebuild a GRU state from :meth:`snapshot_state` arrays."""
        origin, updates = self._restore_common(arrays)
        return GruPropagationState(
            node_state=Tensor(arrays["node_state"].copy()),
            origin=origin,
            updates=updates,
        )


class RandomAggregation(TemporalPropagationBase):
    """The ``rand`` ablation: time-blind random-neighbour aggregation.

    Ignores edge timestamps entirely; every node sums the encoded
    features of a random subset of its (undirected) neighbours.  Used by
    the Fig. 3/4 ablation studies as the degenerate message-passing
    reference.  Not a recurrence over the edge sequence, so it has no
    incremental API.
    """

    def __init__(
        self,
        in_features: int,
        hidden_size: int,
        num_samples: int = 3,
        rng: np.random.Generator | None = None,
    ):
        super().__init__(in_features, hidden_size, time_dim=0, rng=rng)
        self.num_samples = num_samples

    @property
    def output_dim(self) -> int:
        """Width of the encoded node features."""
        return self.hidden_size

    def forward(self, graph: CTDN, rng: np.random.Generator | None = None) -> Tensor:
        """Aggregate random neighbours, disregarding time.

        The per-node draws are accumulated as one gather plus one
        segment-sum over the encoded feature matrix instead of a tensor
        op per sampled neighbour; the rng stream (one ``choice`` per
        non-isolated node, in node order) is unchanged.
        """
        sampler = rng if rng is not None else np.random.default_rng(0)
        encoded = self.encoder(Tensor(graph.features))
        neighbours: list[set[int]] = [set() for _ in range(graph.num_nodes)]
        for edge in graph.edges:
            neighbours[edge.src].add(edge.dst)
            neighbours[edge.dst].add(edge.src)
        picked_nodes: list[int] = []
        targets: list[int] = []
        for node in range(graph.num_nodes):
            candidates = sorted(neighbours[node])
            if not candidates:
                continue
            count = min(self.num_samples, len(candidates))
            picked = sampler.choice(len(candidates), size=count, replace=False)
            picked_nodes.extend(candidates[int(index)] for index in picked)
            targets.extend([node] * count)
        self.last_update_count = len(picked_nodes)
        out = encoded
        if picked_nodes:
            gathered = ops.index_rows(encoded, np.asarray(picked_nodes, dtype=np.int64))
            out = out + ops.segment_sum(
                gathered, np.asarray(targets, dtype=np.int64), graph.num_nodes
            )
        return ops.tanh(out)
