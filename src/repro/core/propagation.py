"""Temporal propagation — the paper's message-passing mechanism (Sec. IV-B).

Temporal propagation walks the edge list in chronological order and
pushes information along each edge from source to target, so a node's
embedding aggregates exactly its *influential nodes* (Definition 4,
Theorem 1).  Two updaters are provided, matching Algorithm 1:

* **SUM** — ``X(v) += X(u)`` plus an additive time-embedding memory
  ``M(v) += f(t)``; output is ``tanh(X ⊕ M)``.
* **GRU** — ``h(v) = GRU(h(v), [h(u) ⊕ f(t)])``; output is ``tanh(H)``.

Both touch each edge exactly once (O(m) updates), which the test suite
asserts via :attr:`TemporalPropagationBase.last_update_count`.
"""

from __future__ import annotations

import numpy as np

from repro.graph.ctdn import CTDN
from repro.graph.edge import TemporalEdge
from repro.nn import FeatureEncoder, GRUCell, Module, Time2Vec
from repro.tensor import Tensor, ops


class TemporalPropagationBase(Module):
    """Shared plumbing of the SUM and GRU updaters.

    Parameters
    ----------
    in_features:
        Raw node feature dimensionality ``q_raw``.
    hidden_size:
        Width ``q`` of the encoded node features (paper Eq. 1).
    time_dim:
        Time-embedding width ``d_t`` (paper Eq. 2).  Set to 0 to drop
        time encoding entirely (the ``temp`` ablation variant).
    rng:
        Generator for parameter initialisation.
    """

    def __init__(
        self,
        in_features: int,
        hidden_size: int,
        time_dim: int = 6,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_features = in_features
        self.hidden_size = hidden_size
        self.time_dim = time_dim
        self.encoder = FeatureEncoder(in_features, hidden_size, rng=rng)
        self.time_encoder = Time2Vec(time_dim, rng=rng) if time_dim > 0 else None
        self.last_update_count = 0

    @property
    def output_dim(self) -> int:
        """Width ``k`` of the local node embedding produced by forward."""
        raise NotImplementedError

    def _ordered_edges(
        self, graph: CTDN, rng: np.random.Generator | None
    ) -> list[TemporalEdge]:
        """Chronological edges, optionally shuffling timestamp ties."""
        return graph.edges_sorted(rng=rng)

    def _encode_time(self, time: float, origin: float = 0.0) -> Tensor:
        """Time embedding ``f(t - origin)`` as a ``(1, d_t)`` tensor.

        ``origin`` is the graph's first edge time: encoding session-
        relative times lets one set of Time2Vec frequencies generalise
        across graphs whose absolute clocks differ by orders of
        magnitude (every graph in a dataset is an independent session).
        """
        assert self.time_encoder is not None
        return self.time_encoder(np.array([time - origin]))


class TemporalPropagationSum(TemporalPropagationBase):
    """The SUM updater (Algorithm 1, Eqs. 3-5).

    Maintains an encoded feature vector and an additive temporal memory
    per node; each edge adds the source's features into the target and
    the edge-time embedding into the target's memory.

    Stability note: Eq. 3's literal update ``X(v) := X(u) + X(v)`` grows
    exponentially along revisit chains (a node updated k times through a
    cycle accumulates ~2^k of its own signal), which saturates the final
    ``tanh`` into a pure sign pattern on edge-dense graphs such as
    Brightkite and kills the gradient.  Three stabilizers are offered:

    * ``"bounded"`` (default) — ``X(v) := tanh(X(u) + X(v))``: the sum
      is squashed after every update, so magnitudes stay in (-1, 1)
      while strong signals (e.g. an exception flag) persist instead of
      being averaged away.
    * ``"average"`` — ``X(v) := (X(u) + X(v)) / 2``: a running average.
    * ``"none"`` — the verbatim Eq. 3.

    All three preserve the information-flow semantics and Theorem 1
    (influential ⇔ not independent): the source always enters the
    target with non-zero weight, in chronological order.
    """

    STABILIZERS = ("bounded", "average", "none")

    def __init__(
        self,
        in_features: int,
        hidden_size: int,
        time_dim: int = 6,
        stabilizer: str = "bounded",
        rng: np.random.Generator | None = None,
    ):
        super().__init__(in_features, hidden_size, time_dim=time_dim, rng=rng)
        if stabilizer not in self.STABILIZERS:
            raise KeyError(
                f"unknown stabilizer {stabilizer!r}; choose from {self.STABILIZERS}"
            )
        self.stabilizer = stabilizer

    @property
    def output_dim(self) -> int:
        """Encoded features concatenated with the temporal memory."""
        return self.hidden_size + self.time_dim

    def forward(self, graph: CTDN, rng: np.random.Generator | None = None) -> Tensor:
        """Compute the local node embedding matrix ``H`` of shape (n, k).

        Parameters
        ----------
        graph:
            The dynamic network to embed.
        rng:
            When given, edges sharing a timestamp are shuffled (the
            paper applies this during training).
        """
        encoded = self.encoder(Tensor(graph.features))
        node_state: list[Tensor] = [encoded[i] for i in range(graph.num_nodes)]
        time_state: list[Tensor | None] = [None] * graph.num_nodes

        edges = self._ordered_edges(graph, rng)
        origin = edges[0].time if edges else 0.0
        self.last_update_count = 0
        for edge in edges:
            merged = node_state[edge.src] + node_state[edge.dst]
            if self.stabilizer == "bounded":
                merged = ops.tanh(merged)
            elif self.stabilizer == "average":
                merged = merged * 0.5
            node_state[edge.dst] = merged
            if self.time_encoder is not None:
                # Eq. 4 verbatim: the temporal memory is a plain running
                # sum of time embeddings.  Unlike the feature update it
                # only grows linearly with in-degree, so it needs no
                # stabilisation — and the raw sum is the per-node
                # arrival-time signature that separates shuffled orders.
                f_t = self._encode_time(edge.time, origin).reshape(self.time_dim)
                previous = time_state[edge.dst]
                time_state[edge.dst] = f_t if previous is None else f_t + previous
            self.last_update_count += 1

        feature_matrix = ops.stack(node_state, axis=0)
        if self.time_encoder is None:
            return ops.tanh(feature_matrix)
        zero_memory = Tensor(np.zeros(self.time_dim))
        memory_rows = [row if row is not None else zero_memory for row in time_state]
        memory_matrix = ops.stack(memory_rows, axis=0)
        return ops.tanh(ops.concat([feature_matrix, memory_matrix], axis=1))


class TemporalPropagationGRU(TemporalPropagationBase):
    """The GRU updater (Algorithm 1, Eq. 6).

    Each edge gates the concatenation of the source embedding and the
    edge-time embedding into the target's hidden state, letting the
    model selectively retain information from influential nodes across
    long interaction sequences.
    """

    def __init__(
        self,
        in_features: int,
        hidden_size: int,
        time_dim: int = 6,
        rng: np.random.Generator | None = None,
    ):
        super().__init__(in_features, hidden_size, time_dim=time_dim, rng=rng)
        rng_cell = rng if rng is not None else np.random.default_rng(0)
        self.cell = GRUCell(hidden_size + time_dim, hidden_size, rng=rng_cell)

    @property
    def output_dim(self) -> int:
        """The GRU hidden width ``q``."""
        return self.hidden_size

    def forward(self, graph: CTDN, rng: np.random.Generator | None = None) -> Tensor:
        """Compute the local node embedding matrix ``H`` of shape (n, q)."""
        encoded = self.encoder(Tensor(graph.features))
        node_state: list[Tensor] = [
            encoded[i].reshape(1, self.hidden_size) for i in range(graph.num_nodes)
        ]

        edges = self._ordered_edges(graph, rng)
        origin = edges[0].time if edges else 0.0
        self.last_update_count = 0
        for edge in edges:
            if self.time_encoder is not None:
                message = ops.concat(
                    [node_state[edge.src], self._encode_time(edge.time, origin)], axis=1
                )
            else:
                message = node_state[edge.src]
            node_state[edge.dst] = self.cell(message, node_state[edge.dst])
            self.last_update_count += 1

        rows = [state.reshape(self.hidden_size) for state in node_state]
        return ops.tanh(ops.stack(rows, axis=0))


class RandomAggregation(TemporalPropagationBase):
    """The ``rand`` ablation: time-blind random-neighbour aggregation.

    Ignores edge timestamps entirely; every node sums the encoded
    features of a random subset of its (undirected) neighbours.  Used by
    the Fig. 3/4 ablation studies as the degenerate message-passing
    reference.
    """

    def __init__(
        self,
        in_features: int,
        hidden_size: int,
        num_samples: int = 3,
        rng: np.random.Generator | None = None,
    ):
        super().__init__(in_features, hidden_size, time_dim=0, rng=rng)
        self.num_samples = num_samples

    @property
    def output_dim(self) -> int:
        """Width of the encoded node features."""
        return self.hidden_size

    def forward(self, graph: CTDN, rng: np.random.Generator | None = None) -> Tensor:
        """Aggregate random neighbours, disregarding time."""
        sampler = rng if rng is not None else np.random.default_rng(0)
        encoded = self.encoder(Tensor(graph.features))
        neighbours: list[set[int]] = [set() for _ in range(graph.num_nodes)]
        for edge in graph.edges:
            neighbours[edge.src].add(edge.dst)
            neighbours[edge.dst].add(edge.src)
        rows = []
        self.last_update_count = 0
        for node in range(graph.num_nodes):
            candidates = sorted(neighbours[node])
            state = encoded[node]
            if candidates:
                count = min(self.num_samples, len(candidates))
                picked = sampler.choice(len(candidates), size=count, replace=False)
                for index in picked:
                    state = state + encoded[candidates[int(index)]]
                    self.last_update_count += 1
            rows.append(state)
        return ops.tanh(ops.stack(rows, axis=0))
