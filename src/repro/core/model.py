"""TP-GNN: the end-to-end model (paper Sec. IV).

Wires the two components together:

1. **Temporal propagation** (Sec. IV-B) produces the local node
   embedding matrix ``H`` with either the SUM or GRU updater.
2. The **global temporal embedding extractor** (Sec. IV-C) converts
   ``H`` into a chronological edge-embedding sequence and GRU-encodes it
   into the graph embedding ``g``.
3. A fully-connected head classifies ``g`` (Eqs. 11-12).
"""

from __future__ import annotations

import numpy as np

from repro.core.base import GraphClassifierBase
from repro.core.extractor import GlobalTemporalExtractor
from repro.core.propagation import TemporalPropagationGRU, TemporalPropagationSum
from repro.graph.ctdn import CTDN
from repro.graph.megaplan import MegaPlan, mega_plan
from repro.tensor import Tensor

UPDATERS = {"sum": TemporalPropagationSum, "gru": TemporalPropagationGRU}


class TPGNN(GraphClassifierBase):
    """Temporal Propagation - Graph Neural Network.

    Parameters
    ----------
    in_features:
        Raw node feature dimensionality of the dataset.
    updater:
        ``"sum"`` (TP-GNN-SUM) or ``"gru"`` (TP-GNN-GRU).
    hidden_size:
        Width of the encoded node features (paper's node hidden size).
    gru_hidden_size:
        Hidden width ``d`` of the global extractor's GRU — the graph
        embedding dimensionality (paper default 32).
    time_dim:
        Time2Vec dimensionality ``d_t`` (paper default 6).
    edge_aggregator:
        EdgeAgg method converting node to edge embeddings (paper default
        ``"average"``).
    seed:
        Seed for all parameter initialisation.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core import TPGNN
    >>> from repro.graph import CTDN
    >>> graph = CTDN(3, np.eye(3), [(0, 1, 1.0), (1, 2, 2.0)], label=1)
    >>> model = TPGNN(in_features=3, updater="sum", seed=0)
    >>> 0.0 <= model.predict_proba(graph) <= 1.0
    True
    """

    SUPPORTS_MEGABATCH = True

    def __init__(
        self,
        in_features: int,
        updater: str = "sum",
        hidden_size: int = 32,
        gru_hidden_size: int = 32,
        time_dim: int = 6,
        edge_aggregator: str = "average",
        sum_stabilizer: str = "bounded",
        seed: int = 0,
    ):
        if updater not in UPDATERS:
            raise KeyError(f"unknown updater {updater!r}; choose from {sorted(UPDATERS)}")
        rng = np.random.default_rng(seed)
        if updater == "sum":
            propagation = TemporalPropagationSum(
                in_features, hidden_size, time_dim=time_dim, stabilizer=sum_stabilizer, rng=rng
            )
        else:
            propagation = TemporalPropagationGRU(
                in_features, hidden_size, time_dim=time_dim, rng=rng
            )
        super().__init__(embedding_dim=gru_hidden_size, rng=rng)
        self.updater_name = updater
        self.propagation = propagation
        self.extractor = GlobalTemporalExtractor(
            node_dim=propagation.output_dim,
            hidden_size=gru_hidden_size,
            aggregator=edge_aggregator,
            rng=rng,
        )

    def node_embeddings(self, graph: CTDN, rng: np.random.Generator | None = None) -> Tensor:
        """Local node embedding matrix ``H`` from temporal propagation."""
        return self.propagation(graph, rng=rng)

    def embed(self, graph: CTDN, rng: np.random.Generator | None = None) -> Tensor:
        """Graph embedding ``g``: propagation followed by the extractor.

        ``rng`` (training only) shuffles same-timestamp edges, as the
        paper does before each epoch to remove tie-order artifacts.
        """
        if graph.num_edges == 0:
            raise ValueError("TPGNN requires at least one temporal edge per graph")
        # One plan (tie-shuffled when rng is given) drives both components,
        # so propagation and the extractor see the same evolution sequence;
        # the deterministic plan is cached on the graph across epochs.
        plan = graph.propagation_plan(rng=rng)
        local = self.propagation(graph, plan=plan)
        return self.extractor(local, graph, plan=plan)

    def embed_batch(
        self,
        graphs: list[CTDN],
        rng: np.random.Generator | None = None,
        mega: MegaPlan | None = None,
    ) -> Tensor:
        """Graph embeddings of a minibatch — shape ``(B, embedding_dim)``.

        Packs the graphs into one block-diagonal mega-plan (cached per
        batch composition; see :mod:`repro.graph.megaplan`), runs
        propagation over the shared ``(Σn, q)`` state in merged waves,
        and extracts all ``B`` graph embeddings in one fused batched GRU
        scan.  Row ``b`` equals ``embed(graphs[b])`` to machine
        precision, and the rng stream is consumed exactly as ``B``
        sequential :meth:`embed` calls would.
        """
        if mega is None:
            mega = mega_plan(graphs, rng=rng)
        if np.any(mega.member_edge_counts == 0):
            raise ValueError("TPGNN requires at least one temporal edge per graph")
        local = self.propagation(mega)
        return self.extractor.forward_mega(local, mega)
