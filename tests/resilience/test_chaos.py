"""The chaos scenario suite and its CLI verb."""

import pytest

from repro.cli import main
from repro.resilience.chaos import (
    ScenarioResult,
    render_report,
    run_scenarios,
    scenario_description,
    scenario_names,
)


class TestRegistry:
    def test_at_least_ten_scenarios(self):
        assert len(scenario_names()) >= 10

    def test_quick_subset_excludes_process_scenarios(self):
        quick = scenario_names(quick=True)
        full = scenario_names()
        assert set(quick) < set(full)
        assert "worker-timeout" not in quick
        assert "trial-retry-resume" not in quick
        assert "journal-kill-recover" not in quick
        assert "journal-kill-mid-rotation" not in quick
        assert "journal-torn-tail" in quick
        assert "journal-corrupt-record" in quick

    def test_every_scenario_has_a_description(self):
        for name in scenario_names():
            assert scenario_description(name)

    def test_unknown_scenario_raises(self):
        with pytest.raises(KeyError, match="unknown chaos scenario"):
            run_scenarios(names=["no-such-scenario"])


@pytest.mark.chaos
class TestQuickSuite:
    def test_quick_suite_all_survive(self):
        results = run_scenarios(quick=True, seed=0)
        failed = [r for r in results if not r.survived]
        assert not failed, "\n" + render_report(failed)
        for result in results:
            assert result.detection
            assert result.recovery

    def test_scenarios_are_deterministic(self):
        first = run_scenarios(names=["serve-exception-burst"], seed=3)[0]
        second = run_scenarios(names=["serve-exception-burst"], seed=3)[0]
        assert first.survived and second.survived
        assert first.faults_injected == second.faults_injected

    def test_a_scenario_failure_is_reported_not_raised(self, monkeypatch):
        import repro.resilience.chaos as chaos

        def exploding(_context):
            raise RuntimeError("scenario bug")

        monkeypatch.setitem(
            chaos._SCENARIOS, "exploding", (exploding, "always fails", True)
        )
        (result,) = run_scenarios(names=["exploding"])
        assert not result.survived
        assert "RuntimeError: scenario bug" in result.error


class TestReport:
    def test_render_report_shape(self):
        results = [
            ScenarioResult(name="ok", survived=True, detection="guard",
                           recovery="healed", faults_injected=2, seconds=0.01),
            ScenarioResult(name="bad", survived=False, detection="",
                           recovery="", error="ValueError: x"),
        ]
        report = render_report(results)
        assert "SURVIVED ok" in report
        assert "FAILED   bad" in report
        assert "UNHANDLED: ValueError: x" in report
        assert "1/2 scenarios survived" in report


@pytest.mark.chaos
class TestCli:
    def test_chaos_list(self, capsys):
        assert main(["chaos", "--list"]) == 0
        out = capsys.readouterr().out
        for name in scenario_names():
            assert name in out

    def test_chaos_single_scenario_exits_zero(self, capsys):
        assert main(["chaos", "--scenarios", "cache-tamper"]) == 0
        assert "1/1 scenarios survived" in capsys.readouterr().out

    def test_chaos_quick_exits_zero(self, capsys):
        assert main(["chaos", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "scenarios survived" in out
        assert "FAILED" not in out
