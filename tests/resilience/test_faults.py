"""Fault-injection harness: plans, gating, corruption helpers."""

import time

import numpy as np
import pytest

from repro.resilience.errors import FaultInjected
from repro.resilience.faults import (
    FaultPlan,
    FaultSpec,
    activate,
    active,
    corrupt_file,
    enabled,
    inject,
    perturb_feed,
    truncate_file,
)


class TestFaultSpec:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(point="p", kind="explode")

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError, match="probability"):
            FaultSpec(point="p", probability=1.5)

    def test_call_kind_needs_action(self):
        with pytest.raises(ValueError, match="action"):
            FaultSpec(point="p", kind="call")


class TestFaultPlan:
    def test_raise_fires_and_journals(self):
        plan = FaultPlan().add("svc.op", kind="raise")
        with pytest.raises(FaultInjected, match="svc.op"):
            plan.fire("svc.op")
        assert plan.injected == 1
        assert plan.fired("svc.op") == 1
        assert plan.calls("svc.op") == 1

    def test_at_gates_on_call_index(self):
        plan = FaultPlan().add("p", kind="raise", at=(2,))
        plan.fire("p")
        plan.fire("p")
        with pytest.raises(FaultInjected):
            plan.fire("p")
        assert plan.calls("p") == 3
        assert plan.injected == 1

    def test_times_caps_firings(self):
        plan = FaultPlan().add("p", kind="delay", seconds=0.0, times=2)
        for _ in range(5):
            plan.fire("p")
        assert plan.injected == 2

    def test_probability_is_seeded(self):
        def firings(seed):
            plan = FaultPlan(seed=seed).add("p", kind="delay", probability=0.5)
            for _ in range(32):
                plan.fire("p")
            return [entry.call_index for entry in plan.journal]

        assert firings(7) == firings(7)
        assert firings(7) != firings(8)

    def test_timeout_kind_raises_timeout_error(self):
        plan = FaultPlan().add("p", kind="timeout")
        with pytest.raises(TimeoutError):
            plan.fire("p")

    def test_nan_poisons_one_seeded_element(self):
        array = np.zeros((3, 4))
        plan = FaultPlan(seed=3).add("p", kind="nan")
        plan.fire("p", context=array)
        assert np.isnan(array).sum() == 1

    def test_inf_poisons_tensor_like_context(self):
        class Param:
            def __init__(self):
                self.data = np.zeros(5)

        params = [Param(), Param()]
        plan = FaultPlan().add("p", kind="inf")
        plan.fire("p", context=params)
        assert sum(np.isinf(p.data).sum() for p in params) == 2

    def test_lazy_context_only_evaluated_on_fire(self):
        calls = []

        def context():
            calls.append(1)
            return np.zeros(3)

        plan = FaultPlan().add("p", kind="nan", at=(1,))
        plan.fire("p", context=context)
        assert calls == []
        plan.fire("p", context=context)
        assert calls == [1]

    def test_call_kind_invokes_action(self):
        seen = []
        plan = FaultPlan().add("p", kind="call", action=seen.append)
        plan.fire("p", context="ctx")
        assert seen == ["ctx"]


class TestActivation:
    def test_inject_is_noop_without_plan(self):
        assert not enabled()
        inject("anywhere")  # must not raise

    def test_activate_scopes_the_plan(self):
        plan = FaultPlan().add("p", kind="raise")
        with activate(plan) as current:
            assert active() is plan is current
            with pytest.raises(FaultInjected):
                inject("p")
        assert active() is None
        inject("p")  # deactivated again

    def test_activate_restores_previous_plan(self):
        outer, inner = FaultPlan(), FaultPlan()
        with activate(outer):
            with activate(inner):
                assert active() is inner
            assert active() is outer

    def test_disabled_inject_overhead_under_two_percent(self, tiny_dataset):
        """A disabled inject() must cost < 2% of any real call site.

        The hooks sit on paths that do model math (serve apply, wave
        kernels, training epochs), so the bound that matters is the
        per-call cost of a no-op inject() relative to the cheapest such
        operation — one forward pass on a tiny graph.
        """
        calls = 100_000
        start = time.perf_counter()
        for _ in range(calls):
            inject("hot.path")
        per_inject = (time.perf_counter() - start) / calls

        from repro.core import TPGNN

        model = TPGNN(in_features=tiny_dataset.feature_dim, hidden_size=8,
                      gru_hidden_size=8, time_dim=4, seed=0)
        graph = tiny_dataset[0]
        model.predict_proba(graph)  # warm up (plan cache, allocations)
        start = time.perf_counter()
        repeats = 5
        for _ in range(repeats):
            model.predict_proba(graph)
        per_forward = (time.perf_counter() - start) / repeats

        assert per_inject < 0.02 * per_forward


class TestCorruptionHelpers:
    def test_corrupt_file_flips_exactly_n_bytes(self, tmp_path):
        path = tmp_path / "blob.bin"
        original = bytes(range(256)) * 4
        path.write_bytes(original)
        offsets = corrupt_file(path, rng=0, nbytes=5)
        damaged = path.read_bytes()
        assert len(offsets) == 5
        diff = [i for i in range(len(original)) if original[i] != damaged[i]]
        assert diff == offsets

    def test_corrupt_file_is_seeded(self, tmp_path):
        for seed, expect_equal in ((11, True), (12, False)):
            a, b = tmp_path / "a.bin", tmp_path / "b.bin"
            a.write_bytes(b"x" * 100)
            b.write_bytes(b"x" * 100)
            corrupt_file(a, rng=11, nbytes=3)
            corrupt_file(b, rng=seed, nbytes=3)
            assert (a.read_bytes() == b.read_bytes()) is expect_equal

    def test_corrupt_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.bin"
        path.write_bytes(b"")
        with pytest.raises(ValueError, match="empty"):
            corrupt_file(path)

    def test_truncate_file_keeps_fraction(self, tmp_path):
        path = tmp_path / "blob.bin"
        path.write_bytes(b"y" * 1000)
        assert truncate_file(path, keep_fraction=0.25) == 250
        assert path.stat().st_size == 250

    def test_perturb_feed_drop_duplicate_swap(self):
        feed = list(range(100))
        noisy = perturb_feed(feed, rng=0, drop=0.2, duplicate=0.1, swap=0.5)
        assert noisy != feed
        assert set(noisy) <= set(feed)
        assert feed == list(range(100))  # input untouched

    def test_perturb_feed_identity_when_disabled(self):
        feed = list(range(10))
        assert perturb_feed(feed, rng=0) == feed

    def test_perturb_feed_rejects_bad_probability(self):
        with pytest.raises(ValueError, match="drop"):
            perturb_feed([], drop=2.0)
