"""Degraded-mode propagation: wave failures fall back to the per-edge fold."""

import logging

import numpy as np
import pytest

from repro.core import TPGNN
from repro.resilience.faults import FaultPlan, activate


@pytest.fixture
def model(tiny_dataset):
    return TPGNN(in_features=tiny_dataset.feature_dim, hidden_size=8,
                 gru_hidden_size=8, time_dim=4, seed=0)


class TestWaveFallback:
    def test_wave_failure_matches_healthy_output(self, model, tiny_dataset):
        graph = tiny_dataset[0]
        healthy = model.propagation(graph).data.copy()
        plan = FaultPlan().add("propagation.wave", kind="raise")
        with activate(plan):
            degraded = model.propagation(graph).data.copy()
        assert model.propagation.fallback
        assert plan.injected == 1
        np.testing.assert_allclose(degraded, healthy, rtol=0.0, atol=1e-9)

    def test_plan_failure_matches_healthy_output(self, model, tiny_dataset):
        graph = tiny_dataset[0]
        healthy = model.propagation(graph).data.copy()
        # A fresh structural copy: the original graph's cached plan would
        # bypass plan construction (and hence the injection point).
        from repro.graph import CTDN

        fresh = CTDN(graph.num_nodes, graph.features, list(graph.edges),
                     label=graph.label)
        plan = FaultPlan().add("plan.build", kind="raise")
        with activate(plan):
            degraded = model.propagation(fresh).data.copy()
        assert model.propagation.fallback
        np.testing.assert_allclose(degraded, healthy, rtol=0.0, atol=1e-9)

    def test_fallback_flag_resets_on_healthy_run(self, model, tiny_dataset):
        graph = tiny_dataset[0]
        with activate(FaultPlan().add("propagation.wave", kind="raise")):
            model.propagation(graph)
        assert model.propagation.fallback
        model.propagation(graph)
        assert not model.propagation.fallback

    def test_fallback_preserves_update_count(self, model, tiny_dataset):
        graph = tiny_dataset[0]
        with activate(FaultPlan().add("propagation.wave", kind="raise")):
            model.propagation(graph)
        assert model.propagation.last_update_count == len(graph.edges)

    def test_fallback_logs_and_counts(self, model, tiny_dataset, caplog):
        from repro import telemetry

        graph = tiny_dataset[0]

        def fired() -> int:
            return sum(
                instrument.value
                for name, labels, kind, instrument in telemetry.get_registry()
                if name == "resilience/fallback_engine_activations"
                and labels.get("stage") == "wave"
            )

        before = fired()
        with caplog.at_level(logging.WARNING, logger="repro.resilience"):
            with activate(FaultPlan().add("propagation.wave", kind="raise")):
                model.propagation(graph)
        assert fired() == before + 1
        assert any("falling back to per-edge" in r.message for r in caplog.records)

    def test_full_classifier_survives_wave_failure(self, model, tiny_dataset):
        graph = tiny_dataset[0]
        healthy = model.predict_proba(graph)
        with activate(FaultPlan().add("propagation.wave", kind="raise")):
            degraded = model.predict_proba(graph)
        assert degraded == pytest.approx(healthy, abs=1e-9)

    def test_gru_updater_also_falls_back(self, tiny_dataset):
        model = TPGNN(in_features=tiny_dataset.feature_dim, updater="gru",
                      hidden_size=8, gru_hidden_size=8, time_dim=4, seed=0)
        graph = tiny_dataset[0]
        healthy = model.propagation(graph).data.copy()
        with activate(FaultPlan().add("propagation.wave", kind="raise")):
            degraded = model.propagation(graph).data.copy()
        assert model.propagation.fallback
        np.testing.assert_allclose(degraded, healthy, rtol=0.0, atol=1e-9)

    def test_unrelated_faults_do_not_trigger_fallback(self, model, tiny_dataset):
        graph = tiny_dataset[0]
        with activate(FaultPlan().add("some.other.point", kind="raise")):
            model.propagation(graph)
        assert not model.propagation.fallback
