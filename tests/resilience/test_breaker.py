"""CircuitBreaker state machine and the cooperative deadline guard."""

import pytest

from repro.resilience.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    Deadline,
    call_with_deadline,
)
from repro.resilience.errors import CircuitOpenError, DeadlineExceededError


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestCircuitBreaker:
    def test_starts_closed_and_allows(self):
        breaker = CircuitBreaker()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_opens_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3, clock=FakeClock())
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        assert breaker.stats.rejections == 1
        assert breaker.stats.opens == 1

    def test_success_resets_the_streak(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_half_open_after_cooldown_then_closes_on_success(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown=10.0, clock=clock)
        breaker.record_failure()
        assert breaker.state == OPEN
        clock.now = 10.0
        assert breaker.state == HALF_OPEN
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED

    def test_half_open_failure_reopens_immediately(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=5, cooldown=1.0, clock=clock)
        for _ in range(5):
            breaker.record_failure()
        clock.now = 1.0
        assert breaker.state == HALF_OPEN
        breaker.record_failure()  # single probe failure, not 5
        assert breaker.state == OPEN
        assert breaker.stats.opens == 2

    def test_call_wraps_and_raises_when_open(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=100.0, clock=FakeClock())
        with pytest.raises(ValueError):
            breaker.call(self._boom)
        with pytest.raises(CircuitOpenError):
            breaker.call(lambda: "never runs")
        assert breaker.stats.failures == 1

    @staticmethod
    def _boom():
        raise ValueError("dependency down")

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown=-1.0)


class TestDeadline:
    def test_tracks_elapsed_and_remaining(self):
        clock = FakeClock()
        deadline = Deadline(seconds=5.0, clock=clock, started=0.0)
        clock.now = 2.0
        assert deadline.elapsed() == 2.0
        assert deadline.remaining() == 3.0
        assert not deadline.expired()
        clock.now = 6.0
        assert deadline.expired()

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError):
            Deadline(seconds=0.0)

    def test_call_within_deadline_returns_result_and_elapsed(self):
        clock = FakeClock()

        def work():
            clock.now += 1.0
            return "done"

        result, elapsed = call_with_deadline(work, 5.0, clock=clock)
        assert result == "done"
        assert elapsed == 1.0

    def test_call_past_deadline_raises_after_completion(self):
        clock = FakeClock()
        effects = []

        def slow():
            clock.now += 9.0
            effects.append("ran")

        with pytest.raises(DeadlineExceededError, match="9.000s"):
            call_with_deadline(slow, 1.0, clock=clock)
        assert effects == ["ran"]  # cooperative: never interrupted mid-call
