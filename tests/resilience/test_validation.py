"""EventValidator: schema checks, policies, repair and quarantine."""

import numpy as np
import pytest

from repro.resilience.errors import EventValidationError
from repro.resilience.validation import VALIDATION_POLICIES, EventValidator
from repro.serve.events import StreamEvent


def event(**overrides) -> StreamEvent:
    base = dict(session_id="s", src=0, dst=1, time=1.0)
    base.update(overrides)
    return StreamEvent(**base)


class TestChecks:
    def test_valid_event_has_no_violations(self):
        assert EventValidator().check(event()) == []

    def test_non_event_record(self):
        violations = EventValidator().check({"src": 0, "dst": 1})
        assert violations == ["schema: not a StreamEvent (got dict)"]

    def test_empty_session_id(self):
        violations = EventValidator().check(event(session_id=""))
        assert any("session_id" in v for v in violations)

    def test_node_range(self):
        validator = EventValidator(max_node=8)
        assert validator.check(event(dst=7)) == []
        assert any("node_range" in v for v in validator.check(event(dst=8)))

    def test_nonfinite_features(self):
        bad = event(node_features={0: np.array([1.0, np.nan])})
        assert any(
            v.startswith("nonfinite_features")
            for v in EventValidator().check(bad)
        )

    def test_non_numeric_features(self):
        bad = event(node_features={0: np.array(["a", "b"])})
        assert any("non-numeric" in v for v in EventValidator().check(bad))

    def test_time_regression_is_per_session(self):
        validator = EventValidator()
        assert validator.admit(event(time=5.0)) is not None
        assert any(
            v.startswith("time_regression")
            for v in validator.check(event(time=1.0))
        )
        # An independent session with an earlier clock is fine.
        assert validator.check(event(session_id="other", time=1.0)) == []

    def test_time_tolerance_allows_skew(self):
        validator = EventValidator(time_tolerance=1.0)
        validator.admit(event(time=5.0))
        assert validator.check(event(time=4.5)) == []
        assert validator.check(event(time=3.0)) != []


class TestPolicies:
    def test_policy_names_and_validation(self):
        assert VALIDATION_POLICIES == ("strict", "skip", "degrade")
        with pytest.raises(ValueError, match="unknown validation policy"):
            EventValidator(policy="yolo")

    def test_strict_raises_with_violations_attached(self):
        validator = EventValidator(policy="strict", max_node=2)
        with pytest.raises(EventValidationError) as excinfo:
            validator.admit(event(dst=99))
        assert any("node_range" in v for v in excinfo.value.violations)

    def test_skip_quarantines_and_counts(self):
        validator = EventValidator(policy="skip")
        assert validator.admit("not an event") is None
        assert validator.admit(event(node_features={0: np.array([np.inf])})) is None
        assert validator.quarantined_total == 2
        assert validator.quarantined == {"<invalid>": 1, "s": 1}

    def test_degrade_repairs_nonfinite_features(self):
        validator = EventValidator(policy="degrade")
        repaired = validator.admit(
            event(node_features={0: np.array([np.nan, 2.0, np.inf])})
        )
        assert repaired is not None
        np.testing.assert_array_equal(
            repaired.node_features[0], np.array([0.0, 2.0, 0.0])
        )
        assert validator.quarantined_total == 0

    def test_degrade_admits_time_regression_unchanged(self):
        validator = EventValidator(policy="degrade")
        validator.admit(event(time=5.0))
        regressed = validator.admit(event(time=1.0))
        assert regressed is not None
        assert regressed.time == 1.0  # the router's OOO policy owns it

    def test_degrade_still_quarantines_unrepairable(self):
        validator = EventValidator(policy="degrade", max_node=2)
        assert validator.admit(event(dst=99)) is None
        assert validator.quarantined_total == 1

    def test_valid_event_passes_through_identically(self):
        validator = EventValidator(policy="degrade")
        ok = event()
        assert validator.admit(ok) is ok


class TestEngineIntegration:
    def test_engine_quarantine_counter(self, tiny_dataset):
        from repro.core import TPGNN
        from repro.serve import StreamingEngine, dataset_to_feed

        model = TPGNN(in_features=tiny_dataset.feature_dim, hidden_size=8,
                      gru_hidden_size=8, time_dim=4, seed=0)
        engine = StreamingEngine(model, validate="skip", max_node=64)
        feed = dataset_to_feed(tiny_dataset)
        garbage = [{"not": "an event"}, event(dst=500)]
        for record in list(feed) + garbage:
            engine.ingest(record)
        assert engine.metrics.events_quarantined == len(garbage)
        assert engine.metrics.events_applied == len(feed)

    def test_engine_accepts_prebuilt_validator(self, tiny_dataset):
        from repro.core import TPGNN
        from repro.serve import StreamingEngine

        model = TPGNN(in_features=tiny_dataset.feature_dim, hidden_size=8,
                      gru_hidden_size=8, time_dim=4, seed=0)
        validator = EventValidator(policy="strict")
        engine = StreamingEngine(model, validate=validator)
        assert engine.validator is validator
        with pytest.raises(EventValidationError):
            engine.ingest("garbage")
