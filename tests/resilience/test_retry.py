"""RetryPolicy: backoff schedule, jitter, deadline, call wrapper."""

import numpy as np
import pytest

from repro.resilience.retry import RetryPolicy


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"attempts": 0},
            {"backoff": -1.0},
            {"multiplier": 0.5},
            {"jitter": -0.1},
            {"deadline": 0.0},
        ],
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_retries_property(self):
        assert RetryPolicy(attempts=1).retries == 0
        assert RetryPolicy(attempts=4).retries == 3


class TestSchedule:
    def test_first_attempt_never_waits(self):
        assert RetryPolicy(backoff=5.0).delay_for(1) == 0.0

    def test_exponential_backoff(self):
        policy = RetryPolicy(attempts=5, backoff=1.0, multiplier=2.0)
        assert list(policy.delays()) == [1.0, 2.0, 4.0, 8.0]

    def test_max_backoff_caps_delays(self):
        policy = RetryPolicy(attempts=6, backoff=1.0, multiplier=10.0, max_backoff=50.0)
        assert list(policy.delays()) == [1.0, 10.0, 50.0, 50.0, 50.0]

    def test_jitter_adds_seeded_fraction(self):
        policy = RetryPolicy(attempts=3, backoff=10.0, jitter=0.5)
        a = list(policy.delays(rng=np.random.default_rng(0)))
        b = list(policy.delays(rng=np.random.default_rng(0)))
        c = list(policy.delays(rng=np.random.default_rng(1)))
        assert a == b
        assert a != c
        for base, jittered in zip([10.0, 20.0], a):
            assert base <= jittered < base * 1.5

    def test_no_rng_means_no_jitter(self):
        policy = RetryPolicy(attempts=2, backoff=3.0, jitter=0.9)
        assert policy.delay_for(2) == 3.0


class TestCall:
    def test_returns_first_success(self):
        policy = RetryPolicy(attempts=3)
        assert policy.call(lambda: 42) == 42

    def test_retries_until_success(self):
        outcomes = iter([RuntimeError("a"), RuntimeError("b"), "ok"])

        def flaky():
            value = next(outcomes)
            if isinstance(value, Exception):
                raise value
            return value

        waits = []
        policy = RetryPolicy(attempts=3, backoff=0.5)
        assert policy.call(flaky, sleep=waits.append) == "ok"
        assert waits == [0.5, 1.0]

    def test_reraises_last_error_when_exhausted(self):
        def always_fail():
            raise KeyError("nope")

        with pytest.raises(KeyError, match="nope"):
            RetryPolicy(attempts=2).call(always_fail, sleep=lambda _: None)

    def test_retry_on_filters_exceptions(self):
        def fail():
            raise TypeError("not retryable")

        calls = []

        def counted():
            calls.append(1)
            fail()

        with pytest.raises(TypeError):
            RetryPolicy(attempts=5).call(
                counted, retry_on=(ValueError,), sleep=lambda _: None
            )
        assert len(calls) == 1

    def test_deadline_stops_retrying(self):
        clock = iter([0.0, 5.0, 5.0]).__next__
        calls = []

        def fail():
            calls.append(1)
            raise RuntimeError("x")

        policy = RetryPolicy(attempts=10, backoff=10.0, deadline=8.0)
        with pytest.raises(RuntimeError):
            policy.call(fail, sleep=lambda _: None, clock=clock)
        assert len(calls) == 1  # 5.0 elapsed + 10.0 wait >= 8.0 budget

    def test_on_retry_hook_sees_attempt_and_error(self):
        seen = []

        def flaky():
            if len(seen) < 2:
                raise ValueError("boom")
            return "done"

        policy = RetryPolicy(attempts=5)
        result = policy.call(
            flaky,
            sleep=lambda _: None,
            on_retry=lambda attempt, error: seen.append((attempt, str(error))),
        )
        assert result == "done"
        assert seen == [(1, "boom"), (2, "boom")]
