"""The write-ahead journal: codecs, writer mechanics, damage recovery.

The damage suite is property-based: under seeded ``corrupt_file`` /
``truncate_file`` attacks, every record the scanner returns must be
bit-identical to one that was written (a damaged record is *detected*,
never misparsed), and every sequence number that went missing must be
covered by a reported gap with exact byte offsets.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import CTDN
from repro.resilience import (
    FSYNC_POLICIES,
    IntegrityError,
    Journal,
    corrupt_file,
    list_segments,
    read_records,
    scan_journal,
    scan_segment,
    truncate_file,
)
from repro.resilience.journal import (
    RECORD_EVENT,
    RECORD_OBSERVATION,
    decode_event,
    decode_observation,
    encode_event,
    encode_observation,
)
from repro.serve import StreamEvent


def make_event(i: int, features: bool = True) -> StreamEvent:
    rng = np.random.default_rng(1000 + i)
    return StreamEvent(
        session_id=f"s{i % 4}",
        src=i % 5,
        dst=(i + 1) % 5,
        time=float(i) + 0.25,
        node_features=(
            {i % 5: rng.normal(size=3), (i + 1) % 5: rng.normal(size=3)}
            if features
            else None
        ),
        label=i % 2 if i % 3 == 0 else None,
    )


def make_graph(i: int) -> CTDN:
    rng = np.random.default_rng(2000 + i)
    n = 4 + i % 3
    edges = []
    t = 0.0
    for _ in range(5 + i % 4):
        t += float(rng.exponential(1.0)) + 0.05
        u, v = rng.choice(n, size=2, replace=False)
        edges.append((int(u), int(v), t))
    return CTDN(n, rng.normal(size=(n, 3)), edges, label=i % 2, graph_id=f"g{i}")


def events_equal(a: StreamEvent, b: StreamEvent) -> bool:
    if (a.session_id, a.src, a.dst, a.time, a.label) != (
        b.session_id, b.src, b.dst, b.time, b.label,
    ):
        return False
    fa, fb = a.node_features or {}, b.node_features or {}
    if set(fa) != set(fb):
        return False
    return all(
        np.asarray(fa[k]).tobytes() == np.asarray(fb[k]).tobytes() for k in fa
    )


class TestCodecs:
    def test_event_round_trip_bit_exact(self):
        for i in range(8):
            event = make_event(i, features=i % 2 == 0)
            back = decode_event(encode_event(event))
            assert events_equal(event, back)

    def test_observation_round_trip_bit_exact(self):
        for i in range(6):
            graph = make_graph(i)
            back = decode_observation(encode_observation(graph))
            assert back.num_nodes == graph.num_nodes
            assert back.label == graph.label
            assert back.graph_id == graph.graph_id
            assert back.features.tobytes() == graph.features.tobytes()
            for name in ("src", "dst", "t"):
                ours = getattr(back.store, name)
                theirs = getattr(graph.store, name)
                assert ours.dtype == theirs.dtype
                assert ours.tobytes() == theirs.tobytes()

    def test_kind_mismatch_raises(self):
        with pytest.raises(IntegrityError, match="expected an event"):
            decode_event(encode_observation(make_graph(0)))
        with pytest.raises(IntegrityError, match="expected an observation"):
            decode_observation(encode_event(make_event(0)))


class TestWriter:
    def test_sequence_and_last_seq(self, tmp_path):
        with Journal(tmp_path / "wal") as journal:
            assert journal.last_seq == 0
            seqs = [journal.append_event(make_event(i)) for i in range(5)]
            assert seqs == [1, 2, 3, 4, 5]
            assert journal.last_seq == 5

    def test_rotation_names_segments_by_first_seq(self, tmp_path):
        with Journal(tmp_path / "wal", segment_bytes=256) as journal:
            for i in range(12):
                journal.append_event(make_event(i))
        segments = list_segments(tmp_path / "wal")
        assert len(segments) > 1
        firsts = [int(path.stem[len("segment-"):]) for path in segments]
        assert firsts[0] == 1
        assert firsts == sorted(firsts)
        # Every name matches the first record actually inside.
        for path, first in zip(segments, firsts):
            records, gaps = scan_segment(path)
            assert not gaps
            assert records[0].seq == first

    def test_reopen_continues_sequence(self, tmp_path):
        with Journal(tmp_path / "wal") as journal:
            for i in range(4):
                journal.append_event(make_event(i))
        with Journal(tmp_path / "wal") as journal:
            assert journal.last_seq == 4
            assert journal.append_event(make_event(4)) == 5
        scan = scan_journal(tmp_path / "wal")
        assert [record.seq for record in scan.records] == [1, 2, 3, 4, 5]
        assert not scan.gaps

    def test_reopen_truncates_torn_tail_and_appends_clean(self, tmp_path):
        with Journal(tmp_path / "wal") as journal:
            for i in range(6):
                journal.append_event(make_event(i))
        tail = list_segments(tmp_path / "wal")[-1]
        truncate_file(tail, keep_fraction=0.95)
        with Journal(tmp_path / "wal") as journal:
            resumed_at = journal.last_seq
            assert resumed_at == 5  # the torn 6th record is gone
            journal.append_event(make_event(6))
        scan = scan_journal(tmp_path / "wal")
        assert not scan.gaps  # reopen removed the damage
        assert [r.seq for r in scan.records] == [1, 2, 3, 4, 5, 6]

    def test_truncate_upto_drops_covered_segments_only(self, tmp_path):
        with Journal(tmp_path / "wal", segment_bytes=256) as journal:
            for i in range(12):
                journal.append_event(make_event(i))
            segments = list_segments(tmp_path / "wal")
            assert len(segments) >= 3
            # Anchor mid-journal: only fully-covered segments may go.
            anchor = int(segments[-2].stem[len("segment-"):]) - 1
            removed = journal.truncate_upto(anchor)
            assert removed == len(segments) - 2
            survivors = list_segments(tmp_path / "wal")
            assert survivors == segments[-2:]
            # Everything after the anchor is still replayable.
            scan = scan_journal(tmp_path / "wal", after_seq=anchor)
            assert [r.seq for r in scan.records] == list(range(anchor + 1, 13))
            # The active segment is never deleted, whatever the anchor.
            journal.truncate_upto(journal.last_seq)
            assert list_segments(tmp_path / "wal")[-1] == segments[-1]

    def test_fsync_policy_validation(self, tmp_path):
        assert set(FSYNC_POLICIES) == {"always", "interval", "off"}
        with pytest.raises(ValueError, match="fsync must be one of"):
            Journal(tmp_path / "wal", fsync="sometimes")
        with pytest.raises(ValueError, match="segment_bytes"):
            Journal(tmp_path / "wal", segment_bytes=0)
        with pytest.raises(ValueError, match="fsync_interval"):
            Journal(tmp_path / "wal", fsync_interval=0.0)

    def test_append_after_close_raises(self, tmp_path):
        journal = Journal(tmp_path / "wal")
        journal.close()
        journal.close()  # idempotent
        with pytest.raises(ValueError, match="closed"):
            journal.append_event(make_event(0))

    def test_metrics_counted(self, tmp_path):
        from repro.telemetry import MetricRegistry

        registry = MetricRegistry()
        with Journal(
            tmp_path / "wal", fsync="always", segment_bytes=256,
            registry=registry,
        ) as journal:
            for i in range(8):
                journal.append_event(make_event(i))
            journal.truncate_upto(journal.last_seq)
        assert registry.counter("journal/appends").value == 8
        assert registry.counter("journal/fsyncs").value >= 8
        assert registry.counter("journal/rotations").value >= 1
        assert registry.counter("journal/segments_removed").value >= 1
        assert registry.counter("journal/bytes_written").value > 0

    def test_read_records_fires_replay_injection_point(self, tmp_path):
        from repro.resilience import FaultInjected, FaultPlan, activate

        with Journal(tmp_path / "wal") as journal:
            for i in range(3):
                journal.append_event(make_event(i))
        plan = FaultPlan(seed=0).add("journal.replay", kind="raise", at=(1,))
        with activate(plan):
            with pytest.raises(FaultInjected):
                list(read_records(tmp_path / "wal"))


def write_reference_journal(directory, n_events: int = 14):
    """A multi-segment journal of known records; payload bytes by seq."""
    with Journal(directory, fsync="off", segment_bytes=1024) as journal:
        for i in range(n_events):
            if i % 4 == 3:
                journal.append_observation(make_graph(i))
            else:
                journal.append_event(make_event(i))
    scan = scan_journal(directory)
    assert not scan.gaps
    return {record.seq: record.payload for record in scan.records}


class TestDamageProperties:
    """Seeded corruption never leads to a misparse, only reported gaps."""

    def _check_damaged(self, directory, pristine: dict[int, bytes]) -> None:
        scan = scan_journal(directory)
        seen = set()
        for record in scan.records:
            # Survived records decode to exactly what was written —
            # a CRC pass on modified bytes would be a misparse.
            assert record.payload == pristine[record.seq]
            assert record.kind in (RECORD_EVENT, RECORD_OBSERVATION)
            record.decode()
            seen.add(record.seq)
        missing = set(pristine) - seen
        # Every missing seq is accounted for by a gap interval.
        covered = set()
        for gap in scan.gaps:
            assert 0 <= gap.start_offset < gap.end_offset
            assert gap.describe()
            low = (gap.last_seq_before or 0) + 1
            high = (
                gap.first_seq_after - 1
                if gap.first_seq_after is not None
                else max(pristine)
            )
            covered.update(range(low, high + 1))
        assert missing <= covered, (
            f"seqs {sorted(missing - covered)} lost without a reported gap"
        )

    def test_byte_corruption_never_misparses(self, tmp_path):
        from hypothesis import HealthCheck, given, settings, strategies as st

        base = tmp_path / "wal"
        pristine = write_reference_journal(base)
        segments = list_segments(base)
        originals = {path: path.read_bytes() for path in segments}

        @settings(max_examples=60, deadline=None,
                  suppress_health_check=[HealthCheck.function_scoped_fixture])
        @given(seed=st.integers(min_value=0, max_value=2**31 - 1),
               nbytes=st.integers(min_value=1, max_value=24),
               which=st.integers(min_value=0, max_value=len(segments) - 1))
        def check(seed, nbytes, which):
            for path, data in originals.items():
                path.write_bytes(data)
            target = segments[which]
            offsets = corrupt_file(target, rng=seed, nbytes=nbytes)
            assert offsets
            self._check_damaged(base, pristine)

        check()

    def test_truncation_never_misparses(self, tmp_path):
        from hypothesis import HealthCheck, given, settings, strategies as st

        base = tmp_path / "wal"
        pristine = write_reference_journal(base)
        segments = list_segments(base)
        originals = {path: path.read_bytes() for path in segments}

        @settings(max_examples=40, deadline=None,
                  suppress_health_check=[HealthCheck.function_scoped_fixture])
        @given(fraction=st.floats(min_value=0.0, max_value=1.0,
                                  exclude_max=True),
               which=st.integers(min_value=0, max_value=len(segments) - 1))
        def check(fraction, which):
            for path, data in originals.items():
                path.write_bytes(data)
            truncate_file(segments[which], keep_fraction=fraction)
            self._check_damaged(base, pristine)

        check()

    def test_combined_damage_never_misparses(self, tmp_path):
        from hypothesis import HealthCheck, given, settings, strategies as st

        base = tmp_path / "wal"
        pristine = write_reference_journal(base)
        segments = list_segments(base)
        originals = {path: path.read_bytes() for path in segments}

        @settings(max_examples=40, deadline=None,
                  suppress_health_check=[HealthCheck.function_scoped_fixture])
        @given(seed=st.integers(min_value=0, max_value=2**31 - 1),
               fraction=st.floats(min_value=0.3, max_value=1.0,
                                  exclude_max=True))
        def check(seed, fraction):
            for path, data in originals.items():
                path.write_bytes(data)
            corrupt_file(segments[0], rng=seed, nbytes=8)
            truncate_file(segments[-1], keep_fraction=fraction)
            self._check_damaged(base, pristine)

        check()


class TestGapClassification:
    def test_torn_tail_only_in_final_segment(self, tmp_path):
        with Journal(tmp_path / "wal", fsync="off", segment_bytes=512) as journal:
            for i in range(12):
                journal.append_event(make_event(i))
        segments = list_segments(tmp_path / "wal")
        assert len(segments) >= 2
        # Chop the END of a NON-final segment: the writer had already
        # rotated past it, so this is corruption, not a torn tail.
        truncate_file(segments[0], keep_fraction=0.9)
        scan = scan_journal(tmp_path / "wal")
        assert not scan.torn_tail
        (gap,) = scan.corrupt_gaps()
        assert gap.reason == "corrupt-record"
        assert gap.first_seq_after is not None  # resync bound from the next segment

    def test_torn_final_segment_is_benign(self, tmp_path):
        with Journal(tmp_path / "wal", fsync="off") as journal:
            for i in range(6):
                journal.append_event(make_event(i))
        truncate_file(list_segments(tmp_path / "wal")[-1], keep_fraction=0.95)
        scan = scan_journal(tmp_path / "wal")
        assert scan.torn_tail
        assert not scan.corrupt_gaps()
        assert scan.last_seq == 5
        assert "torn-tail" in scan.describe()
