"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import CTDN, GraphDataset, TemporalEdge


@pytest.fixture
def rng() -> np.random.Generator:
    """A fixed-seed generator for deterministic tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def chain_graph() -> CTDN:
    """A 4-node temporal chain 0 -> 1 -> 2 -> 3 with increasing times."""
    return CTDN(
        num_nodes=4,
        features=np.eye(4),
        edges=[(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0)],
        label=1,
    )


@pytest.fixture
def fig1_graphs() -> tuple[CTDN, CTDN]:
    """Two graphs with identical topology but different edge order.

    Mirrors Fig. 1 of the paper: a "normal" and an "abnormal" session
    that a time-blind model cannot distinguish.
    """
    features = np.eye(5)
    normal = CTDN(
        5,
        features,
        [(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0), (3, 4, 4.0)],
        label=1,
    )
    # Same multiset of (src, dst) pairs; the last two edges swap order.
    abnormal = CTDN(
        5,
        features,
        [(0, 1, 1.0), (1, 2, 2.0), (2, 3, 4.0), (3, 4, 3.0)],
        label=0,
    )
    return normal, abnormal


@pytest.fixture
def diamond_graph() -> CTDN:
    """A fan-out / fan-in graph: 0 -> {1, 2} -> 3."""
    return CTDN(
        num_nodes=4,
        features=np.arange(8, dtype=float).reshape(4, 2),
        edges=[(0, 1, 1.0), (0, 2, 1.5), (1, 3, 2.0), (2, 3, 2.5)],
        label=1,
    )


@pytest.fixture
def tiny_dataset(rng) -> GraphDataset:
    """A 12-graph dataset of random labelled temporal graphs."""
    graphs = []
    for index in range(12):
        n = int(rng.integers(4, 8))
        m = int(rng.integers(4, 10))
        edges = []
        t = 0.0
        for _ in range(m):
            t += float(rng.exponential(1.0)) + 0.05
            u, v = rng.choice(n, size=2, replace=False)
            edges.append(TemporalEdge(int(u), int(v), t))
        graphs.append(
            CTDN(n, rng.normal(size=(n, 3)), edges, label=int(index % 2))
        )
    return GraphDataset(graphs, name="tiny")
