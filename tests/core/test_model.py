"""Tests for the end-to-end TPGNN model and its ablation variants."""

import numpy as np
import pytest

from repro.core import (
    ABLATION_VARIANTS,
    TPGNN,
    make_ablation_variant,
)
from repro.graph import CTDN
from repro.nn import bce_with_logits


class TestTPGNN:
    def test_unknown_updater(self):
        with pytest.raises(KeyError):
            TPGNN(3, updater="lstm")

    @pytest.mark.parametrize("updater", ["sum", "gru"])
    def test_forward_scalar_logit(self, chain_graph, updater):
        model = TPGNN(4, updater=updater, hidden_size=8, gru_hidden_size=6, time_dim=3, seed=0)
        logit = model(chain_graph)
        assert logit.shape == (1,)

    @pytest.mark.parametrize("updater", ["sum", "gru"])
    def test_embed_dimension(self, chain_graph, updater):
        model = TPGNN(4, updater=updater, hidden_size=8, gru_hidden_size=6, time_dim=3, seed=0)
        assert model.embed(chain_graph).shape == (6,)

    def test_empty_graph_rejected(self):
        g = CTDN(3, np.zeros((3, 2)), [])
        model = TPGNN(2, seed=0)
        with pytest.raises(ValueError, match="edge"):
            model.embed(g)

    def test_predict_proba_in_unit_interval(self, chain_graph):
        model = TPGNN(4, hidden_size=8, gru_hidden_size=8, time_dim=2, seed=1)
        p = model.predict_proba(chain_graph)
        assert 0.0 <= p <= 1.0
        assert model.predict(chain_graph) in (0, 1)

    def test_all_parameters_trainable(self, chain_graph):
        model = TPGNN(4, hidden_size=8, gru_hidden_size=8, time_dim=3, seed=0)
        loss = bce_with_logits(model(chain_graph), np.array([1.0]))
        loss.backward()
        for name, param in model.named_parameters():
            assert param.grad is not None, f"{name} received no gradient"

    def test_deterministic_given_seed(self, chain_graph):
        a = TPGNN(4, seed=3, hidden_size=8, gru_hidden_size=8)
        b = TPGNN(4, seed=3, hidden_size=8, gru_hidden_size=8)
        assert a.predict_proba(chain_graph) == pytest.approx(b.predict_proba(chain_graph))

    def test_distinguishes_fig1_graphs(self, fig1_graphs):
        """The motivating claim: same topology, different order -> different g."""
        normal, abnormal = fig1_graphs
        for updater in ("sum", "gru"):
            model = TPGNN(5, updater=updater, hidden_size=8, gru_hidden_size=8, time_dim=4, seed=0)
            g_normal = model.embed(normal).data
            g_abnormal = model.embed(abnormal).data
            assert not np.allclose(g_normal, g_abnormal), updater

    def test_tie_shuffle_uses_consistent_order(self):
        # With an rng, ties are shuffled but propagation and extractor
        # must see the SAME order: embedding must match a manual
        # pre-shuffled graph for some seed.
        g = CTDN(4, np.eye(4), [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 2.0)])
        model = TPGNN(4, hidden_size=6, gru_hidden_size=6, time_dim=2, seed=0)
        out = model.embed(g, rng=np.random.default_rng(5)).data
        candidates = []
        for seed in range(20):
            ordered = g.edges_sorted(rng=np.random.default_rng(seed))
            candidates.append(model.embed(g.with_edges(ordered)).data)
        assert any(np.allclose(out, c) for c in candidates)

    def test_sum_stabilizer_exposed(self, chain_graph):
        model = TPGNN(4, updater="sum", sum_stabilizer="average", seed=0)
        assert model.propagation.stabilizer == "average"


class TestAblationVariants:
    @pytest.mark.parametrize("variant", ABLATION_VARIANTS)
    def test_all_variants_run(self, chain_graph, variant):
        model = make_ablation_variant(variant, 4, hidden_size=8, gru_hidden_size=8, time_dim=3)
        p = model.predict_proba(chain_graph)
        assert 0.0 <= p <= 1.0

    def test_unknown_variant(self):
        with pytest.raises(KeyError):
            make_ablation_variant("bogus", 4)

    def test_rand_variant_is_time_blind(self, fig1_graphs):
        normal, abnormal = fig1_graphs
        model = make_ablation_variant("rand", 5, hidden_size=8, seed=0)
        a = model.embed(normal, rng=np.random.default_rng(2)).data
        b = model.embed(abnormal, rng=np.random.default_rng(2)).data
        assert np.allclose(a, b)

    def test_wo_tem_still_order_sensitive(self, fig1_graphs):
        # The extractor alone still sees edge order.
        normal, abnormal = fig1_graphs
        model = make_ablation_variant("w/o tem", 5, hidden_size=8, gru_hidden_size=8, seed=0)
        assert not np.allclose(model.embed(normal).data, model.embed(abnormal).data)

    def test_temp_variant_has_no_time_encoder(self):
        model = make_ablation_variant("temp", 4, updater="sum", hidden_size=8)
        assert model.propagation.time_encoder is None

    def test_time2vec_variant_has_time_encoder(self):
        model = make_ablation_variant("time2Vec", 4, updater="sum", hidden_size=8, time_dim=4)
        assert model.propagation.time_encoder is not None

    def test_full_variant_is_tpgnn(self):
        model = make_ablation_variant("full", 4, updater="gru")
        assert isinstance(model, TPGNN)

    @pytest.mark.parametrize("variant", ABLATION_VARIANTS)
    def test_variants_trainable(self, chain_graph, variant):
        model = make_ablation_variant(variant, 4, hidden_size=6, gru_hidden_size=6, time_dim=2)
        loss = bce_with_logits(model(chain_graph), np.array([1.0]))
        loss.backward()
        grads = [p for p in model.parameters() if p.grad is not None]
        assert grads
