"""Tests for the unsupervised TP-GNN extension."""

import numpy as np
import pytest

from repro.core import UnsupervisedTPGNN
from repro.data import make_dataset
from repro.graph import CTDN


class TestConstruction:
    def test_invalid_quantile(self):
        for bad in (0.5, 0.0, 1.5):
            with pytest.raises(ValueError):
                UnsupervisedTPGNN(3, quantile=bad)

    def test_invalid_updater(self):
        with pytest.raises(KeyError):
            UnsupervisedTPGNN(3, updater="mlp")

    @pytest.mark.parametrize("updater", ["sum", "gru"])
    def test_both_updaters_construct(self, updater, chain_graph):
        model = UnsupervisedTPGNN(4, updater=updater, hidden_size=6, time_dim=2)
        assert model.prediction_loss(chain_graph).item() >= 0.0


class TestPretextLoss:
    def test_empty_graph_rejected(self):
        model = UnsupervisedTPGNN(2, hidden_size=4, time_dim=2)
        with pytest.raises(ValueError):
            model.prediction_loss(CTDN(2, np.zeros((2, 2)), []))

    def test_single_edge_scores_zero(self):
        model = UnsupervisedTPGNN(2, hidden_size=4, time_dim=2)
        g = CTDN(2, np.zeros((2, 2)), [(0, 1, 1.0)])
        assert model.prediction_loss(g).item() == 0.0

    def test_loss_differentiable(self, chain_graph):
        model = UnsupervisedTPGNN(4, hidden_size=6, time_dim=2)
        loss = model.prediction_loss(chain_graph)
        loss.backward()
        assert model.predictor.weight.grad is not None


class TestFitScorePredict:
    def test_predict_before_fit_raises(self, chain_graph):
        model = UnsupervisedTPGNN(4, hidden_size=6, time_dim=2)
        with pytest.raises(RuntimeError, match="fit"):
            model.predict(chain_graph)

    def test_fit_needs_usable_graphs(self):
        model = UnsupervisedTPGNN(2, hidden_size=4, time_dim=2)
        single = CTDN(2, np.zeros((2, 2)), [(0, 1, 1.0)])
        with pytest.raises(ValueError):
            model.fit([single])

    def test_fit_reduces_loss_and_sets_threshold(self):
        data = make_dataset("HDFS", 20, seed=1, scale=0.12)
        normals = [g for g in data if g.label == 1]
        model = UnsupervisedTPGNN(3, hidden_size=6, time_dim=2, seed=0)
        losses = model.fit(normals, epochs=4, seed=0)
        assert losses[-1] <= losses[0]
        assert model.threshold is not None and model.threshold > 0.0

    def test_detects_label_free_anomalies(self):
        """The headline property: trained on positives only, anomaly
        scores are higher for injected faults."""
        data = make_dataset("Forum-java", 40, seed=4, scale=0.15)
        normals = [g for g in data if g.label == 1][:18]
        anomalies = [g for g in data if g.label == 0][:8]
        model = UnsupervisedTPGNN(3, hidden_size=8, time_dim=3, quantile=0.9, seed=0)
        model.fit(normals, epochs=4, seed=0)
        normal_scores = np.mean([model.score(g) for g in normals])
        anomaly_scores = np.mean([model.score(g) for g in anomalies])
        assert anomaly_scores > normal_scores

    def test_predictions_binary(self):
        data = make_dataset("HDFS", 16, seed=2, scale=0.12)
        normals = [g for g in data if g.label == 1]
        model = UnsupervisedTPGNN(3, hidden_size=6, time_dim=2, seed=0)
        model.fit(normals, epochs=2, seed=0)
        for g in data:
            assert model.predict(g) in (0, 1)
