"""Tests for the Transformer-based global extractor (paper's suggested swap)."""

import numpy as np
import pytest

from repro.core import (
    GlobalTemporalTransformer,
    TPGNN,
    make_tpgnn_with_extractor,
)
from repro.nn import bce_with_logits
from repro.tensor import Tensor


class TestTransformerExtractor:
    def test_unknown_aggregator(self):
        with pytest.raises(KeyError):
            GlobalTemporalTransformer(4, aggregator="nope")

    def test_output_shape(self, chain_graph):
        ext = GlobalTemporalTransformer(6, hidden_size=8, rng=np.random.default_rng(0))
        h = Tensor(np.random.default_rng(1).normal(size=(4, 6)))
        assert ext(h, chain_graph).shape == (8,)

    def test_empty_graph_rejected(self, chain_graph):
        ext = GlobalTemporalTransformer(6, hidden_size=8, rng=np.random.default_rng(0))
        h = Tensor(np.zeros((4, 6)))
        with pytest.raises(ValueError):
            ext(h, chain_graph.with_edges([]))

    def test_order_sensitivity_via_positions(self, fig1_graphs):
        normal, abnormal = fig1_graphs
        ext = GlobalTemporalTransformer(5, hidden_size=8, rng=np.random.default_rng(2))
        h = Tensor(np.random.default_rng(3).normal(size=(5, 5)))
        assert not np.allclose(ext(h, normal).data, ext(h, abnormal).data)

    def test_long_sequence_clamps_positions(self):
        from repro.graph import CTDN

        edges = [(i % 3, (i + 1) % 3, float(i + 1)) for i in range(12)]
        g = CTDN(3, np.eye(3), edges)
        ext = GlobalTemporalTransformer(3, hidden_size=8, max_edges=4, rng=np.random.default_rng(0))
        h = Tensor(np.random.default_rng(1).normal(size=(3, 3)))
        assert np.all(np.isfinite(ext(h, g).data))

    def test_gradients_flow(self, chain_graph):
        ext = GlobalTemporalTransformer(4, hidden_size=8, rng=np.random.default_rng(0))
        h = Tensor(np.random.default_rng(1).normal(size=(4, 4)), requires_grad=True)
        (ext(h, chain_graph) ** 2.0).sum().backward()
        assert h.grad is not None
        assert ext.positions.grad is not None


class TestFactory:
    def test_gru_returns_stock_model(self):
        model = make_tpgnn_with_extractor(3, extractor="gru", hidden_size=8, gru_hidden_size=8)
        assert isinstance(model, TPGNN)
        assert type(model.extractor).__name__ == "GlobalTemporalExtractor"

    def test_transformer_swapped_in(self, chain_graph):
        model = make_tpgnn_with_extractor(
            4, extractor="transformer", hidden_size=8, gru_hidden_size=8, time_dim=3
        )
        assert isinstance(model.extractor, GlobalTemporalTransformer)
        assert 0.0 <= model.predict_proba(chain_graph) <= 1.0

    def test_unknown_extractor(self):
        with pytest.raises(KeyError):
            make_tpgnn_with_extractor(3, extractor="rnn")

    def test_transformer_model_trainable(self, chain_graph):
        model = make_tpgnn_with_extractor(
            4, extractor="transformer", hidden_size=6, gru_hidden_size=6, time_dim=2
        )
        bce_with_logits(model(chain_graph), np.array([1.0])).backward()
        assert model.extractor.positions.grad is not None
        assert model.propagation.encoder.projection.weight.grad is not None
