"""Tests for temporal propagation (Algorithm 1)."""

import numpy as np
import pytest

from repro.core import (
    RandomAggregation,
    TemporalPropagationGRU,
    TemporalPropagationSum,
)
from repro.graph import CTDN


def rng():
    return np.random.default_rng(0)


class TestSumUpdater:
    def test_output_shape_includes_time(self, chain_graph):
        prop = TemporalPropagationSum(4, 8, time_dim=3, rng=rng())
        out = prop(chain_graph)
        assert out.shape == (4, 11)
        assert prop.output_dim == 11

    def test_output_bounded_by_tanh(self, chain_graph):
        prop = TemporalPropagationSum(4, 8, time_dim=3, rng=rng())
        assert np.all(np.abs(prop(chain_graph).data) <= 1.0)

    def test_each_edge_processed_once(self, diamond_graph):
        prop = TemporalPropagationSum(2, 4, time_dim=2, rng=rng())
        prop(diamond_graph)
        assert prop.last_update_count == diamond_graph.num_edges

    def test_zero_time_dim_drops_memory(self, chain_graph):
        prop = TemporalPropagationSum(4, 8, time_dim=0, rng=rng())
        assert prop(chain_graph).shape == (4, 8)

    def test_invalid_stabilizer(self):
        with pytest.raises(KeyError):
            TemporalPropagationSum(2, 4, stabilizer="banana")

    @pytest.mark.parametrize("stabilizer", ["bounded", "average", "none"])
    def test_all_stabilizers_run(self, chain_graph, stabilizer):
        prop = TemporalPropagationSum(4, 8, time_dim=2, stabilizer=stabilizer, rng=rng())
        out = prop(chain_graph)
        assert np.all(np.isfinite(out.data))

    def test_unstabilized_matches_eq3_exactly(self):
        # Verbatim Eq. 3 on a chain: X(v) = X(u) + X(v) before tanh.
        g = CTDN(3, np.eye(3), [(0, 1, 1.0), (1, 2, 2.0)])
        prop = TemporalPropagationSum(3, 3, time_dim=0, stabilizer="none", rng=rng())
        encoded = prop.encoder.projection.weight.data.T @ np.eye(3)
        encoded = np.eye(3) @ prop.encoder.projection.weight.data + prop.encoder.projection.bias.data
        expected_1 = encoded[0] + encoded[1]
        expected_2 = expected_1 + encoded[2]
        out = prop(g).data
        assert np.allclose(out[1], np.tanh(expected_1))
        assert np.allclose(out[2], np.tanh(expected_2))

    def test_bounded_never_explodes_on_revisits(self):
        # A two-node ping-pong with 60 edges would overflow without bounding.
        edges = [(i % 2, (i + 1) % 2, float(i + 1)) for i in range(60)]
        g = CTDN(2, np.ones((2, 3)), edges)
        prop = TemporalPropagationSum(3, 8, time_dim=2, stabilizer="bounded", rng=rng())
        out = prop(g)
        assert np.all(np.isfinite(out.data))

    def test_order_sensitivity(self, fig1_graphs):
        normal, abnormal = fig1_graphs
        prop = TemporalPropagationSum(5, 8, time_dim=4, rng=rng())
        assert not np.allclose(prop(normal).data, prop(abnormal).data)

    def test_gradients_reach_encoder(self, chain_graph):
        prop = TemporalPropagationSum(4, 6, time_dim=2, rng=rng())
        (prop(chain_graph) ** 2.0).sum().backward()
        assert prop.encoder.projection.weight.grad is not None
        assert np.abs(prop.encoder.projection.weight.grad).max() > 0

    def test_gradients_reach_time_encoder(self, chain_graph):
        prop = TemporalPropagationSum(4, 6, time_dim=3, rng=rng())
        (prop(chain_graph) ** 2.0).sum().backward()
        assert prop.time_encoder.periodic_weight.grad is not None


class TestGRUUpdater:
    def test_output_shape(self, chain_graph):
        prop = TemporalPropagationGRU(4, 8, time_dim=3, rng=rng())
        assert prop(chain_graph).shape == (4, 8)
        assert prop.output_dim == 8

    def test_each_edge_processed_once(self, diamond_graph):
        prop = TemporalPropagationGRU(2, 4, time_dim=2, rng=rng())
        prop(diamond_graph)
        assert prop.last_update_count == diamond_graph.num_edges

    def test_zero_time_dim(self, chain_graph):
        prop = TemporalPropagationGRU(4, 8, time_dim=0, rng=rng())
        assert prop(chain_graph).shape == (4, 8)

    def test_untouched_node_keeps_encoded_features(self):
        g = CTDN(3, np.eye(3), [(0, 1, 1.0)])
        prop = TemporalPropagationGRU(3, 4, time_dim=2, rng=rng())
        out = prop(g).data
        encoded = (np.eye(3) @ prop.encoder.projection.weight.data + prop.encoder.projection.bias.data)
        # Node 2 receives no edges: its row is tanh(encoded features).
        assert np.allclose(out[2], np.tanh(encoded[2]))

    def test_order_sensitivity(self, fig1_graphs):
        normal, abnormal = fig1_graphs
        prop = TemporalPropagationGRU(5, 8, time_dim=4, rng=rng())
        assert not np.allclose(prop(normal).data, prop(abnormal).data)

    def test_gradients_flow(self, chain_graph):
        prop = TemporalPropagationGRU(4, 6, time_dim=2, rng=rng())
        (prop(chain_graph) ** 2.0).sum().backward()
        for param in prop.parameters():
            assert param.grad is not None


class TestRandomAggregation:
    def test_ignores_time(self, fig1_graphs):
        normal, abnormal = fig1_graphs
        agg = RandomAggregation(5, 8, rng=rng())
        out_a = agg(normal, rng=np.random.default_rng(1)).data
        out_b = agg(abnormal, rng=np.random.default_rng(1)).data
        # Same topology + same sampling seed: identical embeddings.
        assert np.allclose(out_a, out_b)

    def test_output_shape(self, chain_graph):
        agg = RandomAggregation(4, 8, rng=rng())
        assert agg(chain_graph).shape == (4, 8)

    def test_num_samples_bounds_updates(self, diamond_graph):
        agg = RandomAggregation(2, 4, num_samples=1, rng=rng())
        agg(diamond_graph, rng=np.random.default_rng(0))
        assert agg.last_update_count <= diamond_graph.num_nodes
