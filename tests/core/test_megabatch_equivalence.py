"""Mega-batching equivalence suite (pytest -m mega).

The contract of the block-diagonal mega-plan is *bit-compatibility up to
BLAS summation order*: every forward embedding, backward gradient, and
optimizer step produced through :meth:`embed_batch` must match the
per-graph path to 1e-9 — across both updaters, all SUM stabilizers,
tie storms, and ragged batches (including 1-node and single-edge
members).  Anything looser would silently change training results when
the trainer switched to mega-batching.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ablation import make_ablation_variant
from repro.core.model import TPGNN
from repro.core.propagation import TemporalPropagationGRU, TemporalPropagationSum
from repro.core.transformer_extractor import make_tpgnn_with_extractor
from repro.core.unsupervised import UnsupervisedTPGNN
from repro.graph import CTDN
from repro.graph.megaplan import MegaPlan, mega_plan
from repro.nn.loss import bce_with_logits
from repro.optim import Adam

pytestmark = pytest.mark.mega

TOL = 1e-9
WIDTH = 4


def make_graph(seed, num_nodes=5, num_edges=8, tie_storm=False):
    rng = np.random.default_rng(seed)
    features = rng.normal(size=(num_nodes, WIDTH))
    src = rng.integers(0, num_nodes, size=num_edges)
    dst = rng.integers(0, num_nodes, size=num_edges)
    if tie_storm:
        # Few distinct timestamps -> large tie groups -> shuffling matters.
        times = np.sort(rng.integers(0, 3, size=num_edges).astype(np.float64))
    else:
        times = np.sort(rng.uniform(0.0, 10.0, size=num_edges))
    edges = list(zip(src.tolist(), dst.tolist(), times.tolist()))
    return CTDN(num_nodes, features, edges, label=int(seed % 2))


def ragged_batch():
    """Wildly uneven members, including a 1-node single-edge graph."""
    return [
        make_graph(0, num_nodes=1, num_edges=1),  # self-loop only
        make_graph(1, num_nodes=9, num_edges=21, tie_storm=True),
        make_graph(2, num_nodes=3, num_edges=2),
        make_graph(3, num_nodes=6, num_edges=13),
    ]


def assert_close(a, b, tol=TOL):
    np.testing.assert_allclose(a, b, rtol=0.0, atol=tol)


# ----------------------------------------------------------------------
# Propagation-level equivalence
# ----------------------------------------------------------------------
class TestPropagationEquivalence:
    @pytest.mark.parametrize("stabilizer", ["bounded", "average", "none"])
    @pytest.mark.parametrize("engine", ["wave", "per-edge"])
    def test_sum_all_stabilizers_and_engines(self, stabilizer, engine):
        prop = TemporalPropagationSum(
            WIDTH, 8, time_dim=4, stabilizer=stabilizer, rng=np.random.default_rng(1)
        )
        graphs = ragged_batch()
        mega = MegaPlan.from_graphs(graphs)
        packed = prop.forward_mega(mega, engine=engine).data
        singles = np.concatenate([prop(g, engine=engine).data for g in graphs])
        assert_close(packed, singles)
        assert not prop.fallback

    @pytest.mark.parametrize("engine", ["wave", "per-edge"])
    def test_gru_updater(self, engine):
        prop = TemporalPropagationGRU(WIDTH, 8, time_dim=4, rng=np.random.default_rng(1))
        graphs = ragged_batch()
        mega = MegaPlan.from_graphs(graphs)
        packed = prop.forward_mega(mega, engine=engine).data
        singles = np.concatenate([prop(g, engine=engine).data for g in graphs])
        assert_close(packed, singles)

    def test_edgeless_member_keeps_encoded_features(self):
        prop = TemporalPropagationSum(WIDTH, 8, time_dim=4, rng=np.random.default_rng(1))
        lone = CTDN(2, np.ones((2, WIDTH)), [])
        graphs = [make_graph(0), lone]
        mega = MegaPlan.from_graphs(graphs)
        packed = prop.forward_mega(mega).data
        singles = np.concatenate([prop(g).data for g in graphs])
        assert_close(packed, singles)


# ----------------------------------------------------------------------
# Model-level equivalence: forward, backward, optimizer step
# ----------------------------------------------------------------------
class TestModelEquivalence:
    @pytest.mark.parametrize("updater", ["sum", "gru"])
    def test_forward_embeddings(self, updater):
        model = TPGNN(WIDTH, updater=updater, hidden_size=8, gru_hidden_size=8, time_dim=4, seed=3)
        graphs = ragged_batch()
        packed = model.embed_batch(graphs).data
        singles = np.stack([model.embed(g).data for g in graphs])
        assert_close(packed, singles)

    @pytest.mark.parametrize("updater", ["sum", "gru"])
    def test_tie_shuffle_rng_streams_match(self, updater):
        model = TPGNN(WIDTH, updater=updater, hidden_size=8, gru_hidden_size=8, time_dim=4, seed=3)
        graphs = [make_graph(s, num_edges=15, tie_storm=True) for s in range(4)]
        packed = model.embed_batch(graphs, rng=np.random.default_rng(7)).data
        rng = np.random.default_rng(7)
        singles = np.stack([model.embed(g, rng=rng).data for g in graphs])
        assert_close(packed, singles)

    @pytest.mark.parametrize("updater", ["sum", "gru"])
    def test_backward_gradients(self, updater):
        graphs = ragged_batch()
        targets = np.array([float(g.label) for g in graphs])
        batched = TPGNN(WIDTH, updater=updater, hidden_size=8, gru_hidden_size=8, time_dim=4, seed=3)
        looped = TPGNN(WIDTH, updater=updater, hidden_size=8, gru_hidden_size=8, time_dim=4, seed=3)
        bce_with_logits(batched.forward_batch(graphs), targets).backward()
        for graph in graphs:
            logit = looped.forward(graph).reshape(1)
            bce_with_logits(logit, np.array([float(graph.label)])).backward()
        for pb, pl in zip(batched.parameters(), looped.parameters()):
            assert_close(pb.grad, pl.grad / len(graphs))

    @pytest.mark.parametrize("updater", ["sum", "gru"])
    def test_one_optimizer_step(self, updater):
        graphs = ragged_batch()
        targets = np.array([float(g.label) for g in graphs])
        batched = TPGNN(WIDTH, updater=updater, hidden_size=8, gru_hidden_size=8, time_dim=4, seed=3)
        looped = TPGNN(WIDTH, updater=updater, hidden_size=8, gru_hidden_size=8, time_dim=4, seed=3)
        opt_b = Adam(batched.parameters(), lr=1e-2)
        opt_l = Adam(looped.parameters(), lr=1e-2)
        bce_with_logits(batched.forward_batch(graphs), targets).backward()
        opt_b.step()
        for graph in graphs:
            logit = looped.forward(graph).reshape(1)
            bce_with_logits(logit, np.array([float(graph.label)])).backward()
        for p in looped.parameters():
            p.grad = p.grad / len(graphs)
        opt_l.step()
        for pb, pl in zip(batched.parameters(), looped.parameters()):
            assert_close(pb.data, pl.data)

    def test_edgeless_member_rejected(self):
        model = TPGNN(WIDTH, hidden_size=8, gru_hidden_size=8, time_dim=4, seed=3)
        with pytest.raises(ValueError, match="at least one temporal edge"):
            model.embed_batch([make_graph(0), CTDN(2, np.ones((2, WIDTH)), [])])


# ----------------------------------------------------------------------
# Variant models
# ----------------------------------------------------------------------
class TestVariantEquivalence:
    @pytest.mark.parametrize("variant", ["w/o tem", "temp", "time2Vec"])
    def test_ablation_variants(self, variant):
        model = make_ablation_variant(variant, WIDTH, seed=1)
        graphs = ragged_batch()
        packed = model.embed_batch(graphs).data
        singles = np.stack([model.embed(g).data for g in graphs])
        assert_close(packed, singles)

    @pytest.mark.parametrize("variant", ["temp", "time2Vec"])
    def test_mean_readout_variants_allow_edgeless_members(self, variant):
        # Per-graph embed() accepts edgeless graphs for these variants,
        # so the batched path must too.
        model = make_ablation_variant(variant, WIDTH, seed=1)
        graphs = [make_graph(0), CTDN(3, np.ones((3, WIDTH)), [])]
        packed = model.embed_batch(graphs).data
        singles = np.stack([model.embed(g).data for g in graphs])
        assert_close(packed, singles)

    def test_transformer_extractor(self):
        model = make_tpgnn_with_extractor(WIDTH, extractor="transformer", seed=2)
        graphs = ragged_batch()
        packed = model.embed_batch(graphs).data
        singles = np.stack([model.embed(g).data for g in graphs])
        assert_close(packed, singles)

    def test_unsupervised_prediction_loss_batch(self):
        model = UnsupervisedTPGNN(WIDTH, seed=4)
        graphs = ragged_batch()  # includes a single-edge member (scores 0)
        packed = model.prediction_loss_batch(graphs)
        singles = np.array([model.prediction_loss(g).item() for g in graphs])
        assert_close(np.asarray(packed.data), singles)
        packed.sum().backward()  # gradient flows through the padded grid
        assert any(p.grad is not None and np.any(p.grad != 0) for p in model.parameters())


# ----------------------------------------------------------------------
# Property-based sweep
# ----------------------------------------------------------------------
@st.composite
def graph_batches(draw):
    batch = draw(st.integers(min_value=1, max_value=4))
    graphs = []
    for b in range(batch):
        n = draw(st.integers(min_value=1, max_value=6))
        m = draw(st.integers(min_value=1, max_value=12))
        rng = np.random.default_rng(draw(st.integers(0, 2**16)))
        features = rng.normal(size=(n, WIDTH))
        src = rng.integers(0, n, size=m)
        dst = rng.integers(0, n, size=m)
        # Coarse integer times to provoke ties regularly.
        times = np.sort(rng.integers(0, 4, size=m).astype(np.float64))
        graphs.append(
            CTDN(n, features, list(zip(src.tolist(), dst.tolist(), times.tolist())), label=b % 2)
        )
    return graphs


class TestPropertyBased:
    @settings(max_examples=25, deadline=None)
    @given(graphs=graph_batches(), updater=st.sampled_from(["sum", "gru"]))
    def test_random_ragged_batches_match(self, graphs, updater):
        model = TPGNN(WIDTH, updater=updater, hidden_size=6, gru_hidden_size=6, time_dim=3, seed=5)
        packed = model.embed_batch(graphs, rng=np.random.default_rng(13)).data
        rng = np.random.default_rng(13)
        singles = np.stack([model.embed(g, rng=rng).data for g in graphs])
        assert_close(packed, singles)

    @settings(max_examples=15, deadline=None)
    @given(graphs=graph_batches())
    def test_random_batches_wave_matches_per_edge(self, graphs):
        prop = TemporalPropagationSum(WIDTH, 6, time_dim=3, rng=np.random.default_rng(2))
        mega = mega_plan(graphs)
        wave = prop.forward_mega(mega, engine="wave").data
        per_edge = prop.forward_mega(mega, engine="per-edge").data
        assert_close(wave, per_edge)
