"""Property-based verification of Theorem 1.

Theorem 1: node ``u`` is influential to ``v`` (a valid non-decreasing-
time path u -> v exists) **iff** perturbing the input features of ``u``
changes the local node embedding ``h(v)`` produced by temporal
propagation.

We verify both directions on random temporal graphs for both updaters,
using the reference :func:`influence_sets` implementation as ground
truth.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import TemporalPropagationGRU, TemporalPropagationSum
from repro.graph import CTDN, influence_sets
from repro.tensor import no_grad


def random_temporal_graph(seed: int, max_nodes: int = 6, max_edges: int = 10) -> CTDN:
    rng = np.random.default_rng(seed)
    n = int(rng.integers(3, max_nodes + 1))
    m = int(rng.integers(2, max_edges + 1))
    edges = []
    t = 0.0
    for _ in range(m):
        t += float(rng.exponential(1.0)) + 0.05
        u, v = rng.choice(n, size=2, replace=False)
        edges.append((int(u), int(v), t))
    return CTDN(n, rng.normal(size=(n, 3)), edges)


def embeddings_with_perturbed_feature(prop, graph: CTDN, node: int) -> np.ndarray:
    perturbed_features = graph.features.copy()
    perturbed_features[node] += 0.37
    perturbed = CTDN(graph.num_nodes, perturbed_features, graph.edges)
    with no_grad():
        return prop(perturbed).data


def make_propagation(updater_cls):
    """Build the updater for the theorem test.

    The SUM updater uses the "average" stabilizer here: it is exactly
    linear, so dependence can never vanish numerically.  The default
    "bounded" stabilizer squashes with tanh after every update, which
    preserves Theorem 1 mathematically but can shrink a perturbation
    below float precision through long saturated chains.
    """
    if updater_cls is TemporalPropagationSum:
        return updater_cls(3, 5, time_dim=2, stabilizer="average", rng=np.random.default_rng(1))
    return updater_cls(3, 5, time_dim=2, rng=np.random.default_rng(1))


@pytest.mark.parametrize("updater_cls", [TemporalPropagationSum, TemporalPropagationGRU])
@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_theorem1_influential_iff_dependent(updater_cls, seed):
    graph = random_temporal_graph(seed)
    prop = make_propagation(updater_cls)
    with no_grad():
        baseline = prop(graph).data
    sets = influence_sets(graph)

    for source in range(graph.num_nodes):
        perturbed = embeddings_with_perturbed_feature(prop, graph, source)
        for target in range(graph.num_nodes):
            if target == source:
                continue
            changed = not np.allclose(baseline[target], perturbed[target], atol=1e-12)
            influential = source in sets[target]
            if influential:
                # Forward direction can in principle be defeated by an
                # exactly-saturated tanh; allow a tiny numeric floor.
                assert changed, (
                    f"seed={seed}: node {source} is influential to {target} "
                    "but perturbing it left the embedding unchanged"
                )
            else:
                assert not changed, (
                    f"seed={seed}: node {source} is NOT influential to {target} "
                    "but perturbing it changed the embedding"
                )


@pytest.mark.parametrize("updater_cls", [TemporalPropagationSum, TemporalPropagationGRU])
def test_time_blocked_path_is_independent(updater_cls):
    """The Fig. 1 core case: a late edge cannot carry early information."""
    # 1 -> 2 fires BEFORE 0 -> 1, so 0 must never reach 2.
    graph = CTDN(3, np.eye(3), [(1, 2, 1.0), (0, 1, 2.0)])
    prop = updater_cls(3, 4, time_dim=2, rng=np.random.default_rng(0))
    with no_grad():
        baseline = prop(graph).data
    perturbed = embeddings_with_perturbed_feature(prop, graph, 0)
    assert np.allclose(baseline[2], perturbed[2])
    assert not np.allclose(baseline[1], perturbed[1])


@pytest.mark.parametrize("updater_cls", [TemporalPropagationSum, TemporalPropagationGRU])
def test_long_range_dependency_captured(updater_cls):
    """A 6-hop valid path still transmits information (limitation 2)."""
    n = 7
    edges = [(i, i + 1, float(i + 1)) for i in range(n - 1)]
    graph = CTDN(n, np.eye(n), edges)
    prop = updater_cls(n, 4, time_dim=2, rng=np.random.default_rng(0))
    with no_grad():
        baseline = prop(graph).data
    perturbed = embeddings_with_perturbed_feature(prop, graph, 0)
    assert not np.allclose(baseline[n - 1], perturbed[n - 1]), (
        "information from the chain head never reached the tail"
    )
