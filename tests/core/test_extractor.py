"""Tests for the global temporal embedding extractor and EdgeAgg."""

import numpy as np
import pytest

from repro.core import EDGE_AGGREGATORS, GlobalTemporalExtractor, edge_dim
from repro.core.edge_agg import (
    activation,
    average,
    concatenation,
    hadamard,
    weighted_l1,
    weighted_l2,
)
from repro.tensor import Tensor


class TestEdgeAgg:
    def setup_method(self):
        rng = np.random.default_rng(0)
        self.u = Tensor(rng.normal(size=(4,)))
        self.v = Tensor(rng.normal(size=(4,)))

    def test_average(self):
        assert np.allclose(average(self.u, self.v).data, (self.u.data + self.v.data) / 2)

    def test_hadamard(self):
        assert np.allclose(hadamard(self.u, self.v).data, self.u.data * self.v.data)

    def test_weighted_l1(self):
        assert np.allclose(weighted_l1(self.u, self.v).data, np.abs(self.u.data - self.v.data))

    def test_weighted_l2(self):
        assert np.allclose(weighted_l2(self.u, self.v).data, (self.u.data - self.v.data) ** 2)

    def test_activation(self):
        assert np.allclose(activation(self.u, self.v).data, np.tanh(self.u.data + self.v.data))

    def test_concatenation(self):
        out = concatenation(self.u, self.v)
        assert out.shape == (8,)

    def test_six_methods_registered(self):
        assert set(EDGE_AGGREGATORS) == {
            "average", "hadamard", "weighted_l1", "weighted_l2", "activation", "concatenation",
        }

    def test_edge_dim(self):
        assert edge_dim("average", 6) == 6
        assert edge_dim("concatenation", 6) == 12
        with pytest.raises(KeyError):
            edge_dim("nope", 6)

    def test_symmetric_aggregators(self):
        for name in ("average", "hadamard", "weighted_l1", "weighted_l2", "activation"):
            fn = EDGE_AGGREGATORS[name]
            assert np.allclose(fn(self.u, self.v).data, fn(self.v, self.u).data)


class TestGlobalTemporalExtractor:
    def test_unknown_aggregator(self):
        with pytest.raises(KeyError):
            GlobalTemporalExtractor(4, aggregator="nope")

    def test_output_shape(self, chain_graph):
        ext = GlobalTemporalExtractor(6, hidden_size=5, rng=np.random.default_rng(0))
        h = Tensor(np.random.default_rng(1).normal(size=(4, 6)))
        assert ext(h, chain_graph).shape == (5,)

    def test_edge_embeddings_shape(self, chain_graph):
        ext = GlobalTemporalExtractor(6, rng=np.random.default_rng(0))
        h = Tensor(np.random.default_rng(1).normal(size=(4, 6)))
        s = ext.edge_embeddings(h, chain_graph.edges_sorted())
        assert s.shape == (3, 6)

    def test_average_fast_path_matches_generic(self, chain_graph):
        h = Tensor(np.random.default_rng(1).normal(size=(4, 6)))
        ext = GlobalTemporalExtractor(6, rng=np.random.default_rng(0))
        edges = chain_graph.edges_sorted()
        fast = ext.edge_embeddings(h, edges).data
        manual = np.stack(
            [(h.data[e.src] + h.data[e.dst]) / 2 for e in edges], axis=0
        )
        assert np.allclose(fast, manual)

    def test_empty_edges_rejected(self, chain_graph):
        ext = GlobalTemporalExtractor(6, rng=np.random.default_rng(0))
        h = Tensor(np.zeros((4, 6)))
        with pytest.raises(ValueError):
            ext.edge_embeddings(h, [])

    def test_order_sensitivity(self, fig1_graphs):
        normal, abnormal = fig1_graphs
        ext = GlobalTemporalExtractor(5, hidden_size=6, rng=np.random.default_rng(2))
        h = Tensor(np.random.default_rng(3).normal(size=(5, 5)))
        g_normal = ext(h, normal).data
        g_abnormal = ext(h, abnormal).data
        assert not np.allclose(g_normal, g_abnormal)

    def test_concatenation_aggregator_width(self, chain_graph):
        ext = GlobalTemporalExtractor(
            4, hidden_size=3, aggregator="concatenation", rng=np.random.default_rng(0)
        )
        h = Tensor(np.random.default_rng(1).normal(size=(4, 4)))
        assert ext(h, chain_graph).shape == (3,)

    def test_gradients_flow_to_gru(self, chain_graph):
        ext = GlobalTemporalExtractor(4, hidden_size=3, rng=np.random.default_rng(0))
        h = Tensor(np.random.default_rng(1).normal(size=(4, 4)), requires_grad=True)
        (ext(h, chain_graph) ** 2.0).sum().backward()
        assert h.grad is not None
        for param in ext.parameters():
            assert param.grad is not None
